"""Engine smoke tests — one small cell per migrated benchmark.

Runnable as ``python -m pytest benchmarks -q -k smoke``: a fast CI target
that exercises the experiment engine end-to-end (cold cache, warm cache,
parallel fan-out, scaling rebase) without the full paper-scale sweeps.
"""

import pytest

from conftest import report

from repro.bench.report import format_metric_table
from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2
from repro.machine.multicore import MulticoreModel
from repro.machine.timing import SamplePlan


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "cache"


def test_smoke_fig12_cell_cold_then_warm(cache_dir):
    """One in-cache Figure 12 cell: miss on a cold cache, hit on a warm one."""
    cold = ExperimentRunner(LX2(), cache_dir=cache_dir)
    first = cold.measure("hstencil", "star2d5p", (32, 32))
    assert cold.provenance("hstencil", "star2d5p", (32, 32)) == "simulated"
    assert cold.disk_cache.stats()["stores"] == 1

    warm = ExperimentRunner(LX2(), cache_dir=cache_dir)
    second = warm.measure("hstencil", "star2d5p", (32, 32))
    assert warm.provenance("hstencil", "star2d5p", (32, 32)) == "disk"
    assert warm.disk_cache.stats() == {
        "root": str(cache_dir),
        "hits": 1,
        "misses": 0,
        "stores": 0,
    }
    assert second.counters.to_dict() == first.counters.to_dict()

    rows = {
        run: {k: str(v) for k, v in r.disk_cache.stats().items() if k != "root"}
        for run, r in (("cold", cold), ("warm", warm))
    }
    report("smoke_engine", format_metric_table("engine smoke: disk cache", rows))


def test_smoke_fig15_cell_sampled(cache_dir):
    """One small out-of-cache Figure 15 cell, band-sampled, cache round-trip."""
    plan = SamplePlan(warmup_bands=1, min_measure_points=4096)
    cold = ExperimentRunner(LX2(), cache_dir=cache_dir)
    first = cold.measure("hstencil-prefetch", "box2d25p", (1024, 1024), plan=plan)
    assert first.counters.sampled
    warm = ExperimentRunner(LX2(), cache_dir=cache_dir)
    second = warm.measure("hstencil-prefetch", "box2d25p", (1024, 1024), plan=plan)
    assert warm.provenance("hstencil-prefetch", "box2d25p", (1024, 1024), plan=plan) == "disk"
    assert second.counters.sampled
    assert second.counters.to_dict() == first.counters.to_dict()


def test_smoke_fig16_scaling_rebase():
    """One tiny Figure 16 series: speedup rebased against the 1-core point."""
    runner = ExperimentRunner(LX2())
    cores = [1, 2, 4]
    heights = sorted({64 // c for c in cores} | {64})
    results = runner.measure_many(
        [("hstencil", "box2d9p", (rows, 64)) for rows in heights]
    )
    assert all(r.ok for r in results)
    slices = {r.shape[0]: r.counters for r in results}
    points = MulticoreModel(LX2()).series_from_slices(slices, 64, cores)
    speedups = {p.cores: p.speedup_vs_serial for p in points}
    assert speedups[1] == pytest.approx(1.0)
    assert speedups[4] > 2.0  # true speedup over serial, not ~1.0x


def test_smoke_parallel_matches_serial(cache_dir):
    """A 4-way parallel sweep of 8 cells is bit-identical to the serial run."""
    cells = [
        (method, stencil, (32, 32))
        for method in ("auto", "vector-only", "matrix-only", "hstencil")
        for stencil in ("star2d5p", "box2d9p")
    ]
    assert len(cells) == 8
    serial = ExperimentRunner(LX2()).measure_many(cells, jobs=1)
    parallel = ExperimentRunner(LX2(), cache_dir=cache_dir).measure_many(cells, jobs=4)
    assert [r.ok for r in serial] == [r.ok for r in parallel] == [True] * 8
    for s, p in zip(serial, parallel):
        assert (s.method, s.stencil, s.shape) == (p.method, p.stencil, p.shape)
        assert s.counters.to_dict() == p.counters.to_dict()
