"""Figure 17 — Apple M4: 2D in-cache speedups over (NEON) auto-vectorization.

Paper: box averages 3.07x, star 1.90x across sizes.  Star stencils route
to the M-MLA kernel (in-place accumulation is architecturally infeasible,
Section 4.1); box stencils use the in-place kernel's box path.
"""

from conftest import report, run_once

from repro.bench.report import format_speedup_table, geomean

SIZES = [(64, 64), (128, 128), (256, 256)]
STARS = ["star2d5p", "star2d9p"]
BOXES = ["box2d9p", "box2d25p"]


def _collect(runner):
    rows = {}
    for name in STARS + BOXES:
        for shape in SIZES:
            label = f"{name} {shape[0]}^2"
            rows[label] = runner.speedups(["hstencil"], name, shape)
    return rows


def test_fig17_m4_incache(benchmark, m4_runner):
    rows = run_once(benchmark, lambda: _collect(m4_runner))
    report(
        "fig17_m4_incache",
        format_speedup_table(
            "Figure 17: M4 2D speedups", rows, baseline_note="vs NEON auto-vectorization"
        )
        + "\n(paper: box avg 3.07x, star avg 1.90x)",
    )
    star_sp = [v["hstencil"] for k, v in rows.items() if k.startswith("star")]
    box_sp = [v["hstencil"] for k, v in rows.items() if k.startswith("box")]
    # Portability claim: HStencil speeds up every workload on the M4.
    assert all(s > 1.0 for s in star_sp)
    assert all(b > 1.0 for b in box_sp)
    # Box gains exceed star gains (the M-MLA naive path pays the
    # multi-stage combine that in-place accumulation avoids on the LX2).
    assert geomean(box_sp) > geomean(star_sp)
    assert geomean(box_sp) > 2.0
    assert geomean(star_sp) > 1.3
