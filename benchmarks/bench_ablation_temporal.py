"""Ablation — temporal blocking (the [19]/[34] extension direction).

Fuses four time steps of the r=2 box stencil band-wise with a wavefront
schedule and compares against four plain full-grid sweeps on an
out-of-cache grid.  The fused schedule advances a band several steps
while its rows are still cache-resident, cutting per-step DRAM traffic.

On a single simulated core with spatial prefetch the *cycles* barely
move — prefetch already hides the DRAM latency — so the payoff of
temporal blocking here is the traffic itself: it raises the multicore
bandwidth ceiling of Figure 16 (GStencil/s at saturation scales as
1 / DRAM-bytes-per-point).
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table
from repro.core.iterate import StencilIterator
from repro.core.temporal import TemporalBlockedIterator
from repro.machine.config import LX2
from repro.stencils.spec import box2d

N = 512  # grid (2 x 2.2 MB) comfortably exceeds the 512 KiB L2
STEPS = 4
METHOD = "hstencil-prefetch"


def _collect():
    spec = box2d(2)
    plain = StencilIterator(spec, LX2(), method=METHOD).time_steps(N, N, steps=STEPS)
    fused = TemporalBlockedIterator(spec, LX2(), method=METHOD).time_steps(
        N, N, steps=STEPS
    )
    rows = {}
    for label, pc in (("plain sweeps", plain), (f"fused x{STEPS}", fused)):
        rows[label] = {
            "cycles/point": f"{pc.cycles_per_point:.2f}",
            "DRAM B/pt": f"{pc.dram_bytes() / pc.points:.1f}",
            "L1 demand": f"{pc.l1_demand_hit_rate * 100:.1f}%",
        }
    return rows, plain, fused


def test_ablation_temporal_blocking(benchmark):
    rows, plain, fused = run_once(benchmark, _collect)
    speedup = plain.cycles / fused.cycles
    traffic_ratio = (fused.dram_bytes() / fused.points) / (
        plain.dram_bytes() / plain.points
    )
    report(
        "ablation_temporal",
        format_metric_table(
            f"Ablation: temporal blocking, {STEPS} steps of r=2 box at {N}^2", rows
        )
        + f"\nfused-over-plain cycle speedup: {speedup:.2f}x; "
        f"DRAM traffic ratio: {traffic_ratio:.2f} "
        f"(= +{(1 / traffic_ratio - 1) * 100:.0f}% multicore bandwidth ceiling)",
    )
    # Fusing steps must cut DRAM traffic per point...
    assert traffic_ratio < 0.9
    # ...without costing single-core cycles (prefetch already hides DRAM).
    assert speedup > 0.95
