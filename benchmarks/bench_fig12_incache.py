"""Figure 12 — in-cache performance of HStencil vs matrix/vector methods.

128x128 micro kernels, 2D and 3D star/box suites, normalized to the
auto-vectorization baseline.  Paper headline numbers: star-2D HStencil
1.69x (matrix-only 1.32x), box-2D 3.02x (matrix-only 2.52x), star-3D
1.66x (1.33x), box-3D 4.16x (3.71x).
"""

import pytest

from conftest import BENCH_CACHE_DIR, BENCH_JOBS, bench_artifact, report, run_once

from repro.bench.report import format_speedup_table, geomean
from repro.bench.runner import ExperimentRunner
from repro.kernels.base import KernelOptions
from repro.machine.config import LX2

METHODS = ["vector-only", "matrix-only", "hstencil"]
BASELINE = "auto"
SHAPE_2D = (128, 128)
SHAPE_3D = (16, 32, 64)  # in-cache 3D slab (see DESIGN.md)

SUITE_2D = ["star2d5p", "star2d9p", "star2d13p", "box2d9p", "box2d25p", "box2d49p", "heat2d"]
SUITE_3D = ["star3d7p", "star3d13p", "box3d27p"]

_collected = {}


def _collect(runner):
    # Fan all independent cells through the experiment engine first (disk
    # cached, parallel under REPRO_BENCH_JOBS); the speedup tables below are
    # then served from the runner's in-memory cache.
    runner.measure_many(
        [(m, name, SHAPE_2D) for name in SUITE_2D for m in METHODS + [BASELINE]],
        jobs=BENCH_JOBS,
    )
    rows_2d = {
        name: runner.speedups(METHODS, name, SHAPE_2D) for name in SUITE_2D
    }
    # The 64-wide 3D slab fits a full row in one 8-tile panel; the matrix
    # family runs at unroll_j=8 there (its best configuration, and the one
    # that preserves locality across the plane loop).
    runner_3d = ExperimentRunner(LX2(), KernelOptions(unroll_j=8), cache_dir=BENCH_CACHE_DIR)
    runner_3d.measure_many(
        [(m, name, SHAPE_3D) for name in SUITE_3D for m in METHODS + [BASELINE]],
        jobs=BENCH_JOBS,
    )
    rows_3d = {
        name: runner_3d.speedups(METHODS, name, SHAPE_3D) for name in SUITE_3D
    }
    _collected["runner_3d"] = runner_3d
    return rows_2d, rows_3d


def test_fig12_incache_speedups(benchmark, lx2_runner):
    rows_2d, rows_3d = run_once(benchmark, lambda: _collect(lx2_runner))
    runner_3d = _collected.get("runner_3d")
    bench_artifact(
        "fig12_incache",
        runner=lx2_runner,
        extra={
            "speedups_2d": rows_2d,
            "speedups_3d": rows_3d,
            "cells_3d": runner_3d.records() if runner_3d else [],
            "cache_3d": runner_3d.cache_stats() if runner_3d else None,
        },
    )
    text = (
        format_speedup_table("Figure 12a: in-cache 2D speedups (128x128)", rows_2d)
        + "\n\n"
        + format_speedup_table("Figure 12b: in-cache 3D speedups (16x32x64)", rows_3d)
        + "\n(paper: star2D 1.69x vs 1.32x; box2D 3.02x vs 2.52x; "
        "star3D 1.66x vs 1.33x; box3D 4.16x vs 3.71x)"
    )
    report("fig12_incache", text)

    star_2d = [rows_2d[n]["hstencil"] for n in SUITE_2D if n.startswith("star")]
    box_2d = [rows_2d[n]["hstencil"] for n in SUITE_2D if n.startswith("box")]
    star_2d_mat = [rows_2d[n]["matrix-only"] for n in SUITE_2D if n.startswith("star")]
    box_2d_mat = [rows_2d[n]["matrix-only"] for n in SUITE_2D if n.startswith("box")]

    # Shape assertions: HStencil wins every 2D workload and beats the
    # matrix-only SOTA on average for both patterns.
    for name, cells in rows_2d.items():
        assert cells["hstencil"] > 1.0, name
        assert cells["hstencil"] > cells["matrix-only"], name
    assert geomean(star_2d) > geomean(star_2d_mat)
    assert geomean(box_2d) > geomean(box_2d_mat)
    # Box speedups exceed star speedups (dense coefficient planes feed the
    # matrix unit better) — the Figure 12 ordering.
    assert geomean(box_2d) > geomean(star_2d)
    # 3D: HStencil generalizes (plane-accumulated 2D kernels) and stays
    # ahead of matrix-only on average.
    hst_3d = [rows_3d[n]["hstencil"] for n in SUITE_3D]
    mat_3d = [rows_3d[n]["matrix-only"] for n in SUITE_3D]
    assert geomean(hst_3d) > 1.0
    assert geomean(hst_3d) > 0.95 * geomean(mat_3d)
    # Box-3D stays the biggest win, as in Figure 12b.
    assert rows_3d["box3d27p"]["hstencil"] == max(
        rows_3d[n]["hstencil"] for n in SUITE_3D
    )
