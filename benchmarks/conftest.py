"""Shared infrastructure for the benchmark suite.

Each ``bench_*`` file regenerates one table or figure of the paper.  The
paper-style tables are collected via :func:`report` and printed in the
terminal summary (so they appear in ``bench_output.txt`` even under
pytest's output capturing), and are also written to
``benchmarks/results/<name>.txt`` for later inspection.

The session-scoped :class:`ExperimentRunner` fixtures share their
measurement cache across benchmark files, so e.g. Figure 14's IPC table
reuses Figure 12's simulations.

Engine knobs (environment variables):

``REPRO_BENCH_CACHE``
    Directory for the content-addressed on-disk measurement cache.  Set it
    to make repeated benchmark runs skip simulation entirely.
``REPRO_BENCH_JOBS``
    Worker processes for the migrated sweeps (default 1 = serial).
``REPRO_ENGINE`` / ``REPRO_TIMING``
    Replay engine ("compiled"/"reference") and sampled-timing mode
    ("columnar"/"scalar") for every benchmark runner — including the
    multicore scaling model of ``bench_fig16_multicore.py`` and the M4
    out-of-cache sweep of ``bench_fig18_m4_outofcache.py``, which reuse the
    session runners' engines.  The artifacts record the selection under
    ``modes``.
"""

from __future__ import annotations

import os
import pathlib
from typing import List, Mapping, Optional, Tuple

import pytest

from repro.bench.report import write_bench_json
from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2, M4

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Engine configuration shared by every migrated benchmark.
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
#: Explicit mode selection for the session runners.  ``None`` defers to the
#: engine-level defaults, which consult the same variables — passing them
#: here keeps the whole suite's selection in one visible place.
BENCH_ENGINE = os.environ.get("REPRO_ENGINE") or None
BENCH_TIMING = os.environ.get("REPRO_TIMING") or None


def bench_artifact(name: str, runner=None, extra: Optional[Mapping] = None) -> pathlib.Path:
    """Write the ``BENCH_<name>.json`` artifact into the results directory."""
    return write_bench_json(_RESULTS_DIR, name, runner=runner, extra=extra)

#: (name, rendered table) collected during the session.
_TABLES: List[Tuple[str, str]] = []


def report(name: str, text: str) -> None:
    """Register a rendered table for the terminal summary + results dir."""
    _TABLES.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 74)
    terminalreporter.write_line("Reproduced tables and figures (paper-style output)")
    terminalreporter.write_line("=" * 74)
    for name, text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def lx2_runner() -> ExperimentRunner:
    return ExperimentRunner(
        LX2(), cache_dir=BENCH_CACHE_DIR, engine=BENCH_ENGINE, timing=BENCH_TIMING
    )


@pytest.fixture(scope="session")
def m4_runner() -> ExperimentRunner:
    return ExperimentRunner(
        M4(), cache_dir=BENCH_CACHE_DIR, engine=BENCH_ENGINE, timing=BENCH_TIMING
    )


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark without re-simulating.

    Simulated experiments are deterministic, so one round is exact; the
    pedantic API keeps pytest-benchmark from re-running multi-second
    simulations dozens of times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
