"""Figure 16 — strong scaling, Box-2D9P at 8192^2, 1 to 32 cores.

Paper: HStencil reaches 12.91 GStencil/s on 32 cores, above matrix-only
(7.76) and vector-only (7.14).  Absolute GStencil/s depends on clock and
bandwidth; the reproduced shape is the ordering and near-linear scaling
with mild bandwidth saturation at high core counts.

Each method's distinct slice heights are independent cells measured
through the experiment engine (disk cached, parallel under
``REPRO_BENCH_JOBS``); the bandwidth-contention bound then combines them
into scaling points rebased against the true 1-core measurement.
"""

from conftest import BENCH_JOBS, bench_artifact, report, run_once

from repro.bench.report import format_scaling_series
from repro.machine.multicore import MulticoreModel

N = 8192
CORES = [1, 2, 4, 8, 16, 32]
STENCIL = "box2d9p"
METHODS = ["vector-only", "matrix-only", "hstencil-prefetch"]

HEIGHTS = sorted({N // c for c in CORES} | {N})


def _collect(runner):
    runner.measure_many(
        [(m, STENCIL, (rows, N)) for m in METHODS for rows in HEIGHTS],
        jobs=BENCH_JOBS,
    )
    # Reuse the runner's engine: the contention model then follows the same
    # --engine/--timing (REPRO_ENGINE/REPRO_TIMING) selection as the slice
    # measurements, instead of silently reverting to the defaults.
    mc = MulticoreModel(runner.machine, timing_engine=runner.engine)
    series = {}
    points = {}
    for method in METHODS:
        slices = {
            rows: runner.measure(method, STENCIL, (rows, N)).counters
            for rows in HEIGHTS
        }
        pts = mc.series_from_slices(slices, N, CORES)
        series[method] = [(p.cores, p.gstencil_per_s) for p in pts]
        points[method] = pts
    return series, points


def test_fig16_strong_scaling(benchmark, lx2_runner):
    series, points = run_once(benchmark, lambda: _collect(lx2_runner))
    bench_artifact(
        "fig16_multicore",
        runner=lx2_runner,
        extra={
            "scaling": {
                method: [
                    {
                        "cores": p.cores,
                        "cycles": p.cycles,
                        "points": p.points,
                        "gstencil_per_s": p.gstencil_per_s,
                        "speedup_vs_serial": p.speedup_vs_serial,
                        "bandwidth_bound": p.bandwidth_bound,
                        "dram_bytes_per_core": p.dram_bytes_per_core,
                        "remainder_rows": p.remainder_rows,
                    }
                    for p in pts
                ]
                for method, pts in points.items()
            }
        },
    )
    report(
        "fig16_multicore",
        format_scaling_series("Figure 16: Box-2D9P 8192^2 strong scaling", series)
        + "\n(paper @32 cores: hstencil 12.91 > matrix 7.76 > vector 7.14 GS/s)",
    )
    at32 = {m: dict(series[m])[32] for m in METHODS}
    # The Figure 16 ordering at full scale.
    assert at32["hstencil-prefetch"] > at32["matrix-only"]
    assert at32["matrix-only"] > at32["vector-only"]
    # Scaling is monotone for every method.
    for m in METHODS:
        rates = [r for _c, r in series[m]]
        assert all(b >= a * 0.99 for a, b in zip(rates, rates[1:])), m
    # HStencil keeps >= 50% parallel efficiency at 32 cores.
    h1 = dict(series["hstencil-prefetch"])[1]
    assert at32["hstencil-prefetch"] > 0.5 * 32 * h1
    # The rebased speedup metric reports real scaling, not ~1.0x: the
    # 32-core point must beat the 1-core point by a wide margin.
    for m in METHODS:
        speedups = {p.cores: p.speedup_vs_serial for p in points[m]}
        assert speedups[1] > 0.0
        assert speedups[32] > 4.0, (m, speedups)
        # 8192 divides evenly by every core count here.
        assert all(p.remainder_rows == 0 for p in points[m])
