"""Figure 16 — strong scaling, Box-2D9P at 8192^2, 1 to 32 cores.

Paper: HStencil reaches 12.91 GStencil/s on 32 cores, above matrix-only
(7.76) and vector-only (7.14).  Absolute GStencil/s depends on clock and
bandwidth; the reproduced shape is the ordering and near-linear scaling
with mild bandwidth saturation at high core counts.
"""

from conftest import report, run_once

from repro.bench.report import format_scaling_series
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2
from repro.machine.memory import MemorySpace
from repro.machine.multicore import MulticoreModel
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark as stencil

N = 8192
CORES = [1, 2, 4, 8, 16, 32]
METHODS = ["vector-only", "matrix-only", "hstencil-prefetch"]


def _factory(method):
    spec = stencil("box2d9p")

    def make(rows):
        mem = MemorySpace()
        src = Grid2D(mem, rows, N, spec.radius, "A")
        dst = Grid2D(mem, rows, N, spec.radius, "B")
        return make_kernel(method, spec, src, dst, LX2(), KernelOptions())

    return make


def _collect():
    mc = MulticoreModel(LX2())
    series = {}
    points = {}
    for method in METHODS:
        pts = mc.strong_scaling(_factory(method), N, CORES)
        series[method] = [(p.cores, p.gstencil_per_s) for p in pts]
        points[method] = pts
    return series, points


def test_fig16_strong_scaling(benchmark):
    series, points = run_once(benchmark, _collect)
    report(
        "fig16_multicore",
        format_scaling_series("Figure 16: Box-2D9P 8192^2 strong scaling", series)
        + "\n(paper @32 cores: hstencil 12.91 > matrix 7.76 > vector 7.14 GS/s)",
    )
    at32 = {m: dict(series[m])[32] for m in METHODS}
    # The Figure 16 ordering at full scale.
    assert at32["hstencil-prefetch"] > at32["matrix-only"]
    assert at32["matrix-only"] > at32["vector-only"]
    # Scaling is monotone for every method.
    for m in METHODS:
        rates = [r for _c, r in series[m]]
        assert all(b >= a * 0.99 for a, b in zip(rates, rates[1:])), m
    # HStencil keeps >= 50% parallel efficiency at 32 cores.
    h1 = dict(series["hstencil-prefetch"])[1]
    assert at32["hstencil-prefetch"] > 0.5 * 32 * h1
