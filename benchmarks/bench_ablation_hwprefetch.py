"""Ablation — the hardware stream prefetcher (the Table 3 mechanism).

Disables the hardware prefetcher and re-measures the out-of-cache
methods.  Expected mechanism (Table 3 / Section 2.3.3):

* with hardware prefetch ON, the vector method's resident streams give it
  near-total coverage while the matrix method's thrashing streams retrain
  constantly and keep a visible miss residue — the Table 3 gap;
* with it OFF, both collapse (the matrix method loses its within-run
  coverage too), so the gap is prefetcher-made, not capacity-made;
* HStencil's *software* prefetch is independent of the hardware feature.
"""

import dataclasses

from conftest import report, run_once

from repro.bench.report import format_metric_table
from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2

N = 1024
STENCIL = "box2d25p"


def _collect():
    rows = {}
    stats = {}
    on = ExperimentRunner(LX2())
    off = ExperimentRunner(LX2().without_hw_prefetch())
    for method in ("vector-only", "matrix-only", "hstencil-prefetch"):
        a = on.measure(method, STENCIL, (N, N)).counters
        b = off.measure(method, STENCIL, (N, N)).counters
        rows[method] = {
            "L1 (hw pf on)": f"{a.l1_demand_hit_rate * 100:.1f}%",
            "L1 (hw pf off)": f"{b.l1_demand_hit_rate * 100:.1f}%",
            "c/pt on": f"{a.cycles_per_point:.2f}",
            "c/pt off": f"{b.cycles_per_point:.2f}",
        }
        stats[method] = (a, b)
    return rows, stats


def test_ablation_hw_prefetcher(benchmark):
    rows, stats = run_once(benchmark, _collect)
    report(
        "ablation_hwprefetch",
        format_metric_table(
            f"Ablation: hardware stream prefetcher ({STENCIL}, {N}^2)", rows
        )
        + "\n(mechanism check: hardware prefetch is the coverage source"
        "\n for both pure methods — fully for vector, partially for matrix"
        "\n — while software prefetch works without it)",
    )
    vec_on, vec_off = stats["vector-only"]
    mat_on, mat_off = stats["matrix-only"]
    hst_on, hst_off = stats["hstencil-prefetch"]
    # With hardware prefetch, the vector method is ~fully covered while
    # the matrix method keeps a visible retrain-miss residue (Table 3).
    assert vec_on.l1_demand_hit_rate > 0.98
    assert mat_on.l1_demand_hit_rate < vec_on.l1_demand_hit_rate - 0.04
    # Turning the prefetcher off hurts both (it is the coverage source).
    assert vec_off.cycles > 1.5 * vec_on.cycles
    assert mat_off.l1_demand_hit_rate < mat_on.l1_demand_hit_rate - 0.2
    # Software prefetch does not need the hardware prefetcher.
    assert hst_off.l1_demand_hit_rate > 0.9
    assert hst_off.cycles < 1.1 * hst_on.cycles
