"""Table 3 — cache hit rates on out-of-cache stencils (vector vs matrix).

Paper: the vector method's row streaming stays within the hardware
prefetcher's stream table (96.7-99.5% L1 hits) while the matrix method's
2-D tiled pattern degrades with grid size (66% -> 33%).

Reproduction note (see EXPERIMENTS.md): on the simulated LX2 the
vector/matrix *gap* reproduces at L1 (≈98% vs ≈75%), but the matrix
method's size degradation appears one level down — its band-shaped
working set (``(8+2r) rows x N``) outgrows the L2 between 4096^2 and
8192^2, so the degrading column here is the L2 hit rate and the DRAM
traffic per point, with the cycle-level consequence shown in Figure 15.
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table

SIZES = [1024, 2048, 4096, 8192]
STENCIL = "box2d25p"


def _collect(runner):
    rows = {}
    stats = {}
    for n in SIZES:
        vec = runner.measure("vector-only", STENCIL, (n, n)).counters
        mat = runner.measure("matrix-only", STENCIL, (n, n)).counters
        mat_l2 = mat.l2_hits / mat.l2_accesses if mat.l2_accesses else 0.0
        rows[f"{n} x {n}"] = {
            "Vector L1": f"{vec.l1_demand_hit_rate * 100:.2f}%",
            "Matrix L1": f"{mat.l1_demand_hit_rate * 100:.2f}%",
            "Matrix L2": f"{mat_l2 * 100:.2f}%",
            "Matrix DRAM B/pt": f"{mat.dram_bytes() / mat.points:.1f}",
        }
        stats[n] = (vec, mat, mat_l2)
    return rows, stats


def test_tab03_cache_hit_rates(benchmark, lx2_runner):
    rows, stats = run_once(benchmark, lambda: _collect(lx2_runner))
    report(
        "tab03_cache_hit",
        format_metric_table("Table 3: out-of-cache cache behaviour", rows)
        + "\n(paper: vector L1 96.7-99.5% flat; matrix degrading 66% -> 33%."
        "\n here: the L1 gap reproduces; the size degradation shows in the"
        "\n matrix method's L2 rate / DRAM traffic — see EXPERIMENTS.md)",
    )
    for n in SIZES:
        vec, mat, _ = stats[n]
        # Vector streaming stays high at every size.
        assert vec.l1_demand_hit_rate > 0.95, f"vector method at {n}"
        # The matrix method is always distinctly below the vector method at
        # L1 (the paper's gap is larger; see the reproduction note above).
        assert mat.l1_demand_hit_rate < vec.l1_demand_hit_rate - 0.04, f"matrix at {n}"
    # Size degradation: the matrix method's memory behaviour worsens with
    # grid size (L2 reuse collapses, DRAM traffic per point rises ~25%).
    _, mat_1k, l2_1k = stats[1024]
    _, mat_8k, l2_8k = stats[8192]
    assert l2_8k < l2_1k - 0.1
    assert mat_8k.dram_bytes() / mat_8k.points > 1.15 * mat_1k.dram_bytes() / mat_1k.points
