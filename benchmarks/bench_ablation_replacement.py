"""Ablation — the two Section 3.2.1 replacement knobs, swept exhaustively.

``mla_rollback`` (vector taps rolled back to single-row outer products) and
``ext_to_load`` (EXT concatenations replaced by unaligned loads) on the
r=2 star workload, plus the autotuner's pick.
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table
from repro.bench.runner import ExperimentRunner
from repro.core.autotune import autotune_replacement
from repro.kernels.base import KernelOptions
from repro.machine.config import LX2
from repro.stencils.spec import star2d

SHAPE = (64, 64)
STENCIL = "star2d9p"


def _collect():
    rows = {}
    cycles = {}
    for rb in range(5):
        for el in range(0, 5, 2):
            runner = ExperimentRunner(
                LX2(), KernelOptions(mla_rollback=rb, ext_to_load=el)
            )
            pc = runner.measure("hstencil", STENCIL, SHAPE).counters
            cycles[(rb, el)] = pc.cycles
            rows[f"rollback={rb} ext->ld={el}"] = {
                "cycles/point": f"{pc.cycles_per_point:.2f}",
                "IPC": f"{pc.ipc:.2f}",
            }
    tuned = autotune_replacement(star2d(2), LX2(), KernelOptions())
    rows["autotuned"] = {
        "cycles/point": f"(rb={tuned.mla_rollback}, el={tuned.ext_to_load})",
        "IPC": "",
    }
    return rows, cycles, tuned


def test_ablation_replacement_knobs(benchmark):
    rows, cycles, tuned = run_once(benchmark, _collect)
    report(
        "ablation_replacement",
        format_metric_table(
            "Ablation: MLA rollback x EXT->load (r=2 star, 64x64)", rows
        ),
    )
    # The knobs matter: the spread across the plan space is substantial.
    best = min(cycles.values())
    worst = max(cycles.values())
    assert worst > 1.1 * best
    # The autotuner's pick is within a few percent of the swept optimum.
    runner = ExperimentRunner(LX2(), tuned)
    tuned_cycles = runner.measure("hstencil", STENCIL, SHAPE).counters.cycles
    assert tuned_cycles <= best * 1.05
