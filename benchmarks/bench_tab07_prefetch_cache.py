"""Table 7 — L1 cache metrics of r=2 box stencils with/without prefetch.

Paper: spatial prefetch lifts the L1 hit rate (~30% -> ~60% at the large
sizes) and multiplies total hit *times* by ~3x (the PMU counts software
prefetch probes).  This bench reports both the demand-side hit rate and
the PMU-style rate (demand + prefetch probes), as DESIGN.md discusses.
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table

SIZES = [1024, 2048, 4096, 8192]
STENCIL = "box2d25p"


def _collect(runner):
    rows = {}
    stats = {}
    for n in SIZES:
        base = runner.measure("hstencil-noprefetch", STENCIL, (n, n)).counters
        pf = runner.measure("hstencil-prefetch", STENCIL, (n, n)).counters
        rows[f"{n} x {n}"] = {
            "w/o pf rate": f"{base.l1_demand_hit_rate * 100:.2f}%",
            "w/o pf hits": f"{base.l1_hits:.2e}",
            "pf demand rate": f"{pf.l1_demand_hit_rate * 100:.2f}%",
            "pf PMU rate": f"{pf.l1_hit_rate * 100:.2f}%",
            "pf hits": f"{pf.l1_hits:.2e}",
        }
        stats[n] = (base, pf)
    return rows, stats


def test_tab07_prefetch_cache_metrics(benchmark, lx2_runner):
    rows, stats = run_once(benchmark, lambda: _collect(lx2_runner))
    report(
        "tab07_prefetch_cache",
        format_metric_table("Table 7: L1 metrics, r=2 box, +/- spatial prefetch", rows)
        + "\n(paper: rate ~30%->~60%, hit times x2.98)",
    )
    for n in SIZES:
        base, pf = stats[n]
        # Prefetch raises the demand-side hit rate at every size...
        assert pf.l1_demand_hit_rate > base.l1_demand_hit_rate, n
        # ...and increases total L1 hit times (PMU counts the probes).
        assert pf.l1_hits > base.l1_hits, n
    # The large-size rescue closes most of the remaining miss fraction
    # (paper: 33% -> 60% absolute; here ~92% -> ~100%, i.e. the misses
    # spatial prefetch targets are almost fully converted).
    base8k, pf8k = stats[8192]
    assert pf8k.l1_demand_hit_rate - base8k.l1_demand_hit_rate > 0.05
    miss_base = 1.0 - base8k.l1_demand_hit_rate
    miss_pf = 1.0 - pf8k.l1_demand_hit_rate
    assert miss_pf < 0.5 * miss_base
