"""Table 1 — single-register matrix-unit utilization.

Analytic values from :mod:`repro.core.analysis` plus the *measured*
useful-flops fraction of actual matrix-only / mat-ortho kernel blocks
(interior block, FMOPA instructions only).
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table
from repro.core.analysis import single_register_utilization, utilization_table
from repro.isa.instructions import FMOPA
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2
from repro.machine.memory import MemorySpace
from repro.stencils.grid import Grid2D
from repro.stencils.spec import box2d, star2d


def _measured_utilization(method: str, spec) -> float:
    mem = MemorySpace()
    src = Grid2D(mem, 32, 32, spec.radius, "A")
    dst = Grid2D(mem, 32, 32, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, LX2(), KernelOptions(unroll_j=1))
    block = kernel.loop_nest().blocks[len(kernel.loop_nest().blocks) // 2]
    trace = kernel.emit(block)
    fmopas = [i for i in trace if isinstance(i, FMOPA)]
    return sum(i.useful_flops for i in fmopas) / sum(i.flops for i in fmopas)


def _table1(radius: int = 2):
    box = box2d(radius)
    star = star2d(radius)
    rows = {
        "Outer-axis (Box)": {
            "analytic": f"{single_register_utilization(box, 'outer') * 100:.1f}%",
            "measured": f"{_measured_utilization('matrix-only', box) * 100:.1f}%",
            "paper": "41.7%",
        },
        "Outer-axis (Star)": {
            "analytic": f"{single_register_utilization(star, 'outer') * 100:.1f}%",
            "measured": f"{_measured_utilization('matrix-only', star) * 100:.1f}%",
            "paper": "18.3%",
        },
        "Outer&inner-axis (Star)": {
            "analytic": f"{single_register_utilization(star, 'outer+inner') * 100:.1f}%",
            "measured": f"{_measured_utilization('mat-ortho', star) * 100:.1f}%",
            "paper": "41.7%",
        },
    }
    return rows


def test_tab01_matrix_unit_utilization(benchmark):
    rows = run_once(benchmark, _table1)
    report(
        "tab01_utilization",
        format_metric_table(
            "Table 1: single-register matrix-unit utilization (r=2)", rows
        ),
    )
    table = utilization_table(2)
    # Shape: outer-axis star is far below box; outer+inner recovers.
    assert table["Outer-axis (Star)"] < 0.25
    assert table["Outer-axis (Box)"] >= 2 * table["Outer-axis (Star)"]
    assert table["Outer&inner-axis (Star)"] >= 2 * table["Outer-axis (Star)"]
    # Measured matches analytic for the outer-axis methods (same FMOPAs).
    star = star2d(2)
    assert abs(
        _measured_utilization("matrix-only", star)
        - single_register_utilization(star, "outer")
    ) < 0.05
