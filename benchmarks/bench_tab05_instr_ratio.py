"""Table 5 — matrix / vector instruction-cycle ratio per method.

Analytic per-8-row-tile cycle counts (the planning model of Section 3.2.1)
plus counts measured from actual emitted blocks.  Paper: matrix star & box
40/0; matrix-vector star 16/48; matrix-vector box 40/32.
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table
from repro.core.analysis import instruction_cycle_ratio
from repro.isa.instructions import PortClass
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2
from repro.machine.memory import MemorySpace
from repro.stencils.grid import Grid2D
from repro.stencils.spec import box2d, star2d


def _measured_ratio(method: str, spec) -> tuple:
    """Matrix/vector pipe cycles of one interior block, per 8-row tile."""
    cfg = LX2()
    mem = MemorySpace()
    src = Grid2D(mem, 32, 32, spec.radius, "A")
    dst = Grid2D(mem, 32, 32, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, cfg, KernelOptions(unroll_j=1))
    block = kernel.loop_nest().blocks[len(kernel.loop_nest().blocks) // 2]
    counts = kernel.emit(block).port_counts()
    m = counts.get(PortClass.MATRIX, 0) / cfg.port_count(PortClass.MATRIX)
    v = counts.get(PortClass.VECTOR, 0) / cfg.port_count(PortClass.VECTOR)
    return m, v


def _table5():
    cfg = LX2()
    star = star2d(2)
    box = box2d(2)
    rows = {}
    for label, spec, method, paper in (
        ("Matrix Star", star, "matrix-only", "40 / 0"),
        ("Matrix Box", box, "matrix-only", "40 / 0"),
        ("Matrix-Vector Star", star, "hstencil", "16 / 48"),
        ("Matrix-Vector Box", box, "hstencil", "40 / 32"),
    ):
        am, av = instruction_cycle_ratio(spec, cfg, method)
        mm, mv = _measured_ratio(method, spec)
        rows[label] = {
            "analytic (M/V)": f"{am:.0f} / {av:.0f}",
            "measured (M/V)": f"{mm:.0f} / {mv:.0f}",
            "paper (M/V)": paper,
        }
    return rows


def test_tab05_instruction_ratio(benchmark):
    rows = run_once(benchmark, _table5)
    report("tab05_instr_ratio", format_metric_table("Table 5: matrix/vector cycles", rows))
    # Shape assertions from the paper's table:
    cfg = LX2()
    m, v = instruction_cycle_ratio(star2d(2), cfg, "matrix-only")
    assert (m, v) == (40.0, 0.0)
    m, v = instruction_cycle_ratio(star2d(2), cfg, "hstencil")
    assert v > m, "the star hybrid is vector-dominated before rollback"
    m, v = instruction_cycle_ratio(box2d(2), cfg, "hstencil")
    assert m > v > 0, "the box hybrid keeps matrix cycles dominant, EXT on vector"
