"""Ablation — multi-register unroll factor (Section 2.3.1 / 3.1.2).

Sweeps the number of concurrently-used tile registers.  The FMOPA pipeline
needs >= 4 independent accumulators for peak throughput (Figure 3a), so the
kernel-level sweep should show a throughput cliff between 1-2 and 4 tiles
and little gain beyond.
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table
from repro.bench.runner import ExperimentRunner
from repro.kernels.base import KernelOptions
from repro.machine.config import LX2

SHAPE = (128, 128)
STENCIL = "box2d25p"
UNROLLS = [1, 2, 4, 8]


def _collect():
    rows = {}
    cycles = {}
    for w in UNROLLS:
        runner = ExperimentRunner(LX2(), KernelOptions(unroll_j=w))
        pc = runner.measure("hstencil", STENCIL, SHAPE).counters
        cycles[w] = pc.cycles
        rows[f"unroll_j = {w}"] = {
            "cycles/point": f"{pc.cycles_per_point:.2f}",
            "IPC": f"{pc.ipc:.2f}",
            "matrix flops/cyc": f"{pc.flops / pc.cycles:.0f}",
        }
    return rows, cycles


def test_ablation_register_count(benchmark):
    rows, cycles = run_once(benchmark, _collect)
    report(
        "ablation_registers",
        format_metric_table(
            "Ablation: tile-register unroll factor (r=2 box, 128x128)", rows
        )
        + "\n(expected: large gain 1->4 tiles, saturation beyond 4)",
    )
    # The multi-register requirement of Section 3.1.2:
    assert cycles[4] < 0.55 * cycles[1], "4 tiles must be ~2x+ faster than 1"
    assert cycles[2] < 0.8 * cycles[1]
    # Beyond the pipeline depth, returns diminish.
    gain_4_to_8 = cycles[4] / cycles[8]
    gain_1_to_4 = cycles[1] / cycles[4]
    assert gain_4_to_8 < 0.5 * gain_1_to_4
