"""Figure 14 — IPC comparison across the 128x128 2D suite.

Paper: matrix-only stays below ~1.60 IPC, vector-only averages 1.825, and
HStencil reaches up to 2.30 — at most 1.31x / 1.59x higher than the
vector / matrix methods.
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table

SHAPE = (128, 128)
SUITE = ["star2d5p", "star2d9p", "star2d13p", "box2d9p", "box2d25p", "box2d49p"]
METHODS = ["vector-only", "matrix-only", "hstencil"]


def _collect(runner):
    rows = {}
    ipcs = {m: [] for m in METHODS}
    for name in SUITE:
        cells = runner.sweep(METHODS, name, SHAPE)
        rows[name] = {m: f"{cells[m].counters.ipc:.2f}" for m in METHODS}
        for m in METHODS:
            ipcs[m].append(cells[m].counters.ipc)
    rows["mean"] = {m: f"{sum(v) / len(v):.2f}" for m, v in ipcs.items()}
    return rows, ipcs


def test_fig14_ipc(benchmark, lx2_runner):
    rows, ipcs = run_once(benchmark, lambda: _collect(lx2_runner))
    report(
        "fig14_ipc",
        format_metric_table("Figure 14: IPC comparison (128x128 2D suite)", rows)
        + "\n(paper: vector avg 1.825, matrix < 1.60, hstencil up to 2.30)",
    )
    # Shape: HStencil's interleaving gives the highest IPC on every
    # workload, peaking above both pure methods by a wide margin.
    for k, name in enumerate(SUITE):
        assert ipcs["hstencil"][k] > ipcs["matrix-only"][k], name
        assert ipcs["hstencil"][k] > ipcs["vector-only"][k], name
    assert max(ipcs["hstencil"]) > 2.0
    assert max(ipcs["hstencil"]) / max(ipcs["vector-only"]) > 1.2
    assert max(ipcs["hstencil"]) / max(ipcs["matrix-only"]) > 1.3
