"""Simulator throughput — reference walk vs compiled replay vs pass memo.

Two workloads, one artifact (``benchmarks/results/BENCH_simspeed.json``):

* **Figure 12 in-cache workload** (128x128, full simulation, warm pass,
  ``iters = 16`` repeated measured passes — the paper's hardware-benchmark
  methodology) through three engine configurations:

  - ``reference``: per-instruction object walk, every pass simulated;
  - ``compiled`` with ``REPRO_MEMO=off``: template replay, every pass
    simulated (the pre-memoization engine — the baseline the memoization
    speedup is measured against);
  - ``compiled`` with ``REPRO_MEMO=pass`` (the default): template replay
    plus pass-level fixed-point memoization — once the machine state
    signature at a pass boundary recurs, the remaining passes are applied
    arithmetically.

* **Figure 15-style out-of-cache workload**: band-sampled large grids
  (``iters = 1``; sampling and repeated iters are mutually exclusive)
  through the reference engine and the compiled engine in both sampled
  replay modes (``scalar`` block-by-block walk, ``columnar``
  address-stream replay with the chunked scoreboard memo).

Every cell of every workload is checked for the bit-identity contract —
identical :class:`PerfCounters` from all configurations — so no speedup is
ever bought with accuracy.  All runs are cold (no disk cache): the point is
simulation speed, not cache hits.
"""

import os
import time
from contextlib import contextmanager

from conftest import bench_artifact, report

from repro.bench.report import format_metric_table
from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2
from repro.machine.timing import ENGINES, TIMING_MODES, SamplePlan

METHODS = ["vector-only", "matrix-only", "hstencil", "auto"]
SHAPE = (128, 128)
SUITE_2D = ["star2d5p", "star2d9p", "star2d13p", "box2d9p", "box2d25p", "box2d49p", "heat2d"]

#: Repeated measured passes for the in-cache workload (paper methodology).
MEMO_ITERS = 16

#: Out-of-cache (band-sampled) cells; kept small — the reference walk pays
#: full price per cell.
OOC_SHAPE = (2048, 2048)
OOC_STENCIL = "box2d25p"
OOC_METHODS = ["hstencil", "auto"]

#: Wall-clock targets.  ``compiled+pass-memo`` must beat the pre-memoization
#: compiled engine by >= 4x on the iterated in-cache workload, and the
#: reference walk by >= 20x.  The baseline is pinned to ``timing="scalar"``:
#: memo-off full runs engage the columnar first-pass batching by default
#: now, and letting the baseline speed up with the feature under test would
#: silently redefine what the memoization floors measure.
SPEEDUP_TARGET_VS_COMPILED = 4.0
SPEEDUP_TARGET_VS_REFERENCE = 20.0

#: In-cache columnar batching target: the same memo-off iterated workload,
#: scalar vs columnar timing.  Full runs drive the columnar replayer
#: band-at-a-time over ``nest.bands()``, so every measured pass of the
#: in-cache suite is batched like a sampled band; measured headroom ~2x.
INCACHE_COLUMNAR_TARGET = 1.5

#: Out-of-cache target: columnar replay vs the reference walk on the
#: band-sampled workload (the floor leaves CI noise room below the
#: measured ratio).  Out of cache neither memo layer can fire (the cache
#: state never recurs), so this is compile-once + address-stream replay
#: plus the block/chunk scoreboard memo over relative contexts.  The
#: combined cell includes the ``auto`` kernel, whose large blocks make the
#: compile-once probe emissions a third of the columnar wall-clock at this
#: grid size — the amortized regime is asserted separately by the
#: ``ooc_guard`` floor below.
OOC_SPEEDUP_TARGET = 5.0

#: Full-grid exact (unsampled) out-of-cache cell: the steady-state elision
#: workload.  One 2048^2 r=2 box pass on LX2, every band simulated
#: (``sample=False``) vs the band-periodic controller detecting the
#: steady state, verifying one period live and applying the remaining
#: bands arithmetically (``steady="on"``, the default).  Bit-identity is
#: asserted on every round; the elided side must also actually engage —
#: a run that silently fell back to the full walk would "pass" the
#: identity check while measuring nothing.  Measured speedup is ~7-8x
#: cold (detection from scratch) and ~10x warm (persisted period record);
#: the smoke-guard floor below leaves CI noise room under the cold
#: number.
FULLGRID_METHOD = "hstencil"
FULLGRID_SPEEDUP_TARGET = 5.0
FULLGRID_GUARD_SPEEDUP_TARGET = 4.0

#: Multicore (fig16-style) wall-clock target: one strong-scaling sweep —
#: every distinct slice height plus the serial reference, band-sampled —
#: timed through the columnar and scalar sampled-replay modes in the same
#: process.  Columnar must beat the scalar walk by this factor; the sweep's
#: scaling points must agree exactly between the modes.  The r=2 box is the
#: HStencil showcase (figs 17/18) and the representative op mix for the
#: replay engine: with five taps per row most operations stay on the L1-hit
#: fast path rather than in the per-line stream-advance machinery.  The
#: sampling plan is sized so the compile-once probe emissions (paid by both
#: modes) amortize the way they do on production sweeps; measured headroom
#: is ~2.2-2.3x.
MC_GUARD_SIZE = 2048
MC_GUARD_CORES = [1, 2, 4, 8]
MC_GUARD_STENCIL = "box2d25p"
MC_GUARD_METHOD = "hstencil-prefetch"
MC_GUARD_PLAN = SamplePlan(min_measure_points=200_000)
MC_SPEEDUP_TARGET = 2.0

#: Template-specialized codegen (exec-compiled straight-line replay
#: kernels, ``REPRO_CODEGEN``) targets.  The measured quantity is the
#: codegen-off / codegen-on wall-clock ratio with everything else pinned
#: (memo off, scalar timing), so it isolates the generated kernels from
#: the memo layers.  Two regimes:
#:
#: * fig12-style in-cache iterated cells: the replay scoreboard body
#:   itself runs ~2.3x faster generated, but the L2-resident working sets
#:   keep the shared memory-hierarchy helpers (miss fills, LRU churn) on
#:   the critical path of both sides, flooring the end-to-end ratio at a
#:   measured ~1.2-1.25x.  The hard floor leaves CI noise room under
#:   that; the issue's 1.6x aspiration is recorded in the artifact.
#: * fig16-style multicore scalar walk: longer straight-line traces per
#:   probe amortize better — measured ~1.4x against the issue's 1.3x
#:   acceptance floor.
CODEGEN_INCACHE_TARGET = 1.1
CODEGEN_INCACHE_ASPIRATION = 1.6
CODEGEN_MC_TARGET = 1.3
CODEGEN_GUARD_ROUNDS = 3

#: Small workload for the CI wall-clock regression guard: the full run
#: records its memo-off / pass-memo ratio in the JSON artifact, the smoke
#: guard re-measures it and fails when it degrades by more than GUARD_SLACK.
#: A ratio of two same-process runs is machine-independent, unlike raw
#: seconds.
GUARD_CELLS = [("hstencil", "star2d5p", (96, 96)), ("auto", "star2d5p", (96, 96))]
GUARD_ITERS = 12
GUARD_SLACK = 0.25

#: Out-of-cache guard cell: one band-sampled large grid, measured through
#: the reference walk and the columnar replay in the same process.  The
#: sampling plan is sized so the compile-once probe emissions amortize the
#: way they do on production sweeps (at 100k measured points they are a few
#: percent of the columnar side), which is the regime the hard floor below
#: describes; the cell still exercises the identical code paths as the
#: full workload.  The floor is a same-process wall-clock ratio, so it is
#: machine-independent; measured headroom is ~10-12x.
OOC_GUARD_CELLS = [("hstencil", OOC_STENCIL, OOC_SHAPE)]
OOC_GUARD_PLAN = SamplePlan(min_measure_points=100_000)
OOC_GUARD_SPEEDUP_TARGET = 8.0

#: AOT compiled-artifact store cold-start target: precompile the full
#: kernel registry on both machines over the fig12 suite against an empty
#: store, then repeat against the populated store.  The guarded quantity is
#: the wall-clock spent in template fitting plus program lowering (the work
#: the store persists): a warm process deserializes every template with its
#: trace and every lowered program, so its fitting+lowering time is exactly
#: zero and the cold/warm ratio collapses only if the store stops serving.
#: The mandated probe-on-load check (one live emit per shape class before a
#: stored template is trusted) is reported separately as ``verify_seconds``
#: — it is the price of the safety contract, not residual compile work.
#: Measured cold fit+lower is ~8s on the full workload; the denominator is
#: floored at 1 ms so a fully-warm (zero-second) run yields a finite ratio.
AOT_SPEEDUP_TARGET = 5.0
#: Smoke-guard subset: one machine, two stencils, still the full registry.
AOT_GUARD_STENCILS = ["star2d5p", "box2d9p"]
#: Stencil-service throughput cell: R identical mixed-lane requests (4
#: warm-cache cells each) against one persistent warm-worker service vs
#: the same R requests through fork-per-sweep ``run_cells`` calls (a fresh
#: worker pool per request — the pre-service engine's cost model).  The
#: service side pays one pool spin-up for all R requests and coalesces
#: identical in-flight cells, so the requests/sec ratio is dominated by
#: amortized process start and shared work; the floor is the acceptance
#: criterion's 3x.  Measured ~8-30x depending on fork cost.
SERVICE_CELLS = [
    ("hstencil", "star2d5p", (64, 64)),
    ("auto", "star2d5p", (64, 64)),
    ("hstencil", "box2d9p", (64, 64)),
    ("auto", "box2d9p", (64, 64)),
]
SERVICE_REQUESTS = 12
SERVICE_SMOKE_REQUESTS = 6
SERVICE_WORKERS = 2
SERVICE_THROUGHPUT_TARGET = 3.0

#: Whole-phase wall-clock floor for the same guard: warm must beat cold by
#: this much end-to-end, verification included.  The probe-on-load memo
#: (identical class entries verified once per process, not once per
#: bundle) holds warm verification cost down; measured wall ratio on the
#: guard subset is ~3.8-4.5x, so 3.0x leaves noise headroom while still
#: failing if per-load verification cost creeps back up.
AOT_WALL_RATIO_TARGET = 3.0

_RESULTS_JSON = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_simspeed.json"
)


def _guard_speedup():
    """Measured memo-off / pass-memo wall-clock ratio on the guard cells.

    The off side pins ``timing="scalar"`` for the same reason the main
    workload does: the guarded quantity is the memoization payoff over the
    pre-memoization engine, not over the columnar first-pass batching.
    """
    off_s, _, _ = _run_config(
        "compiled", "off", GUARD_CELLS, iters=GUARD_ITERS, timing="scalar",
        codegen="off",
    )
    memo_s, _, _ = _run_config(
        "compiled", "pass", GUARD_CELLS, iters=GUARD_ITERS, codegen="off"
    )
    return off_s / memo_s


def _multicore_run(timing, codegen="off"):
    """Wall-clock one fig16-style strong-scaling sweep in ``timing`` mode.

    Codegen is pinned off by default so the recorded scalar/columnar
    baseline keeps measuring the columnar batching alone; the codegen
    cell passes ``codegen="on"`` explicitly.
    """
    from repro.machine.multicore import MulticoreModel
    from repro.stencils.library import benchmark as stencil_benchmark

    runner = ExperimentRunner(LX2(), cache_dir=None, timing=timing, codegen=codegen)
    spec = stencil_benchmark(MC_GUARD_STENCIL)
    # Share the runner's engine so columnar plans/memos persist across the
    # sweep's slice heights — the configuration the fig16 bench runs with.
    mc = MulticoreModel(runner.machine, timing_engine=runner.engine)
    start = time.perf_counter()
    points = mc.strong_scaling(
        lambda rows: runner._build(MC_GUARD_METHOD, spec, (rows, MC_GUARD_SIZE)),
        MC_GUARD_SIZE,
        MC_GUARD_CORES,
        plan=MC_GUARD_PLAN,
    )
    seconds = time.perf_counter() - start
    return seconds, points


def _multicore_best(rounds=3):
    """Interleaved best-of-N multicore sweeps in both timing modes.

    Machine load inflates single wall-clock readings by tens of percent;
    alternating the two sides and keeping each side's best keeps the ratio
    near the noise-free value (load can slow a run, never speed one up).
    Also asserts the modes produce identical scaling points on every
    round, so the measurement doubles as an end-to-end multicore
    bit-identity check.
    """
    sca_s = col_s = None
    for _ in range(rounds):
        s, sca_pts = _multicore_run("scalar")
        c, col_pts = _multicore_run("columnar")
        assert [
            (p.cores, p.cycles, p.points, p.dram_bytes_per_core) for p in col_pts
        ] == [
            (p.cores, p.cycles, p.points, p.dram_bytes_per_core) for p in sca_pts
        ], "multicore sweep: scaling points diverge between timing modes"
        sca_s = s if sca_s is None else min(sca_s, s)
        col_s = c if col_s is None else min(col_s, c)
    return sca_s, col_s, sca_pts, col_pts


def _multicore_guard_speedup():
    """Scalar / columnar wall-clock ratio on the multicore guard sweep."""
    sca_s, col_s, _sca_pts, _col_pts = _multicore_best()
    return sca_s / col_s


def _codegen_guard_speedup(rounds=CODEGEN_GUARD_ROUNDS):
    """Interpreted / generated wall-clock ratio on the in-cache guard cells.

    Interleaved best-of-N with order alternation (load only slows a run
    down, never speeds one up), memo pinned off and scalar timing so the
    generated kernels are the only variable.  Every round asserts the two
    sides' counters are bit-identical, so the guard doubles as an
    end-to-end codegen correctness check.  Both sides run once unmeasured
    first so kernel generation and program-pool fills are off the clock.
    """
    def run(codegen):
        return _run_config(
            "compiled", "off", GUARD_CELLS, iters=GUARD_ITERS,
            timing="scalar", codegen=codegen,
        )

    run("off")
    run("on")
    off_s = on_s = None
    for rnd in range(rounds):
        order = ("off", "on") if rnd % 2 == 0 else ("on", "off")
        timings = {}
        counters = {}
        for codegen in order:
            timings[codegen], _, counters[codegen] = run(codegen)
        _assert_identical(GUARD_CELLS, counters["off"], counters["on"], "codegen guard")
        off_s = timings["off"] if off_s is None else min(off_s, timings["off"])
        on_s = timings["on"] if on_s is None else min(on_s, timings["on"])
    return off_s / on_s, off_s, on_s


def _codegen_multicore_speedup(rounds=2):
    """Interpreted / generated ratio on the fig16-style scalar walk sweep.

    Same interleaved best-of-N discipline; each round asserts the scaling
    points agree exactly between the two sides.
    """
    off_s = on_s = None
    for rnd in range(rounds):
        order = ("off", "on") if rnd % 2 == 0 else ("on", "off")
        timings = {}
        points = {}
        for codegen in order:
            s, pts = _multicore_run("scalar", codegen=codegen)
            timings[codegen] = s
            points[codegen] = [
                (p.cores, p.cycles, p.points, p.dram_bytes_per_core) for p in pts
            ]
        assert points["on"] == points["off"], (
            "codegen multicore: scaling points diverge from interpreted walk"
        )
        off_s = timings["off"] if off_s is None else min(off_s, timings["off"])
        on_s = timings["on"] if on_s is None else min(on_s, timings["on"])
    return off_s / on_s, off_s, on_s


def _ooc_guard_speedup(rounds=2):
    """Reference / columnar wall-clock ratio on the out-of-cache guard cell.

    Interleaved best-of-N like :func:`_multicore_best`: load can only slow
    a run down, so each side's minimum is the honest reading.  Also asserts
    bit-identity between the two sides on every round — the guard doubles
    as a cheap end-to-end columnar correctness check on a real large grid.
    """
    ref_s = col_s = None
    for _ in range(rounds):
        r, _, ref_counters = _run_config(
            "reference", "off", OOC_GUARD_CELLS, plan=OOC_GUARD_PLAN
        )
        c, _, col_counters = _run_config(
            "compiled", "pass", OOC_GUARD_CELLS, plan=OOC_GUARD_PLAN,
            timing="columnar", codegen="off",
        )
        _assert_identical(OOC_GUARD_CELLS, ref_counters, col_counters, "ooc guard")
        ref_s = r if ref_s is None else min(ref_s, r)
        col_s = c if col_s is None else min(col_s, c)
    return ref_s / col_s


def _fullgrid_exact_speedup(rounds=1):
    """Steady-off / steady-on wall-clock ratio on the exact full-grid cell.

    Interleaved best-of-N like the other guards (load only ever slows a
    run down).  Every round asserts the elided counters are bit-identical
    to the full band walk, and the final round's controller stats must
    show at least one engagement — the speedup is meaningless if elision
    sat out.  Returns ``(speedup, on_s, off_s, stats)``.
    """
    from repro.kernels.base import KernelOptions
    from repro.kernels.registry import make_kernel
    from repro.machine.memory import MemorySpace
    from repro.machine.timing import TimingEngine
    from repro.stencils.grid import Grid2D
    from repro.stencils.library import benchmark as stencil_benchmark

    spec = stencil_benchmark(OOC_STENCIL)

    def run(steady):
        config = LX2()
        mem = MemorySpace()
        rows, cols = OOC_SHAPE
        src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=11)
        dst = Grid2D(mem, rows, cols, spec.radius, "B")
        kernel = make_kernel(
            FULLGRID_METHOD, spec, src, dst, config, KernelOptions(unroll_j=2)
        )
        engine = TimingEngine(config, engine="compiled", steady=steady)
        start = time.perf_counter()
        counters = engine.run(kernel, sample=False, warm=False)
        return time.perf_counter() - start, counters.to_dict(), engine.steady_stats

    on_s = off_s = None
    for _ in range(rounds):
        o, on_counters, stats = run("on")
        f, off_counters, _ = run("off")
        assert on_counters == off_counters, (
            "fullgrid exact: steady elision diverged from the band walk"
        )
        on_s = o if on_s is None else min(on_s, o)
        off_s = f if off_s is None else min(off_s, f)
    assert stats.engaged >= 1, (
        f"fullgrid exact: elision never engaged (disabled={stats.disabled!r})"
    )
    return off_s / on_s, on_s, off_s, stats


def _aot_phase(machines, stencils, store_dir):
    """Precompile registry x machines x stencils; return compile-layer costs."""
    from repro.kernels.registry import METHODS as REGISTRY
    from repro.kernels.template import compile_stats, reset_compile_stats
    from repro.machine.artifacts import install_artifact_store
    from repro.machine.compiled import clear_program_pool, program_pool_stats

    install_artifact_store(str(store_dir))
    clear_program_pool(reset_stats=True)
    reset_compile_stats()
    built = 0
    start = time.perf_counter()
    for config in machines:
        runner = ExperimentRunner(config, cache_dir=None, artifact_dir=str(store_dir))
        for stencil in stencils:
            for method in sorted(REGISTRY):
                try:
                    runner.precompile_cell(method, stencil, SHAPE)
                    built += 1
                except ValueError:
                    continue  # method inapplicable on this machine
    wall = time.perf_counter() - start
    stats = compile_stats()
    pool = program_pool_stats()
    return {
        "wall_seconds": wall,
        "fit_seconds": stats["fit_seconds"],
        "lower_seconds": pool["build_seconds"],
        "verify_seconds": stats["verify_seconds"],
        "verify_emits": stats["verify_emits"],
        "verify_memo_hits": stats["verify_memo_hits"],
        "compiled_classes": stats["compiled_classes"],
        "loaded_classes": stats["loaded_classes"],
        "cells": built,
    }


def _aot_coldstart(stencils, store_dir, machines=None):
    """Cold-vs-warm AOT precompile sweep; returns (cold, warm, ratio).

    ``ratio`` is cold over warm fitting+lowering seconds with the
    denominator floored at 1 ms (a fully warm store spends exactly zero
    there).  The process-wide store and pools are restored afterwards so
    the measurement cannot warm any other benchmark in this process.
    """
    from repro.kernels.template import reset_compile_stats
    from repro.machine.artifacts import install_artifact_store
    from repro.machine.compiled import clear_program_pool
    from repro.machine.config import M4

    machines = machines if machines is not None else [LX2(), M4()]
    try:
        cold = _aot_phase(machines, stencils, store_dir)
        warm = _aot_phase(machines, stencils, store_dir)
    finally:
        install_artifact_store(None)
        clear_program_pool(reset_stats=True)
        reset_compile_stats()
    cold_cl = cold["fit_seconds"] + cold["lower_seconds"]
    warm_cl = warm["fit_seconds"] + warm["lower_seconds"]
    return cold, warm, cold_cl / max(warm_cl, 1e-3)


def _service_throughput(cache_dir, requests=SERVICE_REQUESTS):
    """Warm-pool service vs fork-per-sweep requests/sec on a mixed workload.

    Both sides serve ``requests`` identical jobs from a pre-warmed disk
    cache, so neither pays first-ever simulation cost: the baseline pays a
    fresh worker pool (and its runner re-warm) per request, the service
    pays one pool for all of them and coalesces identical in-flight
    cells.  Returns ``(baseline_s, service_s, counters)``.
    """
    import asyncio

    from repro.bench.parallel import run_cells
    from repro.service.engine import StencilService

    cache_dir = str(cache_dir)
    run_cells(SERVICE_CELLS, machine=LX2(), cache_dir=cache_dir, jobs=1)

    start = time.perf_counter()
    for _ in range(requests):
        results = run_cells(
            SERVICE_CELLS, machine=LX2(), cache_dir=cache_dir, jobs=SERVICE_WORKERS
        )
        assert all(r.ok for r in results)
    baseline_s = time.perf_counter() - start

    service = StencilService(workers=SERVICE_WORKERS, cache_dir=cache_dir)
    lanes = ("interactive", "batch")

    async def drive():
        async with service:
            jobs = [
                await service.submit(SERVICE_CELLS, lane=lanes[i % len(lanes)])
                for i in range(requests)
            ]
            for job in jobs:
                assert all(r.ok for r in await job.results())

    start = time.perf_counter()
    asyncio.run(drive())
    service_s = time.perf_counter() - start
    # Coalescing contract: R identical concurrent requests collapse onto
    # one in-flight task per distinct cell, and nothing re-simulates — the
    # warm cache serves every dispatched cell.
    assert service.counters["simulated"] == 0
    assert service.counters["dispatched"] <= len(SERVICE_CELLS)
    return baseline_s, service_s, dict(service.counters)


@contextmanager
def _memo_mode(mode):
    """Temporarily pin ``REPRO_MEMO`` (None restores the ambient default)."""
    saved = os.environ.get("REPRO_MEMO")
    try:
        if mode is None:
            os.environ.pop("REPRO_MEMO", None)
        else:
            os.environ["REPRO_MEMO"] = mode
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_MEMO", None)
        else:
            os.environ["REPRO_MEMO"] = saved


def _run_config(engine, memo, cells, iters=1, timing=None, plan=None, codegen=None):
    """Simulate every cell with one configuration; return timing + counters.

    ``codegen=None`` keeps the ambient default (``REPRO_CODEGEN``, normally
    ``"on"``); runs that serve as recorded-baseline denominators pin
    ``"off"`` explicitly so the feature under test cannot redefine them.
    """
    with _memo_mode(memo):
        runner = ExperimentRunner(
            LX2(), cache_dir=None, engine=engine, timing=timing, codegen=codegen
        )
        start = time.perf_counter()
        results = {cell: runner.measure(*cell, plan=plan, iters=iters) for cell in cells}
        seconds = time.perf_counter() - start
    counters = {cell: m.counters.to_dict() for cell, m in results.items()}
    instructions = sum(m.counters.instructions for m in results.values())
    return seconds, instructions, counters


def _assert_identical(cells, baseline, other, label):
    mismatched = [cell for cell in cells if baseline[cell] != other[cell]]
    assert mismatched == [], f"{label}: counters diverge on {mismatched}"


def test_simspeed_workloads(benchmark, tmp_path):
    cells = [(m, name, SHAPE) for name in SUITE_2D for m in METHODS]

    # -- in-cache, iters=16: reference and pre-memoization compiled --------
    ref_s, ref_ins, ref_counters = _run_config(
        "reference", "off", cells, iters=MEMO_ITERS
    )
    # Scalar timing pins the historical pre-memoization baseline; the
    # columnar run measures the first-pass in-cache batching on its own.
    off_s, off_ins, off_counters = _run_config(
        "compiled", "off", cells, iters=MEMO_ITERS, timing="scalar", codegen="off"
    )
    col_off_s, col_off_ins, col_off_counters = _run_config(
        "compiled", "off", cells, iters=MEMO_ITERS, timing="columnar", codegen="off"
    )
    # Same memo-off scalar workload with the generated kernels dispatching:
    # the codegen-off run above is the interpreted-replay denominator.
    cg_on_s, cg_on_ins, cg_on_counters = _run_config(
        "compiled", "off", cells, iters=MEMO_ITERS, timing="scalar", codegen="on"
    )

    # -- in-cache, iters=16: compiled + pass memo (the benchmarked engine) --
    def compiled_memo():
        return _run_config("compiled", "pass", cells, iters=MEMO_ITERS)

    memo_s, memo_ins, memo_counters = benchmark.pedantic(
        compiled_memo, rounds=1, iterations=1, warmup_rounds=0
    )

    # Bit-identity: same instructions simulated, same counters everywhere.
    assert memo_ins == ref_ins == off_ins == col_off_ins == cg_on_ins
    _assert_identical(cells, ref_counters, off_counters, "compiled/off vs reference")
    _assert_identical(
        cells, ref_counters, col_off_counters, "compiled/off columnar vs reference"
    )
    _assert_identical(cells, ref_counters, memo_counters, "compiled/pass vs reference")
    _assert_identical(cells, ref_counters, cg_on_counters, "codegen vs reference")

    # -- out-of-cache, band-sampled: reference vs both replay modes --------
    ooc_cells = [(m, OOC_STENCIL, OOC_SHAPE) for m in OOC_METHODS]
    ooc_ref_s, ooc_ref_ins, ooc_ref_counters = _run_config("reference", "off", ooc_cells)
    ooc_sca_s, ooc_sca_ins, ooc_sca_counters = _run_config(
        "compiled", "pass", ooc_cells, timing="scalar"
    )
    ooc_col_s, ooc_col_ins, ooc_col_counters = _run_config(
        "compiled", "pass", ooc_cells, timing="columnar"
    )
    assert ooc_sca_ins == ooc_col_ins == ooc_ref_ins
    _assert_identical(ooc_cells, ooc_ref_counters, ooc_sca_counters, "out-of-cache scalar")
    _assert_identical(ooc_cells, ooc_ref_counters, ooc_col_counters, "out-of-cache columnar")

    # -- full-grid exact run: steady-state elision vs full band walk -------
    fg_speedup, fg_on_s, fg_off_s, fg_stats = _fullgrid_exact_speedup(rounds=2)

    # -- multicore (fig16-style) sweep: scalar vs columnar wall-clock ------
    mc_sca_s, mc_col_s, mc_sca_pts, mc_col_pts = _multicore_best()
    mc_speedup = mc_sca_s / mc_col_s

    # -- codegen: generated kernels vs interpreted replay ------------------
    cg_speedup = off_s / cg_on_s
    cg_mc_speedup, cg_mc_off_s, cg_mc_on_s = _codegen_multicore_speedup()

    # -- AOT artifact store: cold vs warm precompile of the registry -------
    aot_cold, aot_warm, aot_ratio = _aot_coldstart(SUITE_2D, tmp_path / "aot")

    # -- stencil service: warm-pool vs fork-per-sweep requests/sec ---------
    svc_base_s, svc_s, svc_counters = _service_throughput(tmp_path / "svc")
    svc_speedup = svc_base_s / svc_s

    # -- CI regression-guard baselines -------------------------------------
    guard_speedup = _guard_speedup()
    ooc_guard_speedup = _ooc_guard_speedup()

    speedup_vs_ref = ref_s / memo_s
    speedup_vs_off = off_s / memo_s
    incache_col_speedup = off_s / col_off_s
    ooc_speedup = ooc_ref_s / ooc_col_s
    ooc_speedup_scalar = ooc_ref_s / ooc_sca_s
    rows = {
        "reference": {
            "wall s": f"{ref_s:.2f}",
            "sim ins": f"{ref_ins:,}",
            "ins/s": f"{ref_ins / ref_s:,.0f}",
        },
        "compiled (memo off, scalar)": {
            "wall s": f"{off_s:.2f}",
            "sim ins": f"{off_ins:,}",
            "ins/s": f"{off_ins / off_s:,.0f}",
        },
        "compiled (memo off, columnar)": {
            "wall s": f"{col_off_s:.2f}",
            "sim ins": f"{col_off_ins:,}",
            "ins/s": f"{col_off_ins / col_off_s:,.0f}",
        },
        "compiled (pass memo)": {
            "wall s": f"{memo_s:.2f}",
            "sim ins": f"{memo_ins:,}",
            "ins/s": f"{memo_ins / memo_s:,.0f}",
        },
    }
    report(
        "simspeed",
        format_metric_table(
            f"Simulator throughput (fig12 in-cache workload, iters={MEMO_ITERS})", rows
        )
        + f"\npass-memo vs memo-off wall-clock speedup: {speedup_vs_off:.2f}x "
        f"(target >= {SPEEDUP_TARGET_VS_COMPILED:.0f}x)"
        + f"\npass-memo vs reference wall-clock speedup: {speedup_vs_ref:.2f}x "
        f"(target >= {SPEEDUP_TARGET_VS_REFERENCE:.0f}x)"
        + f"\nin-cache columnar first-pass batching (memo off, scalar vs "
        f"columnar): {incache_col_speedup:.2f}x "
        f"(target >= {INCACHE_COLUMNAR_TARGET:.1f}x)"
        + f"\nout-of-cache sampled workload: columnar {ooc_col_s:.2f}s / "
        f"scalar {ooc_sca_s:.2f}s vs reference {ooc_ref_s:.2f}s "
        f"(columnar {ooc_speedup:.2f}x, target >= {OOC_SPEEDUP_TARGET:.1f}x; "
        f"scalar {ooc_speedup_scalar:.2f}x)"
        + f"\nout-of-cache guard cell (amortized, "
        f"{OOC_GUARD_PLAN.min_measure_points:,} points): "
        f"{ooc_guard_speedup:.2f}x vs reference "
        f"(target >= {OOC_GUARD_SPEEDUP_TARGET:.1f}x)"
        + f"\nfull-grid exact run ({FULLGRID_METHOD} {OOC_STENCIL} "
        f"{OOC_SHAPE[0]}x{OOC_SHAPE[1]}, every band): steady elision "
        f"{fg_on_s:.2f}s vs full walk {fg_off_s:.2f}s ({fg_speedup:.2f}x, "
        f"target >= {FULLGRID_SPEEDUP_TARGET:.0f}x; "
        f"{fg_stats.elided_bands} bands elided, bit-identical)"
        + f"\nfig16-style multicore sweep ({MC_GUARD_STENCIL} "
        f"{MC_GUARD_SIZE}^2, cores {MC_GUARD_CORES}): columnar {mc_col_s:.2f}s "
        f"vs scalar {mc_sca_s:.2f}s ({mc_speedup:.2f}x, "
        f"target >= {MC_SPEEDUP_TARGET:.1f}x)"
        + f"\ncodegen kernels, in-cache memo-off scalar workload: generated "
        f"{cg_on_s:.2f}s vs interpreted {off_s:.2f}s ({cg_speedup:.2f}x, "
        f"floor >= {CODEGEN_INCACHE_TARGET:.1f}x, issue aspiration "
        f"{CODEGEN_INCACHE_ASPIRATION:.1f}x)"
        + f"\ncodegen kernels, multicore scalar walk: generated "
        f"{cg_mc_on_s:.2f}s vs interpreted {cg_mc_off_s:.2f}s "
        f"({cg_mc_speedup:.2f}x, target >= {CODEGEN_MC_TARGET:.1f}x)"
        + f"\nAOT artifact store cold start (registry x LX2/M4 x fig12 "
        f"suite): cold {aot_cold['wall_seconds']:.1f}s wall "
        f"({aot_cold['fit_seconds'] + aot_cold['lower_seconds']:.2f}s "
        f"fit+lower, {aot_cold['compiled_classes']} classes) vs warm "
        f"{aot_warm['wall_seconds']:.1f}s wall "
        f"({aot_warm['fit_seconds'] + aot_warm['lower_seconds']:.2f}s "
        f"fit+lower, {aot_warm['verify_seconds']:.2f}s probe-on-load "
        f"verification) — fit+lower ratio {aot_ratio:.0f}x "
        f"(target >= {AOT_SPEEDUP_TARGET:.0f}x)"
        + f"\nstencil service throughput ({SERVICE_REQUESTS} warm-cache "
        f"mixed-lane requests x {len(SERVICE_CELLS)} cells): persistent pool "
        f"{svc_s:.2f}s vs fork-per-sweep {svc_base_s:.2f}s ({svc_speedup:.1f}x "
        f"requests/sec, target >= {SERVICE_THROUGHPUT_TARGET:.0f}x; "
        f"{svc_counters['coalesced_inflight'] + svc_counters['memo_hits']} of "
        f"{svc_counters['cells']} cells coalesced)",
    )
    bench_artifact(
        "simspeed",
        extra={
            "engines": list(ENGINES),
            "timing_modes": list(TIMING_MODES),
            "workload": {
                "methods": METHODS,
                "stencils": SUITE_2D,
                "shape": list(SHAPE),
                "iters": MEMO_ITERS,
                "machine": "LX2",
            },
            "reference": {"seconds": ref_s, "instructions": ref_ins},
            "compiled_memo_off": {
                "seconds": off_s,
                "instructions": off_ins,
                "timing": "scalar",
            },
            "compiled_memo_off_columnar": {
                "seconds": col_off_s,
                "instructions": col_off_ins,
                "timing": "columnar",
            },
            "compiled_pass_memo": {"seconds": memo_s, "instructions": memo_ins},
            "instructions_per_second": {
                "reference": ref_ins / ref_s,
                "compiled_memo_off": off_ins / off_s,
                "compiled_memo_off_columnar": col_off_ins / col_off_s,
                "compiled_pass_memo": memo_ins / memo_s,
            },
            "speedup_vs_reference": speedup_vs_ref,
            "speedup_vs_compiled_memo_off": speedup_vs_off,
            "incache_columnar_speedup": incache_col_speedup,
            "speedup_target_vs_reference": SPEEDUP_TARGET_VS_REFERENCE,
            "speedup_target_vs_compiled_memo_off": SPEEDUP_TARGET_VS_COMPILED,
            "incache_columnar_speedup_target": INCACHE_COLUMNAR_TARGET,
            "regression_guard": {
                "cells": [list(c[:2]) + [list(c[2])] for c in GUARD_CELLS],
                "iters": GUARD_ITERS,
                "speedup": guard_speedup,
                "slack": GUARD_SLACK,
            },
            "out_of_cache": {
                "methods": OOC_METHODS,
                "stencil": OOC_STENCIL,
                "shape": list(OOC_SHAPE),
                "sampled": True,
                "reference": {"seconds": ooc_ref_s, "instructions": ooc_ref_ins},
                "compiled_scalar": {"seconds": ooc_sca_s, "instructions": ooc_sca_ins},
                "compiled_columnar": {"seconds": ooc_col_s, "instructions": ooc_col_ins},
                "speedup": ooc_speedup,
                "speedup_scalar": ooc_speedup_scalar,
                "speedup_target": OOC_SPEEDUP_TARGET,
            },
            "ooc_guard": {
                "cells": [list(c[:2]) + [list(c[2])] for c in OOC_GUARD_CELLS],
                "min_measure_points": OOC_GUARD_PLAN.min_measure_points,
                "speedup": ooc_guard_speedup,
                "speedup_target": OOC_GUARD_SPEEDUP_TARGET,
                "slack": GUARD_SLACK,
            },
            "fullgrid_exact": {
                "method": FULLGRID_METHOD,
                "stencil": OOC_STENCIL,
                "shape": list(OOC_SHAPE),
                "sampled": False,
                "steady_on_seconds": fg_on_s,
                "steady_off_seconds": fg_off_s,
                "speedup": fg_speedup,
                "speedup_target": FULLGRID_SPEEDUP_TARGET,
                "guard_speedup_target": FULLGRID_GUARD_SPEEDUP_TARGET,
                "steady_stats": fg_stats.to_dict(),
            },
            "codegen": {
                "incache": {
                    "interpreted_seconds": off_s,
                    "generated_seconds": cg_on_s,
                    "speedup": cg_speedup,
                    "speedup_target": CODEGEN_INCACHE_TARGET,
                    "issue_aspiration": CODEGEN_INCACHE_ASPIRATION,
                },
                "multicore_scalar": {
                    "interpreted_seconds": cg_mc_off_s,
                    "generated_seconds": cg_mc_on_s,
                    "speedup": cg_mc_speedup,
                    "speedup_target": CODEGEN_MC_TARGET,
                },
                "slack": GUARD_SLACK,
            },
            "multicore": {
                "method": MC_GUARD_METHOD,
                "stencil": MC_GUARD_STENCIL,
                "size": MC_GUARD_SIZE,
                "cores": MC_GUARD_CORES,
                "min_measure_points": MC_GUARD_PLAN.min_measure_points,
                "scalar_seconds": mc_sca_s,
                "columnar_seconds": mc_col_s,
                "speedup": mc_speedup,
                "speedup_target": MC_SPEEDUP_TARGET,
            },
            "aot_coldstart": {
                "stencils": SUITE_2D,
                "shape": list(SHAPE),
                "machines": ["LX2", "M4"],
                "cold": aot_cold,
                "warm": aot_warm,
                "fit_lower_ratio": aot_ratio,
                "wall_ratio": aot_cold["wall_seconds"] / aot_warm["wall_seconds"],
                "speedup_target": AOT_SPEEDUP_TARGET,
            },
            "service_throughput": {
                "cells": [list(c[:2]) + [list(c[2])] for c in SERVICE_CELLS],
                "requests": SERVICE_REQUESTS,
                "workers": SERVICE_WORKERS,
                "fork_per_sweep_seconds": svc_base_s,
                "service_seconds": svc_s,
                "speedup": svc_speedup,
                "speedup_target": SERVICE_THROUGHPUT_TARGET,
                "counters": svc_counters,
            },
            "multicore_guard": {
                "method": MC_GUARD_METHOD,
                "stencil": MC_GUARD_STENCIL,
                "size": MC_GUARD_SIZE,
                "cores": MC_GUARD_CORES,
                "min_measure_points": MC_GUARD_PLAN.min_measure_points,
                "speedup": mc_speedup,
                "slack": GUARD_SLACK,
            },
            "bit_identical": True,
        },
    )
    assert speedup_vs_off >= SPEEDUP_TARGET_VS_COMPILED
    assert speedup_vs_ref >= SPEEDUP_TARGET_VS_REFERENCE
    assert incache_col_speedup >= INCACHE_COLUMNAR_TARGET
    assert ooc_speedup >= OOC_SPEEDUP_TARGET
    assert fg_speedup >= FULLGRID_SPEEDUP_TARGET
    assert ooc_guard_speedup >= OOC_GUARD_SPEEDUP_TARGET
    assert mc_speedup >= MC_SPEEDUP_TARGET
    assert cg_speedup >= CODEGEN_INCACHE_TARGET
    assert cg_mc_speedup >= CODEGEN_MC_TARGET
    assert aot_warm["compiled_classes"] == 0, "warm store still compiled live"
    assert aot_ratio >= AOT_SPEEDUP_TARGET
    assert svc_speedup >= SERVICE_THROUGHPUT_TARGET


def test_smoke_simspeed_engines_agree():
    """One small cell per engine: identical counters, artifact fields sane."""
    cell = ("hstencil", "star2d5p", (32, 32))
    timings = {}
    counters = {}
    for engine in ENGINES:
        runner = ExperimentRunner(LX2(), cache_dir=None, engine=engine)
        start = time.perf_counter()
        counters[engine] = runner.measure(*cell).counters.to_dict()
        timings[engine] = time.perf_counter() - start
    assert counters["compiled"] == counters["reference"]
    assert all(s > 0 for s in timings.values())


def test_smoke_simspeed_memo_modes_agree():
    """All REPRO_MEMO modes produce bit-identical iterated counters."""
    cell = ("hstencil", "star2d5p", (64, 64))
    counters = {}
    for memo in ("off", "block", "pass", "full"):
        seconds, instructions, by_cell = _run_config("compiled", memo, [cell], iters=4)
        counters[memo] = by_cell[cell]
    baseline = counters["off"]
    assert all(c == baseline for c in counters.values())


def test_smoke_simspeed_wallclock_guard():
    """CI wall-clock regression guard (>25% degradation fails).

    Re-measures the small guard workload and compares its memo-off /
    pass-memo speedup ratio against the one the committed
    ``BENCH_simspeed.json`` records.  The ratio is taken between two runs
    in the same process on the same machine, so it transfers across
    hardware; raw seconds would not.
    """
    import json

    try:
        recorded = json.loads(open(_RESULTS_JSON).read())["regression_guard"]
    except (OSError, ValueError, KeyError):
        import pytest

        pytest.skip("no recorded regression_guard baseline in BENCH_simspeed.json")
    measured = _guard_speedup()
    floor = recorded["speedup"] * (1.0 - recorded.get("slack", GUARD_SLACK))
    assert measured >= floor, (
        f"pass-memo wall-clock speedup regressed: measured {measured:.2f}x, "
        f"recorded {recorded['speedup']:.2f}x, floor {floor:.2f}x"
    )


def test_smoke_simspeed_ooc_wallclock_guard():
    """CI wall-clock guard for the out-of-cache columnar replay path.

    Re-measures the reference / columnar speedup ratio on the sampled
    out-of-cache guard cell and compares it against the baseline the
    committed ``BENCH_simspeed.json`` records, with the usual slack.  Like
    the in-cache guard, the ratio of two same-process runs transfers
    across machines; raw seconds would not.
    """
    import json

    try:
        recorded = json.loads(open(_RESULTS_JSON).read())["ooc_guard"]
    except (OSError, ValueError, KeyError):
        import pytest

        pytest.skip("no recorded ooc_guard baseline in BENCH_simspeed.json")
    measured = _ooc_guard_speedup()
    floor = recorded["speedup"] * (1.0 - recorded.get("slack", GUARD_SLACK))
    # The recorded baseline never lets the floor drop below the hard target
    # (raised from the pre-columnar 4.5x): a "passing" regression guard must
    # still mean the columnar path beats the reference walk by >= 8x.
    if floor < OOC_GUARD_SPEEDUP_TARGET:
        floor = OOC_GUARD_SPEEDUP_TARGET
    assert measured >= floor, (
        f"out-of-cache columnar speedup regressed: measured {measured:.2f}x, "
        f"recorded {recorded['speedup']:.2f}x, floor {floor:.2f}x"
    )


def test_smoke_simspeed_fullgrid_exact_guard():
    """CI guard for band-periodic steady-state elision on exact runs.

    One exact (every-band) 2048^2 out-of-cache pass, steady elision vs the
    full band walk, in the same process.  Needs no recorded baseline: the
    same-process wall-clock ratio transfers across hardware, and the
    helper already asserts bit-identity and that elision actually
    engaged.  The floor sits under the ~7-8x measured cold speedup (a
    warm artifact store serves the persisted period record and lands
    ~10x, which only raises the measured side).
    """
    speedup, on_s, off_s, stats = _fullgrid_exact_speedup(rounds=1)
    assert speedup >= FULLGRID_GUARD_SPEEDUP_TARGET, (
        f"steady-state elision speedup {speedup:.2f}x below floor "
        f"{FULLGRID_GUARD_SPEEDUP_TARGET:.0f}x (elided {on_s:.2f}s, "
        f"full walk {off_s:.2f}s, {stats.elided_bands} bands elided)"
    )


def test_smoke_simspeed_multicore_wallclock_guard():
    """CI wall-clock guard for the fig16-style multicore columnar path.

    Re-measures the scalar / columnar speedup ratio on the strong-scaling
    guard sweep and compares it against the baseline the committed
    ``BENCH_simspeed.json`` records, with the usual slack.  The helper also
    asserts the two modes' scaling points agree exactly, so the guard
    doubles as an end-to-end multicore bit-identity check.
    """
    import json

    try:
        recorded = json.loads(open(_RESULTS_JSON).read())["multicore_guard"]
    except (OSError, ValueError, KeyError):
        import pytest

        pytest.skip("no recorded multicore_guard baseline in BENCH_simspeed.json")
    measured = _multicore_guard_speedup()
    floor = recorded["speedup"] * (1.0 - recorded.get("slack", GUARD_SLACK))
    assert measured >= floor, (
        f"multicore columnar speedup regressed: measured {measured:.2f}x, "
        f"recorded {recorded['speedup']:.2f}x, floor {floor:.2f}x"
    )


def test_smoke_simspeed_codegen_incache_guard(tmp_path):
    """CI guard for the template-specialized codegen backend.

    Needs no recorded baseline: the interpreted / generated ratio is
    taken between interleaved same-process runs on the guard cells with
    memo pinned off, so it transfers across hardware, and the helper
    asserts bit-identical counters on every round.  The floor sits under
    the measured ~1.2-1.25x in-cache ratio (the issue's 1.6x aspiration
    is tracked in the full artifact); a demotion storm or a generated
    kernel losing to the interpreter drops the ratio to <= 1.0 and fails
    far below it.

    The second half pins the AOT pooling contract: after a cold run
    against a fresh store, a fresh process-equivalent (cleared pools and
    counters) must serve every shape class from the store with *zero*
    live generations and no demotions.
    """
    from repro.machine.artifacts import install_artifact_store
    from repro.machine.codegen import codegen_stats, reset_codegen_stats
    from repro.machine.compiled import clear_program_pool

    speedup, off_s, on_s = _codegen_guard_speedup()
    assert speedup >= CODEGEN_INCACHE_TARGET, (
        f"codegen speedup {speedup:.2f}x below floor "
        f"{CODEGEN_INCACHE_TARGET:.1f}x (interpreted {off_s:.2f}s, "
        f"generated {on_s:.2f}s)"
    )

    try:
        install_artifact_store(str(tmp_path))
        clear_program_pool(reset_stats=True)
        reset_codegen_stats()
        _, _, cold_counters = _run_config(
            "compiled", "off", GUARD_CELLS, timing="scalar", codegen="on"
        )
        cold = codegen_stats()
        assert cold["generated"] >= 1
        assert cold["store_writes"] == cold["generated"]
        clear_program_pool(reset_stats=True)
        reset_codegen_stats()
        _, _, warm_counters = _run_config(
            "compiled", "off", GUARD_CELLS, timing="scalar", codegen="on"
        )
        warm = codegen_stats()
        _assert_identical(GUARD_CELLS, cold_counters, warm_counters, "codegen warm load")
        assert warm["generated"] == 0, (
            f"warm store still generated {warm['generated']} kernels live"
        )
        assert warm["loaded"] == cold["generated"]
        assert warm["demoted"] == 0 and warm["exec_failed"] == 0
    finally:
        install_artifact_store(None)
        clear_program_pool(reset_stats=True)
        reset_codegen_stats()


def test_smoke_simspeed_aot_coldstart_guard(tmp_path):
    """Cold-vs-warm guard cell for the AOT compiled-artifact store.

    Precompiles the full kernel registry over a two-stencil LX2 subset of
    the fig12 workload against an empty store, then repeats against the
    populated store.  Unlike the other wall-clock guards this one needs no
    recorded baseline: a correct warm run spends *exactly zero* seconds in
    template fitting and program lowering (every class deserializes, every
    program is a store hit), so the assertions are deterministic — any
    regression in the store shows up as live compiles, not as noise.
    """
    cold, warm, ratio = _aot_coldstart(
        AOT_GUARD_STENCILS, tmp_path, machines=[LX2()]
    )
    assert cold["compiled_classes"] >= 1 and cold["cells"] >= 1
    assert warm["compiled_classes"] == 0, (
        f"warm store still compiled {warm['compiled_classes']} classes live"
    )
    assert warm["loaded_classes"] == cold["compiled_classes"]
    assert ratio >= AOT_SPEEDUP_TARGET, (
        f"AOT cold-start fit+lower ratio {ratio:.1f}x "
        f"below target {AOT_SPEEDUP_TARGET:.0f}x "
        f"(cold {cold['fit_seconds'] + cold['lower_seconds']:.3f}s, "
        f"warm {warm['fit_seconds'] + warm['lower_seconds']:.3f}s)"
    )
    # The probe-on-load memo must absorb the repeats: identical class
    # entries (cross-method shared emissions) verify once per process, so
    # warm live probe emits stay strictly below one per loaded class.
    assert warm["verify_memo_hits"] >= 1, "probe-verify memo never hit"
    assert warm["verify_emits"] < warm["loaded_classes"], (
        f"probe-verify memo ineffective: {warm['verify_emits']} live emits "
        f"for {warm['loaded_classes']} loaded classes"
    )
    wall_ratio = cold["wall_seconds"] / warm["wall_seconds"]
    assert wall_ratio >= AOT_WALL_RATIO_TARGET, (
        f"AOT cold-start wall ratio {wall_ratio:.2f}x below target "
        f"{AOT_WALL_RATIO_TARGET:.1f}x (cold {cold['wall_seconds']:.2f}s, "
        f"warm {warm['wall_seconds']:.2f}s — warm verification cost crept up?)"
    )


def test_smoke_simspeed_service_throughput_guard(tmp_path):
    """Warm-pool service vs fork-per-sweep floor (the issue's 3x criterion).

    Like the AOT guard this needs no recorded baseline: both sides run in
    the same process on the same machine, so the requests/sec ratio
    transfers across hardware.  The coalescing counters are asserted
    inside :func:`_service_throughput` — identical concurrent requests
    dispatch at most one task per distinct cell and re-simulate nothing.
    """
    base_s, svc_s, counters = _service_throughput(
        tmp_path, requests=SERVICE_SMOKE_REQUESTS
    )
    speedup = base_s / svc_s
    assert counters["coalesced_inflight"] + counters["memo_hits"] >= (
        (SERVICE_SMOKE_REQUESTS - 1) * len(SERVICE_CELLS)
    )
    assert speedup >= SERVICE_THROUGHPUT_TARGET, (
        f"service throughput {speedup:.2f}x below target "
        f"{SERVICE_THROUGHPUT_TARGET:.0f}x (fork-per-sweep {base_s:.2f}s, "
        f"warm pool {svc_s:.2f}s for {SERVICE_SMOKE_REQUESTS} requests)"
    )


def test_smoke_simspeed_disk_cache_is_engine_agnostic(tmp_path):
    """A cell simulated by one engine is served from disk to the other.

    The disk-cache key deliberately omits the engine: the engines are
    bit-identical, so sharing entries is sound and halves cold-cache cost.
    """
    cell = ("auto", "box2d9p", (32, 32))
    first = ExperimentRunner(LX2(), cache_dir=tmp_path, engine="reference")
    a = first.measure(*cell)
    assert first.provenance(*cell) == "simulated"
    second = ExperimentRunner(LX2(), cache_dir=tmp_path, engine="compiled")
    b = second.measure(*cell)
    assert second.provenance(*cell) == "disk"
    assert a.counters.to_dict() == b.counters.to_dict()
