"""Simulator throughput — reference object walk vs compiled template replay.

Runs the Figure 12 in-cache 2D workload (128x128, full simulation with a
warm pass) through both engines of :class:`repro.machine.timing.TimingEngine`
and reports simulated instructions per wall-clock second.  Both engines are
driven cold (no disk cache): the point is simulation speed, not cache hits.
Every cell is also checked for the bit-identity contract — identical
:class:`PerfCounters` from both engines — so the speedup is never bought
with accuracy.

Artifacts: ``benchmarks/results/BENCH_simspeed.json`` plus the usual
terminal table.  Target: the compiled engine simulates the workload >= 5x
faster than the reference walk.
"""

import time

from conftest import bench_artifact, report

from repro.bench.report import format_metric_table
from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2
from repro.machine.timing import ENGINES

METHODS = ["vector-only", "matrix-only", "hstencil", "auto"]
SHAPE = (128, 128)
SUITE_2D = ["star2d5p", "star2d9p", "star2d13p", "box2d9p", "box2d25p", "box2d49p", "heat2d"]

SPEEDUP_TARGET = 5.0


def _run_engine(engine, cells):
    """Simulate every cell with one engine; return (seconds, counter dicts)."""
    runner = ExperimentRunner(LX2(), cache_dir=None, engine=engine)
    start = time.perf_counter()
    results = {cell: runner.measure(*cell) for cell in cells}
    seconds = time.perf_counter() - start
    counters = {cell: m.counters.to_dict() for cell, m in results.items()}
    instructions = sum(m.counters.instructions for m in results.values())
    return seconds, instructions, counters


def test_simspeed_fig12_workload(benchmark):
    cells = [(m, name, SHAPE) for name in SUITE_2D for m in METHODS]

    ref_s, ref_ins, ref_counters = _run_engine("reference", cells)

    def compiled():
        return _run_engine("compiled", cells)

    cmp_s, cmp_ins, cmp_counters = benchmark.pedantic(
        compiled, rounds=1, iterations=1, warmup_rounds=0
    )

    # Bit-identity: same instructions simulated, same counters everywhere.
    assert cmp_ins == ref_ins
    mismatched = [cell for cell in cells if ref_counters[cell] != cmp_counters[cell]]
    assert mismatched == []

    speedup = ref_s / cmp_s
    rows = {
        "reference": {
            "wall s": f"{ref_s:.2f}",
            "sim ins": f"{ref_ins:,}",
            "ins/s": f"{ref_ins / ref_s:,.0f}",
        },
        "compiled": {
            "wall s": f"{cmp_s:.2f}",
            "sim ins": f"{cmp_ins:,}",
            "ins/s": f"{cmp_ins / cmp_s:,.0f}",
        },
    }
    report(
        "simspeed",
        format_metric_table("Simulator throughput (fig12 in-cache workload)", rows)
        + f"\ncompiled vs reference wall-clock speedup: {speedup:.2f}x "
        f"(target >= {SPEEDUP_TARGET:.0f}x)",
    )
    bench_artifact(
        "simspeed",
        extra={
            "engines": list(ENGINES),
            "workload": {
                "methods": METHODS,
                "stencils": SUITE_2D,
                "shape": list(SHAPE),
                "machine": "LX2",
            },
            "reference": {"seconds": ref_s, "instructions": ref_ins},
            "compiled": {"seconds": cmp_s, "instructions": cmp_ins},
            "instructions_per_second": {
                "reference": ref_ins / ref_s,
                "compiled": cmp_ins / cmp_s,
            },
            "speedup": speedup,
            "speedup_target": SPEEDUP_TARGET,
            "bit_identical": True,
        },
    )
    assert speedup >= SPEEDUP_TARGET


def test_smoke_simspeed_engines_agree():
    """One small cell per engine: identical counters, artifact fields sane."""
    cell = ("hstencil", "star2d5p", (32, 32))
    timings = {}
    counters = {}
    for engine in ENGINES:
        runner = ExperimentRunner(LX2(), cache_dir=None, engine=engine)
        start = time.perf_counter()
        counters[engine] = runner.measure(*cell).counters.to_dict()
        timings[engine] = time.perf_counter() - start
    assert counters["compiled"] == counters["reference"]
    assert all(s > 0 for s in timings.values())


def test_smoke_simspeed_disk_cache_is_engine_agnostic(tmp_path):
    """A cell simulated by one engine is served from disk to the other.

    The disk-cache key deliberately omits the engine: the engines are
    bit-identical, so sharing entries is sound and halves cold-cache cost.
    """
    cell = ("auto", "box2d9p", (32, 32))
    first = ExperimentRunner(LX2(), cache_dir=tmp_path, engine="reference")
    a = first.measure(*cell)
    assert first.provenance(*cell) == "simulated"
    second = ExperimentRunner(LX2(), cache_dir=tmp_path, engine="compiled")
    b = second.measure(*cell)
    assert second.provenance(*cell) == "disk"
    assert a.counters.to_dict() == b.counters.to_dict()
