"""Figure 3 — matrix/vector ILP microbenchmarks.

(a) FP64 outer-product throughput versus the number of independent
    accumulator tiles: peak needs >= 4 concurrent FMOPAs.
(b) Interleaved FMOPA+FMLA versus isolated execution: co-issue on the
    separate matrix/vector pipelines yields up to ~1.5x.
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table
from repro.isa.instructions import FMLA, FMOPA
from repro.isa.program import Trace
from repro.isa.registers import TileReg, VReg
from repro.machine.config import LX2
from repro.machine.timing import TimingEngine


def _fmopa_stream(n_tiles: int, n: int = 256) -> Trace:
    return Trace(FMOPA(TileReg(i % n_tiles), VReg(0), VReg(1)) for i in range(n))


def _fmla_stream(n: int = 256) -> Trace:
    return Trace(FMLA(VReg(2 + i % 8), VReg(0), VReg(1)) for i in range(n))


def _figure3a():
    engine = TimingEngine(LX2())
    rows = {}
    base = None
    for k in (1, 2, 4, 8):
        pc = engine.run_trace(_fmopa_stream(k))
        rate = pc.flops / pc.cycles
        base = base or rate
        rows[f"{k} tile(s)"] = {
            "flops/cycle": f"{rate:.1f}",
            "vs 1 tile": f"{rate / base:.2f}x",
        }
    return rows


def _figure3b():
    engine = TimingEngine(LX2())
    n = 128
    iso_m = engine.run_trace(_fmopa_stream(4, n))
    iso_v = engine.run_trace(_fmla_stream(n))
    inter = Trace()
    for i in range(n):
        inter.append(FMOPA(TileReg(i % 4), VReg(0), VReg(1)))
        inter.append(FMLA(VReg(2 + i % 8), VReg(0), VReg(1)))
    overlap = engine.run_trace(inter)
    speedup = (iso_m.cycles + iso_v.cycles) / overlap.cycles
    return {
        "isolated (matrix then vector)": {"cycles": f"{iso_m.cycles + iso_v.cycles:.0f}"},
        "interleaved": {"cycles": f"{overlap.cycles:.0f}"},
        "overlap speedup": {"cycles": f"{speedup:.2f}x"},
    }, speedup


def test_fig03_matrix_vector_ilp(benchmark):
    rows_a = run_once(benchmark, _figure3a)
    rows_b, speedup = _figure3b()
    report(
        "fig03_ilp",
        format_metric_table("Figure 3a: FMOPA throughput vs independent tiles", rows_a)
        + "\n\n"
        + format_metric_table("Figure 3b: matrix-vector overlap", rows_b)
        + "\n(paper: peak at >=4 tiles; overlap speedup up to 1.5x)",
    )
    # Shape assertions (the Figure 3 claims).
    r1 = float(rows_a["1 tile(s)"]["flops/cycle"])
    r4 = float(rows_a["4 tile(s)"]["flops/cycle"])
    r8 = float(rows_a["8 tile(s)"]["flops/cycle"])
    assert r4 > 3.4 * r1, "peak FMOPA throughput must need ~4 independent tiles"
    assert abs(r8 - r4) / r4 < 0.05, "beyond 4 tiles throughput saturates"
    assert 1.3 < speedup < 1.9, "matrix-vector overlap should be ~1.5x"
