"""Figure 15 — out-of-cache single-core speedups vs grid size.

Paper: without spatial prefetch HStencil's speedup decreases with size;
prefetch prevents the degradation (avg 2.35x, 42% over no-prefetch) and
beats STOP by up to 91%.  Workload: r=2 box, 1024^2 .. 8192^2.
"""

from conftest import BENCH_JOBS, bench_artifact, report, run_once

from repro.bench.report import format_speedup_table, geomean

SIZES = [1024, 2048, 4096, 8192]
STENCIL = "box2d25p"
METHODS = ["vector-only", "matrix-only", "hstencil-noprefetch", "hstencil-prefetch"]
BASELINE = "auto"


def _collect(runner):
    # All (method, size) cells are independent band-sampled simulations —
    # the expensive sweep of this suite; fan them through the engine.
    runner.measure_many(
        [(m, STENCIL, (n, n)) for n in SIZES for m in METHODS + [BASELINE]],
        jobs=BENCH_JOBS,
    )
    return {
        f"{n} x {n}": runner.speedups(METHODS, STENCIL, (n, n)) for n in SIZES
    }


def test_fig15_out_of_cache(benchmark, lx2_runner):
    rows = run_once(benchmark, lambda: _collect(lx2_runner))
    bench_artifact("fig15_outofcache", runner=lx2_runner, extra={"speedups": rows})
    report(
        "fig15_outofcache",
        format_speedup_table("Figure 15: out-of-cache speedups (r=2 box)", rows)
        + "\n(paper: prefetch prevents size degradation, +42% vs no-prefetch,"
        " up to +91% vs STOP)",
    )
    first, last = rows[f"{SIZES[0]} x {SIZES[0]}"], rows[f"{SIZES[-1]} x {SIZES[-1]}"]
    # Degradation without prefetch as the grid grows...
    assert last["hstencil-noprefetch"] < first["hstencil-noprefetch"] * 0.95
    # ...which spatial prefetch substantially repairs at the largest size.
    assert last["hstencil-prefetch"] > 1.3 * last["hstencil-noprefetch"]
    for size_label, cells in rows.items():
        # Prefetch never hurts, and HStencil+prefetch always beats STOP.
        assert cells["hstencil-prefetch"] >= cells["hstencil-noprefetch"] * 0.99
        assert cells["hstencil-prefetch"] > cells["matrix-only"] * 1.2, size_label
    # The headline gap over the SOTA is large (paper: up to 91%).
    best_gap = max(
        cells["hstencil-prefetch"] / cells["matrix-only"] for cells in rows.values()
    )
    assert best_gap > 1.3
