"""Table 2 — instructions per cycle of vector-only / matrix-only / ideal.

The paper's motivating IPC observation: matrix-only trades instruction
throughput for data throughput (IPC 1.46 < vector-only 1.75 << ideal 3.0),
which is headroom the hybrid kernel's interleaving then exploits.
"Ideal" is the machine's issue width.
"""

from conftest import report, run_once

from repro.bench.report import format_metric_table
from repro.machine.config import LX2


def _table2(runner):
    shape = (128, 128)
    rows = {}
    for method, label in (("vector-only", "Vector-only"), ("matrix-only", "Matrix-only")):
        pc = runner.measure(method, "star2d9p", shape).counters
        rows[label] = {"IPC": f"{pc.ipc:.2f}"}
    rows["Ideal (issue width)"] = {"IPC": f"{float(LX2().issue_width):.2f}"}
    rows["paper"] = {"IPC": "1.75 / 1.46 / 3.00"}
    return rows


def test_tab02_ipc(benchmark, lx2_runner):
    rows = run_once(benchmark, lambda: _table2(lx2_runner))
    report("tab02_ipc", format_metric_table("Table 2: IPC of the two pure methods", rows))
    vec = float(rows["Vector-only"]["IPC"])
    mat = float(rows["Matrix-only"]["IPC"])
    ideal = float(rows["Ideal (issue width)"]["IPC"])
    # Shape: both pure methods leave substantial issue headroom; the
    # matrix method's IPC does not exceed the vector method's by much.
    assert mat < 0.75 * ideal
    assert vec < 0.75 * ideal
    assert mat < vec
