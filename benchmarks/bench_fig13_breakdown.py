"""Figure 13 — performance breakdown of HStencil's optimizations.

r=2 2D stencils: Mat-ortho (outer+inner axis), Mat-only (STOP), HStencil
without instruction scheduling, HStencil with scheduling.  Paper: star
Mat-ortho < auto, Mat-only 1.33x, HStencil 1.55x -> 1.76x; box Mat-only
2.34x, HStencil 2.46x -> 2.96x.
"""

from conftest import report, run_once

from repro.bench.report import format_speedup_table

SHAPE = (128, 128)


def _collect(runner):
    star_methods = ["mat-ortho", "matrix-only", "hstencil-nosched", "hstencil"]
    box_methods = ["matrix-only", "hstencil-nosched", "hstencil"]
    return {
        "star2d9p (r=2)": runner.speedups(star_methods, "star2d9p", SHAPE),
        "box2d25p (r=2)": runner.speedups(box_methods, "box2d25p", SHAPE),
    }


def test_fig13_breakdown(benchmark, lx2_runner):
    rows = run_once(benchmark, lambda: _collect(lx2_runner))
    report(
        "fig13_breakdown",
        format_speedup_table("Figure 13: r=2 optimization breakdown", rows)
        + "\n(paper star: ortho<1.0, mat-only 1.33x, hstencil 1.55x->1.76x;"
        "  box: 2.34x, 2.46x->2.96x)",
    )
    star = rows["star2d9p (r=2)"]
    box = rows["box2d25p (r=2)"]
    # Star: the ortho strawman loses to auto (strided column gathers).
    assert star["mat-ortho"] < 1.05
    # The hybrid beats the pure-matrix SOTA once scheduled.
    assert star["hstencil"] > star["matrix-only"]
    assert box["hstencil"] > box["matrix-only"]
    # Instruction scheduling is a strict improvement on both patterns.
    assert star["hstencil"] > star["hstencil-nosched"]
    assert box["hstencil"] > box["hstencil-nosched"]
