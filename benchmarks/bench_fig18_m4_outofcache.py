"""Figure 18 — Apple M4: out-of-cache speedups (r=2 box).

Paper: without the optimizations HStencil averages 2.63x on the M4;
instruction scheduling adds ~30% and spatial prefetch another ~20%.

All cells run through the session ``m4_runner``, so ``REPRO_ENGINE`` /
``REPRO_TIMING`` select the replay engine and sampled-timing mode here the
same way they do for every other bench (see ``conftest.py``), and the disk
cache keys on the non-default timing mode.
"""

from conftest import report, run_once

from repro.bench.report import format_speedup_table, geomean

SIZES = [1024, 2048, 4096]
STENCIL = "box2d25p"
METHODS = ["hstencil-nosched", "hstencil-noprefetch", "hstencil-prefetch"]
LABELS = {
    "hstencil-nosched": "no opt",
    "hstencil-noprefetch": "+scheduling",
    "hstencil-prefetch": "+sched+prefetch",
}


def _collect(runner):
    rows = {}
    for n in SIZES:
        cells = runner.speedups(METHODS, STENCIL, (n, n))
        rows[f"{n} x {n}"] = {LABELS[m]: v for m, v in cells.items()}
    return rows


def test_fig18_m4_out_of_cache(benchmark, m4_runner):
    rows = run_once(benchmark, lambda: _collect(m4_runner))
    report(
        "fig18_m4_outofcache",
        format_speedup_table(
            "Figure 18: M4 out-of-cache (r=2 box)",
            rows,
            baseline_note="vs NEON auto-vectorization",
        )
        + "\n(paper: base 2.63x; +30% from scheduling; +20% from prefetch)",
    )
    base = geomean([rows[k]["no opt"] for k in rows])
    sched = geomean([rows[k]["+scheduling"] for k in rows])
    pf = geomean([rows[k]["+sched+prefetch"] for k in rows])
    # Portability of the two optimizations (Sections 4.2/4.3):
    assert base > 1.0
    assert sched > 1.05 * base, "instruction scheduling must help on the M4"
    assert pf > 1.02 * sched, "spatial prefetch must add on top"
