"""End-to-end integration tests: the paper's claims in miniature.

Small/fast versions of the benchmark suite's shape assertions, so a plain
``pytest tests/`` run already guards the reproduction's headline results.
"""

import pytest

from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2, M4


@pytest.fixture(scope="module")
def lx2_runner():
    return ExperimentRunner(LX2())


@pytest.fixture(scope="module")
def m4_runner():
    return ExperimentRunner(M4())


SHAPE = (64, 64)


class TestInCacheClaims:
    def test_hstencil_beats_matrix_only_on_star(self, lx2_runner):
        sp = lx2_runner.speedups(["matrix-only", "hstencil"], "star2d9p", SHAPE)
        assert sp["hstencil"] > sp["matrix-only"] > 1.0

    def test_hstencil_beats_matrix_only_on_box(self, lx2_runner):
        sp = lx2_runner.speedups(["matrix-only", "hstencil"], "box2d25p", SHAPE)
        assert sp["hstencil"] > sp["matrix-only"] > 1.0

    def test_scheduling_improves_both_patterns(self, lx2_runner):
        for stencil in ("star2d9p", "box2d25p"):
            sp = lx2_runner.speedups(["hstencil-nosched", "hstencil"], stencil, SHAPE)
            assert sp["hstencil"] > sp["hstencil-nosched"], stencil

    def test_mat_ortho_loses_to_auto_on_star(self, lx2_runner):
        sp = lx2_runner.speedups(["mat-ortho"], "star2d9p", SHAPE)
        assert sp["mat-ortho"] < 1.1

    def test_hstencil_has_highest_ipc(self, lx2_runner):
        cells = lx2_runner.sweep(
            ["vector-only", "matrix-only", "hstencil"], "star2d9p", SHAPE
        )
        ipc = {m: c.counters.ipc for m, c in cells.items()}
        assert ipc["hstencil"] > ipc["vector-only"]
        assert ipc["hstencil"] > ipc["matrix-only"]

    def test_naive_hybrid_slower_than_inplace(self, lx2_runner):
        sp = lx2_runner.speedups(["hstencil-naive", "hstencil-nosched"], "star2d9p", SHAPE)
        assert sp["hstencil-nosched"] > sp["hstencil-naive"]


class TestOutOfCacheClaims:
    SHAPE_BIG = (1024, 1024)

    def test_prefetch_beats_noprefetch(self, lx2_runner):
        sp = lx2_runner.speedups(
            ["hstencil-noprefetch", "hstencil-prefetch"], "box2d25p", self.SHAPE_BIG
        )
        assert sp["hstencil-prefetch"] > sp["hstencil-noprefetch"]

    def test_hstencil_prefetch_beats_stop(self, lx2_runner):
        sp = lx2_runner.speedups(
            ["matrix-only", "hstencil-prefetch"], "box2d25p", self.SHAPE_BIG
        )
        assert sp["hstencil-prefetch"] > 1.2 * sp["matrix-only"]

    def test_vector_method_keeps_high_l1(self, lx2_runner):
        vec = lx2_runner.measure("vector-only", "box2d25p", self.SHAPE_BIG).counters
        mat = lx2_runner.measure("matrix-only", "box2d25p", self.SHAPE_BIG).counters
        assert vec.l1_demand_hit_rate > 0.95
        assert mat.l1_demand_hit_rate < vec.l1_demand_hit_rate


class TestM4PortabilityClaims:
    def test_star_routes_to_mmla_and_wins(self, m4_runner):
        sp = m4_runner.speedups(["hstencil"], "star2d9p", SHAPE)
        assert sp["hstencil"] > 1.0

    def test_box_wins_more_than_star(self, m4_runner):
        star = m4_runner.speedups(["hstencil"], "star2d9p", SHAPE)["hstencil"]
        box = m4_runner.speedups(["hstencil"], "box2d25p", SHAPE)["hstencil"]
        assert box > star

    def test_vector_only_unavailable(self, m4_runner):
        cells = m4_runner.sweep(["vector-only"], "star2d9p", SHAPE)
        assert cells == {}
