"""Spatial prefetch: helpers, coverage, and measured effect."""

import pytest

from repro.isa.instructions import LD1D, PRFM
from repro.isa.program import Trace
from repro.isa.registers import VReg
from repro.kernels.base import KernelOptions
from repro.kernels.prefetch import count_prefetches, prefetch_coverage, row_prefetches
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2
from repro.machine.memory import MemorySpace
from repro.machine.timing import TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark


class TestHelpers:
    def test_row_prefetches_cover_span(self):
        out = row_prefetches(1000, 20)
        assert len(out) == 3
        assert out[0].addr == 1000
        assert out[-1].length == 4

    def test_row_prefetches_write_flag(self):
        out = row_prefetches(0, 8, write=True)
        assert all(p.write for p in out)

    def test_count_prefetches(self):
        trace = Trace([PRFM(0), PRFM(8, write=True), PRFM(16)])
        assert count_prefetches(trace) == (2, 1)

    def test_coverage_full(self):
        trace = Trace([PRFM(0, length=8), LD1D(VReg(0), 0)])
        assert prefetch_coverage(trace) == 1.0

    def test_coverage_partial(self):
        trace = Trace([PRFM(0, length=8), LD1D(VReg(0), 0), LD1D(VReg(1), 64)])
        assert prefetch_coverage(trace) == pytest.approx(0.5)

    def test_coverage_order_matters(self):
        trace = Trace([LD1D(VReg(0), 0), PRFM(0, length=8)])
        assert prefetch_coverage(trace) == 0.0

    def test_coverage_empty(self):
        assert prefetch_coverage(Trace()) == 0.0


class TestKernelPrefetch:
    def _measure(self, method, N=1024):
        spec = benchmark("box2d25p")
        mem = MemorySpace()
        src = Grid2D(mem, N, N, spec.radius, "A")
        dst = Grid2D(mem, N, N, spec.radius, "B")
        kernel = make_kernel(method, spec, src, dst, LX2())
        return TimingEngine(LX2()).run(kernel)

    def test_prefetch_reduces_out_of_cache_cycles(self):
        """The Figure 15 effect: spatial prefetch speeds up large grids."""
        without = self._measure("hstencil-noprefetch")
        with_pf = self._measure("hstencil-prefetch")
        assert with_pf.cycles < without.cycles

    def test_prefetch_raises_demand_hit_rate(self):
        """The Table 7 effect (demand-side)."""
        without = self._measure("hstencil-noprefetch")
        with_pf = self._measure("hstencil-prefetch")
        assert with_pf.l1_demand_hit_rate > without.l1_demand_hit_rate

    def test_prefetch_increases_hit_times(self):
        """Table 7: total L1 hit count grows with prefetch probes."""
        without = self._measure("hstencil-noprefetch")
        with_pf = self._measure("hstencil-prefetch")
        assert with_pf.l1_hits > without.l1_hits

    def test_prefetch_counted(self):
        with_pf = self._measure("hstencil-prefetch")
        assert with_pf.sw_prefetches > 0

    def test_prefetch_trace_coverage_high(self):
        """Within a block, nearly all demanded lines were hinted earlier."""
        spec = benchmark("box2d25p")
        mem = MemorySpace()
        src = Grid2D(mem, 32, 32, spec.radius, "A")
        dst = Grid2D(mem, 32, 32, spec.radius, "B")
        kernel = make_kernel(
            "hstencil-prefetch", spec, src, dst, LX2(), KernelOptions(unroll_j=2)
        )
        blocks = kernel.loop_nest().blocks
        # middle-of-grid block: its rows were hinted by... itself only; we
        # check the trace-local coverage of the *next-row* hints instead:
        trace = Trace()
        for b in blocks[:4]:
            trace.extend(kernel.emit(b))
        # cv-table loads and first-band rows cannot be covered by design;
        # a third of demanded lines hinted within four blocks is already
        # prefetch at work (steady-state coverage is measured by the
        # hit-rate tests above).
        assert prefetch_coverage(trace) > 0.3

    def test_prefetch_clipped_at_grid_edge(self):
        """No PRFM may target rows beyond the halo (addr() would raise)."""
        spec = benchmark("box2d25p")
        mem = MemorySpace()
        src = Grid2D(mem, 16, 32, spec.radius, "A")
        dst = Grid2D(mem, 16, 32, spec.radius, "B")
        kernel = make_kernel(
            "hstencil-prefetch", spec, src, dst, LX2(), KernelOptions(unroll_j=2)
        )
        last_band_block = kernel.loop_nest().blocks[-1]
        kernel.emit(last_band_block)  # must not raise
