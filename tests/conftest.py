"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

import pytest

from repro.machine.config import LX2, M4, MachineConfig
from repro.machine.memory import MemorySpace


@pytest.fixture(scope="session")
def lx2() -> MachineConfig:
    return LX2()


@pytest.fixture(scope="session")
def m4() -> MachineConfig:
    return M4()


@pytest.fixture()
def mem() -> MemorySpace:
    return MemorySpace()
