"""Bit-identity of the multicore columnar replay vs the scalar walk.

:class:`~repro.machine.multicore.MulticoreModel` runs one
:class:`~repro.machine.timing.TimingEngine` across every distinct slice
height of a strong-scaling sweep, so under ``timing="columnar"`` each
height after the first replays against the engine's already-warmed share
(memory plans and scoreboard memo pool by structural signature).  That
sharing is an optimization only: every scaling point — cycles, points,
DRAM bytes, bandwidth flags, serial rebase — must be *identical* to the
per-block scalar walk.  These tests enforce that contract across the
method registry on both machines, with odd slice heights (tail-predicated
rows, non-zero remainders), through the probe-verify / demote fallback,
and over the ``engine=``/``timing=`` constructor plumbing.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest

from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.machine.columnar import ColumnarReplayer
from repro.machine.config import LX2, M4
from repro.machine.memory import MemorySpace
from repro.machine.multicore import MulticoreModel
from repro.machine.timing import SamplePlan, TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark

MACHINES = {"LX2": LX2, "M4": M4}

#: Odd total height: 45 rows over {1, 2, 4, 8} cores gives slice heights
#: {45, 22, 11, 5} — three odd heights plus non-zero remainders for every
#: multi-core point, so tail predication and the remainder-row accounting
#: are both exercised.
TOTAL_ROWS = 45
COLS = 29
CORES = [1, 2, 4, 8]
STENCIL = "box2d9p"

#: Tiny plan so oversized slices band-sample instead of running full.
PLAN = SamplePlan(warmup_bands=1, min_measure_points=600)


def _kernel_builder(method, config, stencil=STENCIL, cols=COLS):
    """``kernel_for_rows`` closure; None if the method rejects the machine."""
    spec = benchmark(stencil)

    def kernel_for_rows(rows):
        mem = MemorySpace()
        src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=7)
        dst = Grid2D(mem, rows, cols, spec.radius, "B")
        return make_kernel(method, spec, src, dst, config, KernelOptions(unroll_j=2))

    try:
        kernel_for_rows(TOTAL_ROWS)
    except ValueError:
        return None  # method not available on this machine (e.g. no V-FMLA)
    return kernel_for_rows


def _sweep(method, machine_name, timing):
    config = MACHINES[machine_name]()
    builder = _kernel_builder(method, config)
    if builder is None:
        pytest.skip(f"{method} not applicable on {machine_name}")
    mc = MulticoreModel(config, engine="compiled", timing=timing)
    return mc.strong_scaling(builder, TOTAL_ROWS, CORES, plan=PLAN)


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", sorted(METHODS))
def test_multicore_columnar_bit_identical(method, machine_name):
    scalar = _sweep(method, machine_name, "scalar")
    columnar = _sweep(method, machine_name, "columnar")
    assert [asdict(p) for p in columnar] == [asdict(p) for p in scalar]
    # The odd partition really was exercised: every multi-core point drops
    # remainder rows, so this sweep cannot degenerate to even slices.
    assert [p.remainder_rows for p in columnar] == [0, 1, 1, 5]


def test_multicore_forced_demotion_falls_back_bit_identically(monkeypatch):
    """Slice heights whose probes fail must demote to the scalar walk and
    still produce an identical scaling curve."""
    scalar = _sweep("hstencil", "LX2", "scalar")

    demotions = []
    original_demote = ColumnarReplayer._demote

    def counting_demote(self, template, state):
        original_demote(self, template, state)
        demotions.append(template)

    # Every probe "fails": all shape classes of every slice height must
    # demote permanently to the scalar walk.
    monkeypatch.setattr(
        ColumnarReplayer, "_columnar_matches", staticmethod(lambda clone, pipe: False)
    )
    monkeypatch.setattr(ColumnarReplayer, "_demote", counting_demote)

    columnar = _sweep("hstencil", "LX2", "columnar")

    assert demotions, "probe rejection must trigger at least one demotion"
    assert [asdict(p) for p in columnar] == [asdict(p) for p in scalar]


class TestEngineInjection:
    def test_engine_timing_kwargs_match_injected_engine(self):
        """``MulticoreModel(engine=, timing=)`` must behave exactly like
        injecting a :class:`TimingEngine` built with the same selection."""
        config = LX2()
        builder = _kernel_builder("hstencil", config)
        via_kwargs = MulticoreModel(config, engine="compiled", timing="columnar")
        via_engine = MulticoreModel(
            config,
            timing_engine=TimingEngine(config, engine="compiled", timing="columnar"),
        )
        a = via_kwargs.strong_scaling(builder, TOTAL_ROWS, CORES, plan=PLAN)
        b = via_engine.strong_scaling(builder, TOTAL_ROWS, CORES, plan=PLAN)
        assert [asdict(p) for p in a] == [asdict(p) for p in b]

    def test_injected_engine_must_match_config(self):
        lx2, m4 = LX2(), M4()
        with pytest.raises(ValueError, match="different config"):
            MulticoreModel(lx2, timing_engine=TimingEngine(m4))

    def test_non_positive_bandwidth_rejected(self):
        config = replace(LX2(), mem_bandwidth_bytes_per_cycle=0)
        mc = MulticoreModel(config)
        counters = TimingEngine(LX2(), engine="compiled", timing="columnar").run(
            _kernel_builder("hstencil", LX2())(TOTAL_ROWS), sample=True, plan=PLAN
        )
        with pytest.raises(ValueError, match="must be positive"):
            mc.scaling_point(2, counters)
