"""Functional correctness of every kernel against the NumPy reference.

This is the load-bearing test file: each cell runs a generated instruction
stream through the functional engine on a random grid and compares the
simulated memory with the vectorized reference.
"""

import pytest

from tests.helpers import assert_matches_reference, run_method_2d, run_method_3d
from repro.kernels.base import KernelOptions
from repro.stencils.library import benchmark

METHODS_2D = [
    "auto",
    "vector-only",
    "matrix-only",
    "mat-ortho",
    "hstencil-naive",
    "hstencil-nosched",
    "hstencil",
    "hstencil-prefetch",
]

STENCILS_2D = ["star2d5p", "star2d9p", "star2d13p", "box2d9p", "box2d25p", "heat2d"]

METHODS_3D = ["auto", "vector-only", "matrix-only", "hstencil", "hstencil-prefetch"]
STENCILS_3D = ["star3d7p", "star3d13p", "box3d27p"]


@pytest.mark.parametrize("stencil", STENCILS_2D)
@pytest.mark.parametrize("method", METHODS_2D)
def test_2d_lx2(method, stencil, lx2):
    spec = benchmark(stencil)
    try:
        got, ref = run_method_2d(method, spec, lx2)
    except ValueError:
        pytest.skip(f"{method} not defined for {stencil}")
    assert_matches_reference(got, ref)


@pytest.mark.parametrize("stencil", STENCILS_3D)
@pytest.mark.parametrize("method", METHODS_3D)
def test_3d_lx2(method, stencil, lx2):
    spec = benchmark(stencil)
    try:
        got, ref = run_method_3d(method, spec, lx2)
    except ValueError:
        pytest.skip(f"{method} not defined for {stencil}")
    assert_matches_reference(got, ref)


@pytest.mark.parametrize("stencil", ["star2d5p", "star2d9p", "box2d9p", "box2d25p"])
@pytest.mark.parametrize("method", ["auto", "matrix-only", "hstencil", "hstencil-prefetch"])
def test_2d_m4(method, stencil, m4):
    """The M4 routing (M-MLA star path, inplace box path) stays correct."""
    spec = benchmark(stencil)
    got, ref = run_method_2d(method, spec, m4)
    assert_matches_reference(got, ref)


@pytest.mark.parametrize("unroll", [1, 2, 4, 8])
def test_unroll_factors(unroll, lx2):
    """Multi-register kernels are correct at every unroll factor."""
    spec = benchmark("star2d9p")
    got, ref = run_method_2d(
        "hstencil", spec, lx2, rows=16, cols=8 * unroll * 2, options=KernelOptions(unroll_j=unroll)
    )
    assert_matches_reference(got, ref)


@pytest.mark.parametrize("rows,cols", [(8, 16), (16, 16), (24, 48), (32, 64)])
def test_grid_shapes(rows, cols, lx2):
    spec = benchmark("box2d9p")
    got, ref = run_method_2d("hstencil", spec, lx2, rows=rows, cols=cols)
    assert_matches_reference(got, ref)


@pytest.mark.parametrize("method", ["hstencil", "matrix-only"])
def test_radius_4_star(method, lx2):
    """Largest-radius star in the registry exercises the widest halo."""
    spec = benchmark("star2d17p")
    got, ref = run_method_2d(method, spec, lx2, rows=16, cols=32)
    assert_matches_reference(got, ref)


def test_box3d_125p_hstencil(lx2):
    """r=2 3D box: five planes of five shifts each."""
    spec = benchmark("box3d125p")
    got, ref = run_method_3d("hstencil", spec, lx2, depth=6, rows=16, cols=16)
    assert_matches_reference(got, ref)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_different_inputs(seed, lx2):
    spec = benchmark("star2d5p")
    got, ref = run_method_2d("hstencil", spec, lx2, seed=seed)
    assert_matches_reference(got, ref)


def test_ext_reuse_vs_loads_equivalent(lx2):
    """EXT data reuse and unaligned loads compute identical results."""
    spec = benchmark("box2d25p")
    got_ext, ref = run_method_2d(
        "hstencil", spec, lx2, options=KernelOptions(unroll_j=2, ext_to_load=0)
    )
    got_ld, _ = run_method_2d(
        "hstencil", spec, lx2, options=KernelOptions(unroll_j=2, ext_to_load=4)
    )
    assert_matches_reference(got_ext, ref)
    assert_matches_reference(got_ld, ref)


@pytest.mark.parametrize("rollback", [0, 2, 4])
def test_mla_rollback_levels_equivalent(rollback, lx2):
    """Every rollback level computes the same stencil."""
    spec = benchmark("star2d9p")
    got, ref = run_method_2d(
        "hstencil", spec, lx2, options=KernelOptions(unroll_j=2, mla_rollback=rollback)
    )
    assert_matches_reference(got, ref)
