"""Analytic models: Table 1 utilization, Table 5 ratios, overhead equations."""

import pytest

from repro.core.analysis import (
    instruction_cycle_ratio,
    overhead_model,
    single_register_utilization,
    utilization_table,
)
from repro.machine.config import LX2
from repro.stencils.spec import box2d, star2d


class TestUtilization:
    def test_box_outer_axis(self):
        # r=2 box: every shift keeps 5 of 8 tile rows.
        assert single_register_utilization(box2d(2), "outer") == pytest.approx(5 / 8)
        assert single_register_utilization(box2d(1), "outer") == pytest.approx(3 / 8)

    def test_star_outer_axis_is_poor(self):
        # r=2 star: center column 5/8, four single-row shifts 1/8 each.
        expect = (5 + 4 * 1) / (5 * 8)
        assert single_register_utilization(star2d(2), "outer") == pytest.approx(expect)

    def test_star_outer_inner_recovers(self):
        u_outer = single_register_utilization(star2d(2), "outer")
        u_ortho = single_register_utilization(star2d(2), "outer+inner")
        assert u_ortho > 2 * u_outer

    def test_table1_ordering(self):
        """Table 1's qualitative content: box ~= ortho-star >> outer-star."""
        table = utilization_table(2)
        assert table["Outer-axis (Star)"] < 0.25
        assert table["Outer-axis (Box)"] > 2 * table["Outer-axis (Star)"]
        assert table["Outer&inner-axis (Star)"] > 2 * table["Outer-axis (Star)"]

    def test_ortho_on_box_rejected(self):
        with pytest.raises(ValueError):
            single_register_utilization(box2d(1), "outer+inner")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            single_register_utilization(star2d(1), "diagonal")


class TestInstructionCycleRatio:
    def test_matrix_only_matches_table5(self):
        """Table 5 row 1: 'Matrix Star & Box: 40 / 0'."""
        m_star, v_star = instruction_cycle_ratio(star2d(2), LX2(), "matrix-only")
        m_box, v_box = instruction_cycle_ratio(box2d(2), LX2(), "matrix-only")
        assert (m_star, v_star) == (40.0, 0.0)
        assert (m_box, v_box) == (40.0, 0.0)

    def test_hybrid_star_vector_dominant(self):
        """Table 5 row 2: the star hybrid is vector-cycle dominated."""
        m, v = instruction_cycle_ratio(star2d(2), LX2(), "hstencil")
        assert v > m
        assert m == 16.0  # vertical + in-place accumulate per 8 rows

    def test_hybrid_box_matrix_dominant(self):
        """Table 5 row 3: the box hybrid keeps matrix cycles dominant."""
        m, v = instruction_cycle_ratio(box2d(2), LX2(), "hstencil")
        assert m == 40.0
        assert 0 < v < m

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            instruction_cycle_ratio(star2d(1), LX2(), "bogus")


class TestOverheadModel:
    def test_equations_5_to_8(self):
        model = overhead_model(LX2())
        # Eq 7/8: 3 loads + 2 stores vs 2 loads + 1 store
        assert model.naive_memory_ops == (3, 2)
        assert model.inplace_memory_ops == (2, 1)
        assert model.naive_memory_cycles > model.inplace_memory_cycles
        # Eq 5/6: naive pays m2v + add; in-place pays one outer product
        assert model.naive_compute_overhead > model.inplace_compute_overhead

    def test_mova_dominates_naive_overhead(self):
        model = overhead_model(LX2())
        cfg = LX2()
        assert model.naive_compute_overhead >= cfg.latencies["mova.tv"].latency
