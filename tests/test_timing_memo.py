"""Engine selection, REPRO_MEMO modes, iterated runs and memo demotion."""

import pytest

from repro.bench.runner import ExperimentRunner
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine import memo as memo_mod
from repro.machine.config import LX2
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.machine.pipeline import PipelineModel
from repro.machine.timing import TimingEngine, default_engine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark


def _kernel(n=64, stencil="star2d5p", method="hstencil", seed=0):
    mem = MemorySpace()
    spec = benchmark(stencil)
    src = Grid2D(mem, n, n, spec.radius, "A", fill="random", seed=seed)
    dst = Grid2D(mem, n, n, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, LX2(), KernelOptions())
    return mem, kernel


# ---------------------------------------------------------------------------
# Engine selection precedence: explicit kwarg > REPRO_ENGINE env > default.
# ---------------------------------------------------------------------------


def test_default_engine_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert default_engine() == "compiled"
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert default_engine() == "reference"


def test_timing_engine_precedence(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert TimingEngine(LX2()).engine == "reference"
    # An explicit kwarg always beats the environment.
    assert TimingEngine(LX2(), engine="compiled").engine == "compiled"
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert TimingEngine(LX2()).engine == "compiled"
    with pytest.raises(ValueError):
        TimingEngine(LX2(), engine="bogus")


def test_experiment_runner_threads_engine(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert ExperimentRunner(LX2()).engine.engine == "reference"
    assert ExperimentRunner(LX2(), engine="compiled").engine.engine == "compiled"


def test_run_kernel_precedence(monkeypatch):
    """run_kernel: explicit engine kwarg wins over REPRO_ENGINE."""
    import repro.machine.batched as batched_mod

    created = []
    real = batched_mod.BatchReplayer

    class Spy(real):
        def __init__(self, engine):
            super().__init__(engine)
            created.append(self)

    monkeypatch.setattr(batched_mod, "BatchReplayer", Spy)

    # env says reference, kwarg says compiled: the compiled path (which
    # constructs a BatchReplayer) must run.
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    mem, kernel = _kernel(n=32)
    FunctionalEngine(mem).run_kernel(kernel, engine="compiled")
    assert len(created) == 1

    # env says compiled, kwarg says reference: no replayer.
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    mem, kernel = _kernel(n=32)
    FunctionalEngine(mem).run_kernel(kernel, engine="reference")
    assert len(created) == 1

    # No kwarg: the environment decides.
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    mem, kernel = _kernel(n=32)
    FunctionalEngine(mem).run_kernel(kernel)
    assert len(created) == 2

    with pytest.raises(ValueError):
        FunctionalEngine(MemorySpace()).run_kernel(kernel, engine="bogus")


# ---------------------------------------------------------------------------
# REPRO_MEMO mode parsing and gates.
# ---------------------------------------------------------------------------


def test_memo_mode_default_and_aliases(monkeypatch):
    monkeypatch.delenv("REPRO_MEMO", raising=False)
    assert memo_mod.memo_mode() == "pass"
    for raw, mode in [
        ("off", "off"), ("0", "off"), ("false", "off"),
        ("block", "block"), ("pass", "pass"), ("PASS", "pass"),
        ("full", "full"), ("1", "full"), ("on", "full"), ("true", "full"),
    ]:
        monkeypatch.setenv("REPRO_MEMO", raw)
        assert memo_mod.memo_mode() == mode, raw
    monkeypatch.setenv("REPRO_MEMO", "sometimes")
    with pytest.raises(ValueError):
        memo_mod.memo_mode()


def test_memo_gates(monkeypatch):
    expectations = {
        "off": (False, False),
        "block": (True, False),
        "pass": (False, True),
        "full": (True, True),
    }
    for mode, (block_gate, pass_gate) in expectations.items():
        monkeypatch.setenv("REPRO_MEMO", mode)
        assert memo_mod.memo_enabled() is block_gate
        assert memo_mod.pass_memo_enabled() is pass_gate


# ---------------------------------------------------------------------------
# Iterated (iters > 1) runs.
# ---------------------------------------------------------------------------


def test_iters_validation():
    _, kernel = _kernel(n=32)
    engine = TimingEngine(LX2())
    with pytest.raises(ValueError):
        engine.run(kernel, iters=0)
    with pytest.raises(ValueError):
        engine.run(kernel, sample=True, iters=2)


def test_iters_bit_identical_across_engines_and_memo_modes(monkeypatch):
    """Reference and compiled (all memo modes) agree on iterated counters."""
    iters = 5
    results = {}
    for engine_name, memo in [
        ("reference", "off"),
        ("compiled", "off"),
        ("compiled", "block"),
        ("compiled", "pass"),
        ("compiled", "full"),
    ]:
        monkeypatch.setenv("REPRO_MEMO", memo)
        _, kernel = _kernel()
        pc = TimingEngine(LX2(), engine=engine_name).run(kernel, iters=iters)
        results[(engine_name, memo)] = pc.to_dict()
    baseline = results[("reference", "off")]
    for key, counters in results.items():
        assert counters == baseline, key


def test_iters_scales_points(monkeypatch):
    monkeypatch.setenv("REPRO_MEMO", "off")
    _, kernel = _kernel(n=32)
    one = TimingEngine(LX2()).run(kernel, iters=1)
    three = TimingEngine(LX2()).run(kernel, iters=3)
    assert three.points == 3 * one.points
    assert three.cycles > one.cycles


# ---------------------------------------------------------------------------
# Pipeline state signatures (the pass-skip foundation).
# ---------------------------------------------------------------------------


def test_state_signature_recurs_at_pass_boundaries():
    """After the warm pass, each further pass maps the state onto itself."""
    config = LX2()
    _, kernel = _kernel()
    pipe = PipelineModel(config)
    engine = TimingEngine(config, engine="reference")
    run_block = engine._block_runner(kernel, pipe)

    def one_pass():
        pipe.process_trace(kernel.preamble())
        for block in kernel.loop_nest():
            run_block(block)

    one_pass()  # warm
    one_pass()
    sig = pipe.state_signature()
    one_pass()
    assert pipe.state_signature() == sig


# ---------------------------------------------------------------------------
# Block-level memo: probe verification demotes corrupted entries, and the
# counters stay bit-identical to the plain replay throughout.
# ---------------------------------------------------------------------------


def test_memo_probe_mismatch_demotes_and_stays_bit_identical():
    from repro.kernels.template import TraceCompiler
    from repro.machine.memo import TimingMemo

    config = LX2()
    passes = 5

    def run(memo=None, corrupt_after=None):
        _, kernel = _kernel()
        pipe = PipelineModel(config)
        compiler = TraceCompiler(kernel)
        for p in range(passes):
            pipe.process_trace(kernel.preamble())
            for block in kernel.loop_nest():
                entry = compiler.lookup(block)
                program = entry[0].timing_program(config) if entry else None
                if program is None:
                    pipe.process_trace(kernel.emit(block))
                elif memo is None:
                    pipe.process_template(program, entry[1])
                else:
                    memo.replay(pipe, program, entry[0], entry[1])
            if memo is not None and corrupt_after == p:
                for buckets in memo._tables.values():
                    for cands in buckets.values():
                        for stored in cands:
                            stored.frontier_rel += 1  # falsify the recording
        return pipe.snapshot()

    plain = run()
    memo = TimingMemo(config)
    memo.probe_interval = 1  # verify-or-demote on every hit
    memoed = run(memo=memo, corrupt_after=1)
    assert memoed.to_dict() == plain.to_dict()
    assert memo.demotions >= 1
    # Demoted programs are dropped from the tables for good.
    assert all(p not in memo._tables for p in memo._demoted)
