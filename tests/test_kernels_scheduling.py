"""List scheduler: semantics preservation, speedups, caching, windows."""

import numpy as np
import pytest

from repro.isa.instructions import FMLA, FMOPA, LD1D, PortClass, ST1D
from repro.isa.program import Trace
from repro.isa.registers import TileReg, VReg
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.kernels.scheduling import clear_schedule_cache, schedule_trace
from repro.machine.config import LX2
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.machine.timing import TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark


def build_kernel(method="hstencil-nosched", stencil="star2d9p", rows=16, cols=32):
    spec = benchmark(stencil)
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=21)
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, LX2(), KernelOptions(unroll_j=2))
    return kernel, mem, src, dst


class TestSemanticsPreservation:
    def test_schedule_is_permutation(self):
        kernel, *_ = build_kernel()
        trace = kernel.emit(kernel.loop_nest().blocks[0])
        scheduled = schedule_trace(trace, LX2())
        assert len(scheduled) == len(trace)
        assert sorted(map(id, scheduled)) == sorted(map(id, trace))

    def test_scheduled_kernel_memory_identical(self):
        """Full-block scheduling never changes the computed stencil."""
        k_plain, mem_p, src_p, dst_p = build_kernel("hstencil-nosched")
        k_sched, mem_s, src_s, dst_s = build_kernel("hstencil")
        FunctionalEngine(mem_p).run_kernel(k_plain)
        FunctionalEngine(mem_s).run_kernel(k_sched)
        assert np.allclose(dst_p.get_interior(), dst_s.get_interior(), rtol=1e-12)

    def test_aliasing_trace_scheduled_safely(self):
        """Store->load aliasing forces memory edges, still correct."""
        mem = MemorySpace()
        base = mem.alloc(32)
        mem.write(base, np.arange(32.0))
        trace = Trace(
            [
                LD1D(VReg(0), base),
                ST1D(VReg(0), base + 8),  # store
                LD1D(VReg(1), base + 8),  # aliasing load must stay after
                FMLA(VReg(2), VReg(1), VReg(1)),
                ST1D(VReg(2), base + 16),
            ]
        )
        scheduled = schedule_trace(trace, LX2())
        eng_a = FunctionalEngine(mem)
        eng_a.execute_trace(scheduled)
        got = eng_a.memory.read(base + 16, 8)
        expect = np.arange(8.0) * np.arange(8.0)
        assert np.array_equal(got, expect)

    def test_dependence_chain_order_kept(self):
        trace = Trace(
            [
                LD1D(VReg(0), 1000),
                FMLA(VReg(1), VReg(0), VReg(0)),
                FMLA(VReg(2), VReg(1), VReg(1)),
                ST1D(VReg(2), 2000),
            ]
        )
        scheduled = schedule_trace(trace, LX2())
        idx = {id(i): n for n, i in enumerate(scheduled)}
        assert idx[id(trace[0])] < idx[id(trace[1])] < idx[id(trace[2])] < idx[id(trace[3])]


class TestPerformance:
    def test_scheduling_improves_cycles(self):
        """Global scheduling beats body-local scheduling (Figure 13)."""
        te = TimingEngine(LX2())
        k_plain, *_ = build_kernel("hstencil-nosched", rows=32, cols=32)
        k_sched, *_ = build_kernel("hstencil", rows=32, cols=32)
        plain = te.run(k_plain, warm=True)
        sched = te.run(k_sched, warm=True)
        assert sched.cycles < plain.cycles
        assert sched.ipc > plain.ipc

    def test_interleaves_port_classes(self):
        """Scheduled traces alternate matrix/vector/memory instructions."""
        kernel, *_ = build_kernel("hstencil")
        trace = kernel.emit(kernel.loop_nest().blocks[0])
        # measure the longest same-port run in the scheduled stream
        longest = run = 1
        for a, b in zip(trace, trace[1:]):
            run = run + 1 if a.port is b.port else 1
            longest = max(longest, run)
        assert longest <= 12


class TestWindowsAndCache:
    def test_window_chunks_never_move_across_boundary(self):
        trace = Trace(LD1D(VReg(i % 8), 1000 + 8 * i) for i in range(16))
        out = schedule_trace(trace, LX2(), window=4)
        # each 4-chunk is a permutation of the original chunk
        for c in range(4):
            orig = {id(i) for i in trace[4 * c : 4 * c + 4]}
            got = {id(i) for i in out[4 * c : 4 * c + 4]}
            assert orig == got

    def test_tiny_traces_passthrough(self):
        trace = Trace([LD1D(VReg(0), 8)])
        assert list(schedule_trace(trace, LX2())) == list(trace)

    def test_permutation_cache_reused_across_blocks(self):
        clear_schedule_cache()
        kernel, *_ = build_kernel("hstencil")
        blocks = kernel.loop_nest().blocks
        t0 = kernel.emit(blocks[0])
        t1 = kernel.emit(blocks[1])
        # identical structure => same permutation object semantics
        m0 = [i.mnemonic for i in t0]
        m1 = [i.mnemonic for i in t1]
        assert m0 == m1

    def test_cache_keyed_by_machine(self):
        clear_schedule_cache()
        from repro.machine.config import M4

        trace = Trace(
            [LD1D(VReg(0), 1000), FMLA(VReg(1), VReg(0), VReg(0)), ST1D(VReg(1), 2000)]
        )
        a = schedule_trace(trace, LX2())
        b = schedule_trace(trace, M4())
        assert len(a) == len(b) == 3
