"""Replacement-knob autotuner."""

from repro.core.autotune import autotune_replacement
from repro.kernels.base import KernelOptions
from repro.machine.config import LX2
from repro.machine.memory import MemorySpace
from repro.machine.timing import TimingEngine
from repro.kernels.registry import make_kernel
from repro.stencils.grid import Grid2D
from repro.stencils.spec import box2d, star2d, star3d


def test_non_star_returned_unchanged():
    base = KernelOptions(unroll_j=2)
    assert autotune_replacement(box2d(2), LX2(), base) is base
    assert autotune_replacement(star3d(1), LX2(), base) is base


def test_tuned_options_have_concrete_knobs():
    tuned = autotune_replacement(star2d(2), LX2(), KernelOptions(unroll_j=2))
    assert tuned.mla_rollback is not None
    assert tuned.ext_to_load is not None


def test_result_cached():
    base = KernelOptions(unroll_j=2)
    a = autotune_replacement(star2d(2), LX2(), base)
    b = autotune_replacement(star2d(2), LX2(), base)
    assert a is b


def test_tuned_not_slower_than_default_plan():
    """The tuner's pick must beat (or tie) the formula plan on its proxy."""
    spec = star2d(2)
    base = KernelOptions(unroll_j=2)
    tuned = autotune_replacement(spec, LX2(), base, proxy_rows=32)
    engine = TimingEngine(LX2())

    def cycles(options):
        mem = MemorySpace()
        src = Grid2D(mem, 32, 32, spec.radius, "A")
        dst = Grid2D(mem, 32, 32, spec.radius, "B")
        kernel = make_kernel("hstencil", spec, src, dst, LX2(), options)
        return engine.run(kernel, warm=True).cycles

    assert cycles(tuned) <= cycles(base) * 1.001
