"""Bit-identity of the compiled template-replay engine vs the reference walk.

The ``engine="compiled"`` fast path (kernel templates + precompiled
timing/functional programs) promises *exact* equality with the reference
per-instruction walk — every performance counter and every word the kernel
leaves in memory.  These tests enforce that contract over the whole method
registry, on both machine presets, on conforming grids and on
tail-predicated odd sizes, so any regression in the replay layer is caught
as a hard failure rather than a drifting benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.machine.config import LX2, M4
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.machine.timing import ENGINES, TimingEngine, default_engine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark

MACHINES = {"LX2": LX2, "M4": M4}

#: (stencil, rows, cols): one conforming size and one odd/tail size.
GRIDS = [("star2d9p", 32, 32), ("box2d9p", 21, 27)]


def _build(method, machine_name, stencil, rows, cols):
    """Kernel + its memory space; None if the method rejects this machine."""
    spec = benchmark(stencil)
    config = MACHINES[machine_name]()
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=7)
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    try:
        kernel = make_kernel(method, spec, src, dst, config, KernelOptions(unroll_j=2))
    except ValueError:
        return None  # method not available on this machine (e.g. no V-FMLA)
    return kernel, config, mem, dst


@pytest.mark.parametrize("stencil,rows,cols", GRIDS, ids=[g[0] + "-odd" * (g[1] % 2) for g in GRIDS])
@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", sorted(METHODS))
def test_timing_counters_bit_identical(method, machine_name, stencil, rows, cols):
    built = _build(method, machine_name, stencil, rows, cols)
    if built is None:
        pytest.skip(f"{method} not applicable on {machine_name}")
    kernel, config, _, _ = built
    ref = TimingEngine(config, engine="reference").run(kernel, sample=False, warm=True)
    cmp_ = TimingEngine(config, engine="compiled").run(kernel, sample=False, warm=True)
    assert cmp_.to_dict() == ref.to_dict()


@pytest.mark.parametrize("stencil,rows,cols", GRIDS, ids=[g[0] + "-odd" * (g[1] % 2) for g in GRIDS])
@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", sorted(METHODS))
def test_functional_grids_bit_identical(method, machine_name, stencil, rows, cols):
    outputs = {}
    for engine in ENGINES:
        built = _build(method, machine_name, stencil, rows, cols)
        if built is None:
            pytest.skip(f"{method} not applicable on {machine_name}")
        kernel, _, mem, dst = built
        fe = FunctionalEngine(mem)
        fe.run_kernel(kernel, engine=engine)
        outputs[engine] = (dst.get_full().copy(), fe.instructions_executed)
    ref_grid, ref_count = outputs["reference"]
    cmp_grid, cmp_count = outputs["compiled"]
    # Bit identity, not tolerance: the same IEEE ops in the same order.
    assert np.array_equal(cmp_grid, ref_grid)
    assert cmp_count == ref_count


def test_sampled_run_bit_identical():
    """Band-sampled timing (the out-of-cache path) agrees across engines."""
    spec = benchmark("box2d25p")
    config = LX2()
    results = {}
    for engine in ENGINES:
        mem = MemorySpace()
        src = Grid2D(mem, 512, 512, spec.radius, "A")
        dst = Grid2D(mem, 512, 512, spec.radius, "B")
        kernel = make_kernel("hstencil-prefetch", spec, src, dst, config)
        results[engine] = TimingEngine(config, engine=engine).run(kernel, sample=True)
    assert results["compiled"].to_dict() == results["reference"].to_dict()


def test_default_engine_is_compiled(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert default_engine() == "compiled"
    assert TimingEngine(LX2()).engine == "compiled"
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert default_engine() == "reference"
    assert TimingEngine(LX2()).engine == "reference"


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        TimingEngine(LX2(), engine="turbo")
    with pytest.raises(ValueError, match="unknown engine"):
        FunctionalEngine().run_kernel(
            make_kernel("auto", benchmark("star2d5p"), *_grids(), LX2()), engine="turbo"
        )


def _grids():
    mem = MemorySpace()
    spec = benchmark("star2d5p")
    src = Grid2D(mem, 16, 16, spec.radius, "A")
    dst = Grid2D(mem, 16, 16, spec.radius, "B")
    return src, dst
