"""StencilIterator: multi-step ping-pong iteration."""

import numpy as np
import pytest

from repro import KernelOptions, StencilIterator
from repro.stencils.reference import iterate_reference
from repro.stencils.spec import box2d, heat2d, star2d, star3d


def test_matches_reference_iteration():
    spec = heat2d()
    it = StencilIterator(spec, options=KernelOptions(unroll_j=2))
    field = np.random.default_rng(0).random((18, 34))
    got = it.run(field, steps=4)
    ref = iterate_reference(field, spec, 4)
    assert np.allclose(got, ref, rtol=1e-10)


def test_zero_steps_identity():
    it = StencilIterator(star2d(1), options=KernelOptions(unroll_j=2))
    field = np.random.default_rng(1).random((18, 34))
    assert np.array_equal(it.run(field, 0), field)


def test_halo_unchanged():
    spec = heat2d()
    it = StencilIterator(spec, options=KernelOptions(unroll_j=2))
    field = np.random.default_rng(2).random((18, 34))
    got = it.run(field, 3)
    assert np.array_equal(got[0], field[0])
    assert np.array_equal(got[:, 0], field[:, 0])


def test_odd_and_even_step_counts():
    spec = star2d(1)
    it = StencilIterator(spec, options=KernelOptions(unroll_j=2))
    field = np.random.default_rng(3).random((18, 34))
    for steps in (1, 2, 3):
        got = it.run(field, steps)
        ref = iterate_reference(field, spec, steps)
        assert np.allclose(got, ref, rtol=1e-10), steps


def test_compilation_reused_across_runs():
    it = StencilIterator(star2d(1), options=KernelOptions(unroll_j=2))
    field = np.random.default_rng(4).random((18, 34))
    it.run(field, 1)
    kernels = it._kernels
    it.run(field, 2)
    assert it._kernels is kernels  # same compiled pair


def test_box_stencil_iteration():
    spec = box2d(1)
    it = StencilIterator(spec, options=KernelOptions(unroll_j=2))
    field = np.random.default_rng(5).random((18, 34))
    got = it.run(field, 2)
    ref = iterate_reference(field, spec, 2)
    assert np.allclose(got, ref, rtol=1e-10)


def test_time_steps_counters():
    it = StencilIterator(heat2d(), options=KernelOptions(unroll_j=2))
    pc = it.time_steps(32, 32, steps=2)
    assert pc.points == 2 * 32 * 32
    assert pc.cycles > 0
    # Steady-state per-step cost is below a cold single run's.
    assert pc.cycles_per_point < 3.0


def test_3d_rejected():
    with pytest.raises(ValueError):
        StencilIterator(star3d(1))


def test_negative_steps_rejected():
    it = StencilIterator(star2d(1))
    with pytest.raises(ValueError):
        it.run(np.zeros((10, 34)), -1)


def test_too_small_field_rejected():
    it = StencilIterator(star2d(2))
    with pytest.raises(ValueError):
        it.run(np.zeros((4, 4)), 1)
