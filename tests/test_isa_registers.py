"""Unit tests for the architectural register model."""

import numpy as np
import pytest

from repro.isa.registers import NUM_TILES, NUM_VREGS, RegisterFile, SVL_LANES, TileReg, VReg


class TestHandles:
    def test_vreg_names(self):
        assert VReg(0).name == "z0"
        assert VReg(31).name == "z31"

    def test_vreg_range_checked(self):
        with pytest.raises(ValueError):
            VReg(32)
        with pytest.raises(ValueError):
            VReg(-1)

    def test_tile_names(self):
        assert TileReg(0).name == "za0"
        assert TileReg(7).name == "za7"

    def test_tile_range_checked(self):
        with pytest.raises(ValueError):
            TileReg(8)
        with pytest.raises(ValueError):
            TileReg(-1)

    def test_handles_hashable_and_equal(self):
        assert VReg(3) == VReg(3)
        assert len({VReg(1), VReg(1), VReg(2)}) == 2
        assert TileReg(4) == TileReg(4)
        assert VReg(4) != TileReg(4)


class TestRegisterFile:
    def test_initial_state_zero(self):
        rf = RegisterFile()
        assert np.all(rf.read_v(VReg(5)) == 0.0)
        assert np.all(rf.read_tile(TileReg(3)) == 0.0)

    def test_vector_write_read_roundtrip(self):
        rf = RegisterFile()
        vals = np.arange(SVL_LANES, dtype=float)
        rf.write_v(VReg(7), vals)
        assert np.array_equal(rf.read_v(VReg(7)), vals)

    def test_vector_read_returns_copy(self):
        rf = RegisterFile()
        rf.write_v(VReg(1), np.ones(SVL_LANES))
        out = rf.read_v(VReg(1))
        out[:] = 99.0
        assert np.all(rf.read_v(VReg(1)) == 1.0)

    def test_vector_write_shape_checked(self):
        rf = RegisterFile()
        with pytest.raises(ValueError):
            rf.write_v(VReg(0), np.zeros(7))

    def test_tile_write_read_roundtrip(self):
        rf = RegisterFile()
        block = np.arange(64, dtype=float).reshape(8, 8)
        rf.write_tile(TileReg(2), block)
        assert np.array_equal(rf.read_tile(TileReg(2)), block)

    def test_tile_write_shape_checked(self):
        rf = RegisterFile()
        with pytest.raises(ValueError):
            rf.write_tile(TileReg(0), np.zeros((8, 7)))

    def test_slice_read_write(self):
        rf = RegisterFile()
        rf.write_slice(TileReg(1), 3, np.full(SVL_LANES, 2.5))
        assert np.all(rf.read_slice(TileReg(1), 3) == 2.5)
        # Other rows untouched.
        assert np.all(rf.read_slice(TileReg(1), 2) == 0.0)

    def test_slice_row_range_checked(self):
        rf = RegisterFile()
        with pytest.raises(ValueError):
            rf.read_slice(TileReg(0), 8)
        with pytest.raises(ValueError):
            rf.write_slice(TileReg(0), -1, np.zeros(SVL_LANES))

    def test_accumulate_outer_matches_numpy(self):
        rf = RegisterFile()
        col = np.linspace(0.0, 1.0, SVL_LANES)
        row = np.linspace(2.0, 3.0, SVL_LANES)
        rf.accumulate_outer(TileReg(0), col, row)
        rf.accumulate_outer(TileReg(0), col, row)
        assert np.allclose(rf.read_tile(TileReg(0)), 2.0 * np.outer(col, row))

    def test_accumulate_outer_zero_coefficient_rows_untouched(self):
        rf = RegisterFile()
        rf.write_tile(TileReg(0), np.ones((8, 8)))
        col = np.zeros(SVL_LANES)
        col[2] = 1.0
        rf.accumulate_outer(TileReg(0), col, np.full(SVL_LANES, 5.0))
        tile = rf.read_tile(TileReg(0))
        assert np.all(tile[2] == 6.0)
        mask = np.ones(8, dtype=bool)
        mask[2] = False
        assert np.all(tile[mask] == 1.0)

    def test_zero_tile(self):
        rf = RegisterFile()
        rf.write_tile(TileReg(5), np.ones((8, 8)))
        rf.zero_tile(TileReg(5))
        assert np.all(rf.read_tile(TileReg(5)) == 0.0)

    def test_reset_clears_everything(self):
        rf = RegisterFile()
        rf.write_v(VReg(0), np.ones(SVL_LANES))
        rf.write_tile(TileReg(0), np.ones((8, 8)))
        rf.reset()
        assert np.all(rf.read_v(VReg(0)) == 0.0)
        assert np.all(rf.read_tile(TileReg(0)) == 0.0)

    def test_register_file_counts(self):
        assert NUM_VREGS == 32
        assert NUM_TILES == 8
        assert SVL_LANES == 8
