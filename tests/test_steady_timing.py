"""Bit-identity of band-periodic steady-state elision vs the full band walk.

``steady="on"`` lets :class:`~repro.machine.timing.TimingEngine` detect a
recurring machine state at band boundaries of a full (unsampled) run,
verify one extra period live under an armed static-line watch, and apply
the remaining bands arithmetically.  The contract is *exactness*: counters
and grids are bit-identical to walking every band, for every method,
machine and odd/tail-predicated grid shape — and any verification mismatch
demotes permanently back to the exact walk.  These tests enforce that
contract across the method registry, force the demotion path, pin the
multicore lockstep all-or-none rule, and round-trip detected periods
through the compiled-artifact store (warm runs skip detection entirely).
"""

from __future__ import annotations

import pytest

from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.machine.artifacts import install_artifact_store
from repro.machine.config import LX2, M4
from repro.machine.memory import MemorySpace
from repro.machine.multicore import MulticoreModel
from repro.machine.steady import SteadyController
from repro.machine.timing import (
    STEADY_MODES,
    TimingEngine,
    default_steady,
)
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark

MACHINES = {"LX2": LX2, "M4": M4}

#: Odd interior heights (tail-predicated last band rides through the
#: periodic jump) with 16-aligned columns so the non-predicated methods
#: build on both machines; large enough that the moving span clears the
#: in-cache gate on both L2s.  Methods with their own shape constraints
#: (e.g. matrix-only needs row multiples) skip with the builder's reason.
GRIDS = [("box2d25p", 515, 512), ("star2d9p", 387, 512)]

#: Per-machine grids on which the flagship method provably engages (M4's
#: larger L1 doubles the alignment period, so it needs the wider grid).
ENGAGE_GRIDS = {"LX2": ("box2d25p", 515, 512), "M4": ("box2d25p", 515, 515)}


def _build(method, machine_name, stencil, rows, cols, seed=11):
    """Kernel + config; raises ValueError when the method rejects the shape."""
    spec = benchmark(stencil)
    config = MACHINES[machine_name]()
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=seed)
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, config, KernelOptions(unroll_j=2))
    return kernel, config


def _full(method, machine_name, steady, stencil, rows, cols):
    try:
        kernel, config = _build(method, machine_name, stencil, rows, cols)
    except ValueError as exc:
        pytest.skip(f"{method} on {machine_name} {stencil}: {exc}")
    engine = TimingEngine(config, engine="compiled", steady=steady)
    counters = engine.run(kernel, sample=False, warm=False)
    return counters, engine.steady_stats


@pytest.mark.parametrize("stencil,rows,cols", GRIDS, ids=[g[0] for g in GRIDS])
@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", sorted(METHODS))
def test_steady_bit_identical_across_registry(method, machine_name, stencil, rows, cols):
    exact, _ = _full(method, machine_name, "off", stencil, rows, cols)
    elided, stats = _full(method, machine_name, "on", stencil, rows, cols)
    assert elided.to_dict() == exact.to_dict()
    # Elision may legitimately sit out (uncertifiable class, no recurrence,
    # no room) but it must never have *demoted*: a verified candidate that
    # fails its probe on these deterministic grids would be a soundness bug.
    assert stats.demoted == 0


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
def test_steady_engages_and_elides_bands(machine_name):
    """The flagship method must actually take the fast path, not just match."""
    stencil, rows, cols = ENGAGE_GRIDS[machine_name]
    exact, _ = _full("hstencil", machine_name, "off", stencil, rows, cols)
    elided, stats = _full("hstencil", machine_name, "on", stencil, rows, cols)
    assert elided.to_dict() == exact.to_dict()
    assert stats.engaged >= 1
    assert stats.elided_bands >= 8
    assert stats.disabled == ""


def test_forced_demotion_stays_exact(monkeypatch):
    """A mid-window static event must demote (permanently) and keep the
    counters identical to the all-band walk."""
    stencil, rows, cols = ENGAGE_GRIDS["LX2"]
    exact, _ = _full("hstencil", "LX2", "off", stencil, rows, cols)

    original_start = SteadyController._start_verify

    def sabotaged_start(self, k, p, digest, delta, raw):
        original_start(self, k, p, digest, delta, raw)
        # Simulate a demand touch on a watched static line during the
        # verification window: the probe must fail and demote.
        self.pipe.hierarchy.static_watch_hits += 1

    monkeypatch.setattr(SteadyController, "_start_verify", sabotaged_start)
    elided, stats = _full("hstencil", "LX2", "on", stencil, rows, cols)

    assert stats.demoted >= 1
    assert stats.engaged == 0
    assert stats.disabled == "verify-mismatch"
    assert elided.to_dict() == exact.to_dict()


# ---------------------------------------------------------------------------
# Multicore lockstep
# ---------------------------------------------------------------------------

LOCK_ROWS, LOCK_COLS = 387, 389


def _lockstep_kernels(cores, machine_name="LX2"):
    """Independent per-core slice kernels (each with its own memory space)."""
    kernels = []
    for core in range(cores):
        kernel, config = _build(
            "hstencil", machine_name, "box2d25p", LOCK_ROWS, LOCK_COLS,
            seed=11 + core,
        )
        kernels.append(kernel)
    return kernels, config


def _solo_exact(kernel, config):
    engine = TimingEngine(config, engine="compiled", steady="off")
    return engine.run(kernel, sample=False, warm=False)


@pytest.mark.parametrize("cores", [1, 2, 4])
def test_lockstep_bit_identical_to_solo(cores):
    kernels, config = _lockstep_kernels(cores)
    solo = [_solo_exact(k, config) for k in kernels]

    mc = MulticoreModel(MACHINES["LX2"](), engine="compiled", steady="on")
    lock = mc.lockstep_slices(kernels, warm=False)

    assert len(lock) == cores
    for got, want in zip(lock, solo):
        assert got.to_dict() == want.to_dict()
    stats = mc.engine.lockstep_steady_stats
    assert stats is not None and len(stats) == cores
    # Symmetric slices reach readiness together: every core engages.
    assert all(s.engaged >= 1 for s in stats)
    assert all(s.demoted == 0 for s in stats)


def test_lockstep_single_demotion_disables_all_cores(monkeypatch):
    """One core failing its probe must abandon elision on *every* core
    (all-or-none), and all counters must stay exact."""
    kernels, config = _lockstep_kernels(2)
    solo = [_solo_exact(k, config) for k in kernels]

    original_start = SteadyController._start_verify
    sabotaged = []

    def sabotage_first(self, k, p, digest, delta, raw):
        original_start(self, k, p, digest, delta, raw)
        if not sabotaged:
            sabotaged.append(self)
            self.pipe.hierarchy.static_watch_hits += 1

    monkeypatch.setattr(SteadyController, "_start_verify", sabotage_first)

    mc = MulticoreModel(MACHINES["LX2"](), engine="compiled", steady="on")
    lock = mc.lockstep_slices(kernels, warm=False)

    for got, want in zip(lock, solo):
        assert got.to_dict() == want.to_dict()
    stats = mc.engine.lockstep_steady_stats
    assert sabotaged, "sabotage never reached a verification window"
    assert sum(s.demoted for s in stats) >= 1
    assert all(s.engaged == 0 for s in stats)
    assert all(s.disabled for s in stats)


# ---------------------------------------------------------------------------
# Artifact-store round trip
# ---------------------------------------------------------------------------


def test_steady_record_round_trip(tmp_path):
    """A verified period persists to the artifact store; a fresh engine
    (new process in spirit) runs in record mode with zero detection work
    and identical counters."""
    store = str(tmp_path / "artifacts")
    stencil, rows, cols = ENGAGE_GRIDS["LX2"]
    try:
        cold = TimingEngine(LX2(), engine="compiled", steady="on", artifact_dir=store)
        kernel, _ = _build("hstencil", "LX2", stencil, rows, cols)
        first = cold.run(kernel, sample=False, warm=False)
        cold_stats = cold.steady_stats
        assert cold_stats.engaged >= 1
        assert cold_stats.detect_sigs > 0
        assert not cold_stats.record_mode

        warm = TimingEngine(LX2(), engine="compiled", steady="on", artifact_dir=store)
        kernel, _ = _build("hstencil", "LX2", stencil, rows, cols)
        second = warm.run(kernel, sample=False, warm=False)
        warm_stats = warm.steady_stats
        assert warm_stats.record_mode
        assert warm_stats.detect_sigs == 0
        assert warm_stats.record_probes >= 1
        assert warm_stats.engaged >= 1
        assert second.to_dict() == first.to_dict()
    finally:
        install_artifact_store(None)


# ---------------------------------------------------------------------------
# Mode selection and guard rails
# ---------------------------------------------------------------------------


class TestSteadySelection:
    def test_default_steady_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEADY", raising=False)
        assert default_steady() == "on"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEADY", "off")
        assert default_steady() == "off"
        assert TimingEngine(LX2()).steady == "off"

    def test_unknown_steady_rejected(self):
        with pytest.raises(ValueError, match="unknown steady"):
            TimingEngine(LX2(), steady="fast")

    def test_modes_are_exactly_the_documented_pair(self):
        assert STEADY_MODES == ("on", "off")

    def test_iters_under_sampling_names_the_fix(self):
        kernel, config = _build("hstencil", "LX2", "star2d9p", 33, 48)
        engine = TimingEngine(config, engine="compiled")
        with pytest.raises(ValueError, match=r"sample=False \(or --no-sample\)"):
            engine.run(kernel, sample=True, iters=2)
