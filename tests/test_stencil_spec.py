"""StencilSpec: validation, taps, decompositions, factories."""

import numpy as np
import pytest

from repro.stencils.spec import StencilSpec, box2d, box3d, heat2d, star2d, star3d


class TestValidation:
    def test_pattern_checked(self):
        with pytest.raises(ValueError):
            StencilSpec("x", "diamond", 2, 1, {0: np.ones((3, 3))})

    def test_ndim_checked(self):
        with pytest.raises(ValueError):
            StencilSpec("x", "box", 4, 1, {0: np.ones((3, 3))})

    def test_radius_checked(self):
        with pytest.raises(ValueError):
            StencilSpec("x", "box", 2, 0, {0: np.ones((1, 1))})

    def test_plane_shape_checked(self):
        with pytest.raises(ValueError):
            StencilSpec("x", "box", 2, 2, {0: np.ones((3, 3))})

    def test_2d_single_plane_only(self):
        with pytest.raises(ValueError):
            StencilSpec("x", "box", 2, 1, {0: np.ones((3, 3)), 1: np.ones((3, 3))})

    def test_star_rejects_offaxis_coefficients(self):
        plane = np.zeros((3, 3))
        plane[0, 0] = 1.0
        with pytest.raises(ValueError):
            StencilSpec("x", "star", 2, 1, {0: plane})

    def test_star3d_offcenter_plane_center_only(self):
        center = np.zeros((3, 3))
        center[1, :] = 1.0
        center[:, 1] = 1.0
        bad = np.zeros((3, 3))
        bad[1, 0] = 1.0
        with pytest.raises(ValueError):
            StencilSpec("x", "star", 3, 1, {0: center, 1: bad})

    def test_plane_offset_within_radius(self):
        plane = np.zeros((3, 3))
        plane[1, 1] = 1.0
        with pytest.raises(ValueError):
            StencilSpec("x", "box", 3, 1, {0: plane, 2: plane})


class TestTapEnumeration:
    def test_star2d_point_counts(self):
        for r in (1, 2, 3, 4):
            assert star2d(r).num_points == 4 * r + 1

    def test_box2d_point_counts(self):
        for r in (1, 2, 3):
            assert box2d(r).num_points == (2 * r + 1) ** 2

    def test_star3d_point_counts(self):
        for r in (1, 2):
            assert star3d(r).num_points == 6 * r + 1

    def test_box3d_point_counts(self):
        assert box3d(1).num_points == 27

    def test_taps_match_plane_values(self):
        spec = box2d(1)
        plane = spec.coeffs2d
        for dz, di, dj, c in spec.taps():
            assert dz == 0
            assert plane[di + 1, dj + 1] == c

    def test_flops_per_point(self):
        assert star2d(1).flops_per_point == 10


class TestDecompositions:
    def test_column_matches_plane(self):
        spec = box2d(2)
        for s in range(-2, 3):
            assert np.array_equal(spec.column(s), spec.coeffs2d[:, s + 2])

    def test_column_shift_range_checked(self):
        with pytest.raises(ValueError):
            star2d(1).column(2)

    def test_star_vertical_plus_horizontal_cover_all_taps(self):
        """The hybrid split must lose no coefficient mass."""
        spec = star2d(2)
        v = spec.vertical_coeffs()
        h = spec.horizontal_offaxis_coeffs()
        total = v.sum() + h.sum()
        assert total == pytest.approx(spec.coeffs2d.sum())

    def test_horizontal_offaxis_zeroes_center(self):
        spec = star2d(2)
        assert spec.horizontal_offaxis_coeffs()[2] == 0.0
        assert spec.horizontal_coeffs()[2] != 0.0

    def test_star_nonzero_shifts(self):
        spec = star2d(2)
        assert spec.nonzero_shifts(0) == (-2, -1, 0, 1, 2)

    def test_star3d_offcenter_shifts(self):
        spec = star3d(1)
        assert spec.nonzero_shifts(1) == (0,)
        assert spec.plane_offsets() == (-1, 0, 1)

    def test_scaled(self):
        spec = star2d(1)
        doubled = spec.scaled(2.0)
        assert np.array_equal(doubled.coeffs2d, 2.0 * spec.coeffs2d)
        assert doubled.name.endswith("-scaled")


class TestFactories:
    def test_default_coefficients_deterministic(self):
        a = star2d(2)
        b = star2d(2)
        assert np.array_equal(a.coeffs2d, b.coeffs2d)

    def test_default_coefficients_distinct(self):
        """Distinct values catch transposed-coefficient kernel bugs."""
        spec = box2d(1)
        vals = spec.coeffs2d.ravel()
        assert len(np.unique(vals)) == len(vals)

    def test_custom_coefficients(self):
        plane = np.zeros((3, 3))
        plane[1, :] = 1.0
        plane[:, 1] = 1.0
        spec = star2d(1, coefficients=plane)
        assert np.array_equal(spec.coeffs2d, plane)

    def test_heat2d_is_conservative(self):
        spec = heat2d()
        assert spec.coeffs2d.sum() == pytest.approx(1.0)
        assert spec.pattern == "star"

    def test_names(self):
        assert star2d(2).name == "star2d9p"
        assert box2d(3).name == "box2d49p"
        assert star3d(1).name == "star3d7p"
        assert box3d(2).name == "box3d125p"
