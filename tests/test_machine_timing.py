"""Timing engine: full vs sampled runs, warm passes, extrapolation."""

import pytest

from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2
from repro.machine.memory import MemorySpace
from repro.machine.timing import FULL_SIM_POINT_LIMIT, SamplePlan, TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark


def build(method="hstencil", stencil="star2d5p", rows=32, cols=32, unroll=2):
    spec = benchmark(stencil)
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A")
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    return make_kernel(method, spec, src, dst, LX2(), KernelOptions(unroll_j=unroll))


class TestFullRuns:
    def test_counters_cover_all_points(self):
        k = build()
        pc = TimingEngine(LX2()).run(k, sample=False, warm=False)
        assert pc.points == 32 * 32
        assert pc.cycles > 0
        assert pc.instructions > 0
        assert not pc.sampled

    def test_warm_run_faster_than_cold(self):
        k = build()
        te = TimingEngine(LX2())
        cold = te.run(k, sample=False, warm=False)
        warm = te.run(k, sample=False, warm=True)
        assert warm.cycles < cold.cycles
        assert warm.points == cold.points

    def test_label_defaults_to_kernel_name(self):
        k = build()
        pc = TimingEngine(LX2()).run(k, sample=False)
        assert pc.label == "hstencil"

    def test_runs_are_deterministic(self):
        a = TimingEngine(LX2()).run(build(), sample=False)
        b = TimingEngine(LX2()).run(build(), sample=False)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.l1_hits == b.l1_hits


class TestSampledRuns:
    def test_sampled_matches_full_within_tolerance(self):
        """Band sampling must agree with the full simulation in steady state."""
        k_full = build(rows=64, cols=64, unroll=2)
        full = TimingEngine(LX2()).run(k_full, sample=False, warm=False)
        k_samp = build(rows=64, cols=64, unroll=2)
        plan = SamplePlan(warmup_bands=1, min_measure_points=2048)
        samp = TimingEngine(LX2()).run(k_samp, sample=True, plan=plan)
        assert samp.sampled
        assert samp.points == full.points
        assert samp.cycles == pytest.approx(full.cycles, rel=0.25)

    def test_auto_sampling_threshold(self):
        small = build(rows=32, cols=32)
        pc = TimingEngine(LX2()).run(small)  # 1024 points -> full sim
        assert not pc.sampled
        assert 32 * 32 < FULL_SIM_POINT_LIMIT

    def test_sampled_counters_scale_to_grid(self):
        k = build(rows=64, cols=64)
        plan = SamplePlan(warmup_bands=1, min_measure_points=1024)
        pc = TimingEngine(LX2()).run(k, sample=True, plan=plan)
        assert pc.points == 64 * 64
        # Extrapolated instruction count close to the full run's.
        full = TimingEngine(LX2()).run(build(rows=64, cols=64), sample=False, warm=False)
        assert pc.instructions == pytest.approx(full.instructions, rel=0.2)

    def test_max_measure_bands_respected(self):
        k = build(rows=64, cols=64)
        plan = SamplePlan(warmup_bands=1, min_measure_points=10**9, max_measure_bands=2)
        pc = TimingEngine(LX2()).run(k, sample=True, plan=plan)
        assert pc.sampled
        assert pc.points == 64 * 64


class TestTraceRuns:
    def test_run_trace_label(self):
        from repro.isa.instructions import SCALAR_OP
        from repro.isa.program import Trace

        pc = TimingEngine(LX2()).run_trace(Trace([SCALAR_OP()]), label="micro")
        assert pc.label == "micro"
        assert pc.instructions == 1
