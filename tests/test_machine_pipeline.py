"""Timing pipeline: ports, latencies, issue width, scoreboard, ILP facts.

The last class checks the architectural calibration facts of Section 2.1 /
Figure 3 that the whole reproduction rests on.
"""

import pytest

from repro.isa.instructions import (
    EXT,
    FMLA,
    FMOPA,
    LD1D,
    PRFM,
    SCALAR_OP,
    ST1D,
)
from repro.isa.program import Trace
from repro.isa.registers import TileReg, VReg
from repro.machine.config import LX2
from repro.machine.pipeline import PipelineModel
from repro.machine.timing import TimingEngine


def run(trace):
    pipe = PipelineModel(LX2())
    pipe.process_trace(trace)
    return pipe


class TestBasicIssue:
    def test_independent_vector_ops_dual_issue(self):
        # 8 independent FMLAs on 2 vector pipes: 4 issue cycles + latency.
        trace = Trace(FMLA(VReg(i), VReg(16), VReg(17)) for i in range(8))
        pipe = run(trace)
        lat = LX2().latencies["fmla"].latency
        assert pipe.makespan == 3 + lat  # last issues at cycle 3

    def test_dependent_chain_serializes(self):
        trace = Trace(FMLA(VReg(0), VReg(1), VReg(2)) for _ in range(4))
        pipe = run(trace)
        lat = LX2().latencies["fmla"].latency
        assert pipe.makespan == 4 * lat

    def test_issue_width_caps_per_cycle(self):
        cfg = LX2()
        # More independent scalar ops than width allows per cycle.
        trace = Trace(SCALAR_OP() for _ in range(12))
        pipe = run(trace)
        # 2 scalar pipes, issue width 4: scalar port is the constraint (2/cycle).
        assert pipe.makespan >= 12 // 2

    def test_port_contention_ext_vs_fmla(self):
        """EXT and FMLA share the vector pipes (Section 3.2.1)."""
        only_fmla = Trace(FMLA(VReg(i % 8), VReg(16), VReg(17)) for i in range(8))
        mixed = Trace()
        for i in range(8):
            mixed.append(FMLA(VReg(i), VReg(16), VReg(17)))
            mixed.append(EXT(VReg(8 + i), VReg(16), VReg(17), 1))
        assert run(mixed).makespan > run(only_fmla).makespan

    def test_in_order_issue_monotone(self):
        pipe = PipelineModel(LX2())
        t1 = pipe.process(FMLA(VReg(0), VReg(1), VReg(2)))
        t2 = pipe.process(FMLA(VReg(0), VReg(1), VReg(2)))  # dependent
        t3 = pipe.process(LD1D(VReg(3), 1000))  # independent but in-order
        assert t1 <= t2
        assert t2 <= t3 or t3 >= t1  # never issues before earlier instrs


class TestMemoryTiming:
    def test_load_miss_slower_than_hit(self):
        cfg = LX2()
        pipe = PipelineModel(cfg)
        pipe.process(LD1D(VReg(0), 1000))
        miss_ready = pipe._ready["z0"]
        pipe.process(LD1D(VReg(1), 1000))  # now cached
        hit_ready = pipe._ready["z1"]
        assert miss_ready - 0 > hit_ready - pipe._frontier

    def test_store_does_not_block(self):
        trace = Trace([LD1D(VReg(0), 1000), ST1D(VReg(0), 5000), SCALAR_OP()])
        pipe = run(trace)
        # store latency is 1; makespan dominated by the load
        assert pipe.makespan <= LX2().mem_load_latency + 4

    def test_prefetch_consumes_load_slot_but_never_stalls(self):
        trace = Trace([PRFM(9000), SCALAR_OP()])
        pipe = run(trace)
        assert pipe.sw_prefetches == 1
        assert pipe.makespan <= 3

    def test_prefetch_hides_miss_latency(self):
        cfg = LX2()
        cold = Trace([LD1D(VReg(0), 1000), FMLA(VReg(1), VReg(0), VReg(0))])
        warm = Trace(
            [PRFM(2000)]
            + [SCALAR_OP() for _ in range(40)]
            + [LD1D(VReg(0), 2000), FMLA(VReg(1), VReg(0), VReg(0))]
        )
        t_cold = TimingEngine(cfg).run_trace(cold)
        t_warm = TimingEngine(cfg).run_trace(warm)
        # 40 scalar ops take ~20 cycles; the prefetched load then hits L1.
        assert t_warm.cycles < t_cold.cycles + 20


class TestCounters:
    def test_snapshot_counts(self):
        trace = Trace([LD1D(VReg(0), 1000), FMLA(VReg(1), VReg(0), VReg(0)), ST1D(VReg(1), 2000)])
        pipe = run(trace)
        pc = pipe.snapshot()
        assert pc.instructions == 3
        assert pc.flops == 16
        assert pc.l1_accesses >= 2

    def test_delta(self):
        pipe = PipelineModel(LX2())
        pipe.process(LD1D(VReg(0), 1000))
        before = pipe.snapshot()
        pipe.process(FMLA(VReg(1), VReg(0), VReg(0)))
        after = pipe.snapshot()
        d = PipelineModel.delta(after, before)
        assert d.instructions == 1
        assert d.flops == 16


class TestPaperCalibrationFacts:
    """The Section 2.1 / Figure 3 architectural facts."""

    def _fmopa_stream(self, n_tiles, n=64):
        return Trace(FMOPA(TileReg(i % n_tiles), VReg(0), VReg(1)) for i in range(n))

    def test_fp64_outer_product_peak_is_4x_vector_peak(self):
        cfg = LX2()
        te = TimingEngine(cfg)
        matrix = te.run_trace(self._fmopa_stream(8, n=256))
        vector = te.run_trace(
            Trace(FMLA(VReg(i % 16), VReg(16), VReg(17)) for i in range(256))
        )
        m_rate = matrix.flops / matrix.cycles
        v_rate = vector.flops / vector.cycles
        assert m_rate / v_rate == pytest.approx(4.0, rel=0.15)

    def test_peak_needs_four_independent_accumulators(self):
        """Figure 3a: FMOPA throughput scales up to 4 concurrent tiles."""
        te = TimingEngine(LX2())
        rates = {
            k: te.run_trace(self._fmopa_stream(k)).flops
            / te.run_trace(self._fmopa_stream(k)).cycles
            for k in (1, 2, 4, 8)
        }
        assert rates[2] > 1.8 * rates[1]
        assert rates[4] > 3.4 * rates[1]
        assert rates[8] == pytest.approx(rates[4], rel=0.05)

    def test_matrix_vector_overlap_speedup(self):
        """Figure 3b: interleaving FMOPA and FMLA gives ~1.5x."""
        te = TimingEngine(LX2())
        n = 32
        iso_m = te.run_trace(Trace(FMOPA(TileReg(i % 4), VReg(0), VReg(1)) for i in range(n)))
        iso_v = te.run_trace(Trace(FMLA(VReg(2 + i % 8), VReg(0), VReg(1)) for i in range(n)))
        inter = Trace()
        for i in range(n):
            inter.append(FMOPA(TileReg(i % 4), VReg(0), VReg(1)))
            inter.append(FMLA(VReg(2 + i % 8), VReg(0), VReg(1)))
        overlap = te.run_trace(inter)
        speedup = (iso_m.cycles + iso_v.cycles) / overlap.cycles
        assert 1.3 < speedup < 1.9

    def test_mova_costs_more_than_fmopa(self):
        """Section 3.1.1: the slice-to-vector transfer dominates."""
        cfg = LX2()
        mova = cfg.latencies["mova.tv"]
        fmopa = cfg.latencies["fmopa"]
        assert mova.initiation_interval >= 2 * fmopa.initiation_interval
        assert mova.latency >= 2 * fmopa.latency
