"""Bit-identity of the columnar sampled-replay path vs the scalar walk.

The ``timing="columnar"`` mode of the compiled engine precomputes each
block's word-address stream and memoizes the scoreboard recurrence, but it
promises *exact* equality with the per-block scalar replay — identical
:class:`~repro.machine.perf.PerfCounters` for every method, machine and
grid shape, including odd/tail-predicated sizes.  These tests enforce that
contract across the whole method registry, exercise the probe-verify /
demote fallback (a demoted class must still produce identical counters via
the scalar walk), and pin down the ``REPRO_TIMING`` selection plumbing.
"""

from __future__ import annotations

import pytest

from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.machine.columnar import ColumnarReplayer
from repro.machine.config import LX2, M4
from repro.machine.memory import MemorySpace
from repro.machine.timing import (
    TIMING_MODES,
    SamplePlan,
    TimingEngine,
    default_timing,
)
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark

MACHINES = {"LX2": LX2, "M4": M4}

#: Odd sizes so tail-predicated rows exercise more than one shape class.
GRIDS = [("box2d9p", 37, 29), ("star2d9p", 33, 48)]

#: Tiny plan so even these small grids run several measured bands.
PLAN = SamplePlan(warmup_bands=1, min_measure_points=600)


def _build(method, machine_name, stencil, rows, cols):
    """Kernel + config; None if the method rejects this machine."""
    spec = benchmark(stencil)
    config = MACHINES[machine_name]()
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=11)
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    try:
        kernel = make_kernel(method, spec, src, dst, config, KernelOptions(unroll_j=2))
    except ValueError:
        return None  # method not available on this machine (e.g. no V-FMLA)
    return kernel, config


def _sampled(method, machine_name, stencil, rows, cols, timing):
    built = _build(method, machine_name, stencil, rows, cols)
    if built is None:
        pytest.skip(f"{method} not applicable on {machine_name}")
    kernel, config = built
    engine = TimingEngine(config, engine="compiled", timing=timing)
    return engine.run(kernel, sample=True, plan=PLAN)


@pytest.mark.parametrize("stencil,rows,cols", GRIDS, ids=[g[0] for g in GRIDS])
@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", sorted(METHODS))
def test_columnar_sampled_bit_identical(method, machine_name, stencil, rows, cols):
    scalar = _sampled(method, machine_name, stencil, rows, cols, "scalar")
    columnar = _sampled(method, machine_name, stencil, rows, cols, "columnar")
    assert columnar.to_dict() == scalar.to_dict()


def test_forced_demotion_falls_back_bit_identically(monkeypatch):
    """A class that fails probe verification must demote permanently and
    keep producing counters identical to the all-scalar walk."""
    built = _build("hstencil", "LX2", "box2d9p", 37, 29)
    kernel, config = built

    scalar = TimingEngine(config, engine="compiled", timing="scalar").run(
        kernel, sample=True, plan=PLAN
    )

    demotions = []
    original_demote = ColumnarReplayer._demote

    def counting_demote(self, template, state):
        original_demote(self, template, state)
        demotions.append(template)

    # Every probe "fails": all shape classes must demote to the scalar walk.
    monkeypatch.setattr(
        ColumnarReplayer, "_columnar_matches", staticmethod(lambda clone, pipe: False)
    )
    monkeypatch.setattr(ColumnarReplayer, "_demote", counting_demote)

    built = _build("hstencil", "LX2", "box2d9p", 37, 29)
    kernel, config = built
    columnar = TimingEngine(config, engine="compiled", timing="columnar").run(
        kernel, sample=True, plan=PLAN
    )

    assert demotions, "probe rejection must trigger at least one demotion"
    assert columnar.to_dict() == scalar.to_dict()


class TestTimingSelection:
    def test_default_timing_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIMING", raising=False)
        assert default_timing() == "columnar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMING", "scalar")
        assert default_timing() == "scalar"
        assert TimingEngine(LX2()).timing == "scalar"

    def test_unknown_timing_rejected(self):
        with pytest.raises(ValueError, match="unknown timing"):
            TimingEngine(LX2(), timing="vectorised")

    def test_modes_are_exactly_the_documented_pair(self):
        assert TIMING_MODES == ("columnar", "scalar")
