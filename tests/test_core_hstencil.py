"""HStencil facade: apply / benchmark / listing / validation."""

import numpy as np
import pytest

from repro import HStencil, KernelOptions, LX2, M4
from repro.stencils.reference import apply_reference
from repro.stencils.spec import box2d, heat2d, star2d, star3d


class TestApply:
    def test_apply_matches_reference(self):
        spec = star2d(2)
        hs = HStencil(spec)
        field = np.random.default_rng(0).random((20, 36))
        out = hs.apply(field)
        assert out.shape == (16, 32)
        assert np.allclose(out, apply_reference(field, spec), rtol=1e-12)

    def test_apply_3d(self):
        spec = star3d(1)
        hs = HStencil(spec, options=KernelOptions(unroll_j=2))
        field = np.random.default_rng(1).random((6, 10, 18))
        out = hs.apply(field)
        assert out.shape == (4, 8, 16)
        assert np.allclose(out, apply_reference(field, spec), rtol=1e-12)

    def test_apply_verbose_metadata(self):
        hs = HStencil(star2d(1))
        field = np.random.default_rng(2).random((10, 34))
        res = hs.apply_verbose(field)
        assert res.kernel_name == "hstencil"
        assert res.instructions_executed > 0

    def test_apply_m4_machine(self):
        spec = star2d(1)
        hs = HStencil(spec, machine=M4())
        field = np.random.default_rng(3).random((10, 34))
        out = hs.apply(field)
        assert np.allclose(out, apply_reference(field, spec), rtol=1e-12)

    def test_every_method_through_facade(self):
        field = np.random.default_rng(4).random((20, 36))
        spec = star2d(2)
        ref = apply_reference(field, spec)
        for method in ("auto", "vector-only", "matrix-only", "hstencil"):
            out = HStencil(spec, method=method).apply(field)
            assert np.allclose(out, ref, rtol=1e-11), method

    def test_wrong_dimensionality_rejected(self):
        hs = HStencil(star2d(1))
        with pytest.raises(ValueError):
            hs.apply(np.zeros((4, 4, 4)))

    def test_too_small_field_rejected(self):
        hs = HStencil(star2d(2))
        with pytest.raises(ValueError):
            hs.apply(np.zeros((4, 4)))

    def test_arbitrary_interior_sizes_supported(self):
        """The hstencil kernel predicates tail bands/tiles (no /8 rule)."""
        spec = star2d(1)
        field = np.random.default_rng(9).random((12, 15))  # interior 10x13
        out = HStencil(spec).apply(field)
        assert out.shape == (10, 13)
        assert np.allclose(out, apply_reference(field, spec), rtol=1e-11)

    def test_comparison_kernels_still_require_conforming_sizes(self):
        hs = HStencil(star2d(1), method="matrix-only")
        with pytest.raises(ValueError, match="multiple"):
            hs.apply(np.zeros((10, 12)))  # interior 8x10, not /32


class TestBenchmark:
    def test_benchmark_counters(self):
        hs = HStencil(heat2d())
        pc = hs.benchmark(64, 64)
        assert pc.points == 64 * 64
        assert pc.cycles > 0
        assert "hstencil" in pc.label

    def test_methods_rank_as_expected_in_cache(self):
        """The headline ordering: hstencil > matrix-only > auto."""
        results = {}
        for method in ("auto", "matrix-only", "hstencil"):
            results[method] = HStencil(box2d(2), method=method).benchmark(128, 128)
        assert results["hstencil"].cycles < results["matrix-only"].cycles
        assert results["matrix-only"].cycles < results["auto"].cycles

    def test_ipc_ordering(self):
        """Figure 14: the hybrid kernel has the highest IPC."""
        hst = HStencil(star2d(2), method="hstencil").benchmark(128, 128)
        mat = HStencil(star2d(2), method="matrix-only").benchmark(128, 128)
        assert hst.ipc > mat.ipc
        assert hst.ipc > 2.0


class TestListing:
    def test_listing_contains_preamble_and_block(self):
        hs = HStencil(star2d(1), options=KernelOptions(unroll_j=2))
        text = hs.listing(16, 16)
        assert "// preamble" in text
        assert "fmopa" in text

    def test_listing_parses_back(self):
        from repro.isa.asm import parse_trace

        hs = HStencil(star2d(1), options=KernelOptions(unroll_j=2))
        text = hs.listing(16, 16)
        body = text.split("// block")[1].split("\n", 1)[1]
        trace = parse_trace(body)
        assert len(trace) > 20
