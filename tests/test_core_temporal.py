"""Temporal blocking: wavefront schedule and functional equivalence."""

import numpy as np
import pytest

from repro.core.iterate import StencilIterator
from repro.core.temporal import WAVEFRONT_LAG, TemporalBlockedIterator
from repro.kernels.base import KernelOptions
from repro.stencils.reference import iterate_reference
from repro.stencils.spec import box2d, heat2d, star2d, star3d


def make(spec, **kw):
    return TemporalBlockedIterator(spec, options=KernelOptions(unroll_j=2), **kw)


class TestCorrectness:
    @pytest.mark.parametrize("steps", [1, 2, 3, 5])
    def test_matches_plain_iteration(self, steps):
        spec = heat2d()
        field = np.random.default_rng(0).random((34, 34))
        fused = make(spec).run(field, steps)
        ref = iterate_reference(field, spec, steps)
        assert np.allclose(fused, ref, rtol=1e-10)

    def test_radius2_star(self):
        spec = star2d(2)
        field = np.random.default_rng(1).random((36, 36))
        fused = make(spec).run(field, 4)
        ref = iterate_reference(field, spec, 4)
        assert np.allclose(fused, ref, rtol=1e-10)

    def test_box_stencil(self):
        spec = box2d(2)
        field = np.random.default_rng(2).random((28, 52))
        fused = make(spec).run(field, 3)
        ref = iterate_reference(field, spec, 3)
        assert np.allclose(fused, ref, rtol=1e-10)

    def test_equals_stencil_iterator(self):
        spec = star2d(1)
        field = np.random.default_rng(3).random((26, 42))
        fused = make(spec).run(field, 4)
        plain = StencilIterator(spec, options=KernelOptions(unroll_j=2)).run(field, 4)
        assert np.allclose(fused, plain, rtol=1e-12)

    def test_zero_steps(self):
        spec = heat2d()
        field = np.random.default_rng(4).random((20, 20))
        assert np.array_equal(make(spec).run(field, 0), field)

    def test_odd_grid_sizes(self):
        spec = star2d(1)
        field = np.random.default_rng(5).random((23, 37))
        fused = make(spec).run(field, 3)
        ref = iterate_reference(field, spec, 3)
        assert np.allclose(fused, ref, rtol=1e-10)


class TestSchedule:
    def test_wavefront_covers_all_units_once(self):
        it = make(heat2d())
        it._ensure_compiled(64, 32)
        sched = it._schedule(steps=3)
        n_bands = len(it._bands[0])
        assert len(sched) == 3 * n_bands
        assert len(set(sched)) == len(sched)

    def test_wavefront_dependency_order(self):
        """Step t at band b runs after step t-1 at bands <= b + 1,
        and before step t+1 reaches band b - 1 (read-safety lag)."""
        it = make(heat2d())
        it._ensure_compiled(64, 32)
        sched = it._schedule(steps=4)
        position = {unit: n for n, unit in enumerate(sched)}
        n_bands = len(it._bands[0])
        for t in range(1, 4):
            for b in range(n_bands):
                for need in range(max(0, b - 1), min(n_bands, b + 2)):
                    assert position[(t - 1, need)] < position[(t, b)]

    def test_lag_respects_radius(self):
        # lag * band height must exceed the largest supported radius
        from repro.isa.registers import SVL_LANES

        assert WAVEFRONT_LAG * SVL_LANES > SVL_LANES  # radius <= 8


class TestValidation:
    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            TemporalBlockedIterator(star3d(1))

    def test_negative_steps(self):
        it = make(heat2d())
        with pytest.raises(ValueError):
            it.run(np.zeros((20, 20)), -1)

    def test_timing_counters(self):
        it = make(heat2d())
        pc = it.time_steps(32, 32, steps=2)
        assert pc.points == 2 * 32 * 32
        assert pc.cycles > 0
        assert "temporal" in pc.label
