"""Property-based tests (hypothesis) on core invariants.

Four invariant families:

* kernel correctness over random stencil coefficients and grid shapes;
* the list scheduler preserves functional semantics for arbitrary traces;
* cache simulator invariants (occupancy bounds, hit monotonicity, stats);
* sliding coefficient-vector construction matches its defining equation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import EXT, FADD_V, FMLA, FMOPA, LD1D, SET_LANES, ST1D
from repro.isa.program import Trace
from repro.isa.registers import SVL_LANES, TileReg, VReg
from repro.kernels.base import KernelOptions, sliding_vectors, rows_for_placement
from repro.kernels.registry import make_kernel
from repro.kernels.scheduling import schedule_trace
from repro.machine.cache import CacheHierarchy
from repro.machine.config import LX2
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.stencils.grid import Grid2D
from repro.stencils.reference import reference_stencil_2d
from repro.stencils.spec import box2d, star2d

LX2_CFG = LX2()

# ---------------------------------------------------------------------------
# Kernel correctness over random stencils
# ---------------------------------------------------------------------------

coeff_values = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False).map(
    lambda v: round(v, 3)
)


@st.composite
def random_star_spec(draw):
    r = draw(st.integers(min_value=1, max_value=3))
    side = 2 * r + 1
    plane = np.zeros((side, side))
    for k in range(side):
        plane[r, k] = draw(coeff_values)
        plane[k, r] = draw(coeff_values)
    # Keep at least one nonzero so the spec is a real stencil.
    if not np.any(plane):
        plane[r, r] = 1.0
    return star2d(r, coefficients=plane, name=f"prop-star-r{r}")


@st.composite
def random_box_spec(draw):
    r = draw(st.integers(min_value=1, max_value=2))
    side = 2 * r + 1
    plane = np.array(
        [[draw(coeff_values) for _ in range(side)] for _ in range(side)]
    )
    if not np.any(plane):
        plane[r, r] = 1.0
    return box2d(r, coefficients=plane, name=f"prop-box-r{r}")


def _check_kernel(spec, method, rows, cols, seed):
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=seed)
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, LX2_CFG, KernelOptions(unroll_j=2))
    FunctionalEngine(mem).run_kernel(kernel)
    got = dst.get_interior()
    ref = reference_stencil_2d(src.get_full(), spec)
    scale = max(np.max(np.abs(ref)), 1e-30)
    assert np.max(np.abs(got - ref)) / scale < 1e-10


@settings(max_examples=20, deadline=None)
@given(spec=random_star_spec(), seed=st.integers(0, 1000))
def test_hstencil_correct_for_random_star_coefficients(spec, seed):
    _check_kernel(spec, "hstencil", 16, 32, seed)


@settings(max_examples=15, deadline=None)
@given(spec=random_box_spec(), seed=st.integers(0, 1000))
def test_hstencil_correct_for_random_box_coefficients(spec, seed):
    _check_kernel(spec, "hstencil", 16, 32, seed)


@settings(max_examples=10, deadline=None)
@given(spec=random_star_spec(), seed=st.integers(0, 1000))
def test_matrix_only_correct_for_random_star_coefficients(spec, seed):
    _check_kernel(spec, "matrix-only", 16, 32, seed)


@settings(max_examples=10, deadline=None)
@given(
    rows=st.integers(1, 4).map(lambda k: 8 * k),
    panels=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_hstencil_correct_for_random_shapes(rows, panels, seed):
    _check_kernel(star2d(2), "hstencil", rows, 16 * panels, seed)


# ---------------------------------------------------------------------------
# Scheduler semantics preservation on arbitrary traces
# ---------------------------------------------------------------------------


@st.composite
def random_trace(draw):
    """A random well-formed trace over a small register/memory window."""
    mem_slots = 8  # eight vector-sized memory cells
    n = draw(st.integers(4, 40))
    out = []
    for _ in range(n):
        kind = draw(st.sampled_from(["ld", "st", "fmla", "fadd", "ext", "fmopa", "set"]))
        if kind == "ld":
            out.append(LD1D(VReg(draw(st.integers(0, 7))), 1024 + 8 * draw(st.integers(0, mem_slots - 1))))
        elif kind == "st":
            out.append(ST1D(VReg(draw(st.integers(0, 7))), 1024 + 8 * draw(st.integers(0, mem_slots - 1))))
        elif kind == "fmla":
            out.append(
                FMLA(VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))))
            )
        elif kind == "fadd":
            out.append(
                FADD_V(VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))))
            )
        elif kind == "ext":
            out.append(
                EXT(
                    VReg(draw(st.integers(0, 7))),
                    VReg(draw(st.integers(0, 7))),
                    VReg(draw(st.integers(0, 7))),
                    draw(st.integers(0, 8)),
                )
            )
        elif kind == "fmopa":
            out.append(
                FMOPA(
                    TileReg(draw(st.integers(0, 3))),
                    VReg(draw(st.integers(0, 7))),
                    VReg(draw(st.integers(0, 7))),
                )
            )
        else:
            vals = tuple(float(draw(st.integers(-3, 3))) for _ in range(SVL_LANES))
            out.append(SET_LANES(VReg(draw(st.integers(0, 7))), vals))
    return Trace(out)


def _final_state(trace):
    mem = MemorySpace()
    base = mem.alloc(8 * 8)  # the eight cells at 1024.. (allocator base)
    assert base == 1024
    mem.write(base, np.arange(64.0))
    eng = FunctionalEngine(mem)
    eng.execute_trace(trace)
    regs = np.stack([eng.regs.read_v(VReg(i)) for i in range(8)])
    tiles = np.stack([eng.regs.read_tile(TileReg(i)) for i in range(4)])
    memory = mem.read(base, 64)
    return regs, tiles, memory


@settings(max_examples=60, deadline=None)
@given(trace=random_trace())
def test_scheduler_preserves_memory_semantics(trace):
    """Memory state after a scheduled trace equals the unscheduled state.

    (Register/tile end-state may legitimately differ when dead writes are
    reordered; memory is the architectural output that must not change.)
    """
    _, _, mem_plain = _final_state(trace)
    scheduled = schedule_trace(Trace(list(trace)), LX2_CFG)
    _, _, mem_sched = _final_state(scheduled)
    assert np.allclose(mem_plain, mem_sched, rtol=1e-12, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(trace=random_trace(), window=st.integers(2, 16))
def test_windowed_scheduler_preserves_memory_semantics(trace, window):
    _, _, mem_plain = _final_state(trace)
    scheduled = schedule_trace(Trace(list(trace)), LX2_CFG, window=window)
    _, _, mem_sched = _final_state(scheduled)
    assert np.allclose(mem_plain, mem_sched, rtol=1e-12, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(trace=random_trace())
def test_scheduler_output_is_permutation(trace):
    scheduled = schedule_trace(Trace(list(trace)), LX2_CFG)
    assert sorted(map(id, scheduled)) == sorted(map(id, trace))


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 4096).map(lambda a: a * 8), min_size=1, max_size=200),
    writes=st.lists(st.booleans(), min_size=1, max_size=200),
)
def test_cache_occupancy_and_stats_invariants(addrs, writes):
    h = CacheHierarchy(LX2_CFG)
    for addr, w in zip(addrs, writes):
        h.demand_access(addr, 8, write=w)
    # occupancy never exceeds capacity
    assert h.l1.resident_lines() <= h.l1.num_sets * h.l1.assoc
    assert h.l2.resident_lines() <= h.l2.num_sets * h.l2.assoc
    # stats are consistent
    assert h.l1.stats.demand_hits <= h.l1.stats.demand_accesses
    assert h.l2.stats.demand_accesses <= h.l1.stats.demand_accesses
    # every DRAM line read corresponds to an L2 demand miss
    assert h.mem_lines_read == h.l2.stats.demand_accesses - h.l2.stats.demand_hits


@settings(max_examples=20, deadline=None)
@given(addr=st.integers(0, 1000).map(lambda a: a * 8))
def test_cache_immediate_rereference_hits(addr):
    h = CacheHierarchy(LX2_CFG)
    h.demand_access(addr, 8, write=False)
    from repro.machine.cache import L1

    assert h.demand_access(addr, 8, write=False) == L1


# ---------------------------------------------------------------------------
# Sliding-vector construction
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    r=st.integers(1, 4),
    data=st.data(),
)
def test_sliding_vectors_defining_equation(r, data):
    side = 2 * r + 1
    column = np.array([data.draw(coeff_values) for _ in range(side)])
    table = sliding_vectors(column, r)
    assert table.shape == (SVL_LANES + 2 * r, SVL_LANES)
    for di, d in enumerate(range(-r, SVL_LANES + r)):
        for k in range(SVL_LANES):
            idx = d - k + r
            expect = column[idx] if 0 <= idx < side else 0.0
            assert table[di, k] == expect


@settings(max_examples=40, deadline=None)
@given(r=st.integers(1, 4), d=st.integers(-4, 11), data=st.data())
def test_rows_for_placement_matches_nonzeros(r, d, data):
    if not -r <= d < SVL_LANES + r:
        d = max(-r, min(d, SVL_LANES + r - 1))
    side = 2 * r + 1
    column = np.array([data.draw(coeff_values) for _ in range(side)])
    rows = rows_for_placement(column, r, d)
    table = sliding_vectors(column, r)
    expect = tuple(int(k) for k in np.nonzero(table[d + r])[0])
    assert rows == expect
