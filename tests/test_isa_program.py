"""Trace / loop-nest / kernel container tests."""

from repro.isa.instructions import FMLA, FMOPA, LD1D, PortClass, ST1D
from repro.isa.program import KernelBlock, LoopNest, Trace, concat_traces
from repro.isa.registers import TileReg, VReg
from repro.kernels.base import GroupedTrace


def _sample_trace() -> Trace:
    return Trace(
        [
            LD1D(VReg(0), 100),
            LD1D(VReg(1), 108),
            FMLA(VReg(2), VReg(0), VReg(1)),
            FMOPA(TileReg(0), VReg(0), VReg(1), rows=(0, 1)),
            ST1D(VReg(2), 200),
        ]
    )


class TestTrace:
    def test_port_counts(self):
        counts = _sample_trace().port_counts()
        assert counts[PortClass.LOAD] == 2
        assert counts[PortClass.VECTOR] == 1
        assert counts[PortClass.MATRIX] == 1
        assert counts[PortClass.STORE] == 1

    def test_flops_and_useful_flops(self):
        t = _sample_trace()
        assert t.flops() == 16 + 128
        assert t.useful_flops() == 16 + 2 * 2 * 8

    def test_memory_words(self):
        loads, stores = _sample_trace().memory_words()
        assert loads == 16
        assert stores == 8

    def test_concatenation(self):
        t = _sample_trace()
        both = t + t
        assert len(both) == 2 * len(t)
        assert isinstance(both, Trace)
        cat = concat_traces([t, t, t])
        assert len(cat) == 3 * len(t)


class TestLoopNest:
    def _nest(self):
        blocks = [KernelBlock(key=(b, p), points=64) for b in range(3) for p in range(4)]
        return LoopNest(shape=(3, 4), blocks=blocks)

    def test_total_points(self):
        assert self._nest().total_points() == 3 * 4 * 64

    def test_iteration_order_preserved(self):
        keys = [b.key for b in self._nest()]
        assert keys[0] == (0, 0)
        assert keys[4] == (1, 0)

    def test_bands_group_by_outer_index(self):
        bands = self._nest().bands()
        assert len(bands) == 3
        assert all(len(band) == 4 for band in bands)
        assert all(b.key[0] == 1 for b in bands[1])

    def test_len(self):
        assert len(self._nest()) == 12


class TestGroupedTrace:
    def test_bodies_split_at_marks(self):
        g = GroupedTrace()
        g.append(LD1D(VReg(0), 0))
        g.append(LD1D(VReg(1), 8))
        g.mark()
        g.append(ST1D(VReg(0), 16))
        g.mark()
        bodies = g.bodies()
        assert [len(b) for b in bodies] == [2, 1]

    def test_trailing_instructions_form_last_body(self):
        g = GroupedTrace()
        g.append(LD1D(VReg(0), 0))
        g.mark()
        g.append(ST1D(VReg(0), 8))
        bodies = g.bodies()
        assert [len(b) for b in bodies] == [1, 1]

    def test_duplicate_marks_collapse(self):
        g = GroupedTrace()
        g.append(LD1D(VReg(0), 0))
        g.mark()
        g.mark()
        assert [len(b) for b in g.bodies()] == [1]

    def test_empty_grouped_trace(self):
        assert GroupedTrace().bodies() == []
