"""Replacement planning (MLA rollback / EXT->load balancing)."""

import pytest

from repro.kernels.base import KernelOptions
from repro.kernels.replacement import plan_replacement
from repro.machine.config import LX2
from repro.stencils.spec import box2d, star2d


class TestPlanStructure:
    def test_star_partitions_taps(self):
        spec = star2d(2)
        plan = plan_replacement(spec, LX2())
        all_taps = set(plan.vector_shifts) | set(plan.rollback_shifts)
        assert all_taps == {-2, -1, 1, 2}
        assert not set(plan.vector_shifts) & set(plan.rollback_shifts)

    def test_star_partitions_shift_synthesis(self):
        spec = star2d(2)
        plan = plan_replacement(spec, LX2())
        synth = set(plan.ext_shifts) | set(plan.load_shifts)
        assert synth == {-2, -1, 1, 2}
        assert not set(plan.ext_shifts) & set(plan.load_shifts)

    def test_box_has_no_vector_taps(self):
        plan = plan_replacement(box2d(2), LX2())
        assert plan.vector_shifts == ()
        assert plan.rollback_shifts == ()
        # but EXT/load is still partitioned over the box shifts
        assert set(plan.ext_shifts) | set(plan.load_shifts) == {-2, -1, 1, 2}

    def test_pipe_cycle_estimates_reported(self):
        plan = plan_replacement(star2d(2), LX2())
        assert set(plan.pipe_cycles) == {"V", "M", "L", "S"}
        assert plan.est_cycles == max(plan.pipe_cycles.values())


class TestOverrides:
    def test_explicit_rollback_respected(self):
        for rb in range(5):
            plan = plan_replacement(star2d(2), LX2(), KernelOptions(mla_rollback=rb))
            assert plan.n_rollback == rb

    def test_explicit_ext_to_load_respected(self):
        for el in range(5):
            plan = plan_replacement(star2d(2), LX2(), KernelOptions(ext_to_load=el))
            assert plan.n_ext_to_load == el

    def test_rollback_bounds_checked(self):
        with pytest.raises(ValueError):
            plan_replacement(star2d(2), LX2(), KernelOptions(mla_rollback=5))

    def test_ext_to_load_bounds_checked(self):
        with pytest.raises(ValueError):
            plan_replacement(star2d(2), LX2(), KernelOptions(ext_to_load=9))

    def test_ext_reuse_disabled_forces_loads(self):
        plan = plan_replacement(star2d(2), LX2(), KernelOptions(ext_reuse=False))
        assert plan.ext_shifts == ()
        assert set(plan.load_shifts) == {-2, -1, 1, 2}

    def test_far_shifts_converted_first(self):
        plan = plan_replacement(star2d(2), LX2(), KernelOptions(ext_to_load=2))
        assert set(plan.load_shifts) == {-2, 2}


class TestBalancing:
    def test_auto_plan_not_worse_than_extremes(self):
        spec = star2d(2)
        auto = plan_replacement(spec, LX2())
        all_vec = plan_replacement(spec, LX2(), KernelOptions(mla_rollback=0))
        all_mat = plan_replacement(spec, LX2(), KernelOptions(mla_rollback=4))
        assert auto.est_cycles <= all_vec.est_cycles + 1e-9
        assert auto.est_cycles <= all_mat.est_cycles + 1e-9

    def test_deterministic(self):
        a = plan_replacement(star2d(3), LX2())
        b = plan_replacement(star2d(3), LX2())
        assert a == b

    def test_prefetch_increases_load_pressure_estimate(self):
        spec = star2d(2)
        without = plan_replacement(spec, LX2(), KernelOptions(prefetch=False, mla_rollback=0, ext_to_load=0))
        with_pf = plan_replacement(spec, LX2(), KernelOptions(prefetch=True, mla_rollback=0, ext_to_load=0))
        assert with_pf.pipe_cycles["L"] > without.pipe_cycles["L"]
