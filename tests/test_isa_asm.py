"""Assembly formatting and round-trip parsing."""

import pytest

from repro.isa.asm import AsmSyntaxError, format_instruction, format_trace, parse_instruction, parse_trace
from repro.isa.instructions import (
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PRFM,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.registers import TileReg, VReg

ALL_EXAMPLES = [
    LD1D(VReg(0), 1024),
    LD1D_STRIDED(VReg(1), 2048, stride=136),
    ST1D(VReg(2), 4096),
    ST1D_SLICE(TileReg(3), 5, 8192),
    PRFM(1234, level=1, write=False),
    PRFM(1234, level=2, write=True, length=4),
    FMLA(VReg(3), VReg(4), VReg(5)),
    FMLA_IDX(VReg(3), VReg(4), VReg(5), 6),
    FMUL_IDX(VReg(3), VReg(4), VReg(5), 0),
    FADD_V(VReg(6), VReg(7), VReg(8)),
    EXT(VReg(9), VReg(10), VReg(11), 3),
    DUP(VReg(12), 2.5),
    SET_LANES(VReg(13), (0.5, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0)),
    FMOPA(TileReg(0), VReg(14), VReg(15)),
    FMOPA(TileReg(1), VReg(16), VReg(17), rows=(0, 4, 7)),
    FMOPA(TileReg(2), VReg(18), VReg(19), rows=(1,), useful_cols=(2, 3)),
    ZERO_TILE(TileReg(4)),
    MOVA_TILE_TO_VEC(VReg(20), TileReg(5), 6),
    MOVA_VEC_TO_TILE(TileReg(6), 7, VReg(21)),
    FMLA_M(TileReg(7), VReg(8), VReg(22), 3),
    SCALAR_OP(kind="loop"),
]


@pytest.mark.parametrize("ins", ALL_EXAMPLES, ids=lambda i: type(i).__name__)
def test_roundtrip(ins):
    text = format_instruction(ins)
    back = parse_instruction(text)
    assert format_instruction(back) == text
    assert type(back) is type(ins)


def test_roundtrip_preserves_dependencies():
    for ins in ALL_EXAMPLES:
        back = parse_instruction(format_instruction(ins))
        assert back.reads() == ins.reads()
        assert back.writes() == ins.writes()


def test_format_trace_numbered():
    text = format_trace(ALL_EXAMPLES[:3], numbered=True)
    lines = text.splitlines()
    assert lines[0].startswith("0:")
    assert len(lines) == 3


def test_parse_trace_skips_comments_and_blanks():
    text = """
    // a comment
    ld1d z0, [512]

    fmla z1, z2, z3  // trailing comment
    """
    trace = parse_trace(text)
    assert len(trace) == 2
    assert isinstance(trace[0], LD1D)
    assert isinstance(trace[1], FMLA)


def test_parse_numbered_listing_lines():
    ins = parse_instruction("12:  ld1d z5, [99]")
    assert isinstance(ins, LD1D)
    assert ins.addr == 99


def test_parse_errors():
    with pytest.raises(AsmSyntaxError):
        parse_instruction("bogus z0, z1")
    with pytest.raises(AsmSyntaxError):
        parse_instruction("ld1d q0, [10]")
    with pytest.raises(AsmSyntaxError):
        parse_instruction("ld1d z0, 10")  # missing brackets
    with pytest.raises(AsmSyntaxError):
        parse_instruction("")


def test_fmopa_sparse_rows_visible_in_text():
    ins = FMOPA(TileReg(0), VReg(1), VReg(2), rows=(2, 5))
    assert "rows={2,5}" in format_instruction(ins)


def test_fmopa_cols_only_when_sparse():
    dense = FMOPA(TileReg(0), VReg(1), VReg(2))
    assert "cols=" not in format_instruction(dense)
    sparse = FMOPA(TileReg(0), VReg(1), VReg(2), useful_cols=(1,))
    assert "cols={1}" in format_instruction(sparse)
