"""Unit tests for instruction dependency/memory/flop metadata."""

import pytest

from repro.isa.instructions import (
    ALL_ROWS,
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PortClass,
    PRFM,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.registers import TileReg, VReg


class TestMemoryInstructions:
    def test_ld1d_reads_eight_words(self):
        ins = LD1D(VReg(0), 1000)
        assert ins.mem_reads() == ((1000, 8),)
        assert ins.mem_writes() == ()
        assert ins.writes() == ("z0",)
        assert ins.port is PortClass.LOAD

    def test_strided_load_touches_eight_separate_words(self):
        ins = LD1D_STRIDED(VReg(1), 2000, stride=100)
        regions = ins.mem_reads()
        assert len(regions) == 8
        assert regions[0] == (2000, 1)
        assert regions[7] == (2700, 1)

    def test_st1d_writes_eight_words(self):
        ins = ST1D(VReg(2), 3000)
        assert ins.mem_writes() == ((3000, 8),)
        assert ins.reads() == ("z2",)
        assert ins.port is PortClass.STORE

    def test_slice_store_depends_on_one_row(self):
        ins = ST1D_SLICE(TileReg(1), 3, 4000)
        assert ins.reads() == (("za1", 3),)
        assert ins.mem_writes() == ((4000, 8),)

    def test_prfm_has_no_register_effects(self):
        ins = PRFM(5000, write=True)
        assert ins.reads() == ()
        assert ins.writes() == ()
        assert ins.port is PortClass.LOAD


class TestVectorInstructions:
    def test_fmla_reads_accumulator(self):
        ins = FMLA(VReg(0), VReg(1), VReg(2))
        assert set(ins.reads()) == {"z0", "z1", "z2"}
        assert ins.writes() == ("z0",)
        assert ins.flops == 16

    def test_fmla_idx_flops(self):
        assert FMLA_IDX(VReg(0), VReg(1), VReg(2), 3).flops == 16

    def test_fmul_idx_does_not_read_destination(self):
        ins = FMUL_IDX(VReg(0), VReg(1), VReg(2), 0)
        assert "z0" not in ins.reads()
        assert ins.flops == 8

    def test_fadd(self):
        ins = FADD_V(VReg(3), VReg(4), VReg(5))
        assert ins.writes() == ("z3",)
        assert ins.flops == 8

    def test_ext_immediate_range(self):
        EXT(VReg(0), VReg(1), VReg(2), 0)
        EXT(VReg(0), VReg(1), VReg(2), 8)
        with pytest.raises(ValueError):
            EXT(VReg(0), VReg(1), VReg(2), 9)

    def test_dup_and_set_lanes(self):
        assert DUP(VReg(0), 2.0).writes() == ("z0",)
        sl = SET_LANES(VReg(1), tuple(float(i) for i in range(8)))
        assert sl.writes() == ("z1",)
        with pytest.raises(ValueError):
            SET_LANES(VReg(1), (1.0, 2.0))


class TestMatrixInstructions:
    def test_fmopa_default_rows_dense(self):
        ins = FMOPA(TileReg(0), VReg(1), VReg(2))
        assert ins.rows == ALL_ROWS
        assert ins.flops == 128
        assert ins.useful_flops == 128

    def test_fmopa_sparse_rows_reduce_useful_flops(self):
        ins = FMOPA(TileReg(0), VReg(1), VReg(2), rows=(2, 3, 4))
        assert ins.useful_flops == 2 * 3 * 8
        assert ins.flops == 128  # machine capability unchanged

    def test_fmopa_row_dependencies_are_slice_granular(self):
        ins = FMOPA(TileReg(1), VReg(0), VReg(2), rows=(5,))
        assert ("za1", 5) in ins.reads()  # accumulation reads the slice
        assert ins.writes() == (("za1", 5),)

    def test_fmopa_rows_deduplicated_and_sorted(self):
        ins = FMOPA(TileReg(0), VReg(0), VReg(1), rows=(3, 1, 3))
        assert ins.rows == (1, 3)

    def test_fmopa_row_range_checked(self):
        with pytest.raises(ValueError):
            FMOPA(TileReg(0), VReg(0), VReg(1), rows=(8,))

    def test_fmopa_useful_cols(self):
        ins = FMOPA(TileReg(0), VReg(0), VReg(1), useful_cols=(0, 1))
        assert ins.useful_flops == 2 * 8 * 2

    def test_zero_tile_writes_all_slices(self):
        ins = ZERO_TILE(TileReg(3))
        assert len(ins.writes()) == 8

    def test_mova_directions(self):
        t2v = MOVA_TILE_TO_VEC(VReg(0), TileReg(1), 2)
        assert t2v.reads() == (("za1", 2),)
        assert t2v.writes() == ("z0",)
        v2t = MOVA_VEC_TO_TILE(TileReg(1), 2, VReg(0))
        assert v2t.reads() == ("z0",)
        assert v2t.writes() == (("za1", 2),)

    def test_fmla_m_group_registers(self):
        ins = FMLA_M(TileReg(4), VReg(8), VReg(16), 1)
        assert ins.group_regs() == (VReg(8), VReg(9), VReg(10), VReg(11))
        assert set(ins.writes()) == {("za4", 0), ("za4", 2), ("za4", 4), ("za4", 6)}
        assert ins.flops == 2 * 8 * 4

    def test_fmla_m_group_must_fit_register_file(self):
        with pytest.raises(ValueError):
            FMLA_M(TileReg(0), VReg(30), VReg(0), 0)

    def test_fmla_m_index_checked(self):
        with pytest.raises(ValueError):
            FMLA_M(TileReg(0), VReg(0), VReg(4), 8)


class TestScalar:
    def test_scalar_op_is_inert(self):
        ins = SCALAR_OP(kind="loop")
        assert ins.reads() == () and ins.writes() == ()
        assert ins.flops == 0
        assert ins.port is PortClass.SCALAR
