"""M4-specific kernel behaviour (Section 4 portability)."""

import numpy as np
import pytest

from repro.isa.instructions import EXT, FMLA_M, MOVA_TILE_TO_VEC, PRFM, ST1D
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import M4
from repro.machine.memory import MemorySpace
from repro.machine.timing import TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark
from tests.helpers import assert_matches_reference, run_method_2d


def build(method="hstencil", stencil="star2d9p", **opts):
    spec = benchmark(stencil)
    mem = MemorySpace()
    src = Grid2D(mem, 16, 32, spec.radius, "A")
    dst = Grid2D(mem, 16, 32, spec.radius, "B")
    options = KernelOptions(unroll_j=2).with_(**opts)
    return make_kernel(method, spec, src, dst, M4(), options)


class TestStructure:
    def test_mmla_groups_are_consecutive_registers(self):
        k = build()
        trace = k.emit(k.loop_nest().blocks[0])
        for ins in trace:
            if isinstance(ins, FMLA_M):
                regs = ins.group_regs()
                assert [r.index for r in regs] == list(
                    range(regs[0].index, regs[0].index + 4)
                )

    def test_double_buffered_scratch_tiles(self):
        """Adjacent row groups use alternating scratch accumulators."""
        k = build()
        trace = k.emit(k.loop_nest().blocks[0])
        scratch_tiles = [ins.tile.index for ins in trace if isinstance(ins, FMLA_M)]
        assert len(set(scratch_tiles)) == 2

    def test_combine_uses_both_partial_sums(self):
        """Each output row moves one vertical and one horizontal slice."""
        k = build()
        trace = k.emit(k.loop_nest().blocks[0])
        movas = [ins for ins in trace if isinstance(ins, MOVA_TILE_TO_VEC)]
        assert len(movas) == 2 * 8 * 2  # 2 per row x 8 rows x 2 tiles

    def test_ext_synthesizes_shifted_groups(self):
        k = build()
        trace = k.emit(k.loop_nest().blocks[0])
        assert sum(1 for i in trace if isinstance(i, EXT)) >= 4

    def test_stores_are_vector_stores(self):
        """The combine stores from vector registers, not tile slices."""
        k = build()
        trace = k.emit(k.loop_nest().blocks[0])
        assert sum(1 for i in trace if isinstance(i, ST1D)) == 8 * 2

    def test_prefetch_variant_emits_prfm(self):
        k = build(method="hstencil-prefetch", prefetch=True)
        trace = k.emit(k.loop_nest().blocks[0])
        assert any(isinstance(i, PRFM) for i in trace)


class TestBehaviour:
    @pytest.mark.parametrize("stencil", ["star2d5p", "star2d9p", "star2d13p", "heat2d"])
    def test_functional_all_star_radii(self, stencil, m4):
        spec = benchmark(stencil)
        got, ref = run_method_2d("hstencil", spec, m4)
        assert_matches_reference(got, ref)

    def test_scheduling_helps_on_m4(self, m4):
        """Section 4.2: EXT/LD scheduling portability."""
        te = TimingEngine(m4)
        spec = benchmark("star2d9p")

        def run(method):
            mem = MemorySpace()
            src = Grid2D(mem, 64, 64, spec.radius, "A")
            dst = Grid2D(mem, 64, 64, spec.radius, "B")
            return te.run(make_kernel(method, spec, src, dst, m4), warm=True)

        assert run("hstencil").cycles < run("hstencil-nosched").cycles

    def test_mmla_kernel_beats_neon_auto(self, m4):
        te = TimingEngine(m4)
        spec = benchmark("star2d9p")

        def run(method):
            mem = MemorySpace()
            src = Grid2D(mem, 64, 64, spec.radius, "A")
            dst = Grid2D(mem, 64, 64, spec.radius, "B")
            return te.run(make_kernel(method, spec, src, dst, m4), warm=True)

        assert run("hstencil").cycles < run("auto").cycles
