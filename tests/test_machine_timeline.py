"""Pipeline timeline recording and rendering."""

from repro.isa.instructions import FMLA, FMOPA, LD1D, PortClass, ST1D
from repro.isa.program import Trace
from repro.isa.registers import TileReg, VReg
from repro.machine.config import LX2
from repro.machine.timeline import occupancy, record_timeline, render_timeline


def sample_trace():
    return Trace(
        [
            LD1D(VReg(0), 1000),
            LD1D(VReg(1), 1008),
            FMOPA(TileReg(0), VReg(0), VReg(1)),
            FMLA(VReg(2), VReg(0), VReg(1)),
            ST1D(VReg(2), 2000),
        ]
    )


def test_record_one_event_per_instruction():
    events = record_timeline(sample_trace(), LX2())
    assert len(events) == 5
    assert [e.index for e in events] == list(range(5))


def test_issue_cycles_nondecreasing():
    events = record_timeline(sample_trace(), LX2())
    cycles = [e.cycle for e in events]
    assert cycles == sorted(cycles)


def test_glyphs_match_instruction_kinds():
    events = record_timeline(sample_trace(), LX2())
    assert [e.glyph for e in events] == ["L", "L", "F", "M", "S"]


def test_render_contains_lanes_and_legend():
    events = record_timeline(sample_trace(), LX2())
    text = render_timeline(events, LX2())
    assert "V0" in text and "M0" in text and "L0" in text
    assert "legend" in text
    assert "F" in text  # the FMOPA shows up


def test_render_window():
    events = record_timeline(sample_trace(), LX2())
    text = render_timeline(events, LX2(), start=1000, width=10)
    # nothing issued that late: only dots in the lanes
    lanes = [l for l in text.splitlines() if l[:2] in ("V0", "M0", "L0")]
    assert all(set(l[6:]) <= {"."} for l in lanes)


def test_dual_issue_visible_in_lanes():
    trace = Trace(FMLA(VReg(i), VReg(16), VReg(17)) for i in range(4))
    events = record_timeline(trace, LX2())
    text = render_timeline(events, LX2(), width=8)
    v0 = next(l for l in text.splitlines() if l.startswith("V0"))
    v1 = next(l for l in text.splitlines() if l.startswith("V1"))
    # both vector lanes carry work in cycle 0
    assert v0[6] == "M" and v1[6] == "M"


def test_occupancy_fractions():
    events = record_timeline(sample_trace(), LX2())
    occ = occupancy(events, LX2())
    assert 0 < occ["L"] <= 1.0
    assert 0 < occ["M"] <= 1.0
    assert occupancy([], LX2()) == {}
