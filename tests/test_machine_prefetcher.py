"""Hardware stream prefetcher: confirmation, table capacity, page stops."""

from repro.machine.cache import CacheHierarchy
from repro.machine.config import LX2
from repro.machine.prefetcher import LINES_PER_PAGE, StreamPrefetcher


def make(num_streams=8, depth=4, confirm=2):
    h = CacheHierarchy(LX2())
    pf = StreamPrefetcher(h, num_streams=num_streams, depth=depth, confirm_advances=confirm)
    return h, pf


def touch_line(pf, line):
    pf.observe(line * 8, 8)


class TestConfirmation:
    def test_single_access_does_not_prefetch(self):
        h, pf = make()
        touch_line(pf, 10)
        assert pf.prefetches_issued == 0

    def test_one_advance_not_confirmed(self):
        h, pf = make(confirm=2)
        touch_line(pf, 10)
        touch_line(pf, 11)
        assert pf.prefetches_issued == 0
        assert pf.streams_confirmed == 0

    def test_two_advances_confirm_and_prefetch(self):
        h, pf = make(confirm=2, depth=4)
        touch_line(pf, 10)
        touch_line(pf, 11)
        touch_line(pf, 12)
        assert pf.streams_confirmed == 1
        assert pf.prefetches_issued == 4
        assert h.l1.contains(13) and h.l1.contains(16)

    def test_confirmed_stream_keeps_prefetching(self):
        h, pf = make(depth=2)
        for line in range(10, 16):
            touch_line(pf, line)
        assert h.l1.contains(17)

    def test_tail_reaccess_is_not_advance(self):
        h, pf = make()
        touch_line(pf, 10)
        touch_line(pf, 10)
        touch_line(pf, 10)
        assert pf.streams_confirmed == 0

    def test_non_sequential_accesses_allocate_new_streams(self):
        h, pf = make()
        touch_line(pf, 10)
        touch_line(pf, 50)
        touch_line(pf, 90)
        assert pf.streams_allocated == 3
        assert pf.prefetches_issued == 0


class TestTableCapacity:
    def test_few_streams_fully_covered(self):
        """A vector-method pattern (6 interleaved rows) stays covered."""
        h, pf = make(num_streams=8)
        base_lines = [1000 * r for r in range(6)]
        for step in range(8):
            for b in base_lines:
                touch_line(pf, b + step)
        # all six streams confirmed and prefetching
        assert pf.streams_confirmed == 6
        assert pf.prefetches_issued > 0

    def test_many_streams_thrash(self):
        """A matrix-method pattern (20 interleaved rows) thrashes the table."""
        h, pf = make(num_streams=8)
        base_lines = [1000 * r for r in range(20)]
        for step in range(8):
            for b in base_lines:
                touch_line(pf, b + step)
        # LRU evicts every stream before its next access: nothing confirms.
        assert pf.streams_confirmed == 0
        assert pf.prefetches_issued == 0

    def test_lru_eviction_bounds_table(self):
        h, pf = make(num_streams=4)
        for line in [10, 20, 30, 40, 50]:
            touch_line(pf, line)
        assert pf.active_streams() == 4


class TestPageBoundary:
    def test_prefetch_stops_at_page_edge(self):
        h, pf = make(depth=4)
        edge = LINES_PER_PAGE - 2  # prefetch would cross into next page
        touch_line(pf, edge - 2)
        touch_line(pf, edge - 1)
        touch_line(pf, edge)  # confirmed here; depth-4 would reach edge+4
        assert h.l1.contains(edge + 1)
        assert not h.l1.contains(LINES_PER_PAGE)  # next page untouched

    def test_stream_retrains_after_page(self):
        h, pf = make(depth=2)
        # Walk an entire page: stream stays confirmed within it.
        for line in range(0, LINES_PER_PAGE + 4):
            touch_line(pf, line)
        # Crossing into the new page keeps advancing the same stream
        # (table-wise), so lines keep being covered; the *prefetcher*
        # just never issued across the boundary ahead of time.
        assert h.l1.contains(LINES_PER_PAGE + 5)


class TestDisabled:
    def test_disabled_prefetcher_does_nothing(self):
        h = CacheHierarchy(LX2())
        pf = StreamPrefetcher(h, num_streams=8, depth=2, enabled=False)
        for line in range(10):
            pf.observe(line * 8, 8)
        assert pf.prefetches_issued == 0
        assert pf.active_streams() == 0

    def test_reset_stats(self):
        h, pf = make()
        for line in range(5):
            touch_line(pf, line)
        pf.reset_stats()
        assert pf.prefetches_issued == 0
        assert pf.streams_allocated == 0
