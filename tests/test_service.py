"""Contract tests for the stencil service (engine, lanes, transport).

The service's promises, each enforced here:

* **coalescing** — N identical concurrent submissions cost exactly one
  simulation; later identical submissions are served from the result memo;
* **priority** — with a saturated pool, interactive cells overtake a
  queued batch backlog at the next worker completion, and admission
  control rejects jobs a full lane cannot take (atomically);
* **isolation** — a worker process dying mid-cell surfaces as that cell's
  error while the engine (and subsequent jobs) keep working;
* **fidelity** — results delivered by the service are bit-identical to
  what a plain :class:`~repro.bench.runner.ExperimentRunner` measures,
  and streamed records match the ``BENCH_*.json`` schema.
"""

from __future__ import annotations

import asyncio
import os
import threading

import pytest

from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2
from repro.service import (
    AdmissionError,
    LaneQueue,
    ServiceClient,
    ServiceServer,
    StencilService,
)

CELL = ("hstencil", "star2d5p", (24, 24))


def drive(coro):
    return asyncio.run(coro)


# -- lane queue --------------------------------------------------------------


def test_lane_queue_weighted_round_robin():
    queue = LaneQueue(lanes=("hi", "lo"), weights={"hi": 2, "lo": 1})
    for i in range(6):
        queue.put_nowait(("hi", i), "hi")
        queue.put_nowait(("lo", i), "lo")
    order = [queue.get_nowait()[0] for _ in range(9)]
    # 2 hi per lo while both lanes are backlogged.
    assert order == ["hi", "hi", "lo", "hi", "hi", "lo", "hi", "hi", "lo"]


def test_lane_queue_idle_lane_banks_no_credit():
    queue = LaneQueue(lanes=("hi", "lo"), weights={"hi": 2, "lo": 1})
    for i in range(4):
        queue.put_nowait(("lo", i), "lo")
    assert queue.get_nowait()[0] == "lo"
    # hi arrives late and still gets served promptly, but an empty hi lane
    # never starves lo below its weighted share.
    queue.put_nowait(("hi", 0), "hi")
    assert queue.get_nowait()[0] == "hi"
    assert queue.get_nowait()[0] == "lo"


def test_lane_queue_admission_control():
    queue = LaneQueue(lanes=("hi",), weights={"hi": 1}, max_pending={"hi": 2})
    queue.put_nowait("a", "hi")
    queue.put_nowait("b", "hi")
    with pytest.raises(AdmissionError) as excinfo:
        queue.put_nowait("c", "hi")
    assert excinfo.value.lane == "hi"
    assert excinfo.value.limit == 2
    assert queue.stats()["rejected"]["hi"] == 1
    assert len(queue) == 2


def test_lane_queue_unknown_lane():
    queue = LaneQueue()
    with pytest.raises(ValueError):
        queue.put_nowait("x", "no-such-lane")


# -- coalescing --------------------------------------------------------------


def test_concurrent_identical_submissions_simulate_once():
    """The acceptance criterion: N identical in-flight requests, 1 simulation."""

    async def main():
        async with StencilService(workers=2) as service:
            jobs = [await service.submit([CELL], lane="interactive") for _ in range(8)]
            all_results = [await job.results() for job in jobs]
            return service.counters, all_results

    counters, all_results = drive(main())
    assert counters["simulated"] == 1
    assert counters["dispatched"] == 1
    assert counters["coalesced_inflight"] + counters["memo_hits"] == 7
    baseline = all_results[0][0].counters.to_dict()
    for results in all_results:
        assert len(results) == 1 and results[0].ok
        assert results[0].counters.to_dict() == baseline


def test_duplicate_cells_within_one_job_coalesce():
    async def main():
        async with StencilService(workers=2) as service:
            job = await service.submit([CELL, CELL, CELL])
            results = await job.results()
            return service.counters, results

    counters, results = drive(main())
    assert counters["dispatched"] == 1
    assert [r.index for r in results] == [0, 1, 2]
    baseline = results[0].counters.to_dict()
    assert all(r.counters.to_dict() == baseline for r in results)


def test_completed_results_served_from_memo():
    async def main():
        async with StencilService(workers=1) as service:
            first = await (await service.submit([CELL])).results()
            second = await (await service.submit([CELL])).results()
            return service.counters, first, second

    counters, first, second = drive(main())
    assert counters["simulated"] == 1
    assert counters["memo_hits"] == 1
    assert second[0].source == "memory"
    assert second[0].counters.to_dict() == first[0].counters.to_dict()


def test_coalescing_keyed_on_workload_not_job():
    """Different shapes never coalesce; same shape across lanes does."""

    async def main():
        async with StencilService(workers=2) as service:
            a = await service.submit([("hstencil", "star2d5p", (24, 24))], lane="batch")
            b = await service.submit(
                [("hstencil", "star2d5p", (24, 24))], lane="interactive"
            )
            c = await service.submit([("hstencil", "star2d5p", (26, 26))], lane="batch")
            for job in (a, b, c):
                assert all(r.ok for r in await job.results())
            return service.counters

    counters = drive(main())
    assert counters["simulated"] == 2  # two distinct shapes
    assert counters["coalesced_inflight"] + counters["memo_hits"] == 1


# -- priority lanes ----------------------------------------------------------


class _RecordingService(StencilService):
    """Records the lane of every completed task, in completion order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.completion_lanes = []

    def _complete(self, task, result):
        self.completion_lanes.append(task.lane)
        super()._complete(task, result)


def test_interactive_lane_overtakes_saturated_batch_backlog():
    batch_cells = [("hstencil", "star2d5p", (16 + 2 * i, 16 + 2 * i)) for i in range(6)]
    interactive_cells = [("auto", "star2d5p", (16, 16)), ("auto", "star2d5p", (32, 32))]

    async def main():
        async with _RecordingService(workers=1) as service:
            batch = await service.submit(batch_cells, lane="batch")
            # Let the single worker pick up the first batch cell, leaving
            # the rest queued behind a saturated pool.
            while service.counters["dispatched"] < 1:
                await asyncio.sleep(0.001)
            interactive = await service.submit(interactive_cells, lane="interactive")
            assert all(r.ok for r in await interactive.results())
            assert all(r.ok for r in await batch.results())
            return service.completion_lanes

    lanes = drive(main())
    assert len(lanes) == 8
    # At most the in-flight batch cell finishes first; every interactive
    # cell then overtakes the remaining batch backlog.
    assert set(lanes[:1]) <= {"batch"}
    interactive_positions = [i for i, lane in enumerate(lanes) if lane == "interactive"]
    assert interactive_positions == sorted(interactive_positions)
    assert interactive_positions[-1] <= 2, (
        f"interactive cells finished late: completion lanes {lanes}"
    )


def test_service_admission_is_atomic():
    async def main():
        async with StencilService(
            workers=1, max_pending={"interactive": 4, "batch": 2}
        ) as service:
            cells = [("hstencil", "star2d5p", (16 + 2 * i, 16 + 2 * i)) for i in range(8)]
            with pytest.raises(AdmissionError):
                await service.submit(cells, lane="batch")
            # Nothing from the rejected job may linger.
            assert service.counters["jobs"] == 0
            assert len(service._inflight) == 0
            assert len(service.queue) == 0
            # A job the lane can take is still accepted afterwards.
            job = await service.submit(cells[:2], lane="batch")
            assert all(r.ok for r in await job.results())

    drive(main())


# -- crash isolation ---------------------------------------------------------


def test_worker_crash_is_a_cell_error_not_an_engine_death():
    async def main():
        async with StencilService(workers=1) as service:
            crash = await service.submit([("x", "y", (8, 8))], action="crash")
            (result,) = await crash.results()
            assert not result.ok
            assert "WorkerCrashed" in result.error
            assert service.counters["crashes"] >= 1
            assert service.counters["pool_rebuilds"] >= 1
            # The engine survives and serves the next job normally.
            job = await service.submit([CELL])
            (ok_result,) = await job.results()
            assert ok_result.ok
            return service.counters

    counters = drive(main())
    assert counters["errors"] == 1
    assert counters["simulated"] == 1


def test_plain_exception_is_captured_without_crash():
    async def main():
        async with StencilService(workers=1) as service:
            job = await service.submit([("no-such-method", "star2d5p", (16, 16))])
            (result,) = await job.results()
            assert not result.ok
            assert "no-such-method" in result.error
            assert service.counters["crashes"] == 0

    drive(main())


# -- fidelity ----------------------------------------------------------------


def test_service_results_bit_identical_to_runner(tmp_path):
    direct = ExperimentRunner(LX2()).measure(*CELL)

    async def main():
        async with StencilService(workers=2, cache_dir=tmp_path) as service:
            job = await service.submit([CELL], machine="lx2")
            (result,) = await job.results()
            return result, job

    result, job = drive(main())
    assert result.ok
    assert result.counters.to_dict() == direct.counters.to_dict()
    (record,) = job.records()
    assert record["counters"] == direct.counters.to_dict()
    assert {"method", "stencil", "shape", "source", "seconds", "derived"} <= set(record)


def test_job_event_stream_shape():
    async def main():
        async with StencilService(workers=1) as service:
            job = await service.submit([CELL, ("auto", "star2d5p", (24, 24))])
            kinds = []
            async for kind, payload in job.events():
                kinds.append(kind)
            return kinds, job.summary()

    kinds, summary = drive(main())
    assert kinds == ["cell", "cell", "done"]
    assert summary["completed"] == 2 and summary["errors"] == 0


def test_submit_requires_started_service():
    service = StencilService(workers=1)

    async def main():
        with pytest.raises(RuntimeError):
            await service.submit([CELL])

    drive(main())


def test_shutdown_fails_queued_tasks():
    async def main():
        service = StencilService(workers=1)
        await service.start()
        cells = [("hstencil", "star2d5p", (16 + 2 * i, 16 + 2 * i)) for i in range(4)]
        job = await service.submit(cells, lane="batch")
        await service.shutdown()
        results = await job.results()
        # Whatever had not finished carries a shutdown error; nothing hangs.
        assert all(r.ok or "shut down" in r.error for r in results)

    drive(main())


# -- codegen artifact races --------------------------------------------------


def test_two_workers_generate_same_classes_on_cold_store(tmp_path):
    """Two workers racing to generate the same shape classes on a cold
    artifact store both succeed via the atomic-write path, leaving exactly
    one stored entry per class and a store a fresh process warms from."""
    import json
    import os as os_mod

    from repro.machine.codegen import codegen_stats, reset_codegen_stats
    from repro.machine.compiled import clear_program_pool

    store = tmp_path / "artifacts"
    # Same method/stencil, different shapes: the cells never coalesce, so
    # both workers run concurrently — and their kernels share interior
    # shape classes, so both try to persist the same codegen digests.
    cells = [("hstencil", "star2d9p", (33, 48)), ("hstencil", "star2d9p", (35, 48))]

    async def main():
        async with StencilService(
            workers=2, artifact_dir=str(store), timing="scalar", codegen="on"
        ) as service:
            job = await service.submit(cells, lane="batch")
            return await job.results()

    results = drive(main())
    assert all(r.ok for r in results)

    files = []
    for dirpath, _dirs, names in os_mod.walk(store / "codegen"):
        files.extend(os_mod.path.join(dirpath, n) for n in names)
    json_files = [p for p in files if p.endswith(".json")]
    assert json_files, "workers persisted no codegen entries"
    # Atomic replace: every entry parses, and no temp files leak.
    assert [p for p in files if not p.endswith(".json")] == []
    digests = [os_mod.path.splitext(os_mod.path.basename(p))[0] for p in json_files]
    assert len(digests) == len(set(digests))
    for path in json_files:
        with open(path) as fh:
            json.load(fh)

    # A fresh process (fresh pools, same store) loads instead of generating.
    clear_program_pool(reset_stats=True)
    reset_codegen_stats()
    warm = ExperimentRunner(LX2(), timing="scalar", artifact_dir=str(store))
    warm.measure(*cells[0])
    stats = codegen_stats()
    assert stats["generated"] == 0
    assert stats["loaded"] >= 1
    assert stats["demoted"] == 0


# -- socket transport --------------------------------------------------------


@pytest.fixture()
def running_server(tmp_path):
    # Unix socket paths are length-limited (~108 bytes); keep it short.
    socket_path = os.path.join("/tmp", f"repro-test-{os.getpid()}.sock")
    ready = threading.Event()
    holder = {}

    def serve():
        async def main():
            async with StencilService(workers=2, cache_dir=tmp_path) as service:
                holder["service"] = service
                server = ServiceServer(service, socket_path)
                await server.start()
                ready.set()
                await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(30), "service server did not come up"
    yield socket_path
    client = ServiceClient(socket_path, timeout=30)
    try:
        client.shutdown()
    except (ConnectionError, OSError):
        pass  # already shut down by the test
    thread.join(30)
    assert not thread.is_alive()


def test_socket_end_to_end(running_server):
    client = ServiceClient(running_server, timeout=120)
    assert client.ping()["event"] == "pong"

    events = []
    out = client.submit(
        [CELL, ("auto", "star2d5p", (24, 24))],
        lane="interactive",
        machine="lx2",
        on_event=lambda e: events.append(e["event"]),
    )
    assert [e for e in events] == ["accepted", "cell", "cell", "done"]
    assert out["summary"]["errors"] == 0
    assert all(r and "counters" in r for r in out["records"])

    # Identical resubmission is coalesced server-side.
    again = client.submit([CELL], lane="batch")
    assert again["records"][0]["source"] == "memory"

    stats = client.stats()
    assert stats["counters"]["memo_hits"] >= 1
    assert stats["counters"]["simulated"] == 2
    assert stats["queue"]["lanes"] == ["interactive", "batch"]


def test_socket_rejects_bad_requests(running_server):
    client = ServiceClient(running_server, timeout=30)
    with pytest.raises(RuntimeError):
        client.submit([CELL], machine="cray-1")
