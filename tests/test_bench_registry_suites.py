"""Registry/suite consistency across the benchmark layer."""

import pathlib

import pytest

from repro.kernels.registry import METHODS
from repro.stencils.library import BENCHMARKS


BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"


def bench_sources():
    return {p.name: p.read_text() for p in BENCH_DIR.glob("bench_*.py")}


class TestExperimentCoverage:
    """Every evaluation artifact of the paper has a benchmark file."""

    EXPECTED = [
        "bench_fig03_ilp.py",
        "bench_tab01_utilization.py",
        "bench_tab02_ipc.py",
        "bench_tab03_cache_hit.py",
        "bench_tab05_instr_ratio.py",
        "bench_tab07_prefetch_cache.py",
        "bench_fig12_incache.py",
        "bench_fig13_breakdown.py",
        "bench_fig14_ipc.py",
        "bench_fig15_outofcache.py",
        "bench_fig16_multicore.py",
        "bench_fig17_m4_incache.py",
        "bench_fig18_m4_outofcache.py",
    ]

    @pytest.mark.parametrize("name", EXPECTED)
    def test_bench_file_exists(self, name):
        assert (BENCH_DIR / name).exists()

    def test_every_bench_reports_a_table(self):
        for name, src in bench_sources().items():
            if name == "conftest.py":
                continue
            assert "report(" in src, f"{name} never reports a table"

    def test_every_bench_asserts_shape(self):
        for name, src in bench_sources().items():
            if name == "conftest.py":
                continue
            assert "assert " in src, f"{name} has no shape assertions"

    def test_methods_used_by_benches_exist(self):
        known = set(METHODS) | {"auto"}
        for name, src in bench_sources().items():
            for method in (
                "vector-only",
                "matrix-only",
                "hstencil",
                "hstencil-prefetch",
                "hstencil-noprefetch",
                "hstencil-nosched",
                "mat-ortho",
            ):
                if f'"{method}"' in src:
                    assert method in known

    def test_stencils_used_by_benches_are_registered(self):
        for name, src in bench_sources().items():
            for stencil in BENCHMARKS:
                # if referenced, it must resolve (sanity; resolution happens
                # at import in the library registry)
                if f'"{stencil}"' in src:
                    assert stencil in BENCHMARKS
