"""Command-line interface."""

import pytest

from repro.cli import main


def test_methods_lists_registry(capsys):
    assert main(["methods"]) == 0
    out = capsys.readouterr().out
    assert "hstencil" in out
    assert "star2d5p" in out
    assert "lx2" in out


def test_bench_prints_counters(capsys):
    assert main(["bench", "--stencil", "star2d5p", "--size", "32x32"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "cyc/pt" in out


def test_compare_normalizes(capsys):
    code = main(
        [
            "compare",
            "--stencil",
            "box2d9p",
            "--size",
            "64x64",
            "--methods",
            "auto,hstencil",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1.00x" in out
    assert "hstencil" in out


def test_compare_skips_inapplicable(capsys):
    main(["compare", "--stencil", "box2d9p", "--size", "32x32", "--methods", "mat-ortho"])
    out = capsys.readouterr().out
    assert "skipped" in out


def test_listing(capsys):
    assert main(["listing", "--stencil", "star2d5p", "--size", "16x16", "--unroll", "2"]) == 0
    out = capsys.readouterr().out
    assert "fmopa" in out


def test_verify_ok(capsys):
    assert main(["verify", "--stencil", "star2d9p", "--size", "16x32", "--unroll", "2"]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_3d(capsys):
    assert main(["verify", "--stencil", "star3d7p", "--size", "4x16x32", "--unroll", "2"]) == 0
    assert "OK" in capsys.readouterr().out


def test_scaling(capsys):
    code = main(
        ["scaling", "--stencil", "box2d9p", "--size", "256", "--cores", "1,2", "--method", "hstencil"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "GStencil/s" in out


def test_square_size_shorthand(capsys):
    assert main(["verify", "--stencil", "star2d5p", "--size", "16", "--unroll", "2"]) == 0


def test_bad_machine():
    with pytest.raises(SystemExit):
        main(["bench", "--machine", "sparc"])


def test_bad_size_rank():
    with pytest.raises(SystemExit):
        main(["verify", "--stencil", "star3d7p", "--size", "16x16"])
