"""Command-line interface."""

import pytest

from repro.cli import main


def test_methods_lists_registry(capsys):
    assert main(["methods"]) == 0
    out = capsys.readouterr().out
    assert "hstencil" in out
    assert "star2d5p" in out
    assert "lx2" in out


def test_bench_prints_counters(capsys):
    assert main(["bench", "--stencil", "star2d5p", "--size", "32x32"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "cyc/pt" in out


def test_compare_normalizes(capsys):
    code = main(
        [
            "compare",
            "--stencil",
            "box2d9p",
            "--size",
            "64x64",
            "--methods",
            "auto,hstencil",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1.00x" in out
    assert "hstencil" in out


def test_compare_skips_inapplicable(capsys):
    main(["compare", "--stencil", "box2d9p", "--size", "32x32", "--methods", "mat-ortho"])
    out = capsys.readouterr().out
    assert "skipped" in out


def test_listing(capsys):
    assert main(["listing", "--stencil", "star2d5p", "--size", "16x16", "--unroll", "2"]) == 0
    out = capsys.readouterr().out
    assert "fmopa" in out


def test_verify_ok(capsys):
    assert main(["verify", "--stencil", "star2d9p", "--size", "16x32", "--unroll", "2"]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_3d(capsys):
    assert main(["verify", "--stencil", "star3d7p", "--size", "4x16x32", "--unroll", "2"]) == 0
    assert "OK" in capsys.readouterr().out


def test_scaling(capsys):
    code = main(
        ["scaling", "--stencil", "box2d9p", "--size", "256", "--cores", "1,2", "--method", "hstencil"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "GStencil/s" in out
    assert "vs serial" in out


def test_scaling_reports_remainder_rows(capsys):
    code = main(
        ["scaling", "--stencil", "box2d9p", "--size", "96", "--cores", "1,11",
         "--method", "vector-only"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "8 remainder rows unassigned" in out  # 96 % 11


def test_bench_cache_dir_and_json(tmp_path, capsys):
    import json

    argv = [
        "bench", "--stencil", "star2d5p", "--size", "32x32",
        "--cache-dir", str(tmp_path / "cache"),
        "--json", str(tmp_path / "art.json"),
    ]
    assert main(argv) == 0
    cold = json.loads((tmp_path / "art.json").read_text())
    assert cold["cache"]["simulated"] == 1
    assert cold["cells"][0]["source"] == "simulated"
    assert cold["machine"]["name"] == "LX2"
    capsys.readouterr()

    assert main(argv) == 0  # second run: disk hit, zero simulations
    warm = json.loads((tmp_path / "art.json").read_text())
    assert warm["cache"]["simulated"] == 0
    assert warm["cache"]["disk_hits"] == 1
    assert warm["cells"][0]["counters"] == cold["cells"][0]["counters"]


def test_compare_json_artifact_in_directory(tmp_path, capsys):
    import json

    code = main(
        ["compare", "--stencil", "box2d9p", "--size", "64x64",
         "--methods", "auto,hstencil", "--json", str(tmp_path)]
    )
    assert code == 0
    payload = json.loads((tmp_path / "BENCH_compare.json").read_text())
    assert payload["experiment"] == "compare"
    assert payload["speedups"]["hstencil"] > 1.0
    assert {c["method"] for c in payload["cells"]} == {"auto", "hstencil"}


def test_square_size_shorthand(capsys):
    assert main(["verify", "--stencil", "star2d5p", "--size", "16", "--unroll", "2"]) == 0


def test_bad_machine():
    with pytest.raises(SystemExit):
        main(["bench", "--machine", "sparc"])


def test_bad_size_rank():
    with pytest.raises(SystemExit):
        main(["verify", "--stencil", "star3d7p", "--size", "16x16"])
