"""Cache hierarchy: lookup/install, LRU, write-back, statistics."""

import dataclasses

import pytest

from repro.machine.cache import CacheHierarchy, CacheLevel, CacheStats, L1, L2, MEM
from repro.machine.config import CacheGeometry, LX2


def tiny_level(sets=4, assoc=2):
    return CacheLevel(CacheGeometry(sets * assoc * 64, 64, assoc), "T")


class TestCacheLevel:
    def test_miss_then_hit(self):
        c = tiny_level()
        assert not c.lookup(10)
        c.install(10)
        assert c.lookup(10)

    def test_lru_eviction_order(self):
        c = tiny_level(sets=1, assoc=2)
        c.install(0)
        c.install(1)
        c.lookup(0)  # promote 0 to MRU
        c.install(2)  # evicts 1 (LRU)
        assert c.contains(0)
        assert not c.contains(1)
        assert c.contains(2)

    def test_clean_eviction_silent(self):
        c = tiny_level(sets=1, assoc=1)
        c.install(0, dirty=False)
        victim = c.install(1)
        assert victim is None
        assert c.stats.writebacks == 0

    def test_dirty_eviction_reported(self):
        c = tiny_level(sets=1, assoc=1)
        c.install(0, dirty=True)
        victim = c.install(1)
        assert victim == 0
        assert c.stats.writebacks == 1

    def test_reinstall_promotes_without_eviction(self):
        c = tiny_level(sets=1, assoc=2)
        c.install(0)
        c.install(1)
        c.install(0)  # already present
        assert c.resident_lines() == 2

    def test_set_mapping(self):
        c = tiny_level(sets=4, assoc=1)
        c.install(0)
        c.install(4)  # same set (4 mod 4 == 0)
        assert not c.contains(0)
        c.install(1)  # different set
        assert c.contains(4) and c.contains(1)

    def test_flush_counts_dirty(self):
        c = tiny_level()
        c.install(0, dirty=True)
        c.install(1, dirty=False)
        assert c.flush() == 1
        assert not c.contains(0)

    def test_contains_does_not_touch_lru(self):
        c = tiny_level(sets=1, assoc=2)
        c.install(0)
        c.install(1)
        c.contains(0)  # must NOT promote
        c.install(2)  # evicts 0 (still LRU)
        assert not c.contains(0)


class TestHierarchy:
    def make(self):
        return CacheHierarchy(LX2())

    def test_lines_for_alignment(self):
        h = self.make()
        assert list(h.lines_for(0, 8)) == [0]
        assert list(h.lines_for(4, 8)) == [0, 1]  # straddles
        assert list(h.lines_for(8, 8)) == [1]

    def test_first_touch_goes_to_memory(self):
        h = self.make()
        assert h.demand_access(1000, 8, write=False) == MEM
        assert h.mem_lines_read == 1

    def test_second_touch_hits_l1(self):
        h = self.make()
        h.demand_access(1000, 8, write=False)
        assert h.demand_access(1000, 8, write=False) == L1
        assert h.l1.stats.demand_hits == 1

    def test_l2_hit_after_l1_eviction(self):
        h = self.make()
        geom = h.config.l1
        lines_to_thrash = geom.num_sets * geom.associativity + geom.num_sets
        h.demand_access(0 * 8, 8, write=False)
        for i in range(1, lines_to_thrash + 1):
            # walk addresses mapping to all sets repeatedly
            h.demand_access(i * 8, 8, write=False)
        level = h.demand_access(0, 8, write=False)
        assert level == L2

    def test_write_allocate_marks_dirty(self):
        h = self.make()
        h.demand_access(2000, 8, write=True)
        assert h.l1._dirty  # some line dirty

    def test_software_prefetch_fills_l1(self):
        h = self.make()
        h.software_prefetch(3000, 8, write=False)
        assert h.l1.stats.prefetch_fills == 1
        assert h.demand_access(3000, 8, write=False) == L1

    def test_software_prefetch_probe_statistics(self):
        h = self.make()
        h.software_prefetch(3000, 8, write=False)  # probe miss + fill
        h.software_prefetch(3000, 8, write=False)  # probe hit
        assert h.l1.stats.prefetch_probes == 2
        assert h.l1.stats.prefetch_probe_hits == 1
        # perf-style accounting includes probes
        assert h.l1.stats.perf_accesses == 2
        assert h.l1.stats.perf_hits == 1

    def test_prefetch_does_not_inflate_demand_stats(self):
        h = self.make()
        h.software_prefetch(3000, 8, write=False)
        assert h.l1.stats.demand_accesses == 0

    def test_hardware_prefetch_fills_without_stats(self):
        h = self.make()
        h.hardware_prefetch(77)
        assert h.l1.stats.demand_accesses == 0
        assert h.l1.stats.prefetch_fills == 1
        assert h.l1.contains(77)

    def test_hardware_prefetch_idempotent(self):
        h = self.make()
        h.hardware_prefetch(77)
        h.hardware_prefetch(77)
        assert h.l1.stats.prefetch_fills == 1

    def test_dram_byte_accounting(self):
        h = self.make()
        h.demand_access(1000, 8, write=False)
        assert h.dram_bytes() == 64

    def test_l1_writeback_chain_counts_dram_write(self):
        """Regression: a dirty L2 line displaced by an L1 writeback install
        must count as DRAM write traffic (the L1 -> L2 -> DRAM chain).

        Tiny single-set 2-way L1 and L2; dirty-writing four distinct
        same-set lines drives exactly one writeback through the previously
        uncounted path: D's fill evicts dirty B from L1, B is no longer in
        L2, and installing B displaces dirty A from L2 to DRAM.
        """
        tiny = CacheGeometry(128, 64, 2)  # 1 set, 2 ways
        config = dataclasses.replace(LX2(), l1=tiny, l2=tiny)
        h = CacheHierarchy(config)
        for line in range(4):  # word addresses of lines A, B, C, D
            h.demand_access(line * 8, 1, write=True)
        assert h.mem_lines_written == 1
        # Both DRAM directions appear in the byte total.
        assert h.dram_bytes() == (h.mem_lines_read + 1) * 64

    def test_dirty_l1_eviction_into_clean_l2_marks_dirty(self):
        """The mark-dirty path (victim still in L2) defers the DRAM write
        until the line actually leaves L2."""
        l1 = CacheGeometry(64, 64, 1)  # 1 set, 1 way
        l2 = CacheGeometry(256, 64, 4)  # 1 set, 4 ways
        config = dataclasses.replace(LX2(), l1=l1, l2=l2)
        h = CacheHierarchy(config)
        h.demand_access(0, 1, write=True)  # line 0 dirty in L1
        h.demand_access(8, 1, write=True)  # evicts line 0 into L2 (dirty)
        assert h.mem_lines_written == 0
        # Thrash L2 until dirty line 0 is displaced to DRAM.
        for line in range(2, 6):
            h.demand_access(line * 8, 1, write=False)
        assert h.mem_lines_written >= 1

    def test_reset_stats_keeps_contents(self):
        h = self.make()
        h.demand_access(1000, 8, write=False)
        h.reset_stats()
        assert h.l1.stats.demand_accesses == 0
        assert h.demand_access(1000, 8, write=False) == L1  # still warm


class TestCacheStats:
    def test_hit_rates(self):
        s = CacheStats(demand_accesses=10, demand_hits=7)
        assert s.demand_hit_rate == pytest.approx(0.7)
        assert CacheStats().demand_hit_rate == 0.0

    def test_merge(self):
        a = CacheStats(demand_accesses=5, demand_hits=3, prefetch_probes=2)
        b = CacheStats(demand_accesses=1, demand_hits=1, prefetch_probe_hits=1)
        a.merge(b)
        assert a.demand_accesses == 6
        assert a.demand_hits == 4
        assert a.prefetch_probes == 2
        assert a.prefetch_probe_hits == 1
