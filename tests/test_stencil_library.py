"""Named stencil benchmark registry."""

import pytest

from repro.stencils.library import BENCHMARKS, SUITE_2D, SUITE_3D, benchmark, benchmark_names


def test_all_registered_names_build():
    for name in BENCHMARKS:
        spec = benchmark(name)
        assert spec.num_points >= 5


def test_lookup_is_cached():
    assert benchmark("star2d5p") is benchmark("star2d5p")


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        benchmark("star2d99p")


def test_suites_are_registered():
    for name in SUITE_2D + SUITE_3D:
        assert name in BENCHMARKS


def test_suite_dimensionality():
    assert all(benchmark(n).ndim == 2 for n in SUITE_2D)
    assert all(benchmark(n).ndim == 3 for n in SUITE_3D)


def test_name_point_convention():
    """The NP suffix in every name matches the actual tap count."""
    for name in BENCHMARKS:
        if name == "heat2d":
            continue
        spec = benchmark(name)
        assert name.endswith(f"{spec.num_points}p")


def test_filtering():
    stars = benchmark_names(pattern="star")
    assert "star2d5p" in stars and "box2d9p" not in stars
    three_d = benchmark_names(ndim=3)
    assert all(benchmark(n).ndim == 3 for n in three_d)
    star3 = benchmark_names(pattern="star", ndim=3)
    assert star3 == ("star3d7p", "star3d13p")


def test_heat2d_registered_as_star():
    assert benchmark("heat2d").pattern == "star"
