"""PerfCounters: derived metrics, scaling, merging."""

import pytest

from repro.isa.instructions import PortClass
from repro.machine.perf import PerfCounters


def sample():
    pc = PerfCounters(label="x")
    pc.cycles = 1000.0
    pc.instructions = 2500
    pc.instructions_by_port = {PortClass.VECTOR: 1500, PortClass.LOAD: 1000}
    pc.flops = 40_000
    pc.useful_flops = 30_000
    pc.points = 4096
    pc.l1_accesses = 1200
    pc.l1_hits = 1100
    pc.l1_demand_accesses = 1000
    pc.l1_demand_hits = 950
    pc.l2_accesses = 50
    pc.l2_hits = 40
    pc.dram_lines_read = 10
    pc.dram_lines_written = 5
    return pc


class TestDerived:
    def test_ipc(self):
        assert sample().ipc == pytest.approx(2.5)
        assert PerfCounters().ipc == 0.0

    def test_hit_rates(self):
        pc = sample()
        assert pc.l1_hit_rate == pytest.approx(1100 / 1200)
        assert pc.l1_demand_hit_rate == pytest.approx(0.95)
        assert PerfCounters().l1_hit_rate == 0.0

    def test_cycles_per_point(self):
        assert sample().cycles_per_point == pytest.approx(1000 / 4096)

    def test_matrix_utilization(self):
        assert sample().matrix_utilization == pytest.approx(0.75)

    def test_gstencil_per_s(self):
        pc = sample()
        # 4096 points in 1000 cycles at 2.5 GHz
        expect = 4096 / (1000 / 2.5e9) / 1e9
        assert pc.gstencil_per_s(2.5) == pytest.approx(expect)
        assert PerfCounters().gstencil_per_s(2.5) == 0.0

    def test_dram_bytes(self):
        assert sample().dram_bytes() == 15 * 64

    def test_dram_bytes_follows_machine_line_size(self):
        """Regression: the default must track the line size the counters
        were collected at, not a hardcoded 64 B."""
        pc = sample()
        pc.line_bytes = 128
        assert pc.dram_bytes() == 15 * 128
        assert pc.dram_bytes(32) == 15 * 32  # explicit override still wins

    def test_line_bytes_survives_scaling(self):
        pc = sample()
        pc.line_bytes = 128
        assert pc.scaled(2.0).line_bytes == 128


class TestScaling:
    def test_scaled_marks_sampled(self):
        out = sample().scaled(2.0)
        assert out.sampled
        assert out.cycles == 2000.0
        assert out.instructions == 5000
        assert out.points == 8192
        assert out.instructions_by_port[PortClass.VECTOR] == 3000

    def test_scaled_preserves_rates(self):
        pc = sample()
        out = pc.scaled(3.0)
        assert out.ipc == pytest.approx(pc.ipc)
        assert out.l1_hit_rate == pytest.approx(pc.l1_hit_rate)
        assert out.cycles_per_point == pytest.approx(pc.cycles_per_point)


class TestMerge:
    def test_merge_accumulates(self):
        a, b = sample(), sample()
        a.merge(b)
        assert a.cycles == 2000.0
        assert a.instructions == 5000
        assert a.points == 8192
        assert a.l1_hits == 2200
        assert a.instructions_by_port[PortClass.LOAD] == 2000

    def test_merge_sampled_flag_sticky(self):
        a = sample()
        b = sample().scaled(1.0)
        a.merge(b)
        assert a.sampled

    def test_summary_mentions_key_numbers(self):
        text = sample().summary()
        assert "IPC 2.50" in text
        assert "x" in text
