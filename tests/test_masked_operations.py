"""Masked (predicated) loads/stores and arbitrary-size kernel support."""

import numpy as np
import pytest

from repro import HStencil, KernelOptions
from repro.isa.asm import format_instruction, parse_instruction
from repro.isa.instructions import LD1D, ST1D, ST1D_SLICE
from repro.isa.registers import TileReg, VReg
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.stencils.reference import apply_reference
from repro.stencils.spec import box2d, star2d, star3d


class TestMaskedSemantics:
    def test_masked_load_zero_fills(self):
        eng = FunctionalEngine(MemorySpace())
        base = eng.memory.alloc(8)
        eng.memory.write(base, np.arange(8.0))
        eng.execute(LD1D(VReg(0), base, mask=3))
        got = eng.regs.read_v(VReg(0))
        assert np.array_equal(got[:3], [0.0, 1.0, 2.0])
        assert np.all(got[3:] == 0.0)

    def test_masked_store_leaves_tail_untouched(self):
        eng = FunctionalEngine(MemorySpace())
        base = eng.memory.alloc(8)
        eng.memory.write(base, np.full(8, 9.0))
        eng.regs.write_v(VReg(1), np.arange(8.0))
        eng.execute(ST1D(VReg(1), base, mask=5))
        got = eng.memory.read(base, 8)
        assert np.array_equal(got[:5], np.arange(5.0))
        assert np.all(got[5:] == 9.0)

    def test_masked_slice_store(self):
        eng = FunctionalEngine(MemorySpace())
        base = eng.memory.alloc(8)
        eng.regs.write_slice(TileReg(0), 2, np.arange(8.0))
        eng.execute(ST1D_SLICE(TileReg(0), 2, base, mask=2))
        got = eng.memory.read(base, 8)
        assert np.array_equal(got[:2], [0.0, 1.0])
        assert np.all(got[2:] == 0.0)

    def test_mask_bounds_checked(self):
        with pytest.raises(ValueError):
            LD1D(VReg(0), 0, mask=0)
        with pytest.raises(ValueError):
            ST1D(VReg(0), 0, mask=9)

    def test_masked_memory_footprint(self):
        assert LD1D(VReg(0), 100, mask=3).mem_reads() == ((100, 3),)
        assert ST1D(VReg(0), 100, mask=3).mem_writes() == ((100, 3),)

    def test_asm_roundtrip_with_mask(self):
        for ins in (LD1D(VReg(1), 64, mask=5), ST1D(VReg(2), 72, mask=1),
                    ST1D_SLICE(TileReg(3), 4, 80, mask=7)):
            text = format_instruction(ins)
            assert "mask=" in text
            back = parse_instruction(text)
            assert back.mask == ins.mask

    def test_full_mask_renders_plain(self):
        assert "mask" not in format_instruction(LD1D(VReg(0), 8))


def _check(spec, interior, seed=3, **hs_kwargs):
    r = spec.radius
    field = np.random.default_rng(seed).random(
        tuple(s + 2 * r for s in interior)
    )
    out = HStencil(spec, **hs_kwargs).apply(field)
    ref = apply_reference(field, spec)
    scale = max(float(np.max(np.abs(ref))), 1e-30)
    assert float(np.max(np.abs(out - ref))) / scale < 1e-11


class TestArbitrarySizes:
    @pytest.mark.parametrize(
        "interior",
        [(9, 9), (13, 27), (8, 33), (17, 32), (10, 7), (23, 65)],
    )
    def test_star_odd_shapes(self, interior):
        _check(star2d(2), interior)

    @pytest.mark.parametrize("interior", [(9, 9), (15, 31), (12, 50)])
    def test_box_odd_shapes(self, interior):
        _check(box2d(2), interior)

    def test_radius1_minimum_grid(self):
        _check(star2d(1), (1, 1))

    def test_single_row(self):
        _check(star2d(1), (1, 40))

    def test_single_column_block(self):
        _check(box2d(1), (40, 3))

    def test_3d_odd_shapes(self):
        _check(star3d(1), (3, 9, 21), options=KernelOptions(unroll_j=2))

    def test_odd_shapes_with_prefetch(self):
        _check(star2d(2), (13, 27), method="hstencil-prefetch")

    def test_odd_shapes_unscheduled(self):
        _check(star2d(2), (13, 27), method="hstencil-nosched")

    @pytest.mark.parametrize("unroll", [1, 2, 4, 8])
    def test_odd_shapes_all_unrolls(self, unroll):
        _check(box2d(1), (11, 29), options=KernelOptions(unroll_j=unroll))

    def test_timing_runs_on_odd_shapes(self):
        pc = HStencil(star2d(1)).benchmark(13, 29)
        assert pc.points == 13 * 29
        assert pc.cycles > 0
