"""Property-based tests on grid layout and addressing."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa.registers import SVL_LANES
from repro.machine.memory import MemorySpace
from repro.stencils.grid import BASE_ALIGN_WORDS, Grid2D, Grid3D


grid_dims = st.tuples(st.integers(1, 40), st.integers(1, 60), st.integers(0, 4))


@settings(max_examples=40, deadline=None)
@given(dims=grid_dims)
def test_addressing_is_injective(dims):
    rows, cols, r = dims
    g = Grid2D(MemorySpace(), rows, cols, r, "A")
    seen = set()
    for i in range(-r, rows + r):
        for j in range(-r, cols + r):
            a = g.addr(i, j)
            assert a not in seen
            seen.add(a)


@settings(max_examples=40, deadline=None)
@given(dims=grid_dims)
def test_rows_contiguous_and_strided(dims):
    rows, cols, r = dims
    g = Grid2D(MemorySpace(), rows, cols, r, "A")
    for i in range(min(rows, 4)):
        assert g.addr(i, 1) == g.addr(i, 0) + 1
        if i + 1 < rows:
            assert g.addr(i + 1, 0) - g.addr(i, 0) == g.row_stride


@settings(max_examples=40, deadline=None)
@given(dims=grid_dims)
def test_interior_origin_line_aligned(dims):
    rows, cols, r = dims
    g = Grid2D(MemorySpace(), rows, cols, r, "A")
    assert g.addr(0, 0) % SVL_LANES == 0


@settings(max_examples=30, deadline=None)
@given(dims=grid_dims, seed=st.integers(0, 1000))
def test_full_roundtrip_property(dims, seed):
    rows, cols, r = dims
    g = Grid2D(MemorySpace(), rows, cols, r, "A")
    full = np.random.default_rng(seed).random((rows + 2 * r, cols + 2 * r))
    g.set_full(full)
    assert np.array_equal(g.get_full(), full)
    assert np.array_equal(g.get_interior(), full[r:, r:][:rows, :cols])


@settings(max_examples=30, deadline=None)
@given(dims=grid_dims)
def test_base_phase_independent_of_allocation_history(dims):
    """The set-phase of a grid depends only on its name (DESIGN.md)."""
    rows, cols, r = dims
    a1 = Grid2D(MemorySpace(), rows, cols, r, "A")
    mem2 = MemorySpace()
    mem2.alloc(12345, "noise")
    a2 = Grid2D(mem2, rows + 8, cols, r, "A")
    assert a1.base % BASE_ALIGN_WORDS == a2.base % BASE_ALIGN_WORDS


@settings(max_examples=20, deadline=None)
@given(
    depth=st.integers(1, 6),
    rows=st.integers(1, 12),
    cols=st.integers(1, 24),
    r=st.integers(0, 2),
)
def test_3d_plane_addressing(depth, rows, cols, r):
    g = Grid3D(MemorySpace(), depth, rows, cols, r, "V")
    for z in range(min(depth, 3)):
        assert g.addr(z, 0, 0) == g.addr(0, 0, 0) + z * g.plane_stride
    # planes never overlap
    assert g.plane_stride >= (rows + 2 * r) * g.row_stride
