"""Multicore strong-scaling model."""

import pytest

from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2
from repro.machine.memory import MemorySpace
from repro.machine.multicore import MulticoreModel, ScalingPoint
from repro.machine.perf import PerfCounters
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark


def kernel_factory(method="hstencil", stencil="box2d9p", cols=64):
    spec = benchmark(stencil)

    def make(rows):
        mem = MemorySpace()
        src = Grid2D(mem, rows, cols, spec.radius, "A")
        dst = Grid2D(mem, rows, cols, spec.radius, "B")
        return make_kernel(method, spec, src, dst, LX2(), KernelOptions(unroll_j=2))

    return make


class TestScalingPoint:
    def _slice(self, cycles=1000.0, points=4096, dram_lines=100):
        pc = PerfCounters()
        pc.cycles = cycles
        pc.points = points
        pc.dram_lines_read = dram_lines
        return pc

    def test_compute_bound_at_low_core_counts(self):
        mc = MulticoreModel(LX2())
        pt = mc.scaling_point(1, self._slice())
        assert not pt.bandwidth_bound
        assert pt.cycles == 1000.0
        assert pt.points == 4096

    def test_bandwidth_bound_at_high_core_counts(self):
        mc = MulticoreModel(LX2())
        heavy = self._slice(cycles=100.0, dram_lines=10_000)
        pt = mc.scaling_point(64, heavy)
        assert pt.bandwidth_bound
        assert pt.cycles > 100.0

    def test_throughput_additive_when_unbound(self):
        mc = MulticoreModel(LX2())
        p1 = mc.scaling_point(1, self._slice())
        p4 = mc.scaling_point(4, self._slice())
        if not p4.bandwidth_bound:
            assert p4.gstencil_per_s == pytest.approx(4 * p1.gstencil_per_s)

    def test_invalid_core_count(self):
        mc = MulticoreModel(LX2())
        with pytest.raises(ValueError):
            mc.scaling_point(0, self._slice())


class TestStrongScaling:
    def test_monotone_throughput(self):
        mc = MulticoreModel(LX2())
        pts = mc.strong_scaling(kernel_factory(), total_rows=64, core_counts=[1, 2, 4])
        rates = [p.gstencil_per_s for p in pts]
        assert rates[0] < rates[1] < rates[2] * 1.001

    def test_equal_slices_simulated_once(self):
        mc = MulticoreModel(LX2())
        pts = mc.strong_scaling(kernel_factory(), total_rows=64, core_counts=[2, 2])
        assert pts[0].cycles == pts[1].cycles

    def test_rows_must_divide(self):
        mc = MulticoreModel(LX2())
        with pytest.raises(ValueError):
            mc.strong_scaling(kernel_factory(), total_rows=8, core_counts=[16])

    def test_points_scale_with_cores(self):
        mc = MulticoreModel(LX2())
        pts = mc.strong_scaling(kernel_factory(), total_rows=64, core_counts=[1, 4])
        assert pts[1].points == pts[0].points  # same total grid rows*cols


def synthetic_slice(cycles, points, dram_lines=0):
    pc = PerfCounters()
    pc.cycles = cycles
    pc.points = points
    pc.dram_lines_read = dram_lines
    return pc


class TestSerialRebase:
    """Regression: speedup_vs_serial must compare against the true 1-core
    point, not the same slice's own cycles (which reported ~1.0x)."""

    def test_32_cores_reports_true_speedup(self):
        mc = MulticoreModel(LX2())
        # Perfectly linear synthetic workload: the 2-row slice runs 32x
        # faster than the full 64-row grid.
        slices = {2: synthetic_slice(100.0, 128), 64: synthetic_slice(3200.0, 4096)}
        (pt,) = mc.series_from_slices(slices, total_rows=64, core_counts=[32])
        assert pt.speedup_vs_serial == pytest.approx(32.0)
        assert pt.serial_cycles == 3200.0
        assert pt.serial_points == 4096

    def test_serial_point_reports_one(self):
        mc = MulticoreModel(LX2())
        slices = {64: synthetic_slice(3200.0, 4096)}
        (pt,) = mc.series_from_slices(slices, total_rows=64, core_counts=[1])
        assert pt.speedup_vs_serial == pytest.approx(1.0)

    def test_strong_scaling_simulates_serial_reference(self):
        mc = MulticoreModel(LX2())
        # 1 is NOT in core_counts: the serial (64-row) reference must be
        # simulated anyway and used as the rebase target.
        pts = mc.strong_scaling(kernel_factory(), total_rows=64, core_counts=[4])
        assert pts[0].serial_cycles > 0
        assert pts[0].serial_points == pts[0].points
        assert pts[0].speedup_vs_serial > 2.0  # real speedup, not ~1.0x

    def test_remainder_rows_surfaced(self):
        mc = MulticoreModel(LX2())
        slices = {
            21: synthetic_slice(100.0, 1344),
            64: synthetic_slice(320.0, 4096),
        }
        (pt,) = mc.series_from_slices(slices, total_rows=64, core_counts=[3])
        assert pt.remainder_rows == 64 % 3 == 1
        assert pt.points == 3 * 1344  # remainder rows are not computed

    def test_missing_serial_slice_rejected(self):
        mc = MulticoreModel(LX2())
        with pytest.raises(ValueError):
            mc.series_from_slices({32: synthetic_slice(100.0, 2048)}, 64, [2])

    def test_bare_scaling_point_falls_back_to_slice_ratio(self):
        mc = MulticoreModel(LX2())
        pt = mc.scaling_point(4, synthetic_slice(1000.0, 4096))
        assert pt.serial_cycles == 0.0
        assert pt.speedup_vs_serial == pytest.approx(1.0)


class TestSpeedupVsSerialContract:
    """Pin down the three regimes of ``ScalingPoint.speedup_vs_serial``."""

    def test_bare_fallback_below_one_when_bandwidth_bound(self):
        # Without a serial reference the property degrades to the
        # same-slice ratio, which only drops below 1.0 when the
        # contention bound stretched the slice.
        mc = MulticoreModel(LX2())
        pt = mc.scaling_point(64, synthetic_slice(100.0, 4096, dram_lines=10_000))
        assert pt.bandwidth_bound
        assert pt.serial_cycles == 0.0
        assert pt.speedup_vs_serial == pytest.approx(pt.single_core_cycles / pt.cycles)
        assert pt.speedup_vs_serial < 1.0

    def test_zero_cycle_point_reports_zero(self):
        mc = MulticoreModel(LX2())
        pt = mc.scaling_point(2, synthetic_slice(0.0, 0))
        assert pt.speedup_vs_serial == 0.0

    def test_remainder_rows_do_not_distort_throughput_speedup(self):
        # 64 rows on 3 cores: one remainder row is dropped (fewer points),
        # but the speedup is a throughput ratio, so a perfectly linear
        # workload still reports exactly 3x — with the dropped work
        # surfaced separately via remainder_rows / points.
        mc = MulticoreModel(LX2())
        slices = {
            21: synthetic_slice(2100.0, 1344),  # 100 cycles/row, 64 pts/row
            64: synthetic_slice(6400.0, 4096),
        }
        (pt,) = mc.series_from_slices(slices, total_rows=64, core_counts=[3])
        assert pt.remainder_rows == 1
        assert pt.points == 3 * 1344
        assert pt.speedup_vs_serial == pytest.approx(3.0)

    def test_rebase_uses_true_serial_reference_not_slice_ratio(self):
        # The short slice runs super-linearly faster per point (cache
        # effects): rebasing against the true 1-core measurement must
        # surface that, where the same-slice fallback would report 1.0.
        mc = MulticoreModel(LX2())
        slices = {
            32: synthetic_slice(800.0, 2048),   # 4x the serial throughput
            64: synthetic_slice(6400.0, 4096),
        }
        (pt,) = mc.series_from_slices(slices, total_rows=64, core_counts=[2])
        assert not pt.bandwidth_bound
        assert pt.speedup_vs_serial == pytest.approx(8.0)
