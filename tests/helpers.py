"""Shared helpers for the test suite (importable module)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2, M4, MachineConfig
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.stencils.grid import Grid2D, Grid3D
from repro.stencils.reference import reference_stencil_2d, reference_stencil_3d
from repro.stencils.spec import StencilSpec


def run_method_2d(
    method: str,
    spec: StencilSpec,
    config: MachineConfig,
    rows: int = 16,
    cols: int = 32,
    options: Optional[KernelOptions] = None,
    seed: int = 11,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run a kernel functionally on a random 2D grid; return (got, ref)."""
    memspace = MemorySpace()
    src = Grid2D(memspace, rows, cols, spec.radius, "A", fill="random", seed=seed)
    dst = Grid2D(memspace, rows, cols, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, config, options or KernelOptions(unroll_j=2))
    engine = FunctionalEngine(memspace)
    engine.run_kernel(kernel)
    return dst.get_interior(), reference_stencil_2d(src.get_full(), spec)


def run_method_3d(
    method: str,
    spec: StencilSpec,
    config: MachineConfig,
    depth: int = 4,
    rows: int = 16,
    cols: int = 32,
    options: Optional[KernelOptions] = None,
    seed: int = 13,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run a kernel functionally on a random 3D grid; return (got, ref)."""
    memspace = MemorySpace()
    src = Grid3D(memspace, depth, rows, cols, spec.radius, "A", fill="random", seed=seed)
    dst = Grid3D(memspace, depth, rows, cols, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, config, options or KernelOptions(unroll_j=2))
    engine = FunctionalEngine(memspace)
    engine.run_kernel(kernel)
    return dst.get_interior(), reference_stencil_3d(src.get_full(), spec)


def assert_matches_reference(got: np.ndarray, ref: np.ndarray, rtol: float = 1e-11) -> None:
    """Assert kernel output equals the NumPy reference up to FP reassociation."""
    scale = max(float(np.max(np.abs(ref))), 1e-30)
    err = float(np.max(np.abs(got - ref))) / scale
    assert err < rtol, f"max relative error {err:.3e} exceeds {rtol}"
