"""Round-trip and safety tests for the AOT compiled-artifact store.

The store promises that a warm process — templates, timing/functional
programs and columnar plans all deserialized from disk — produces counters
and grids bit-identical to a cold live build, and that anything wrong with
the on-disk state (truncation, version skew, tampering) degrades to the
live path rather than to wrong answers.  These tests enforce both halves
over the whole method registry on both machine presets, mirroring
``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.cli import main
from repro.kernels import template as template_mod
from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.kernels.template import TraceCompiler, compile_stats, reset_compile_stats
from repro.machine import artifacts
from repro.machine import compiled as compiled_mod
from repro.machine.artifacts import (
    ArtifactStore,
    active_store,
    decode_trace,
    encode_trace,
    install_artifact_store,
)
from repro.machine.codegen import codegen_stats, reset_codegen_stats
from repro.machine.compiled import (
    ProgramPool,
    clear_program_pool,
    program_pool_stats,
)
from repro.machine.config import LX2, M4
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.machine.timing import TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark

MACHINES = {"LX2": LX2, "M4": M4}


@pytest.fixture(autouse=True)
def _isolated_store(monkeypatch):
    """Keep the process-wide store and pools from leaking across tests."""
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    install_artifact_store(None)
    clear_program_pool(reset_stats=True)
    reset_compile_stats()
    reset_codegen_stats()
    yield
    install_artifact_store(None)
    clear_program_pool(reset_stats=True)
    reset_compile_stats()
    reset_codegen_stats()


def _build(method, machine_name, stencil="star2d9p", rows=32, cols=32):
    """Kernel + memory space; None if the method rejects this machine."""
    spec = benchmark(stencil)
    config = MACHINES[machine_name]()
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=7)
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    try:
        kernel = make_kernel(method, spec, src, dst, config, KernelOptions(unroll_j=2))
    except ValueError:
        return None
    return kernel, config, mem, dst


def _timing_run(method, machine_name, store_dir, **build_kw):
    """Fresh pools + (optional) store, one timing run; counter dict or None."""
    install_artifact_store(str(store_dir) if store_dir is not None else None)
    clear_program_pool(reset_stats=True)
    reset_compile_stats()
    built = _build(method, machine_name, **build_kw)
    if built is None:
        return None
    kernel, config, _, _ = built
    return TimingEngine(config, engine="compiled").run(kernel, sample=False, warm=True).to_dict()


# -- round-trip bit identity --------------------------------------------------


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", sorted(METHODS))
def test_timing_round_trip_bit_identical(method, machine_name, tmp_path):
    """serialize -> deserialize -> replay equals the live build exactly."""
    live = _timing_run(method, machine_name, None)
    if live is None:
        pytest.skip(f"{method} not applicable on {machine_name}")
    cold = _timing_run(method, machine_name, tmp_path)
    cold_stats = compile_stats()
    warm = _timing_run(method, machine_name, tmp_path)
    warm_stats = compile_stats()
    assert cold == live
    assert warm == live
    # The warm process must not have fitted anything live ...
    assert warm_stats["compiled_classes"] == 0
    assert warm_stats["fit_seconds"] == 0.0
    assert warm_stats["load_demotions"] == 0
    # ... every class the cold run compiled came back from the store.
    assert warm_stats["loaded_classes"] == cold_stats["compiled_classes"]
    pool = program_pool_stats()
    assert pool["builds"] == 0
    assert pool["store_hits"] >= 1


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", ["hstencil", "vector-only"])
def test_functional_round_trip_bit_identical(method, machine_name, tmp_path):
    grids = {}
    for phase, store_dir in [("live", None), ("cold", tmp_path), ("warm", tmp_path)]:
        install_artifact_store(str(store_dir) if store_dir is not None else None)
        clear_program_pool(reset_stats=True)
        reset_compile_stats()
        built = _build(method, machine_name)
        if built is None:
            pytest.skip(f"{method} not applicable on {machine_name}")
        kernel, _, mem, dst = built
        fe = FunctionalEngine(mem)
        fe.run_kernel(kernel, engine="compiled")
        grids[phase] = (dst.get_full().copy(), fe.instructions_executed)
    warm_pool = program_pool_stats()
    assert np.array_equal(grids["cold"][0], grids["live"][0])
    assert np.array_equal(grids["warm"][0], grids["live"][0])
    assert grids["cold"][1] == grids["live"][1] == grids["warm"][1]
    assert warm_pool["functional_builds"] == 0
    assert warm_pool["functional_store_hits"] >= 1


def test_trace_codec_round_trip():
    """encode/decode reproduces the exact instruction objects."""
    built = _build("hstencil", "LX2")
    kernel, config, _, _ = built
    nest = kernel.loop_nest()
    block = next(iter(nest.blocks))
    trace = kernel.emit(block)
    payload = encode_trace(trace)
    assert payload is not None
    json.dumps(payload)  # must be JSON-serializable as-is
    back = decode_trace(payload)
    assert back == trace


# -- corruption / skew / tampering -------------------------------------------


def _artifact_files(root):
    out = []
    for dirpath, _dirs, files in os.walk(root):
        out.extend(os.path.join(dirpath, f) for f in files if f.endswith(".json"))
    return sorted(out)


def test_truncated_artifacts_fall_back_to_live_build(tmp_path):
    live = _timing_run("hstencil", "LX2", None)
    _timing_run("hstencil", "LX2", tmp_path)
    files = _artifact_files(tmp_path)
    assert files
    for path in files:
        with open(path, "w") as fh:
            fh.write("{")  # truncated JSON
    rebuilt = _timing_run("hstencil", "LX2", tmp_path)
    stats = compile_stats()
    assert rebuilt == live
    assert stats["compiled_classes"] >= 1  # everything was rebuilt live
    assert stats["load_demotions"] == 0
    store = active_store()
    assert store is not None and store.stats()["invalid"] >= 1


def test_version_skew_misses_and_rebuilds(tmp_path, monkeypatch):
    live = _timing_run("hstencil", "LX2", None)
    _timing_run("hstencil", "LX2", tmp_path)
    # A source change flips code_version, which participates in every
    # digest: stale entries are simply never looked up again.
    monkeypatch.setattr(artifacts, "code_version", lambda: "f" * 16)
    rebuilt = _timing_run("hstencil", "LX2", tmp_path)
    stats = compile_stats()
    pool = program_pool_stats()
    assert rebuilt == live
    assert stats["loaded_classes"] == 0
    assert stats["compiled_classes"] >= 1
    assert pool["store_hits"] == 0 and pool["builds"] >= 1


def test_tampered_template_demoted_on_load(tmp_path):
    """The probe-on-load check catches a template whose address model lies."""
    live = _timing_run("hstencil", "LX2", None)
    _timing_run("hstencil", "LX2", tmp_path)
    bundles = [
        p for p in _artifact_files(tmp_path) if f"{os.sep}templates{os.sep}" in p
    ]
    assert bundles
    tampered = 0
    for path in bundles:
        with open(path) as fh:
            data = json.load(fh)
        for entry in data["data"]["classes"].values():
            if not isinstance(entry, dict) or not entry["deltas"]:
                continue
            # Shift the representative key along a varying dimension: the
            # affine model now rebases every block's addresses wrongly,
            # while the stored trace itself still decodes consistently.
            dim = entry["deltas"][0][0]
            entry["key0"][dim] -= 1
            tampered += 1
        with open(path, "w") as fh:
            json.dump(data, fh)
    assert tampered >= 1
    rebuilt = _timing_run("hstencil", "LX2", tmp_path)
    stats = compile_stats()
    assert rebuilt == live  # demoted classes replay through the live path
    assert stats["load_demotions"] >= 1


# -- program pool ------------------------------------------------------------


def test_program_pool_lru_eviction(monkeypatch):
    monkeypatch.setattr(compiled_mod, "_POOL", ProgramPool(capacity=1))
    built = _build("hstencil", "LX2", stencil="box2d9p", rows=21, cols=27)
    kernel, config, _, _ = built
    TimingEngine(config, engine="compiled").run(kernel, sample=False, warm=True)
    stats = compiled_mod._POOL.stats()
    assert stats["capacity"] == 1
    assert stats["entries"] <= 1
    assert stats["builds"] >= 2  # several shape classes on an odd grid
    assert stats["evictions"] >= 1
    assert stats["evictions"] == stats["builds"] - stats["entries"]


def test_program_pool_counters(tmp_path):
    _timing_run("hstencil", "LX2", tmp_path)
    cold = program_pool_stats()
    assert cold["builds"] >= 1
    assert cold["store_writes"] == cold["builds"]
    assert cold["build_seconds"] > 0.0
    assert cold["hits"] >= 0 and cold["misses"] == cold["builds"]
    _timing_run("hstencil", "LX2", tmp_path)
    warm = program_pool_stats()
    assert warm["builds"] == 0
    assert warm["store_hits"] == cold["builds"]


# -- codegen artifacts --------------------------------------------------------


def _scalar_timing_run(
    method, machine_name, store_dir, codegen="on", sample=True, **build_kw
):
    """Like :func:`_timing_run` but through the scalar replay path, which
    dispatches per-block through ``process_template`` — the path that
    generates (and persists) exec-compiled codegen kernels.  ``sample=False``
    runs the full grid, touching every shape class."""
    from repro.machine.timing import SamplePlan

    install_artifact_store(str(store_dir) if store_dir is not None else None)
    clear_program_pool(reset_stats=True)
    reset_compile_stats()
    reset_codegen_stats()
    built = _build(method, machine_name, **build_kw)
    if built is None:
        return None
    kernel, config, _, _ = built
    plan = SamplePlan(warmup_bands=1, min_measure_points=600) if sample else None
    engine = TimingEngine(config, engine="compiled", timing="scalar", codegen=codegen)
    return engine.run(kernel, sample=sample, plan=plan, warm=True).to_dict()


def test_codegen_round_trip_bit_identical(tmp_path):
    """Cold run persists codegen kernels; a warm process loads every one."""
    live = _scalar_timing_run("hstencil", "LX2", None)
    cold = _scalar_timing_run("hstencil", "LX2", tmp_path)
    cold_stats = codegen_stats()
    warm = _scalar_timing_run("hstencil", "LX2", tmp_path)
    warm_stats = codegen_stats()
    assert cold == live and warm == live
    assert cold_stats["generated"] >= 1
    assert cold_stats["store_writes"] == cold_stats["generated"]
    assert warm_stats["generated"] == 0
    assert warm_stats["loaded"] == cold_stats["generated"]
    assert warm_stats["demoted"] == 0
    kinds = ArtifactStore(tmp_path).disk_stats()["kinds"]
    assert kinds["codegen"]["entries"] == cold_stats["generated"]
    assert kinds["codegen"]["bytes"] > 0


def test_concurrent_cold_generation_races_cleanly(tmp_path):
    """Two processes generating the same classes on a cold store both
    succeed via the atomic-write path, with exactly one entry per class."""
    import subprocess
    import sys

    store = tmp_path / "store"
    script = (
        "import sys, json; sys.path.insert(0, sys.argv[1])\n"
        "from repro.machine.artifacts import install_artifact_store\n"
        "install_artifact_store(sys.argv[2])\n"
        "from repro.kernels.base import KernelOptions\n"
        "from repro.kernels.registry import make_kernel\n"
        "from repro.machine.config import LX2\n"
        "from repro.machine.memory import MemorySpace\n"
        "from repro.machine.timing import SamplePlan, TimingEngine\n"
        "from repro.stencils.grid import Grid2D\n"
        "from repro.stencils.library import benchmark\n"
        "spec = benchmark('star2d9p'); config = LX2(); mem = MemorySpace()\n"
        "src = Grid2D(mem, 33, 48, spec.radius, 'A', fill='random', seed=13)\n"
        "dst = Grid2D(mem, 33, 48, spec.radius, 'B')\n"
        "kernel = make_kernel('hstencil', spec, src, dst, config, KernelOptions(unroll_j=2))\n"
        "engine = TimingEngine(config, engine='compiled', timing='scalar', codegen='on')\n"
        "pc = engine.run(kernel, sample=True, plan=SamplePlan(warmup_bands=1, min_measure_points=600))\n"
        "print(json.dumps(pc.to_dict(), sort_keys=True))\n"
    )
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env = {k: v for k, v in os.environ.items() if k != "REPRO_ARTIFACTS"}
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, src_dir, str(store)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        for _ in range(2)
    ]
    outs = [p.communicate(timeout=600) for p in procs]
    for proc, (out, err) in zip(procs, outs):
        assert proc.returncode == 0, err.decode()
    # Both raced processes measured bit-identical counters.
    assert outs[0][0] == outs[1][0]
    # The store holds exactly one entry per class digest (atomic replace,
    # content-addressed paths), every entry parses, and no temp files leak.
    files = _artifact_files(store / "codegen")
    assert files
    digests = [os.path.splitext(os.path.basename(p))[0] for p in files]
    assert len(digests) == len(set(digests))
    for path in files:
        with open(path) as fh:
            json.load(fh)
    leftovers = [
        os.path.join(d, f)
        for d, _dirs, fs in os.walk(store)
        for f in fs
        if not f.endswith(".json")
    ]
    assert leftovers == []
    # A warm process after the race loads everything: zero live generations.
    warm = _scalar_timing_run("hstencil", "LX2", store, rows=33, cols=48)
    stats = codegen_stats()
    assert warm == json.loads(outs[0][0])
    assert stats["generated"] == 0 and stats["loaded"] == len(files)


def test_tampered_codegen_source_demotes_only_that_class(tmp_path):
    """A corrupt stored source blob demotes its class on load without
    poisoning other classes or the measurement cache."""
    from repro.bench.cache import MeasurementCache

    live = _scalar_timing_run(
        "hstencil", "LX2", tmp_path, sample=False, rows=33, cols=48
    )
    cold_stats = codegen_stats()
    total = cold_stats["generated"]
    assert total >= 2
    victim = _artifact_files(tmp_path / "codegen")[0]
    with open(victim) as fh:
        blob = json.load(fh)
    blob["data"]["source"] += "\npipe.flops += 1\n"
    with open(victim, "w") as fh:
        json.dump(blob, fh)
    rebuilt = _scalar_timing_run(
        "hstencil", "LX2", tmp_path, sample=False, rows=33, cols=48
    )
    stats = codegen_stats()
    assert rebuilt == live  # the demoted class replays interpreted
    assert stats["demoted"] == 1
    assert stats["loaded"] == total - 1
    # The measurement cache records only bit-identical counters afterwards.
    from repro.bench.runner import ExperimentRunner

    clear_program_pool(reset_stats=True)
    cache_dir = tmp_path / "meas"
    runner = ExperimentRunner(
        LX2(),
        KernelOptions(unroll_j=2),
        cache_dir=str(cache_dir),
        timing="scalar",
        artifact_dir=str(tmp_path),
    )
    from repro.machine.timing import SamplePlan

    plan = SamplePlan(warmup_bands=1, min_measure_points=600)
    cell = runner.measure("hstencil", "star2d9p", (32, 32), plan=plan)
    entries = [p for p in _artifact_files(cache_dir)]
    assert entries
    with open(entries[0]) as fh:
        cached = json.load(fh)
    assert cached["counters"] == cell.counters.to_dict()


# -- store maintenance -------------------------------------------------------


def test_store_prune_by_age_and_size(tmp_path):
    _timing_run("hstencil", "LX2", tmp_path)
    store = ArtifactStore(tmp_path)
    scan = store.disk_stats()
    assert scan["entries"] >= 2 and scan["bytes"] > 0
    # Per-kind breakdown covers every entry and sums to the aggregate.
    assert sum(k["entries"] for k in scan["kinds"].values()) == scan["entries"]
    assert sum(k["bytes"] for k in scan["kinds"].values()) == scan["bytes"]
    # Age one file far into the past; an age prune removes exactly it.
    victim = _artifact_files(tmp_path)[0]
    old = time.time() - 10 * 86400
    os.utime(victim, (old, old))
    pruned = store.prune(max_age_days=5)
    assert pruned["removed"] == 1
    assert not os.path.exists(victim)
    assert sum(k["removed"] for k in pruned["kinds"].values()) == 1
    assert sum(k["kept"] for k in pruned["kinds"].values()) == pruned["kept"]
    # A zero-byte budget clears the rest, oldest first.
    pruned = store.prune(max_bytes=0)
    assert pruned["kept"] == 0
    assert all(k["kept"] == 0 for k in pruned["kinds"].values())
    assert store.disk_stats()["entries"] == 0


# -- precompile --------------------------------------------------------------


def test_precompile_then_warm_sweep(tmp_path):
    from repro.bench.runner import ExperimentRunner

    runner = ExperimentRunner(LX2(), artifact_dir=str(tmp_path))
    info = runner.precompile_cell("hstencil", "star2d9p", (32, 32))
    assert info["classes"] >= 1
    assert info["compiled"] >= 1 and info["loaded"] == 0
    # A fresh process (fresh pools, same store) measures without compiling.
    clear_program_pool(reset_stats=True)
    reset_compile_stats()
    warm_runner = ExperimentRunner(LX2(), artifact_dir=str(tmp_path))
    warm_runner.measure("hstencil", "star2d9p", (32, 32))
    stats = compile_stats()
    assert stats["compiled_classes"] == 0
    assert stats["loaded_classes"] >= info["compiled"]
    surfaced = warm_runner.artifact_stats()
    assert surfaced["store"] is not None and surfaced["store"]["hits"] >= 1
    assert surfaced["program_pool"]["store_hits"] >= 1


def test_precompile_results_not_adopted_as_measurements(tmp_path):
    from repro.bench.runner import ExperimentRunner

    runner = ExperimentRunner(LX2(), artifact_dir=str(tmp_path))
    results = runner.precompile([("hstencil", "star2d9p", (32, 32))])
    assert len(results) == 1 and results[0].ok
    assert results[0].source == "precompiled"
    assert results[0].counters is None
    assert results[0].info["classes"] >= 1


# -- CLI ---------------------------------------------------------------------


def test_cli_precompile_and_cache(tmp_path, capsys):
    store_dir = str(tmp_path / "artifacts")
    rc = main(
        [
            "precompile",
            "--artifact-dir",
            store_dir,
            "--machines",
            "lx2",
            "--methods",
            "hstencil",
            "--stencils",
            "star2d5p",
            "--size",
            "24x24",
            "--stats",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "1 cells precompiled" in out
    assert '"program_pool"' in out and '"disk"' in out
    assert ArtifactStore(store_dir).disk_stats()["entries"] >= 2

    rc = main(["cache", "stats", "--artifact-dir", store_dir])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["artifacts"]["entries"] >= 2
    # Per-kind reporting enumerates the codegen kind alongside the others.
    kinds = payload["artifacts"]["kinds"]
    assert kinds["codegen"]["entries"] >= 1 and kinds["codegen"]["bytes"] > 0
    assert "timing" in kinds and "templates" in kinds

    rc = main(["cache", "prune", "--artifact-dir", store_dir, "--max-bytes", "0"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["artifacts"]["kept"] == 0
    assert payload["artifacts"]["kinds"]["codegen"]["removed"] >= 1
    assert ArtifactStore(store_dir).disk_stats()["entries"] == 0


def test_cli_cache_requires_a_directory(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    with pytest.raises(SystemExit):
        main(["cache", "stats"])


def test_cli_precompile_requires_store(monkeypatch):
    with pytest.raises(SystemExit):
        main(["precompile", "--machines", "lx2"])


# -- environment activation ---------------------------------------------------


def test_env_var_activates_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    install_artifact_store(None)  # re-resolve from the environment
    store = active_store()
    assert store is not None and str(store.root) == str(tmp_path)
    # Same path resolves to the same store object (counters accumulate).
    assert active_store() is store
