"""Machine configurations: presets, validation, paper-anchored facts."""

import dataclasses

import pytest

from repro.isa.instructions import (
    FMLA,
    FMLA_IDX,
    FMOPA,
    LD1D,
    MOVA_TILE_TO_VEC,
    PortClass,
)
from repro.isa.registers import SVL_LANES, VReg, TileReg
from repro.machine.config import CacheGeometry, LatencySpec, LX2, M4, MachineConfig


class TestPresets:
    def test_presets_validate(self):
        LX2().validate()
        M4().validate()

    def test_lx2_peak_ratio_is_four(self):
        """Section 2.1: outer product = 4x the MLA FP64 peak."""
        cfg = LX2()
        fmopa = cfg.latencies[FMOPA.mnemonic]
        fmla = cfg.latencies[FMLA.mnemonic]
        matrix_peak = (
            cfg.port_count(PortClass.MATRIX)
            * 2
            * SVL_LANES
            * SVL_LANES
            / fmopa.initiation_interval
        )
        vector_peak = (
            cfg.port_count(PortClass.VECTOR) * 2 * SVL_LANES / fmla.initiation_interval
        )
        assert matrix_peak / vector_peak == pytest.approx(4.0)

    def test_fmopa_pipeline_depth_needs_four_tiles(self):
        cfg = LX2()
        spec = cfg.latencies[FMOPA.mnemonic]
        assert spec.latency / spec.initiation_interval == 4

    def test_mova_costs_double_fmopa(self):
        cfg = LX2()
        assert (
            cfg.latencies[MOVA_TILE_TO_VEC.mnemonic].initiation_interval
            >= 2 * cfg.latencies[FMOPA.mnemonic].initiation_interval
        )

    def test_m4_capability_flags(self):
        cfg = M4()
        assert not cfg.has_vector_fmla
        assert cfg.has_matrix_mla
        assert not cfg.supports_inplace_accumulation

    def test_m4_neon_baseline_halved_fma_throughput(self):
        """The M4's NEON auto baseline: doubled FMA initiation interval."""
        assert M4().latencies[FMLA_IDX.mnemonic].initiation_interval == 2
        assert LX2().latencies[FMLA_IDX.mnemonic].initiation_interval == 1

    def test_m4_l1_is_128kb(self):
        assert M4().l1.size_bytes == 128 * 1024

    def test_latency_lookup(self):
        cfg = LX2()
        spec = cfg.latency_for(LD1D(VReg(0), 8))
        assert spec.latency == cfg.l1_load_latency


class TestValidation:
    def test_cache_geometry_num_sets(self):
        geom = CacheGeometry(64 * 1024, 64, 8)
        assert geom.num_sets == 128

    def test_cache_too_small_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(64, 64, 8).num_sets

    def test_issue_width_checked(self):
        cfg = dataclasses.replace(LX2(), issue_width=0)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_mismatched_line_sizes_rejected(self):
        cfg = dataclasses.replace(LX2(), l2=CacheGeometry(512 * 1024, 128, 8))
        with pytest.raises(ValueError):
            cfg.validate()

    def test_bad_latency_spec_rejected(self):
        bad = dict(LX2().latencies)
        bad["fmla"] = LatencySpec(latency=0)
        cfg = dataclasses.replace(LX2(), latencies=bad)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_unknown_mnemonic_raises(self):
        class Weird:
            mnemonic = "frobnicate"

        with pytest.raises(KeyError):
            LX2().latency_for(Weird())

    def test_without_hw_prefetch_variant(self):
        cfg = LX2().without_hw_prefetch()
        assert not cfg.hw_prefetch_enabled
        assert "nohwpf" in cfg.name
        assert LX2().hw_prefetch_enabled  # original untouched
