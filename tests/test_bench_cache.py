"""On-disk measurement cache: key stability, round-trips, runner wiring."""

import dataclasses
import json

import pytest

from repro.bench.cache import (
    MeasurementCache,
    cache_key,
    code_version,
    machine_digest,
    machine_fingerprint,
)
from repro.bench.runner import ExperimentRunner
from repro.isa.instructions import PortClass
from repro.kernels.base import KernelOptions
from repro.machine.config import LX2, M4
from repro.machine.perf import PerfCounters
from repro.machine.timing import SamplePlan


def sample_counters() -> PerfCounters:
    pc = PerfCounters(label="demo")
    pc.cycles = 123.5
    pc.instructions = 456
    pc.instructions_by_port = {PortClass.VECTOR: 100, PortClass.MATRIX: 42}
    pc.flops = 7
    pc.points = 64
    pc.dram_lines_read = 10
    pc.dram_lines_written = 3
    pc.sampled = True
    pc.line_bytes = 128
    return pc


class TestCacheKey:
    def test_same_inputs_same_key(self):
        a, _ = cache_key(LX2(), "hstencil", "star2d5p", (32, 32), KernelOptions(), None, True)
        b, _ = cache_key(LX2(), "hstencil", "star2d5p", (32, 32), KernelOptions(), None, True)
        assert a == b

    def test_options_change_key(self):
        a, _ = cache_key(LX2(), "hstencil", "star2d5p", (32, 32), KernelOptions(), None, True)
        b, _ = cache_key(
            LX2(), "hstencil", "star2d5p", (32, 32), KernelOptions(unroll_j=8), None, True
        )
        assert a != b

    def test_machine_changes_key(self):
        a, _ = cache_key(LX2(), "hstencil", "star2d5p", (32, 32), KernelOptions(), None, True)
        b, _ = cache_key(M4(), "hstencil", "star2d5p", (32, 32), KernelOptions(), None, True)
        c, _ = cache_key(
            LX2().without_hw_prefetch(),
            "hstencil", "star2d5p", (32, 32), KernelOptions(), None, True,
        )
        assert len({a, b, c}) == 3

    def test_plan_warm_shape_change_key(self):
        base, _ = cache_key(LX2(), "auto", "star2d5p", (32, 32), KernelOptions(), None, True)
        plan, _ = cache_key(
            LX2(), "auto", "star2d5p", (32, 32), KernelOptions(), SamplePlan(), True
        )
        cold, _ = cache_key(LX2(), "auto", "star2d5p", (32, 32), KernelOptions(), None, False)
        big, _ = cache_key(LX2(), "auto", "star2d5p", (64, 32), KernelOptions(), None, True)
        assert len({base, plan, cold, big}) == 4

    def test_inputs_embed_code_version(self):
        _, inputs = cache_key(LX2(), "auto", "star2d5p", (32, 32), KernelOptions(), None, True)
        assert inputs["code_version"] == code_version()
        assert json.dumps(inputs)  # JSON-safe

    def test_fingerprint_is_json_safe_and_digest_stable(self):
        fp = machine_fingerprint(LX2())
        assert json.dumps(fp)
        assert fp["ports"]["MATRIX"] == 1
        assert machine_digest(LX2()) == machine_digest(LX2())
        assert machine_digest(LX2()) != machine_digest(M4())


class TestCounterRoundTrip:
    def test_round_trip_preserves_everything(self):
        pc = sample_counters()
        back = PerfCounters.from_dict(json.loads(json.dumps(pc.to_dict())))
        assert back == pc
        assert back.instructions_by_port == {PortClass.VECTOR: 100, PortClass.MATRIX: 42}
        assert back.sampled is True
        assert back.line_bytes == 128
        assert back.dram_bytes() == 13 * 128

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            PerfCounters.from_dict({"no_such_counter": 1})


class TestMeasurementCache:
    def test_store_load_round_trip(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        pc = sample_counters()
        cache.store("ab" + "0" * 62, pc, inputs={"method": "demo"})
        loaded = cache.load("ab" + "0" * 62)
        assert loaded == pc
        assert cache.stats()["hits"] == 1
        assert cache.stats()["stores"] == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        assert cache.load("ff" + "0" * 62) is None
        assert cache.stats()["misses"] == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("not json {")
        assert cache.load(key) is None

    def test_entry_is_self_describing(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        key, inputs = cache_key(
            LX2(), "hstencil", "star2d5p", (32, 32), KernelOptions(), None, True
        )
        cache.store(key, sample_counters(), inputs)
        payload = json.loads(cache.path_for(key).read_text())
        assert payload["key"] == key
        assert payload["inputs"]["method"] == "hstencil"
        assert payload["counters"]["cycles"] == 123.5


class TestRunnerDiskCache:
    def test_second_runner_hits_disk(self, tmp_path):
        first = ExperimentRunner(LX2(), cache_dir=tmp_path)
        a = first.measure("auto", "star2d5p", (32, 32))
        assert first.provenance("auto", "star2d5p", (32, 32)) == "simulated"

        second = ExperimentRunner(LX2(), cache_dir=tmp_path)
        b = second.measure("auto", "star2d5p", (32, 32))
        assert second.provenance("auto", "star2d5p", (32, 32)) == "disk"
        assert b.counters.to_dict() == a.counters.to_dict()
        stats = second.cache_stats()
        assert stats == {
            "cells": 1,
            "simulated": 0,
            "disk_hits": 1,
            "disk": {"root": str(tmp_path), "hits": 1, "misses": 0, "stores": 0},
        }

    def test_different_options_do_not_collide(self, tmp_path):
        a = ExperimentRunner(LX2(), KernelOptions(unroll_j=2), cache_dir=tmp_path)
        b = ExperimentRunner(LX2(), KernelOptions(unroll_j=8), cache_dir=tmp_path)
        ca = a.measure("hstencil", "box2d9p", (32, 64)).counters
        cb = b.measure("hstencil", "box2d9p", (32, 64)).counters
        assert b.provenance("hstencil", "box2d9p", (32, 64)) == "simulated"
        assert ca.cycles != cb.cycles

    def test_records_carry_provenance_and_derived(self, tmp_path):
        runner = ExperimentRunner(LX2(), cache_dir=tmp_path)
        runner.measure("auto", "star2d5p", (32, 32))
        (record,) = runner.records()
        assert record["source"] == "simulated"
        assert record["counters"]["points"] == 32 * 32
        assert record["derived"]["cycles_per_point"] > 0
