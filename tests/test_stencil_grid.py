"""Grid layout: addressing, halos, alignment, bulk IO."""

import numpy as np
import pytest

from repro.isa.registers import SVL_LANES
from repro.machine.memory import MemorySpace
from repro.stencils.grid import Grid2D, Grid3D


class TestGrid2D:
    def test_interior_origin_line_aligned(self):
        mem = MemorySpace()
        g = Grid2D(mem, 16, 24, 2, "A")
        assert g.addr(0, 0) % SVL_LANES == 0

    def test_row_stride_padded_to_vector(self):
        mem = MemorySpace()
        g = Grid2D(mem, 16, 24, 3, "A")
        assert g.row_stride % SVL_LANES == 0
        assert g.row_stride >= g.left_pad + 24 + 3

    def test_halo_addressing(self):
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 2, "A")
        # corners of the halo are addressable
        g.addr(-2, -2)
        g.addr(9, 17)
        with pytest.raises(IndexError):
            g.addr(-3, 0)
        with pytest.raises(IndexError):
            g.addr(10, 0)

    def test_left_pad_covers_vector_load(self):
        """Shifted loads at j=-8 (EXT neighbours) must stay in the row."""
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 1, "A")
        assert g.left_pad >= SVL_LANES or g.left_pad == 0
        g.addr(0, -SVL_LANES)

    def test_rows_are_contiguous_in_memory(self):
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 1, "A")
        assert g.addr(1, 0) - g.addr(0, 0) == g.row_stride

    def test_full_roundtrip(self):
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 2, "A")
        full = np.arange((8 + 4) * (16 + 4), dtype=float).reshape(12, 20)
        g.set_full(full)
        assert np.array_equal(g.get_full(), full)

    def test_interior_roundtrip(self):
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 2, "A")
        interior = np.arange(8 * 16, dtype=float).reshape(8, 16)
        g.set_interior(interior)
        assert np.array_equal(g.get_interior(), interior)

    def test_interior_consistent_with_full(self):
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 2, "A", fill="random", seed=3)
        full = g.get_full()
        assert np.array_equal(g.get_interior(), full[2:-2, 2:-2])

    def test_randomize_fills_halo(self):
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 2, "A", fill="random", seed=5)
        full = g.get_full()
        assert np.any(full[0] != 0.0)  # halo row is populated

    def test_randomize_deterministic(self):
        a = Grid2D(MemorySpace(), 8, 16, 1, "A", fill="random", seed=7).get_full()
        b = Grid2D(MemorySpace(), 8, 16, 1, "A", fill="random", seed=7).get_full()
        assert np.array_equal(a, b)

    def test_get_rows(self):
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 1, "A", fill="random", seed=1)
        rows = g.get_rows(2, 5)
        assert rows.shape == (3, 16)
        assert np.array_equal(rows, g.get_interior()[2:5])

    def test_shape_validation(self):
        mem = MemorySpace()
        g = Grid2D(mem, 8, 16, 1, "A")
        with pytest.raises(ValueError):
            g.set_interior(np.zeros((8, 15)))
        with pytest.raises(ValueError):
            g.set_full(np.zeros((9, 18)))

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Grid2D(MemorySpace(), 0, 8, 1, "A")
        with pytest.raises(ValueError):
            Grid2D(MemorySpace(), 8, 8, -1, "A")

    def test_unknown_fill_rejected(self):
        with pytest.raises(ValueError):
            Grid2D(MemorySpace(), 8, 8, 1, "A", fill="ones")


class TestGrid3D:
    def test_plane_stride(self):
        mem = MemorySpace()
        g = Grid3D(mem, 4, 8, 16, 1, "V")
        assert g.addr(1, 0, 0) - g.addr(0, 0, 0) == g.plane_stride

    def test_halo_addressing_3d(self):
        mem = MemorySpace()
        g = Grid3D(mem, 4, 8, 16, 1, "V")
        g.addr(-1, -1, -1)
        g.addr(4, 8, 16)
        with pytest.raises(IndexError):
            g.addr(5, 0, 0)

    def test_full_roundtrip_3d(self):
        mem = MemorySpace()
        g = Grid3D(mem, 2, 4, 8, 1, "V")
        full = np.arange(4 * 6 * 10, dtype=float).reshape(4, 6, 10)
        g.set_full(full)
        assert np.array_equal(g.get_full(), full)

    def test_interior_consistent_with_full_3d(self):
        mem = MemorySpace()
        g = Grid3D(mem, 2, 4, 8, 1, "V", fill="random", seed=9)
        full = g.get_full()
        assert np.array_equal(g.get_interior(), full[1:-1, 1:-1, 1:-1])

    def test_plane_view(self):
        mem = MemorySpace()
        g = Grid3D(mem, 2, 4, 8, 1, "V")
        base, stride = g.plane_view(0)
        assert base == g.addr(0, -1, -1)
        assert stride == g.row_stride
