"""Lockstep batched functional replay: safety analysis and fallbacks."""

import numpy as np
import pytest

from repro.isa.registers import SVL_LANES
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.batched import (
    MIN_BATCH,
    BatchPlan,
    BatchReplayer,
    analyze_program,
)
from repro.machine.compiled import (
    F_FMLA,
    F_LD,
    F_ST,
    F_ZERO,
    FunctionalProgram,
)
from repro.machine.config import LX2
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark
from repro.stencils.reference import apply_reference


def _setup(n=64, stencil="box2d25p", method="auto", seed=7):
    mem = MemorySpace()
    spec = benchmark(stencil)
    src = Grid2D(mem, n, n, spec.radius, "A", fill="random", seed=seed)
    dst = Grid2D(mem, n, n, spec.radius, "B")
    kernel = make_kernel(method, spec, src, dst, LX2(), KernelOptions())
    return mem, src, dst, kernel, spec


# ---------------------------------------------------------------------------
# Static register-independence analysis.
# ---------------------------------------------------------------------------


def test_analyze_accepts_load_compute_store():
    program = FunctionalProgram(
        ops=(
            (F_LD, 0, 0),
            (F_LD, 1, 1),
            (F_FMLA, 0, 1, 1),  # dst v0 already fully written: not live-in
            (F_ST, 0, 2, SVL_LANES),
        ),
        count=4,
        n_addrs=3,
    )
    plan = analyze_program(program)
    assert plan.batchable
    assert plan.loads == ((0, SVL_LANES, 1), (1, SVL_LANES, 1))
    assert plan.stores == ((2, SVL_LANES),)


def test_analyze_rejects_cross_block_accumulator():
    # v0 is read (accumulated into) before any write: its value flows from
    # block to block, so lockstep execution would diverge.
    program = FunctionalProgram(
        ops=(
            (F_LD, 1, 0),
            (F_FMLA, 0, 1, 1),
            (F_ST, 0, 1, SVL_LANES),
        ),
        count=3,
        n_addrs=2,
    )
    assert not analyze_program(program).batchable


def test_analyze_rejects_unknown_opcode():
    program = FunctionalProgram(ops=((999, 0, 0),), count=1, n_addrs=1)
    plan = analyze_program(program)
    assert not plan.batchable
    assert plan.loads == () and plan.stores == ()


def test_analyze_tracks_tile_zero_then_use():
    program = FunctionalProgram(
        ops=((F_ZERO, 0), (F_LD, 0, 0), (F_ST, 0, 1, SVL_LANES)),
        count=3,
        n_addrs=2,
    )
    assert analyze_program(program).batchable


# ---------------------------------------------------------------------------
# Dynamic fallbacks of BatchReplayer.run.
# ---------------------------------------------------------------------------


def _copy_program():
    """ld v0 <- addrs[0]; st addrs[1] <- v0 (a one-vector memcpy)."""
    return FunctionalProgram(
        ops=((F_LD, 0, 0), (F_ST, 0, 1, SVL_LANES)),
        count=2,
        n_addrs=2,
    )


def _mem_with_data(nblocks):
    mem = MemorySpace()
    src = mem.alloc(nblocks * SVL_LANES, "src")
    dst = mem.alloc(nblocks * SVL_LANES, "dst")
    data = np.arange(nblocks * SVL_LANES, dtype=np.float64) + 1.0
    mem.write_array(src, data)
    mem.write_array(dst, np.zeros(nblocks * SVL_LANES))
    return mem, src, dst, data


def test_small_runs_stay_sequential():
    nblocks = MIN_BATCH - 1
    mem, src, dst, data = _mem_with_data(nblocks)
    replayer = BatchReplayer(FunctionalEngine(mem))
    addrs = [(src + k * SVL_LANES, dst + k * SVL_LANES) for k in range(nblocks)]
    replayer.run(_copy_program(), addrs)
    assert replayer.sequential_blocks == nblocks
    assert replayer.batched_blocks == 0
    assert np.array_equal(mem.read(dst, nblocks * SVL_LANES), data)


def test_large_runs_batch():
    nblocks = MIN_BATCH + 4
    mem, src, dst, data = _mem_with_data(nblocks)
    engine = FunctionalEngine(mem)
    replayer = BatchReplayer(engine)
    addrs = [(src + k * SVL_LANES, dst + k * SVL_LANES) for k in range(nblocks)]
    replayer.run(_copy_program(), addrs)
    assert replayer.batched_blocks == nblocks
    assert replayer.sequential_blocks == 0
    assert np.array_equal(mem.read(dst, nblocks * SVL_LANES), data)
    assert engine.instructions_executed == 2 * nblocks
    # Architectural registers end exactly as the sequential walk would:
    # holding the last block's loaded vector.
    assert np.array_equal(engine.regs._vregs[0], data[-SVL_LANES:])


def test_store_overlap_falls_back_to_sequential():
    nblocks = MIN_BATCH + 2
    mem, src, dst, data = _mem_with_data(nblocks)
    replayer = BatchReplayer(FunctionalEngine(mem))
    addrs = [(src + k * SVL_LANES, dst + k * SVL_LANES) for k in range(nblocks)]
    addrs[-1] = (addrs[-1][0], addrs[0][1])  # two blocks store the same words
    replayer.run(_copy_program(), addrs)
    assert replayer.batched_blocks == 0
    assert replayer.sequential_blocks == nblocks
    # Sequential semantics: the later store wins.
    assert np.array_equal(mem.read(dst, SVL_LANES), data[-SVL_LANES:])


def test_load_of_stored_word_falls_back_to_sequential():
    nblocks = MIN_BATCH + 2
    mem, src, dst, data = _mem_with_data(nblocks)
    replayer = BatchReplayer(FunctionalEngine(mem))
    addrs = [(src + k * SVL_LANES, dst + k * SVL_LANES) for k in range(nblocks)]
    # The last block reads what the first block wrote: a cross-block flow
    # through memory that lockstep execution would miss.
    addrs[-1] = (addrs[0][1], addrs[-1][1])
    replayer.run(_copy_program(), addrs)
    assert replayer.batched_blocks == 0
    assert replayer.sequential_blocks == nblocks
    assert np.array_equal(
        mem.read(dst + (nblocks - 1) * SVL_LANES, SVL_LANES), data[:SVL_LANES]
    )


def test_out_of_bounds_falls_back_to_sequential():
    nblocks = MIN_BATCH
    mem, src, dst, _ = _mem_with_data(nblocks)
    replayer = BatchReplayer(FunctionalEngine(mem))
    addrs = [(src + k * SVL_LANES, dst + k * SVL_LANES) for k in range(nblocks)]
    addrs[-1] = (addrs[-1][0], mem._next + 100)  # store past the frontier
    with pytest.raises(ValueError):
        replayer.run(_copy_program(), addrs)
    assert replayer.batched_blocks == 0  # the batch path refused the run


# ---------------------------------------------------------------------------
# End-to-end: a kernel run through the batched compiled path matches the
# reference walk bit-for-bit and actually batches its interior.
# ---------------------------------------------------------------------------


def test_kernel_batched_replay_is_bit_identical(monkeypatch):
    import repro.machine.batched as batched_mod

    replayers = []
    real = batched_mod.BatchReplayer

    class Spy(real):
        def __init__(self, engine):
            super().__init__(engine)
            replayers.append(self)

    monkeypatch.setattr(batched_mod, "BatchReplayer", Spy)

    mem, src, dst, kernel, spec = _setup()
    compiled_engine = FunctionalEngine(mem)
    compiled_engine.run_kernel(kernel, engine="compiled")
    compiled_grid = dst.get_interior().copy()

    mem2, src2, dst2, kernel2, _ = _setup()
    reference_engine = FunctionalEngine(mem2)
    reference_engine.run_kernel(kernel2, engine="reference")
    reference_grid = dst2.get_interior().copy()

    assert np.array_equal(compiled_grid, reference_grid)
    assert compiled_engine.instructions_executed == reference_engine.instructions_executed
    (replayer,) = replayers
    assert replayer.batched_blocks > 0
    # And both agree with the NumPy stencil reference (to tolerance).
    expected = apply_reference(src.get_full(), spec)
    np.testing.assert_allclose(compiled_grid, expected, rtol=1e-12, atol=1e-12)
