"""Benchmark harness: runner caching, sweeps, report formatting."""

import pytest

from repro.bench.report import (
    format_metric_table,
    format_scaling_series,
    format_speedup_table,
    geomean,
)
from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2


class TestRunner:
    def test_measure_cell(self):
        runner = ExperimentRunner(LX2())
        m = runner.measure("hstencil", "star2d5p", (32, 32))
        assert m.counters.points == 32 * 32
        assert m.method == "hstencil"

    def test_measure_cached(self):
        runner = ExperimentRunner(LX2())
        a = runner.measure("auto", "star2d5p", (32, 32))
        b = runner.measure("auto", "star2d5p", (32, 32))
        assert a is b

    def test_sweep_skips_inapplicable(self):
        runner = ExperimentRunner(LX2())
        cells = runner.sweep(["auto", "mat-ortho"], "box2d9p", (32, 32))
        assert "auto" in cells
        assert "mat-ortho" not in cells  # star-only method

    def test_sweep_reports_skip_reasons(self):
        runner = ExperimentRunner(LX2())
        skipped = {}
        runner.sweep(["auto", "mat-ortho"], "box2d9p", (32, 32), skipped=skipped)
        assert list(skipped) == ["mat-ortho"]
        assert "star" in skipped["mat-ortho"]

    def test_speedups_normalized(self):
        runner = ExperimentRunner(LX2())
        sp = runner.speedups(["auto", "hstencil"], "box2d9p", (64, 64))
        assert sp["auto"] == pytest.approx(1.0)
        assert sp["hstencil"] > 1.0

    def test_speedups_missing_baseline_is_descriptive(self):
        runner = ExperimentRunner(LX2())
        with pytest.raises(ValueError, match="baseline method 'mat-ortho'.*box2d9p"):
            runner.speedups(["auto"], "box2d9p", (32, 32), baseline="mat-ortho")

    def test_3d_shapes(self):
        runner = ExperimentRunner(LX2())
        m = runner.measure("hstencil", "star3d7p", (4, 16, 32))
        assert m.counters.points == 4 * 16 * 32


class TestReport:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([2.0, 0.0]) == pytest.approx(2.0)  # zeros skipped

    def test_speedup_table_contains_cells(self):
        text = format_speedup_table(
            "demo", {"star": {"a": 1.0, "b": 2.0}, "box": {"a": 1.0}}
        )
        assert "demo" in text
        assert "2.00x" in text
        assert "geomean" in text
        assert text.count("\n") >= 5

    def test_speedup_table_missing_cells_dashed(self):
        text = format_speedup_table("demo", {"box": {"a": 1.0}, "star": {"b": 3.0}})
        assert "-" in text

    def test_metric_table(self):
        text = format_metric_table(
            "cache", {"1024": {"hit": "66%", "times": "2.5e5"}}
        )
        assert "66%" in text and "cache" in text

    def test_scaling_series(self):
        text = format_scaling_series(
            "scaling", {"hstencil": [(1, 0.5), (32, 12.9)], "vector": [(1, 0.3)]}
        )
        assert "12.90" in text
        assert "32" in text
