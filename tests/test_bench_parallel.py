"""Parallel sweep executor: determinism, failure capture, cache sharing."""

import pytest

from repro.bench.parallel import run_cells
from repro.bench.runner import ExperimentRunner
from repro.machine.config import LX2

CELLS = [
    (method, stencil, (32, 32))
    for method in ("auto", "vector-only", "matrix-only", "hstencil")
    for stencil in ("star2d5p", "box2d9p")
]


def test_serial_executor_matches_direct_measure():
    runner = ExperimentRunner(LX2())
    direct = runner.measure("auto", "star2d5p", (32, 32))
    results = run_cells([("auto", "star2d5p", (32, 32))], machine=LX2())
    assert results[0].ok
    assert results[0].counters.to_dict() == direct.counters.to_dict()


def test_parallel_determinism_vs_serial():
    serial = run_cells(CELLS, machine=LX2(), jobs=1)
    parallel = run_cells(CELLS, machine=LX2(), jobs=4)
    assert len(serial) == len(parallel) == len(CELLS)
    for s, p in zip(serial, parallel):
        assert s.index == p.index
        assert (s.method, s.stencil, s.shape) == (p.method, p.stencil, p.shape)
        assert s.ok and p.ok
        assert s.counters.to_dict() == p.counters.to_dict()


@pytest.mark.parametrize("jobs", [1, 3])
def test_failed_cell_captured_not_fatal(jobs):
    cells = [
        ("auto", "star2d5p", (32, 32)),
        ("mat-ortho", "box2d9p", (32, 32)),  # star-only method: ValueError
        ("auto", "no-such-stencil", (32, 32)),  # KeyError from the library
        ("hstencil", "star2d5p", (32, 32)),
    ]
    results = run_cells(cells, machine=LX2(), jobs=jobs)
    assert [r.ok for r in results] == [True, False, False, True]
    assert "mat-ortho" in results[1].error
    assert results[1].counters is None
    assert results[2].error  # sweep survived both failures
    assert results[3].counters.points == 32 * 32


def test_results_adopted_into_runner():
    runner = ExperimentRunner(LX2())
    run_cells(CELLS[:3], machine=LX2(), jobs=2, runner=runner)
    # Adopted cells are served from memory: no new simulation happens.
    m = runner.measure(*CELLS[0])
    assert m.counters.points == 32 * 32
    assert len(runner.records()) == 3


def test_parallel_workers_share_disk_cache(tmp_path):
    first = run_cells(CELLS, machine=LX2(), cache_dir=tmp_path, jobs=4)
    assert all(r.ok for r in first)
    second = run_cells(CELLS, machine=LX2(), cache_dir=tmp_path, jobs=4)
    assert all(r.source == "disk" for r in second)
    for a, b in zip(first, second):
        assert a.counters.to_dict() == b.counters.to_dict()


def test_runner_measure_many_serial_uses_own_caches(tmp_path):
    runner = ExperimentRunner(LX2(), cache_dir=tmp_path)
    first = runner.measure_many(CELLS[:2])
    assert [r.source for r in first] == ["simulated", "simulated"]
    again = runner.measure_many(CELLS[:2])
    assert all(r.ok for r in again)
    # Served from the runner's in-memory memo: the disk cache saw no
    # further traffic.
    assert runner.disk_cache.stats()["stores"] == 2
    assert runner.disk_cache.stats()["misses"] == 2
    assert runner.disk_cache.stats()["hits"] == 0
