"""Bit-identity of the exec-compiled replay kernels vs the interpreted walk.

``codegen="on"`` (the default) emits a specialized straight-line Python
function per probe-verified shape class — opcodes unrolled, latencies and
register indices inlined as literals — and dispatches to it instead of the
interpreted program.  The contract is the same as every prior engine mode:
*exact* equality with the interpreted path for every method, machine and
grid shape, with any probe mismatch or ``exec`` failure demoting that class
permanently to the interpreted program.  These tests enforce that contract
across the whole method registry on both machine presets, exercise the
forced-demotion and exec-failure fallbacks, and pin the ``REPRO_CODEGEN``
selection plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.machine import codegen as codegen_mod
from repro.machine.artifacts import install_artifact_store
from repro.machine.codegen import (
    CODEGEN_MODES,
    codegen_stats,
    default_codegen,
    reset_codegen_stats,
)
from repro.machine.compiled import clear_program_pool
from repro.machine.config import LX2, M4
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.machine.timing import SamplePlan, TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark

MACHINES = {"LX2": LX2, "M4": M4}

#: Odd sizes so tail-predicated rows exercise more than one shape class.
GRIDS = [("box2d9p", 37, 29), ("star2d9p", 33, 48)]

#: Tiny plan so even these small grids run several measured bands.
PLAN = SamplePlan(warmup_bands=1, min_measure_points=600)


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """Fresh pools, counters and store state for every test."""
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    monkeypatch.delenv("REPRO_CODEGEN", raising=False)
    install_artifact_store(None)
    clear_program_pool(reset_stats=True)
    reset_codegen_stats()
    yield
    install_artifact_store(None)
    clear_program_pool(reset_stats=True)
    reset_codegen_stats()


def _build(method, machine_name, stencil, rows, cols):
    """Kernel + config + memory; None if the method rejects this machine."""
    spec = benchmark(stencil)
    config = MACHINES[machine_name]()
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A", fill="random", seed=13)
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    try:
        kernel = make_kernel(method, spec, src, dst, config, KernelOptions(unroll_j=2))
    except ValueError:
        return None  # method not available on this machine (e.g. no V-FMLA)
    return kernel, config, mem, dst


def _timed(method, machine_name, stencil, rows, cols, codegen, timing="scalar"):
    built = _build(method, machine_name, stencil, rows, cols)
    if built is None:
        pytest.skip(f"{method} not applicable on {machine_name}")
    kernel, config, _, _ = built
    engine = TimingEngine(config, engine="compiled", timing=timing, codegen=codegen)
    return engine.run(kernel, sample=True, plan=PLAN)


# -- timing bit identity ------------------------------------------------------


@pytest.mark.parametrize("stencil,rows,cols", GRIDS, ids=[g[0] for g in GRIDS])
@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", sorted(METHODS))
def test_timing_codegen_bit_identical(method, machine_name, stencil, rows, cols):
    interp = _timed(method, machine_name, stencil, rows, cols, "off")
    reset_codegen_stats()
    generated = _timed(method, machine_name, stencil, rows, cols, "on")
    stats = codegen_stats()
    assert generated.to_dict() == interp.to_dict()
    assert stats["generated"] >= 1
    assert stats["verified"] >= 1
    assert stats["demoted"] == 0 and stats["exec_failed"] == 0


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
def test_columnar_chunk_codegen_bit_identical(machine_name):
    """Phase-P chunk bodies are also generatable, with the same contract."""
    interp = _timed("hstencil", machine_name, "star2d9p", 33, 48, "off", "columnar")
    reset_codegen_stats()
    generated = _timed("hstencil", machine_name, "star2d9p", 33, 48, "on", "columnar")
    stats = codegen_stats()
    assert generated.to_dict() == interp.to_dict()
    assert stats["chunk_generated"] >= 1
    assert stats["chunk_demoted"] == 0


def test_full_run_codegen_bit_identical():
    """Exact (unsampled) runs dispatch through the same generated kernels."""
    built = _build("hstencil", "LX2", "star2d5p", 31, 35)
    kernel, config, _, _ = built
    interp = TimingEngine(config, engine="compiled", codegen="off").run(
        kernel, sample=False, warm=True
    )
    built = _build("hstencil", "LX2", "star2d5p", 31, 35)
    kernel, config, _, _ = built
    generated = TimingEngine(config, engine="compiled", codegen="on").run(
        kernel, sample=False, warm=True
    )
    assert generated.to_dict() == interp.to_dict()


# -- functional bit identity --------------------------------------------------


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("method", ["hstencil", "vector-only"])
def test_functional_codegen_bit_identical(method, machine_name):
    grids = {}
    for mode in ("off", "on"):
        clear_program_pool(reset_stats=True)
        built = _build(method, machine_name, "box2d9p", 37, 29)
        if built is None:
            pytest.skip(f"{method} not applicable on {machine_name}")
        kernel, _, mem, dst = built
        fe = FunctionalEngine(mem, codegen=(mode == "on"))
        fe.run_kernel(kernel, engine="compiled")
        grids[mode] = (dst.get_full().copy(), fe.instructions_executed)
    assert np.array_equal(grids["on"][0], grids["off"][0])
    assert grids["on"][1] == grids["off"][1]
    stats = codegen_stats()
    assert stats["generated"] >= 1 and stats["demoted"] == 0


# -- demotion ladder ----------------------------------------------------------


def test_forced_demotion_falls_back_bit_identically(monkeypatch):
    """A class that fails the live probe must demote permanently and keep
    producing counters identical to the interpreted walk."""
    interp = _timed("hstencil", "LX2", "box2d9p", 37, 29, "off")
    reset_codegen_stats()
    # Every timing probe "fails": all shape classes must demote.
    monkeypatch.setattr(codegen_mod, "_pipes_match", lambda clone, pipe: False)
    generated = _timed("hstencil", "LX2", "box2d9p", 37, 29, "on")
    stats = codegen_stats()
    assert stats["demoted"] >= 1
    assert stats["verified"] == 0
    assert generated.to_dict() == interp.to_dict()


def test_exec_failure_demotes_bit_identically(monkeypatch):
    """Unparseable generated source is an automatic demotion, not an error."""
    interp = _timed("hstencil", "LX2", "star2d9p", 33, 48, "off")
    reset_codegen_stats()
    monkeypatch.setattr(
        codegen_mod, "timing_kernel_source", lambda program, config: "def __kernel("
    )
    generated = _timed("hstencil", "LX2", "star2d9p", 33, 48, "on")
    stats = codegen_stats()
    assert stats["exec_failed"] >= 1
    assert stats["demoted"] >= 1
    assert stats["generated"] == 0
    assert generated.to_dict() == interp.to_dict()


def test_chunk_exec_failure_demotes_bit_identically(monkeypatch):
    interp = _timed("hstencil", "LX2", "star2d9p", 33, 48, "off", "columnar")
    reset_codegen_stats()
    monkeypatch.setattr(
        codegen_mod, "chunk_walk_source", lambda chunk, ports, config: "def __chunk("
    )
    generated = _timed("hstencil", "LX2", "star2d9p", 33, 48, "on", "columnar")
    stats = codegen_stats()
    assert stats["chunk_demoted"] >= 1
    assert generated.to_dict() == interp.to_dict()


# -- warm store loads ---------------------------------------------------------


def test_store_load_skips_generation(tmp_path):
    """A warm process loads kernels from the AOT store: zero generations."""
    install_artifact_store(str(tmp_path))
    cold = _timed("hstencil", "LX2", "star2d9p", 33, 48, "on")
    cold_stats = codegen_stats()
    assert cold_stats["generated"] >= 1
    assert cold_stats["store_writes"] == cold_stats["generated"]
    clear_program_pool(reset_stats=True)
    reset_codegen_stats()
    warm = _timed("hstencil", "LX2", "star2d9p", 33, 48, "on")
    warm_stats = codegen_stats()
    assert warm.to_dict() == cold.to_dict()
    assert warm_stats["generated"] == 0
    assert warm_stats["loaded"] == cold_stats["generated"]
    assert warm_stats["demoted"] == 0


def test_version_skew_demotes_on_load(tmp_path, monkeypatch):
    """A stored kernel from a different generator version never runs."""
    install_artifact_store(str(tmp_path))
    cold = _timed("hstencil", "LX2", "star2d9p", 33, 48, "on")
    clear_program_pool(reset_stats=True)
    reset_codegen_stats()
    # Version skew on the *payload* check (the digest still matches because
    # we fake the stored blob's version, not the lookup's).
    original = codegen_mod._state_from_payload

    def skewed(data, flavor, content, namespace, *args, **kwargs):
        data = dict(data, version=codegen_mod.CODEGEN_VERSION + 1)
        return original(data, flavor, content, namespace, *args, **kwargs)

    monkeypatch.setattr(codegen_mod, "_state_from_payload", skewed)
    demoted = _timed("hstencil", "LX2", "star2d9p", 33, 48, "on")
    stats = codegen_stats()
    assert stats["demoted"] >= 1 and stats["loaded"] == 0
    assert demoted.to_dict() == cold.to_dict()


# -- mode selection -----------------------------------------------------------


class TestCodegenSelection:
    def test_default_codegen_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN", raising=False)
        assert default_codegen() == "on"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "off")
        assert default_codegen() == "off"
        assert TimingEngine(LX2()).codegen == "off"

    def test_unknown_codegen_rejected(self):
        with pytest.raises(ValueError, match="unknown codegen"):
            TimingEngine(LX2(), codegen="fast")

    def test_modes_are_exactly_the_documented_pair(self):
        assert CODEGEN_MODES == ("on", "off")

    def test_reference_engine_never_uses_codegen(self):
        engine = TimingEngine(LX2(), engine="reference", codegen="on")
        assert engine._make_pipe().codegen is False
