"""Functional engine: instruction semantics against registers + memory."""

import numpy as np
import pytest

from repro.isa.instructions import (
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PRFM,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.registers import SVL_LANES, TileReg, VReg
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace


@pytest.fixture()
def eng():
    return FunctionalEngine(MemorySpace())


def load_values(eng, values):
    base = eng.memory.alloc(len(values))
    eng.memory.write(base, np.asarray(values, dtype=float))
    return base


class TestMemoryOps:
    def test_ld1d(self, eng):
        base = load_values(eng, np.arange(8.0))
        eng.execute(LD1D(VReg(0), base))
        assert np.array_equal(eng.regs.read_v(VReg(0)), np.arange(8.0))

    def test_ld1d_strided(self, eng):
        base = load_values(eng, np.arange(64.0))
        eng.execute(LD1D_STRIDED(VReg(0), base, stride=8))
        assert np.array_equal(eng.regs.read_v(VReg(0)), np.arange(0.0, 64.0, 8.0))

    def test_st1d(self, eng):
        base = eng.memory.alloc(8)
        eng.regs.write_v(VReg(3), np.full(8, 4.5))
        eng.execute(ST1D(VReg(3), base))
        assert np.all(eng.memory.read(base, 8) == 4.5)

    def test_st1d_slice(self, eng):
        base = eng.memory.alloc(8)
        eng.regs.write_slice(TileReg(2), 5, np.arange(8.0))
        eng.execute(ST1D_SLICE(TileReg(2), 5, base))
        assert np.array_equal(eng.memory.read(base, 8), np.arange(8.0))

    def test_prfm_no_architectural_effect(self, eng):
        base = load_values(eng, np.ones(8))
        eng.execute(PRFM(base))
        assert np.all(eng.memory.read(base, 8) == 1.0)


class TestVectorOps:
    def test_fmla(self, eng):
        eng.regs.write_v(VReg(0), np.full(8, 1.0))
        eng.regs.write_v(VReg(1), np.arange(8.0))
        eng.regs.write_v(VReg(2), np.full(8, 2.0))
        eng.execute(FMLA(VReg(0), VReg(1), VReg(2)))
        assert np.array_equal(eng.regs.read_v(VReg(0)), 1.0 + 2.0 * np.arange(8.0))

    def test_fmla_idx_broadcasts_element(self, eng):
        eng.regs.write_v(VReg(1), np.arange(8.0))
        eng.regs.write_v(VReg(2), np.arange(10.0, 18.0))
        eng.execute(FMLA_IDX(VReg(0), VReg(1), VReg(2), 3))
        assert np.array_equal(eng.regs.read_v(VReg(0)), 13.0 * np.arange(8.0))

    def test_fmul_idx_overwrites(self, eng):
        eng.regs.write_v(VReg(0), np.full(8, 99.0))
        eng.regs.write_v(VReg(1), np.arange(8.0))
        eng.regs.write_v(VReg(2), np.full(8, 2.0))
        eng.execute(FMUL_IDX(VReg(0), VReg(1), VReg(2), 0))
        assert np.array_equal(eng.regs.read_v(VReg(0)), 2.0 * np.arange(8.0))

    def test_fadd(self, eng):
        eng.regs.write_v(VReg(1), np.arange(8.0))
        eng.regs.write_v(VReg(2), np.ones(8))
        eng.execute(FADD_V(VReg(0), VReg(1), VReg(2)))
        assert np.array_equal(eng.regs.read_v(VReg(0)), np.arange(8.0) + 1.0)

    def test_ext_concatenation(self, eng):
        eng.regs.write_v(VReg(1), np.arange(8.0))
        eng.regs.write_v(VReg(2), np.arange(8.0, 16.0))
        eng.execute(EXT(VReg(0), VReg(1), VReg(2), 3))
        assert np.array_equal(eng.regs.read_v(VReg(0)), np.arange(3.0, 11.0))

    def test_ext_is_shifted_window_semantics(self, eng):
        """EXT(a, b, s) yields the vector at column offset +s (data reuse)."""
        row = np.arange(16.0)
        eng.regs.write_v(VReg(1), row[:8])
        eng.regs.write_v(VReg(2), row[8:])
        for s in range(1, 8):
            eng.execute(EXT(VReg(0), VReg(1), VReg(2), s))
            assert np.array_equal(eng.regs.read_v(VReg(0)), row[s : s + 8])

    def test_dup_and_set_lanes(self, eng):
        eng.execute(DUP(VReg(0), 7.25))
        assert np.all(eng.regs.read_v(VReg(0)) == 7.25)
        vals = tuple(float(i * i) for i in range(8))
        eng.execute(SET_LANES(VReg(1), vals))
        assert np.array_equal(eng.regs.read_v(VReg(1)), np.array(vals))


class TestMatrixOps:
    def test_fmopa_accumulates_outer_product(self, eng):
        col = np.arange(8.0)
        row = np.arange(8.0, 16.0)
        eng.regs.write_v(VReg(0), col)
        eng.regs.write_v(VReg(1), row)
        eng.execute(FMOPA(TileReg(0), VReg(0), VReg(1)))
        eng.execute(FMOPA(TileReg(0), VReg(0), VReg(1)))
        assert np.allclose(eng.regs.read_tile(TileReg(0)), 2 * np.outer(col, row))

    def test_inplace_accumulation_trick_is_exact(self, eng):
        """FMOPA with a unit-basis coefficient adds into exactly one row."""
        eng.regs.write_tile(TileReg(0), np.ones((8, 8)))
        unit = np.zeros(8)
        unit[4] = 1.0
        eng.regs.write_v(VReg(0), unit)
        eng.regs.write_v(VReg(1), np.arange(8.0))
        eng.execute(FMOPA(TileReg(0), VReg(0), VReg(1), rows=(4,)))
        tile = eng.regs.read_tile(TileReg(0))
        assert np.array_equal(tile[4], 1.0 + np.arange(8.0))
        mask = np.ones(8, dtype=bool)
        mask[4] = False
        assert np.all(tile[mask] == 1.0)

    def test_zero_tile(self, eng):
        eng.regs.write_tile(TileReg(1), np.ones((8, 8)))
        eng.execute(ZERO_TILE(TileReg(1)))
        assert np.all(eng.regs.read_tile(TileReg(1)) == 0.0)

    def test_mova_roundtrip(self, eng):
        eng.regs.write_v(VReg(0), np.arange(8.0))
        eng.execute(MOVA_VEC_TO_TILE(TileReg(0), 3, VReg(0)))
        eng.execute(MOVA_TILE_TO_VEC(VReg(1), TileReg(0), 3))
        assert np.array_equal(eng.regs.read_v(VReg(1)), np.arange(8.0))

    def test_fmla_m_updates_even_rows_with_group(self, eng):
        for g in range(4):
            eng.regs.write_v(VReg(8 + g), np.full(8, float(g + 1)))
        coefs = np.zeros(8)
        coefs[2] = 3.0
        eng.regs.write_v(VReg(16), coefs)
        eng.execute(FMLA_M(TileReg(0), VReg(8), VReg(16), 2))
        tile = eng.regs.read_tile(TileReg(0))
        for g in range(4):
            assert np.all(tile[2 * g] == 3.0 * (g + 1))
            assert np.all(tile[2 * g + 1] == 0.0)  # odd rows fragmented away

    def test_scalar_noop(self, eng):
        eng.execute(SCALAR_OP())
        assert eng.instructions_executed == 1


class TestTraceExecution:
    def test_execute_trace_counts(self, eng):
        base = load_values(eng, np.arange(16.0))
        eng.execute_trace([LD1D(VReg(0), base), LD1D(VReg(1), base + 8)])
        assert eng.instructions_executed == 2

    def test_unknown_instruction_rejected(self, eng):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            eng.execute(Bogus())

    def test_reset_registers(self, eng):
        eng.regs.write_v(VReg(0), np.ones(8))
        eng.reset_registers()
        assert np.all(eng.regs.read_v(VReg(0)) == 0.0)
