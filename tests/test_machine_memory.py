"""MemorySpace: allocation, paging, bulk helpers."""

import numpy as np
import pytest

from repro.machine.memory import LINE_WORDS, MemorySpace, PAGE_WORDS


class TestAllocation:
    def test_base_is_nonzero(self):
        mem = MemorySpace()
        base = mem.alloc(8, "a")
        assert base > 0

    def test_line_alignment_default(self):
        mem = MemorySpace()
        mem.alloc(3, "a")
        b = mem.alloc(8, "b")
        assert b % LINE_WORDS == 0

    def test_custom_alignment(self):
        mem = MemorySpace()
        mem.alloc(5, "a")
        b = mem.alloc(8, "b", align=64)
        assert b % 64 == 0

    def test_alignment_must_be_power_of_two(self):
        mem = MemorySpace()
        with pytest.raises(ValueError):
            mem.alloc(8, align=12)

    def test_size_must_be_positive(self):
        mem = MemorySpace()
        with pytest.raises(ValueError):
            mem.alloc(0)

    def test_duplicate_names_rejected(self):
        mem = MemorySpace()
        mem.alloc(8, "x")
        with pytest.raises(ValueError):
            mem.alloc(8, "x")

    def test_allocation_lookup(self):
        mem = MemorySpace()
        base = mem.alloc(40, "grid")
        rec = mem.allocation("grid")
        assert rec.base == base
        assert rec.nwords == 40
        assert rec.end == base + 40

    def test_allocations_do_not_overlap(self):
        mem = MemorySpace()
        a = mem.alloc(100, "a")
        b = mem.alloc(100, "b")
        assert b >= a + 100


class TestAccess:
    def test_zero_fill_default(self):
        mem = MemorySpace()
        base = mem.alloc(16)
        assert np.all(mem.read(base, 16) == 0.0)

    def test_write_read_roundtrip(self):
        mem = MemorySpace()
        base = mem.alloc(32)
        data = np.arange(32.0)
        mem.write(base, data)
        assert np.array_equal(mem.read(base, 32), data)

    def test_cross_page_write_read(self):
        mem = MemorySpace()
        base = mem.alloc(3 * PAGE_WORDS)
        start = base + PAGE_WORDS - 5
        data = np.arange(10.0)
        mem.write(start, data)
        assert np.array_equal(mem.read(start, 10), data)

    def test_pages_allocated_lazily(self):
        mem = MemorySpace()
        mem.alloc(100 * PAGE_WORDS, "big")
        before = mem.words_resident
        base = mem.allocation("big").base
        mem.write(base + 50 * PAGE_WORDS, np.ones(8))
        # Only the touched page(s) are committed.
        assert mem.words_resident - before <= 2 * PAGE_WORDS

    def test_strided_read(self):
        mem = MemorySpace()
        base = mem.alloc(64)
        mem.write(base, np.arange(64.0))
        got = mem.read_strided(base + 1, 8, stride=8)
        assert np.array_equal(got, np.arange(1.0, 64.0, 8.0))

    def test_out_of_bounds_read_rejected(self):
        mem = MemorySpace()
        base = mem.alloc(8)
        with pytest.raises(ValueError):
            mem.read(base + 8, 8)

    def test_below_base_rejected(self):
        mem = MemorySpace()
        mem.alloc(8)
        with pytest.raises(ValueError):
            mem.read(0, 1)


class TestBulkHelpers:
    def test_array_roundtrip(self):
        mem = MemorySpace()
        base = mem.alloc(24)
        arr = np.arange(24.0).reshape(4, 6)
        mem.write_array(base, arr)
        assert np.array_equal(mem.read_array(base, (4, 6)), arr)

    def test_row_helpers(self):
        mem = MemorySpace()
        base = mem.alloc(40)
        mem.write_row(base, row_stride=10, row=2, values=np.full(4, 7.0), col=3)
        got = mem.read_row(base, row_stride=10, row=2, ncols=4, col=3)
        assert np.all(got == 7.0)
        # neighbours untouched
        assert mem.read(base + 2 * 10, 3).sum() == 0.0
