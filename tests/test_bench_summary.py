"""Results-summary aggregation tool."""

import pathlib

from repro.bench.summary import ORDER, collect_summary, default_results_dir, load_tables


def test_order_covers_all_experiments():
    names = set(ORDER)
    for required in (
        "fig03_ilp",
        "tab01_utilization",
        "tab02_ipc",
        "tab03_cache_hit",
        "tab05_instr_ratio",
        "tab07_prefetch_cache",
        "fig12_incache",
        "fig13_breakdown",
        "fig14_ipc",
        "fig15_outofcache",
        "fig16_multicore",
        "fig17_m4_incache",
        "fig18_m4_outofcache",
    ):
        assert required in names


def test_missing_dir_reports_gracefully(tmp_path):
    out = collect_summary(tmp_path / "nope")
    assert "no benchmark results" in out


def test_collects_in_order(tmp_path):
    (tmp_path / "tab01_utilization.txt").write_text("TABLE-ONE")
    (tmp_path / "fig03_ilp.txt").write_text("FIGURE-THREE")
    (tmp_path / "custom_extra.txt").write_text("EXTRA")
    out = collect_summary(tmp_path)
    assert out.index("FIGURE-THREE") < out.index("TABLE-ONE") < out.index("EXTRA")
    assert "not yet generated" in out


def test_load_tables_strips(tmp_path):
    (tmp_path / "a.txt").write_text("hello\n\n")
    assert load_tables(tmp_path) == {"a": "hello"}


def test_default_dir_points_into_repo():
    assert default_results_dir().parts[-2:] == ("benchmarks", "results")
