"""Structural properties of the generated kernels.

These tests pin down *how* each method computes — instruction mixes, loop
nests, traversal orders, validation — independent of numerical output.
"""

import pytest

from repro.isa.instructions import (
    EXT,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    PortClass,
    PRFM,
    ST1D,
    ST1D_SLICE,
)
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2, M4
from repro.machine.memory import MemorySpace
from repro.stencils.grid import Grid2D
from repro.stencils.library import benchmark


def build(method, stencil="star2d9p", rows=16, cols=32, config=None, **opts):
    config = config or LX2()
    spec = benchmark(stencil)
    mem = MemorySpace()
    src = Grid2D(mem, rows, cols, spec.radius, "A")
    dst = Grid2D(mem, rows, cols, spec.radius, "B")
    options = KernelOptions(unroll_j=2).with_(**opts)
    return make_kernel(method, spec, src, dst, config, options)


def block_trace(kernel, index=0):
    return kernel.emit(kernel.loop_nest().blocks[index])


class TestAuto:
    def test_one_load_per_tap(self):
        k = build("auto", "box2d9p")
        trace = block_trace(k)
        loads = sum(1 for i in trace if isinstance(i, LD1D))
        fmas = sum(1 for i in trace if i.port is PortClass.VECTOR and i.flops)
        # gather baseline: loads ~= FMA count (no reuse)
        assert loads >= 0.9 * fmas

    def test_no_matrix_instructions(self):
        trace = block_trace(build("auto"))
        assert all(i.port is not PortClass.MATRIX for i in trace)

    def test_row_traversal(self):
        k = build("auto", rows=16, cols=32)
        nest = k.loop_nest()
        assert len(nest) == 16  # one block per output row
        assert nest.blocks[0].points == 32


class TestVectorOnly:
    def test_cross_row_reuse_reduces_loads(self):
        auto_loads = sum(
            1 for i in block_trace(build("auto", "star2d9p")) if isinstance(i, LD1D)
        )
        vo = build("vector-only", "star2d9p")
        vo_loads = sum(1 for i in block_trace(vo) if isinstance(i, LD1D))
        # A vector-only block covers 4 output rows; its hoisted row loads
        # replace 4x the gather baseline's per-row loads.
        assert vo_loads < 4 * auto_loads * 0.75

    def test_rejected_on_m4(self):
        with pytest.raises(ValueError, match="FMLA"):
            build("vector-only", config=M4())

    def test_four_rows_per_block(self):
        k = build("vector-only", rows=16, cols=32)
        assert len(k.loop_nest()) == 4
        assert k.loop_nest().blocks[0].points == 4 * 32


class TestMatrixOnly:
    def test_no_vector_compute(self):
        """STOP does no vector FLOPs (Table 5's 40/0)."""
        trace = block_trace(build("matrix-only", "box2d25p"))
        vec_flops = sum(i.flops for i in trace if i.port is PortClass.VECTOR)
        assert vec_flops == 0

    def test_one_fmopa_per_shift_per_input_row(self):
        k = build("matrix-only", "box2d25p", unroll_j=1)
        trace = block_trace(k, index=1)
        fmopas = [i for i in trace if isinstance(i, FMOPA)]
        # 12 input rows x 5 shifts, minus empty edge placements of sparse rows
        assert len(fmopas) == 12 * 5

    def test_star_fmopa_rows_sparse(self):
        """Star shifts keep a single live row (the Table 1 sparsity)."""
        k = build("matrix-only", "star2d9p", unroll_j=1)
        trace = block_trace(k, index=1)
        sparse = [i for i in trace if isinstance(i, FMOPA) and len(i.rows) == 1]
        assert len(sparse) >= 8 * 4  # 4 off-axis shifts on interior rows

    def test_deferred_stores_at_block_end(self):
        trace = block_trace(build("matrix-only"))
        kinds = [isinstance(i, ST1D_SLICE) for i in trace]
        first_store = kinds.index(True)
        assert all(
            isinstance(i, ST1D_SLICE) or i.port is PortClass.SCALAR
            for i in trace[first_store:]
        )

    def test_band_major_traversal(self):
        k = build("matrix-only", rows=16, cols=32, unroll_j=2)
        keys = [b.key for b in k.loop_nest()]
        assert keys[0] == (0, 0)
        assert keys[1] == (0, 1)  # panel advances inside a band

    def test_unroll_bounds_checked(self):
        with pytest.raises(ValueError):
            build("matrix-only", unroll_j=9)

    def test_divisibility_checked(self):
        with pytest.raises(ValueError, match="multiple"):
            build("matrix-only", cols=24, unroll_j=4)


class TestMatOrtho:
    def test_uses_strided_column_loads(self):
        trace = block_trace(build("mat-ortho"))
        assert any(isinstance(i, LD1D_STRIDED) for i in trace)

    def test_star_only(self):
        with pytest.raises(ValueError, match="star"):
            build("mat-ortho", "box2d9p")


class TestNaive:
    def test_extra_memory_roundtrip(self):
        """Equation 7: the naive method stores twice per output row."""
        k = build("hstencil-naive")
        trace = block_trace(k)
        stores = sum(1 for i in trace if isinstance(i, (ST1D, ST1D_SLICE)))
        inplace = build("hstencil-nosched")
        stores_inplace = sum(
            1 for i in block_trace(inplace) if isinstance(i, (ST1D, ST1D_SLICE))
        )
        assert stores == 2 * stores_inplace

    def test_star_only(self):
        with pytest.raises(ValueError, match="star"):
            build("hstencil-naive", "box2d9p")


class TestInplaceHybrid:
    def test_accumulate_fmopa_single_row(self):
        """The in-place trick: one unit-basis FMOPA per interior row."""
        from repro.kernels.base import UNIT_BASE

        k = build("hstencil-nosched", "star2d9p", mla_rollback=0)
        trace = block_trace(k)
        accumulates = [
            i
            for i in trace
            if isinstance(i, FMOPA) and i.coef.index >= UNIT_BASE
        ]
        assert len(accumulates) == 8 * 2  # 8 interior rows x 2 tiles
        assert all(len(i.rows) == 1 for i in accumulates)

    def test_no_intermediate_memory_roundtrip(self):
        """Equation 8: one store per output row, no reload of B."""
        k = build("hstencil-nosched")
        trace = block_trace(k)
        dst_lo = k.dst.base
        dst_hi = k.dst.base + k.dst.words
        b_loads = [
            i
            for i in trace
            if isinstance(i, LD1D) and dst_lo <= i.addr < dst_hi
        ]
        assert not b_loads

    def test_scattered_stores_interleaved(self):
        """Stores appear inside the row loop, not as one end burst."""
        trace = block_trace(build("hstencil-nosched"))
        positions = [n for n, i in enumerate(trace) if isinstance(i, ST1D_SLICE)]
        assert positions[0] < len(trace) * 0.6  # first store well before the end

    def test_star_rejected_on_m4_points_to_m4_kernel(self):
        from repro.kernels.inplace_hybrid import InplaceHybridKernel

        spec = benchmark("star2d5p")
        mem = MemorySpace()
        src = Grid2D(mem, 16, 32, 1, "A")
        dst = Grid2D(mem, 16, 32, 1, "B")
        with pytest.raises(ValueError, match="m4"):
            InplaceHybridKernel(spec, src, dst, M4(), KernelOptions(unroll_j=2))

    def test_prefetch_instructions_present_only_when_enabled(self):
        without = block_trace(build("hstencil-nosched"))
        assert not any(isinstance(i, PRFM) for i in without)
        k = build("hstencil-prefetch")
        with_pf = block_trace(k)
        assert any(isinstance(i, PRFM) for i in with_pf)

    def test_prefetch_covers_a_and_b(self):
        k = build("hstencil-prefetch")
        trace = block_trace(k)
        reads = [i for i in trace if isinstance(i, PRFM) and not i.write]
        writes = [i for i in trace if isinstance(i, PRFM) and i.write]
        assert reads and writes  # Algorithm 3 lines 4 and 6


class TestM4Kernel:
    def test_star_routes_to_mmla_kernel(self):
        k = build("hstencil", "star2d9p", config=M4())
        assert k.method == "hstencil-m4"
        trace = block_trace(k)
        assert any(isinstance(i, FMLA_M) for i in trace)

    def test_box_routes_to_inplace_kernel(self):
        k = build("hstencil", "box2d9p", config=M4())
        assert k.method == "hstencil"

    def test_multi_stage_combine_uses_mova(self):
        trace = block_trace(build("hstencil", "star2d9p", config=M4()))
        assert any(isinstance(i, MOVA_TILE_TO_VEC) for i in trace)

    def test_no_vector_fmla_on_m4_star(self):
        trace = block_trace(build("hstencil", "star2d9p", config=M4()))
        assert not any(isinstance(i, FMLA_IDX) for i in trace)

    def test_m4_kernel_rejects_box(self):
        from repro.kernels.m4 import M4HybridKernel

        spec = benchmark("box2d9p")
        mem = MemorySpace()
        src = Grid2D(mem, 16, 32, 1, "A")
        dst = Grid2D(mem, 16, 32, 1, "B")
        with pytest.raises(ValueError, match="star"):
            M4HybridKernel(spec, src, dst, M4(), KernelOptions(unroll_j=2))

    def test_m4_unroll_reserves_scratch_tiles(self):
        with pytest.raises(ValueError):
            build("hstencil", "star2d5p", config=M4(), unroll_j=7)


class TestRegistry:
    def test_unknown_method(self):
        with pytest.raises(KeyError):
            build("turbo-stencil")

    def test_method_names_stamped(self):
        for m in ("auto", "matrix-only", "hstencil"):
            assert build(m).name == m
