"""NumPy reference stencils: shapes, correctness on hand-checkable cases."""

import numpy as np
import pytest

from repro.stencils.reference import (
    apply_reference,
    iterate_reference,
    reference_stencil_2d,
    reference_stencil_3d,
)
from repro.stencils.spec import box2d, box3d, heat2d, star2d, star3d


class TestReference2D:
    def test_output_shape(self):
        full = np.zeros((12, 20))
        out = reference_stencil_2d(full, star2d(2))
        assert out.shape == (8, 16)

    def test_identity_like_stencil(self):
        plane = np.zeros((3, 3))
        plane[1, 1] = 1.0
        spec = star2d(1, coefficients=plane)
        rng = np.random.default_rng(0)
        full = rng.random((10, 10))
        out = reference_stencil_2d(full, spec)
        assert np.array_equal(out, full[1:-1, 1:-1])

    def test_shift_stencil(self):
        """A single off-center tap is a pure shift."""
        plane = np.zeros((3, 3))
        plane[1, 2] = 1.0  # east neighbour (dj=+1)
        spec = star2d(1, coefficients=plane)
        full = np.arange(100.0).reshape(10, 10)
        out = reference_stencil_2d(full, spec)
        assert np.array_equal(out, full[1:-1, 2:])

    def test_vertical_shift_orientation(self):
        plane = np.zeros((3, 3))
        plane[0, 1] = 1.0  # north neighbour (di=-1)
        spec = star2d(1, coefficients=plane)
        full = np.arange(100.0).reshape(10, 10)
        out = reference_stencil_2d(full, spec)
        assert np.array_equal(out, full[0:-2, 1:-1])

    def test_constant_field_times_coefficient_sum(self):
        spec = box2d(2)
        full = np.full((14, 14), 3.0)
        out = reference_stencil_2d(full, spec)
        assert np.allclose(out, 3.0 * spec.coeffs2d.sum())

    def test_linearity(self):
        spec = star2d(2)
        rng = np.random.default_rng(1)
        a = rng.random((12, 12))
        b = rng.random((12, 12))
        lhs = reference_stencil_2d(2.0 * a + b, spec)
        rhs = 2.0 * reference_stencil_2d(a, spec) + reference_stencil_2d(b, spec)
        assert np.allclose(lhs, rhs)

    def test_too_small_array_rejected(self):
        with pytest.raises(ValueError):
            reference_stencil_2d(np.zeros((4, 4)), star2d(2))

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            reference_stencil_2d(np.zeros((10, 10)), star3d(1))


class TestReference3D:
    def test_output_shape(self):
        full = np.zeros((6, 10, 12))
        out = reference_stencil_3d(full, star3d(1))
        assert out.shape == (4, 8, 10)

    def test_z_shift_orientation(self):
        spec = star3d(1)
        c = spec.planes[1][1, 1]  # dz=+1 center coefficient
        full = np.zeros((4, 6, 6))
        full[2] = 1.0  # plane z=2 (logical)
        out = reference_stencil_3d(full, spec)
        # output plane z=0 corresponds to logical plane 1; dz=+1 reads plane 2
        assert np.allclose(out[0], c + spec.planes[0][1, 1] * 0.0)

    def test_constant_field_3d(self):
        spec = box3d(1)
        full = np.full((6, 6, 6), 2.0)
        out = reference_stencil_3d(full, spec)
        total = sum(p.sum() for p in spec.planes.values())
        assert np.allclose(out, 2.0 * total)

    def test_dispatch(self):
        assert apply_reference(np.zeros((10, 10)), star2d(1)).shape == (8, 8)
        assert apply_reference(np.zeros((4, 6, 8)), star3d(1)).shape == (2, 4, 6)


class TestIterate:
    def test_zero_steps_is_identity(self):
        full = np.random.default_rng(2).random((10, 10))
        assert np.array_equal(iterate_reference(full, heat2d(), 0), full)

    def test_one_step_matches_single_application(self):
        spec = heat2d()
        full = np.random.default_rng(3).random((10, 10))
        once = iterate_reference(full, spec, 1)
        assert np.allclose(once[1:-1, 1:-1], reference_stencil_2d(full, spec))
        # halo unchanged
        assert np.array_equal(once[0], full[0])

    def test_heat_diffusion_smooths(self):
        """Multi-step heat diffusion reduces the field's variance."""
        spec = heat2d()
        rng = np.random.default_rng(4)
        full = rng.random((20, 20))
        out = iterate_reference(full, spec, 10)
        assert out[1:-1, 1:-1].var() < full[1:-1, 1:-1].var()

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            iterate_reference(np.zeros((4, 6, 6)), star3d(1), 1)
