"""Property-based tests on the timing model and scheduling quality."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import EXT, FMLA, FMOPA, LD1D, ST1D
from repro.isa.program import Trace
from repro.isa.registers import TileReg, VReg
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.kernels.scheduling import schedule_trace
from repro.machine.config import LX2
from repro.machine.memory import MemorySpace
from repro.machine.pipeline import PipelineModel
from repro.machine.timing import TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.spec import box2d, star2d

LX2_CFG = LX2()


@st.composite
def small_trace(draw):
    n = draw(st.integers(3, 30))
    out = Trace()
    for _ in range(n):
        kind = draw(st.sampled_from(["ld", "st", "fmla", "ext", "fmopa"]))
        if kind == "ld":
            out.append(LD1D(VReg(draw(st.integers(0, 7))), 1024 + 8 * draw(st.integers(0, 63))))
        elif kind == "st":
            out.append(ST1D(VReg(draw(st.integers(0, 7))), 2048 + 8 * draw(st.integers(0, 63))))
        elif kind == "fmla":
            out.append(
                FMLA(VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))))
            )
        elif kind == "ext":
            out.append(
                EXT(VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))), draw(st.integers(0, 8)))
            )
        else:
            out.append(
                FMOPA(TileReg(draw(st.integers(0, 3))), VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))))
            )
    return out


@settings(max_examples=40, deadline=None)
@given(trace=small_trace())
def test_timing_is_deterministic(trace):
    a = TimingEngine(LX2_CFG).run_trace(Trace(list(trace)))
    b = TimingEngine(LX2_CFG).run_trace(Trace(list(trace)))
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.l1_hits == b.l1_hits


@settings(max_examples=40, deadline=None)
@given(trace=small_trace(), extra=small_trace())
def test_makespan_monotone_under_extension(trace, extra):
    """Appending instructions never reduces the makespan."""
    base = TimingEngine(LX2_CFG).run_trace(Trace(list(trace)))
    longer = TimingEngine(LX2_CFG).run_trace(Trace(list(trace) + list(extra)))
    assert longer.cycles >= base.cycles


@settings(max_examples=40, deadline=None)
@given(trace=small_trace())
def test_issue_cycles_nondecreasing(trace):
    """In-order issue: cycles are monotone over the program."""
    pipe = PipelineModel(LX2_CFG)
    last = 0
    for ins in trace:
        t = pipe.process(ins)
        assert t >= last
        last = t


@settings(max_examples=40, deadline=None)
@given(trace=small_trace())
def test_ipc_never_exceeds_issue_width(trace):
    pc = TimingEngine(LX2_CFG).run_trace(trace)
    assert pc.ipc <= LX2_CFG.issue_width + 1e-9


@st.composite
def rotating_trace(draw):
    """Traces in the style kernels emit: destinations rotate (no WAW
    pile-ups on a single register), which is the regime the greedy
    scheduler is built for."""
    n = draw(st.integers(6, 30))
    out = Trace()
    dest = 0
    for _ in range(n):
        kind = draw(st.sampled_from(["ld", "st", "fmla", "fmopa"]))
        if kind == "ld":
            out.append(LD1D(VReg(dest % 8), 1024 + 8 * draw(st.integers(0, 63))))
            dest += 1
        elif kind == "st":
            out.append(ST1D(VReg(draw(st.integers(0, 7))), 2048 + 8 * draw(st.integers(0, 63))))
        elif kind == "fmla":
            out.append(FMLA(VReg(dest % 8), VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7)))))
            dest += 1
        else:
            out.append(
                FMOPA(TileReg(draw(st.integers(0, 3))), VReg(draw(st.integers(0, 7))), VReg(draw(st.integers(0, 7))))
            )
    return out


@settings(max_examples=25, deadline=None)
@given(trace=rotating_trace())
def test_scheduling_never_hurts_cached_timing(trace):
    """For rotation-style traces (the kernels' emission style), the list
    schedule's measured makespan does not lose to the original order.

    A small allowance covers cache-order effects the scheduler's
    L1-hit-latency heuristic cannot see.
    """
    plain = TimingEngine(LX2_CFG).run_trace(Trace(list(trace)))
    sched = schedule_trace(Trace(list(trace)), LX2_CFG)
    timed = TimingEngine(LX2_CFG).run_trace(sched)
    assert timed.cycles <= plain.cycles * 1.25 + 16


@settings(max_examples=8, deadline=None)
@given(
    rows=st.integers(1, 3).map(lambda k: 8 * k),
    seed=st.integers(0, 10),
    radius=st.integers(1, 2),
)
def test_kernel_timing_deterministic_across_builds(rows, seed, radius):
    """Two independently built identical kernels time identically."""
    spec = star2d(radius)

    def measure():
        mem = MemorySpace()
        src = Grid2D(mem, rows, 32, radius, "A")
        dst = Grid2D(mem, rows, 32, radius, "B")
        k = make_kernel("hstencil", spec, src, dst, LX2_CFG, KernelOptions(unroll_j=2))
        return TimingEngine(LX2_CFG).run(k, warm=False)

    a, b = measure(), measure()
    assert a.cycles == b.cycles
    assert a.l1_hits == b.l1_hits


@settings(max_examples=6, deadline=None)
@given(radius=st.integers(1, 2), seed=st.integers(0, 5))
def test_global_schedule_not_slower_than_body_schedule(radius, seed):
    """Whole-block scheduling never loses to body-local scheduling."""
    spec = box2d(radius)

    def measure(method):
        mem = MemorySpace()
        src = Grid2D(mem, 16, 32, radius, "A")
        dst = Grid2D(mem, 16, 32, radius, "B")
        k = make_kernel(method, spec, src, dst, LX2_CFG, KernelOptions(unroll_j=2))
        return TimingEngine(LX2_CFG).run(k, warm=True).cycles

    assert measure("hstencil") <= measure("hstencil-nosched") * 1.02
