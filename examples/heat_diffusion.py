#!/usr/bin/env python
"""Heat-2D: multi-step explicit diffusion driven through HStencil.

Simulates an FTCS heat-diffusion step (the Heat-2D benchmark of the
paper's dataset list) on a plate with a hot square in the middle:

* each time step is one application of the Heat-2D stencil, computed by
  the HStencil hybrid kernel on the simulated machine;
* the run is cross-checked against the NumPy reference iteration;
* per-step simulated cycles are reported for three methods.

Usage: python examples/heat_diffusion.py [steps]
"""

import sys

import numpy as np

from repro import HStencil
from repro.stencils import heat2d
from repro.stencils.reference import iterate_reference


def run_simulation(steps: int = 5, size: int = 32) -> None:
    spec = heat2d()
    r = spec.radius
    field = np.zeros((size + 2 * r, size + 2 * r))
    lo, hi = size // 2 - 4, size // 2 + 4
    field[lo:hi, lo:hi] = 100.0  # hot square

    hs = HStencil(spec)
    current = field.copy()
    for step in range(steps):
        interior = hs.apply(current)
        current[r:-r, r:-r] = interior
        peak = interior.max()
        mean = interior.mean()
        print(f"step {step + 1}: peak={peak:8.3f}  mean={mean:6.3f}")

    reference = iterate_reference(field, spec, steps)
    err = np.max(np.abs(current - reference))
    print(f"\nmax deviation from NumPy reference after {steps} steps: {err:.3e}")
    assert err < 1e-10

    print("\nper-step cost on the simulated LX2 (256x256 grid):")
    # 256x256 spills the L2, so the full HStencil configuration includes
    # the spatial prefetch of Algorithm 3.
    for method in ("auto", "matrix-only", "hstencil-prefetch"):
        perf = HStencil(spec, method=method).benchmark(256, 256)
        gpts = perf.gstencil_per_s(2.5)
        print(
            f"  {method:12s} {perf.cycles_per_point:5.2f} cyc/pt "
            f"({gpts:5.2f} GStencil/s at 2.5 GHz)"
        )


if __name__ == "__main__":
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    run_simulation(steps)
