#!/usr/bin/env python
"""Kernel inspection: what the hybrid kernel actually emits.

Prints, for a small r=1 star stencil:

* the replacement plan (MLA rollback / EXT->load balancing, Section 3.2.1);
* the instruction mix per pipeline of one block, before and after the
  fine-grained scheduling pass;
* the first instructions of the scheduled block as assembly, showing the
  interleaving of loads, outer products, MLAs and scattered stores.

Usage: python examples/kernel_inspection.py
"""

from repro import HStencil, KernelOptions, LX2
from repro.isa.asm import format_trace
from repro.kernels.replacement import plan_replacement
from repro.machine.timeline import record_timeline, render_timeline
from repro.stencils import star2d


def port_mix(trace):
    counts = trace.port_counts()
    return "  ".join(f"{p.value}:{n}" for p, n in sorted(counts.items(), key=lambda kv: kv[0].value))


def main() -> None:
    spec = star2d(1)
    cfg = LX2()
    options = KernelOptions(unroll_j=2)

    plan = plan_replacement(spec, cfg, options)
    print("replacement plan (Section 3.2.1):")
    print(f"  vector taps   : shifts {plan.vector_shifts}")
    print(f"  rolled back   : shifts {plan.rollback_shifts}")
    print(f"  EXT-synthesized: shifts {plan.ext_shifts}")
    print(f"  load-synthesized: shifts {plan.load_shifts}")
    print(f"  est. pipe cycles/block: {plan.pipe_cycles}")

    unsched = HStencil(spec, method="hstencil-nosched", options=options)
    sched = HStencil(spec, method="hstencil", options=options)
    k_u, _, _ = unsched.compile((16, 16))
    k_s, _, _ = sched.compile((16, 16))
    block = k_u.loop_nest().blocks[0]

    t_u = k_u.emit(block)
    t_s = k_s.emit(block)
    print(f"\nblock {block.key}: {len(t_u)} instructions")
    print(f"  body-local schedule port mix : {port_mix(t_u)}")
    print(f"  global schedule port mix     : {port_mix(t_s)}")

    print("\nfirst 28 instructions of the globally scheduled block:")
    print(format_trace(t_s[:28], numbered=True))

    print("\npipeline timeline of the scheduled block (first 72 cycles):")
    events = record_timeline(t_s, LX2())
    print(render_timeline(events, LX2(), width=72))

    pu = unsched.benchmark(64, 64)
    ps = sched.benchmark(64, 64)
    print(
        f"\n64x64 timing: body-local {pu.cycles:.0f} cycles (IPC {pu.ipc:.2f})"
        f"  ->  global {ps.cycles:.0f} cycles (IPC {ps.ipc:.2f})"
        f"  [{pu.cycles / ps.cycles:.2f}x]"
    )


if __name__ == "__main__":
    main()
