#!/usr/bin/env python
"""Quickstart: compute a stencil with HStencil and time it.

Runs the r=2 star stencil (Star-2D9P) on a 64x64 grid three ways:

1. NumPy reference (ground truth);
2. the HStencil hybrid kernel, functionally executed instruction by
   instruction on the simulated LX2 machine;
3. the timing engine, reporting cycles/IPC/L1 behaviour for HStencil and
   the two comparison methods.

Usage: python examples/quickstart.py
"""

import numpy as np

from repro import HStencil
from repro.stencils import reference_stencil_2d, star2d


def main() -> None:
    spec = star2d(2)
    print(f"stencil: {spec.name} ({spec.num_points} points, radius {spec.radius})")

    # A 64x64 interior plus the radius-2 halo the stencil reads.
    rng = np.random.default_rng(42)
    field = rng.standard_normal((68, 68))

    hs = HStencil(spec)
    result = hs.apply(field)
    reference = reference_stencil_2d(field, spec)
    err = np.max(np.abs(result - reference))
    print(f"max |kernel - reference| = {err:.3e}")
    assert err < 1e-12 * max(1.0, np.max(np.abs(reference)))

    print("\nsimulated-machine timing at 128x128 (in-cache):")
    for method in ("auto", "vector-only", "matrix-only", "hstencil"):
        perf = HStencil(spec, method=method).benchmark(128, 128)
        print(
            f"  {method:12s} {perf.cycles:>9.0f} cycles  "
            f"{perf.cycles_per_point:5.2f} cyc/pt  IPC {perf.ipc:4.2f}  "
            f"L1 {perf.l1_hit_rate * 100:5.1f}%"
        )

    base = HStencil(spec, method="auto").benchmark(128, 128).cycles
    best = HStencil(spec, method="hstencil").benchmark(128, 128).cycles
    print(f"\nHStencil speedup over auto-vectorization: {base / best:.2f}x")


if __name__ == "__main__":
    main()
