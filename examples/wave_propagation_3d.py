#!/usr/bin/env python
"""3D acoustic-wave kernel: the Star-3D7P stencil on a volume.

The 7-point 3D star is the spatial operator of second-order acoustic wave
propagation (the classic seismic-modeling kernel).  This example:

* builds the discrete Laplacian-like operator as a Star-3D7P spec;
* applies it to a Gaussian pulse with the HStencil 3D kernel (plane-
  accumulated 2D passes, Section 5.2.1's generalization);
* verifies against the NumPy reference;
* compares simulated cycles across methods at the in-cache 3D slab size.

Usage: python examples/wave_propagation_3d.py
"""

import numpy as np

from repro import HStencil, KernelOptions
from repro.stencils import reference_stencil_3d
from repro.stencils.spec import StencilSpec


def laplacian3d() -> StencilSpec:
    """The 7-point discrete Laplacian (unit spacing)."""
    side = 3
    center = np.zeros((side, side))
    center[1, 1] = -6.0
    center[0, 1] = center[2, 1] = center[1, 0] = center[1, 2] = 1.0
    zplane = np.zeros((side, side))
    zplane[1, 1] = 1.0
    return StencilSpec(
        name="laplacian3d7p",
        pattern="star",
        ndim=3,
        radius=1,
        planes={-1: zplane.copy(), 0: center, 1: zplane.copy()},
    )


def main() -> None:
    spec = laplacian3d()
    depth, rows, cols = 8, 16, 32
    r = spec.radius

    # A Gaussian pressure pulse in the volume (halo included).
    z, y, x = np.meshgrid(
        np.linspace(-1, 1, depth + 2 * r),
        np.linspace(-1, 1, rows + 2 * r),
        np.linspace(-1, 1, cols + 2 * r),
        indexing="ij",
    )
    pulse = np.exp(-8.0 * (x**2 + y**2 + z**2))

    hs = HStencil(spec, options=KernelOptions(unroll_j=2))
    lap = hs.apply(pulse)
    ref = reference_stencil_3d(pulse, spec)
    err = np.max(np.abs(lap - ref))
    print(f"Laplacian of the pulse: max |kernel - reference| = {err:.3e}")
    assert err < 1e-12

    # One leapfrog-style wave step: p_next = 2 p - p_prev + c^2 dt^2 lap(p)
    c2dt2 = 0.05
    interior = tuple(slice(r, -r) for _ in range(3))
    p_prev = pulse[interior]
    p_next = 2.0 * pulse[interior] - p_prev + c2dt2 * lap
    print(f"wave step energy: {np.sum(p_next**2):.4f} (pulse {np.sum(pulse[interior]**2):.4f})")

    print("\nsimulated cycles, 16x32x64 volume (unroll_j=8):")
    for method in ("auto", "vector-only", "matrix-only", "hstencil"):
        perf = HStencil(
            spec, method=method, options=KernelOptions(unroll_j=8)
        ).benchmark(16, 32, 64)
        print(
            f"  {method:12s} {perf.cycles_per_point:5.2f} cyc/pt  "
            f"IPC {perf.ipc:4.2f}"
        )


if __name__ == "__main__":
    main()
