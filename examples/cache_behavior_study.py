#!/usr/bin/env python
"""Out-of-cache study: why spatial prefetch matters (mini Figure 15).

Sweeps the r=2 box stencil from in-cache to far out-of-cache sizes and
reports, for the hybrid kernel with and without Algorithm 3's spatial
prefetch: cycles/point, demand L1 hit rate, and DRAM traffic.

Usage: python examples/cache_behavior_study.py
"""

from repro import HStencil, LX2
from repro.stencils import box2d


def main() -> None:
    spec = box2d(2)
    cfg = LX2()
    print(
        f"machine: {cfg.name}  L1 {cfg.l1.size_bytes // 1024}KB / "
        f"L2 {cfg.l2.size_bytes // 1024}KB / DRAM {cfg.mem_load_latency} cyc visible"
    )
    header = (
        f"{'size':>12}  {'variant':>12}  {'cyc/pt':>7}  {'L1 demand':>9}  "
        f"{'DRAM B/pt':>9}"
    )
    print(header)
    print("-" * len(header))
    for n in (256, 1024, 4096, 8192):
        for method, label in (
            ("hstencil-noprefetch", "no prefetch"),
            ("hstencil-prefetch", "prefetch"),
        ):
            perf = HStencil(spec, method=method).benchmark(n, n)
            print(
                f"{n:>6} x {n:<5}  {label:>12}  {perf.cycles_per_point:7.2f}  "
                f"{perf.l1_demand_hit_rate * 100:8.1f}%  "
                f"{perf.dram_bytes() / perf.points:9.1f}"
            )
    print(
        "\nTakeaway: without prefetch the 2-D tiled access pattern loses the\n"
        "hardware prefetcher (Section 2.3.3) and stalls on DRAM as the grid\n"
        "grows; Algorithm 3's explicit next-row/destination-row prefetch\n"
        "restores the hit rate and flattens cycles/point."
    )


if __name__ == "__main__":
    main()
