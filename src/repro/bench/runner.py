"""Experiment runner shared by the ``benchmarks/`` suite.

One :class:`ExperimentRunner` owns a machine configuration and measures
``(method, stencil, size)`` cells through the timing engine.  Results are
cached at two levels:

* an in-process memo, so a benchmark file can both print its paper-style
  table and register a pytest-benchmark timing without re-simulating;
* optionally a content-addressed on-disk cache
  (:class:`repro.bench.cache.MeasurementCache`), so repeated runs — and
  independent worker processes of a parallel sweep — skip simulation
  entirely.  The disk key hashes machine config, kernel options, sampling
  plan and simulator code version, so it can never serve stale numbers.

Every measurement records its provenance (``simulated``, ``disk`` or
``memory``), which the JSON benchmark artifacts surface as cache hit/miss
evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.cache import MeasurementCache, cache_key
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2, MachineConfig
from repro.machine.memory import MemorySpace
from repro.machine.perf import PerfCounters
from repro.machine.timing import SamplePlan, TimingEngine
from repro.stencils.grid import Grid2D, Grid3D
from repro.stencils.library import benchmark as stencil_benchmark
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class Measurement:
    """One measured cell."""

    method: str
    stencil: str
    shape: Tuple[int, ...]
    counters: PerfCounters

    @property
    def cycles(self) -> float:
        return self.counters.cycles

    def speedup_over(self, baseline: "Measurement") -> float:
        return baseline.cycles / self.cycles if self.cycles else 0.0


class ExperimentRunner:
    """Measures kernels on one machine, with in-memory + disk caching."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        options: Optional[KernelOptions] = None,
        cache_dir=None,
        engine: Optional[str] = None,
        timing: Optional[str] = None,
        steady: Optional[str] = None,
        sample: Optional[bool] = None,
        codegen: Optional[str] = None,
        artifact_dir=None,
    ) -> None:
        self.machine = machine if machine is not None else LX2()
        self.options = options or KernelOptions()
        # ``engine`` selects the simulation engine ("compiled"/"reference").
        # The disk-cache key deliberately does NOT include it: the engines
        # are bit-identical, so either may serve the other's cached cells.
        # ``timing`` selects the sampled-replay strategy of the compiled
        # engine ("columnar"/"scalar"); it IS part of the disk key (when
        # non-default) so a demotion-related divergence could never be
        # masked by a cache hit from the other mode.  ``steady`` selects
        # band-periodic steady-state elision ("on"/"off", same keying
        # rationale), and ``sample`` forces full (False) or band-sampled
        # (True) timing for every cell instead of the automatic size-based
        # choice (``None``); both are keyed only when non-default.
        # ``artifact_dir`` additionally installs the compiled-artifact
        # store, so template fitting / program lowering load from disk
        # instead of rebuilding.
        self.artifact_dir = artifact_dir
        self.sample = sample
        self.engine = TimingEngine(
            self.machine,
            engine=engine,
            timing=timing,
            steady=steady,
            codegen=codegen,
            artifact_dir=artifact_dir,
        )
        self.disk_cache = MeasurementCache(cache_dir) if cache_dir else None
        self._cache: Dict[Tuple, Measurement] = {}
        #: key tuple -> "simulated" | "disk" (how the cell was first obtained).
        self._provenance: Dict[Tuple, str] = {}

    # ------------------------------------------------------------------

    def _build(self, method: str, spec: StencilSpec, shape: Tuple[int, ...]):
        mem = MemorySpace()
        r = spec.radius
        if spec.ndim == 2:
            rows, cols = shape
            src = Grid2D(mem, rows, cols, r, "A")
            dst = Grid2D(mem, rows, cols, r, "B")
        else:
            depth, rows, cols = shape
            src = Grid3D(mem, depth, rows, cols, r, "A")
            dst = Grid3D(mem, depth, rows, cols, r, "B")
        return make_kernel(method, spec, src, dst, self.machine, self.options)

    @staticmethod
    def _key(
        method: str,
        stencil: str,
        shape: Tuple[int, ...],
        warm: bool,
        plan: Optional[SamplePlan],
        iters: int = 1,
    ) -> Tuple:
        plan_key = (plan.warmup_bands, plan.min_measure_points, plan.max_measure_bands) if plan else None
        return (method, stencil, tuple(shape), warm, plan_key, iters)

    def measure(
        self,
        method: str,
        stencil: str,
        shape: Tuple[int, ...],
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
        iters: int = 1,
    ) -> Measurement:
        """Measure one cell (memoized in-process, optionally disk-cached)."""
        key = self._key(method, stencil, shape, warm, plan, iters)
        if key in self._cache:
            return self._cache[key]

        disk_key = None
        counters: Optional[PerfCounters] = None
        if self.disk_cache is not None:
            disk_key, inputs = cache_key(
                self.machine, method, stencil, tuple(shape), self.options, plan, warm,
                iters=iters, timing=self.engine.timing, engine=self.engine.engine,
                sample=self.sample, steady=self.engine.steady,
                codegen=self.engine.codegen,
            )
            counters = self.disk_cache.load(disk_key)

        if counters is None:
            spec = stencil_benchmark(stencil)
            kernel = self._build(method, spec, shape)
            counters = self.engine.run(
                kernel, sample=self.sample, warm=warm, plan=plan, iters=iters
            )
            counters.label = f"{method}/{stencil}/{shape}"
            self._provenance[key] = "simulated"
            if self.disk_cache is not None:
                self.disk_cache.store(disk_key, counters, inputs)
        else:
            self._provenance[key] = "disk"

        self._cache[key] = Measurement(method, stencil, tuple(shape), counters)
        return self._cache[key]

    def provenance(
        self,
        method: str,
        stencil: str,
        shape: Tuple[int, ...],
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
        iters: int = 1,
    ) -> Optional[str]:
        """How a cell was obtained: "simulated", "disk", or None (not run)."""
        return self._provenance.get(self._key(method, stencil, shape, warm, plan, iters))

    def adopt(
        self,
        method: str,
        stencil: str,
        shape: Tuple[int, ...],
        counters: PerfCounters,
        source: str,
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
    ) -> Measurement:
        """Install an externally produced measurement (parallel workers)."""
        key = self._key(method, stencil, shape, warm, plan)
        self._cache[key] = Measurement(method, stencil, tuple(shape), counters)
        self._provenance[key] = source
        return self._cache[key]

    # ------------------------------------------------------------------

    def measure_many(
        self,
        cells: Sequence[Tuple[str, str, Tuple[int, ...]]],
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
        jobs: int = 1,
        progress: bool = False,
    ):
        """Measure ``(method, stencil, shape)`` cells, optionally in parallel.

        Returns the :class:`repro.bench.parallel.CellResult` list in cell
        order.  Failures are captured per cell instead of aborting the sweep;
        successful results are adopted into this runner's in-memory cache so
        subsequent :meth:`measure` calls are free.
        """
        from repro.bench.parallel import run_cells

        return run_cells(
            cells,
            machine=self.machine,
            options=self.options,
            cache_dir=self.disk_cache.root if self.disk_cache else None,
            warm=warm,
            plan=plan,
            jobs=jobs,
            progress=progress,
            runner=self,
            engine=self.engine.engine,
            timing=self.engine.timing,
            steady=self.engine.steady,
            sample=self.sample,
            codegen=self.engine.codegen,
            artifact_dir=self.artifact_dir,
        )

    # ------------------------------------------------------------------

    def precompile_cell(self, method: str, stencil: str, shape: Tuple[int, ...]) -> Dict:
        """Pre-build the compiled artifacts for one cell (no simulation).

        Compiles every shape class of the kernel's loop nest — templates,
        pooled timing program, functional program — which, with an artifact
        store active, persists them for later processes.  Raises
        ``ValueError`` for methods inapplicable to the stencil/machine,
        matching :meth:`measure`.
        """
        from repro.kernels.template import TraceCompiler

        spec = stencil_benchmark(stencil)
        kernel = self._build(method, spec, shape)
        nest = kernel.loop_nest()
        compiler = TraceCompiler(kernel, nest=nest, config=self.machine)
        blocks = list(nest.blocks)
        templated = 0
        while True:
            edge = compiler.edge
            seen: set = set()
            restart = False
            for block in blocks:
                cls = compiler._class_of(block.key)
                if cls is None or cls in seen:
                    continue
                seen.add(cls)
                entry = compiler.lookup(block)
                if compiler.edge != edge:
                    restart = True  # edge widened: class labels changed
                    break
                if entry is None:
                    continue
                template, _addrs = entry
                # Force both lowerings; the pooled builders write through
                # to the store.
                timing_program = template.timing_program(self.machine)
                if timing_program is not None:
                    templated += 1
                functional_program = template.functional_program()
                if self.engine.codegen == "on":
                    # Also emit (and persist) the exec-compiled replay
                    # kernels so service workers and later measurement
                    # processes start from warm codegen artifacts.
                    from repro.machine.codegen import (
                        install_functional,
                        install_timing,
                    )

                    if timing_program is not None:
                        install_timing(timing_program, self.machine)
                    if functional_program is not None:
                        install_functional(functional_program)
            if not restart:
                break
        return {
            "method": method,
            "stencil": stencil,
            "shape": list(shape),
            "classes": len(seen),
            "templated": templated,
            "loaded": compiler.loaded_classes,
            "compiled": compiler.compiled_classes,
            "demoted_on_load": compiler.load_demotions,
        }

    def precompile(
        self,
        cells: Sequence[Tuple[str, str, Tuple[int, ...]]],
        jobs: int = 1,
        progress: bool = False,
    ):
        """Pre-build artifacts for many cells, optionally sharded (workers
        share the store through atomic writes)."""
        from repro.bench.parallel import run_cells

        return run_cells(
            cells,
            machine=self.machine,
            options=self.options,
            cache_dir=self.disk_cache.root if self.disk_cache else None,
            jobs=jobs,
            progress=progress,
            runner=self,
            engine=self.engine.engine,
            timing=self.engine.timing,
            steady=self.engine.steady,
            sample=self.sample,
            codegen=self.engine.codegen,
            artifact_dir=self.artifact_dir,
            action="precompile",
        )

    def sweep(
        self,
        methods: Sequence[str],
        stencil: str,
        shape: Tuple[int, ...],
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
        skipped: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Measurement]:
        """Measure several methods on one workload; skips inapplicable ones.

        Pass a dict as ``skipped`` to receive ``{method: reason}`` for every
        method that was not applicable to this stencil/machine.
        """
        out: Dict[str, Measurement] = {}
        for method in methods:
            try:
                out[method] = self.measure(method, stencil, shape, warm=warm, plan=plan)
            except ValueError as exc:
                if skipped is not None:
                    skipped[method] = str(exc)
                continue  # method not defined for this stencil/machine
        return out

    def speedups(
        self,
        methods: Sequence[str],
        stencil: str,
        shape: Tuple[int, ...],
        baseline: str = "auto",
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
    ) -> Dict[str, float]:
        """Speedups of ``methods`` over ``baseline`` on one workload."""
        skipped: Dict[str, str] = {}
        cells = self.sweep(
            list(methods) + [baseline], stencil, shape, warm=warm, plan=plan, skipped=skipped
        )
        if baseline not in cells:
            reason = skipped.get(baseline, "method unknown or inapplicable")
            raise ValueError(
                f"baseline method {baseline!r} is not applicable to "
                f"{stencil} {shape} on {self.machine.name}: {reason}"
            )
        base = cells[baseline]
        return {m: cells[m].speedup_over(base) for m in methods if m in cells}

    # ------------------------------------------------------------------

    def records(self) -> List[Dict]:
        """JSON-safe description of every measured cell, with provenance."""
        out: List[Dict] = []
        for key, measurement in self._cache.items():
            method, stencil, shape, warm, plan_key, iters = key
            pc = measurement.counters
            out.append(
                {
                    "method": method,
                    "stencil": stencil,
                    "shape": list(shape),
                    "warm": warm,
                    "plan": list(plan_key) if plan_key else None,
                    "iters": iters,
                    "source": self._provenance.get(key, "unknown"),
                    "counters": pc.to_dict(),
                    "derived": {
                        "ipc": pc.ipc,
                        "cycles_per_point": pc.cycles_per_point,
                        "l1_hit_rate": pc.l1_hit_rate,
                        "l1_demand_hit_rate": pc.l1_demand_hit_rate,
                        "dram_bytes_per_point": (
                            pc.dram_bytes() / pc.points if pc.points else 0.0
                        ),
                        "gstencil_per_s": pc.gstencil_per_s(self.machine.clock_ghz),
                    },
                }
            )
        return out

    def cache_stats(self) -> Dict:
        """Hit/miss provenance over every cell this runner has served."""
        sources = list(self._provenance.values())
        return {
            "cells": len(self._cache),
            "simulated": sources.count("simulated"),
            "disk_hits": sources.count("disk"),
            "disk": self.disk_cache.stats() if self.disk_cache else None,
        }

    def artifact_stats(self) -> Dict:
        """Compile-layer counters: artifact store, program pool, templates."""
        from repro.kernels.template import compile_stats
        from repro.machine.artifacts import active_store
        from repro.machine.codegen import codegen_stats
        from repro.machine.compiled import program_pool_stats

        store = active_store()
        return {
            "store": store.stats() if store is not None else None,
            "program_pool": program_pool_stats(),
            "templates": compile_stats(),
            "codegen": codegen_stats(),
        }
