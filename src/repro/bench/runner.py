"""Experiment runner shared by the ``benchmarks/`` suite.

One :class:`ExperimentRunner` owns a machine configuration and measures
``(method, stencil, size)`` cells through the timing engine, caching
results so a benchmark file can both print its paper-style table and
register a pytest-benchmark timing without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2, MachineConfig
from repro.machine.memory import MemorySpace
from repro.machine.perf import PerfCounters
from repro.machine.timing import SamplePlan, TimingEngine
from repro.stencils.grid import Grid2D, Grid3D
from repro.stencils.library import benchmark as stencil_benchmark
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class Measurement:
    """One measured cell."""

    method: str
    stencil: str
    shape: Tuple[int, ...]
    counters: PerfCounters

    @property
    def cycles(self) -> float:
        return self.counters.cycles

    def speedup_over(self, baseline: "Measurement") -> float:
        return baseline.cycles / self.cycles if self.cycles else 0.0


class ExperimentRunner:
    """Measures kernels on one machine, with caching."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        options: Optional[KernelOptions] = None,
    ) -> None:
        self.machine = machine if machine is not None else LX2()
        self.options = options or KernelOptions()
        self.engine = TimingEngine(self.machine)
        self._cache: Dict[Tuple, Measurement] = {}

    # ------------------------------------------------------------------

    def _build(self, method: str, spec: StencilSpec, shape: Tuple[int, ...]):
        mem = MemorySpace()
        r = spec.radius
        if spec.ndim == 2:
            rows, cols = shape
            src = Grid2D(mem, rows, cols, r, "A")
            dst = Grid2D(mem, rows, cols, r, "B")
        else:
            depth, rows, cols = shape
            src = Grid3D(mem, depth, rows, cols, r, "A")
            dst = Grid3D(mem, depth, rows, cols, r, "B")
        return make_kernel(method, spec, src, dst, self.machine, self.options)

    def measure(
        self,
        method: str,
        stencil: str,
        shape: Tuple[int, ...],
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
    ) -> Measurement:
        """Measure one cell (cached)."""
        key = (method, stencil, shape)
        if key not in self._cache:
            spec = stencil_benchmark(stencil)
            kernel = self._build(method, spec, shape)
            counters = self.engine.run(kernel, warm=warm, plan=plan)
            counters.label = f"{method}/{stencil}/{shape}"
            self._cache[key] = Measurement(method, stencil, shape, counters)
        return self._cache[key]

    def sweep(
        self,
        methods: Sequence[str],
        stencil: str,
        shape: Tuple[int, ...],
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
    ) -> Dict[str, Measurement]:
        """Measure several methods on one workload; skips inapplicable ones."""
        out: Dict[str, Measurement] = {}
        for method in methods:
            try:
                out[method] = self.measure(method, stencil, shape, warm=warm, plan=plan)
            except ValueError:
                continue  # method not defined for this stencil/machine
        return out

    def speedups(
        self,
        methods: Sequence[str],
        stencil: str,
        shape: Tuple[int, ...],
        baseline: str = "auto",
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
    ) -> Dict[str, float]:
        """Speedups of ``methods`` over ``baseline`` on one workload."""
        cells = self.sweep(list(methods) + [baseline], stencil, shape, warm=warm, plan=plan)
        base = cells[baseline]
        return {m: cells[m].speedup_over(base) for m in methods if m in cells}
