"""Content-addressed on-disk cache for simulated measurements.

A measurement is fully determined by its inputs: the machine configuration,
the kernel method, the stencil, the grid shape, the kernel tuning options,
the sampling plan, and the simulator code itself.  :func:`cache_key` hashes
a canonical JSON rendering of all of those into one hex digest;
:class:`MeasurementCache` stores one JSON file per digest under
``<root>/<digest[:2]>/<digest>.json`` holding the serialized
:class:`~repro.machine.perf.PerfCounters` next to the key inputs (so a
cache entry is self-describing and auditable).

Invalidation is automatic: any change to a key input — including the
simulator sources, via :func:`code_version` — changes the digest, so stale
entries are simply never looked up again.  Entries are written atomically
(temp file + ``os.replace``), which makes the cache safe for concurrent
writers such as the parallel sweep executor.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels.base import KernelOptions

# The digest helpers moved to :mod:`repro.machine.artifacts` so the compile
# layer can key its own artifacts on them without importing the bench
# harness; they are re-exported here for existing callers.
from repro.machine.artifacts import (  # noqa: F401  (re-exports)
    _SIMULATION_PACKAGES,
    code_version,
    machine_digest,
    machine_fingerprint,
    prune_tree,
    scan_tree,
)
from repro.machine.config import MachineConfig
from repro.machine.perf import PerfCounters
from repro.machine.timing import SamplePlan

#: Bump to invalidate every cache entry regardless of source hashing.
SCHEMA_VERSION = 1


def cache_key(
    machine: MachineConfig,
    method: str,
    stencil: str,
    shape: Tuple[int, ...],
    options: KernelOptions,
    plan: Optional[SamplePlan],
    warm: bool,
    iters: int = 1,
    timing: Optional[str] = None,
    engine: Optional[str] = None,
    sample: Optional[bool] = None,
    steady: Optional[str] = None,
    codegen: Optional[str] = None,
) -> Tuple[str, Dict]:
    """Digest + canonical inputs for one ``(machine, cell)`` measurement.

    ``timing`` participates in the digest when non-default; ``engine`` never
    does (the compiled and reference engines are bit-identical, so either
    may serve the other's cells — ``tests/test_smoke_simspeed.py`` pins
    this) but it is recorded in the returned inputs so stored entries say
    which engine produced them.  ``sample`` (an explicit sampling override;
    ``None`` is the automatic size-based choice), ``steady`` (the
    band-periodic elision mode, default ``"on"``) and ``codegen`` (the
    exec-compiled replay-kernel mode, default ``"on"``) are keyed only when
    non-default, so entries written before those knobs existed stay valid —
    and, as with ``timing``, a steady-elision divergence could never be
    masked by a cache hit from the other mode.
    """
    inputs = {
        "schema": SCHEMA_VERSION,
        "code_version": code_version(),
        # Parts of the hot simulation path (columnar replay, template
        # address rebasing) run on NumPy, so its version is a genuine
        # measurement input — source hashing alone cannot see it.
        "numpy": np.__version__,
        "machine": machine_fingerprint(machine),
        "method": method,
        "stencil": stencil,
        "shape": list(shape),
        "options": dataclasses.asdict(options),
        "plan": dataclasses.asdict(plan) if plan is not None else None,
        "warm": warm,
    }
    if iters != 1:
        # Keyed only when non-default so existing cache entries stay valid.
        inputs["iters"] = iters
    if timing is not None and timing != "columnar":
        # Same pattern as ``iters``: only the non-default replay mode is
        # keyed, so entries written before the mode existed stay valid.
        inputs["timing"] = timing
    if sample is not None:
        inputs["sample"] = bool(sample)
    if steady is not None and steady != "on":
        inputs["steady"] = steady
    if codegen is not None and codegen != "on":
        inputs["codegen"] = codegen
    blob = json.dumps(inputs, sort_keys=True)
    digest = hashlib.sha256(blob.encode()).hexdigest()
    if engine is not None:
        # Audit-only: recorded in the stored entry, excluded from the digest.
        inputs = dict(inputs, engine=engine)
    return digest, inputs


class MeasurementCache:
    """Disk-backed store of :class:`PerfCounters` keyed by :func:`cache_key`.

    Tracks ``hits`` / ``misses`` / ``stores`` so callers can prove cache
    effectiveness (the JSON benchmark artifacts embed these).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[PerfCounters]:
        """Return the cached counters for ``key``, or None on miss."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            counters = PerfCounters.from_dict(data["counters"])
        except (KeyError, ValueError):
            # Corrupt or incompatible entry: treat as a miss; it will be
            # overwritten by the fresh measurement.
            self.misses += 1
            return None
        self.hits += 1
        return counters

    def store(self, key: str, counters: PerfCounters, inputs: Optional[Dict] = None) -> None:
        """Persist counters atomically (safe under concurrent writers)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "inputs": inputs, "counters": counters.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def stats(self) -> Dict:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def disk_stats(self) -> Dict:
        """Entry count / byte size / age span of the on-disk tree."""
        return scan_tree(self.root)

    def prune(self, max_age_days: Optional[float] = None,
              max_bytes: Optional[int] = None) -> Dict:
        """Delete entries by age and/or total size (oldest first)."""
        return prune_tree(self.root, max_age_days=max_age_days, max_bytes=max_bytes)
