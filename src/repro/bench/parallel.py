"""Parallel sweep executor for independent measurement cells.

Every ``(method, stencil, shape)`` cell is an independent deterministic
simulation, so a sweep fans out trivially: worker processes each build
their own :class:`~repro.bench.runner.ExperimentRunner` (same machine,
options and disk cache directory) and measure cells pulled from the pool.
Because the simulator is deterministic, a parallel sweep produces counters
bit-identical to the serial sweep; results are returned in cell order
regardless of completion order.

Failure handling is per-cell: an exception inside a worker is captured as
:attr:`CellResult.error` and the rest of the sweep proceeds.  When a disk
cache directory is shared, workers populate it with atomic writes, so a
warm second sweep performs zero simulations in any process.  The same
sharding drives ``action="precompile"``: instead of measuring, each worker
pre-builds the compiled-artifact store entries (templates, programs,
columnar plans) for its cells — the build side of ``repro precompile``.

The pooled path is a thin client of the stencil service
(:class:`repro.service.engine.StencilService`): ``run_cells(jobs=N)``
drives a short-lived service on the batch lane, so the CLI sweep and the
long-running ``repro serve`` engine share one job API and one worker
implementation.  ``Ctrl-C`` mid-sweep terminates the worker pool cleanly
and returns the cells that finished, instead of leaking workers.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.base import KernelOptions
from repro.machine.config import MachineConfig
from repro.machine.perf import PerfCounters
from repro.machine.timing import SamplePlan

Cell = Tuple[str, str, Tuple[int, ...]]


@dataclass
class CellResult:
    """Outcome of one cell of a sweep (success or captured failure)."""

    index: int
    method: str
    stencil: str
    shape: Tuple[int, ...]
    counters: Optional[PerfCounters] = None
    error: Optional[str] = None
    source: str = "simulated"
    seconds: float = 0.0
    #: Per-cell summary for non-measurement actions (precompile).
    info: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


# Worker-process state, built once per worker by the pool initializer.
_WORKER_RUNNER = None
_WORKER_ARGS: Tuple[bool, Optional[SamplePlan], str] = (True, None, "measure")


def _init_worker(
    machine,
    options,
    cache_dir,
    warm,
    plan,
    engine=None,
    timing=None,
    artifact_dir=None,
    action="measure",
    steady=None,
    sample=None,
    codegen=None,
) -> None:
    global _WORKER_RUNNER, _WORKER_ARGS
    from repro.bench.runner import ExperimentRunner

    _WORKER_RUNNER = ExperimentRunner(
        machine,
        options,
        cache_dir=cache_dir,
        engine=engine,
        timing=timing,
        steady=steady,
        sample=sample,
        codegen=codegen,
        artifact_dir=artifact_dir,
    )
    _WORKER_ARGS = (warm, plan, action)


def _run_cell(item: Tuple[int, Cell]) -> CellResult:
    index, (method, stencil, shape) = item
    warm, plan, action = _WORKER_ARGS
    start = time.perf_counter()
    try:
        if action == "precompile":
            info = _WORKER_RUNNER.precompile_cell(method, stencil, shape)
            return CellResult(
                index,
                method,
                stencil,
                tuple(shape),
                source="precompiled",
                seconds=time.perf_counter() - start,
                info=info,
            )
        measurement = _WORKER_RUNNER.measure(method, stencil, shape, warm=warm, plan=plan)
        source = _WORKER_RUNNER.provenance(method, stencil, shape, warm=warm, plan=plan)
        return CellResult(
            index,
            method,
            stencil,
            tuple(shape),
            counters=measurement.counters,
            source=source or "simulated",
            seconds=time.perf_counter() - start,
        )
    except Exception as exc:  # noqa: BLE001 — captured per cell by design
        return CellResult(
            index,
            method,
            stencil,
            tuple(shape),
            error=f"{type(exc).__name__}: {exc}",
            seconds=time.perf_counter() - start,
        )


def _progress_line(done: int, total: int, failed: int, started: float) -> str:
    elapsed = time.perf_counter() - started
    tail = f", {failed} failed" if failed else ""
    return f"[sweep] {done}/{total} cells{tail} in {elapsed:.1f}s"


def _run_cells_pooled(
    cells: Sequence[Cell],
    out: List[CellResult],
    machine,
    options,
    cache_dir,
    warm,
    plan,
    workers: int,
    tick,
    engine,
    timing,
    artifact_dir,
    action,
    steady,
    sample,
    codegen,
) -> None:
    """Drive one batch job through a short-lived stencil service.

    Appends completed cells into ``out`` as they finish (completion
    order), then sorts it by index.  A ``KeyboardInterrupt`` terminates
    the worker pool and keeps the cells completed so far, so an aborted
    sweep never leaks worker processes and keeps its partial results.
    """
    import asyncio

    from repro.service.engine import StencilService

    service = StencilService(
        workers=workers,
        cache_dir=cache_dir,
        artifact_dir=artifact_dir,
        engine=engine,
        timing=timing,
        steady=steady,
        sample=sample,
        codegen=codegen,
    )

    async def drive() -> None:
        async with service:
            job = await service.submit(
                cells, lane="batch", machine=machine, options=options,
                warm=warm, plan=plan, action=action,
            )
            async for kind, payload in job.events():
                if kind == "done":
                    break
                out.append(payload)
                tick()

    try:
        asyncio.run(drive())
    except KeyboardInterrupt:
        service.terminate()
        print(
            f"\n[sweep] interrupted — keeping {len(out)}/{len(cells)} "
            "completed cells, workers terminated",
            file=sys.stderr,
        )
    out.sort(key=lambda r: r.index)


def run_cells(
    cells: Sequence[Cell],
    machine: Optional[MachineConfig] = None,
    options: Optional[KernelOptions] = None,
    cache_dir=None,
    warm: bool = True,
    plan: Optional[SamplePlan] = None,
    jobs: int = 1,
    progress: bool = False,
    runner=None,
    engine: Optional[str] = None,
    timing: Optional[str] = None,
    steady: Optional[str] = None,
    sample: Optional[bool] = None,
    codegen: Optional[str] = None,
    artifact_dir=None,
    action: str = "measure",
) -> List[CellResult]:
    """Measure every cell, fanning out across ``jobs`` worker processes.

    ``jobs <= 1`` runs serially in-process (no multiprocessing involved),
    which is also the reference ordering/values the parallel path must
    reproduce.  Pass ``runner`` to adopt successful results into an existing
    :class:`~repro.bench.runner.ExperimentRunner`'s in-memory cache.

    ``action="precompile"`` pre-builds the compiled-artifact store for every
    cell instead of measuring; results carry a per-cell build summary in
    :attr:`CellResult.info` and no counters.

    ``jobs > 1`` submits the whole sweep as one batch-lane job to a
    short-lived :class:`~repro.service.engine.StencilService` (the same
    engine behind ``repro serve``).  ``Ctrl-C`` mid-sweep terminates the
    worker pool and returns the cells that completed.
    """
    indexed = list(enumerate(tuple(c) for c in cells))
    total = len(indexed)
    started = time.perf_counter()
    results: List[CellResult] = []

    def tick() -> None:
        if progress:
            failed = sum(1 for r in results if not r.ok)
            print(
                "\r" + _progress_line(len(results), total, failed, started),
                end="",
                file=sys.stderr,
                flush=True,
            )

    if jobs <= 1 or total <= 1:
        global _WORKER_RUNNER, _WORKER_ARGS
        if runner is not None:
            # Reuse the caller's runner so its memo/disk caches serve directly.
            _WORKER_RUNNER, _WORKER_ARGS = runner, (warm, plan, action)
        else:
            _init_worker(
                machine, options, cache_dir, warm, plan, engine, timing,
                artifact_dir, action, steady, sample, codegen,
            )
        try:
            for item in indexed:
                results.append(_run_cell(item))
                tick()
        finally:
            _WORKER_RUNNER = None
    else:
        _run_cells_pooled(
            [cell for _, cell in indexed],
            results,
            machine,
            options,
            cache_dir,
            warm,
            plan,
            min(jobs, total),
            tick,
            engine,
            timing,
            artifact_dir,
            action,
            steady,
            sample,
            codegen,
        )
        if runner is not None and action == "measure":
            for result in results:
                if result.ok:
                    runner.adopt(
                        result.method,
                        result.stencil,
                        result.shape,
                        result.counters,
                        result.source,
                        warm=warm,
                        plan=plan,
                    )

    if progress and total:
        print(file=sys.stderr)
    return results
