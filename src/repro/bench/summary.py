"""Aggregate the benchmark suite's result tables into one report.

``python -m repro.bench.summary`` (or :func:`collect_summary`) reads every
table the benches wrote to ``benchmarks/results/`` and assembles them in
the paper's presentation order — a quick way to eyeball a full
reproduction run without scrolling pytest output.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, List, Optional

#: Presentation order (the paper's evaluation order, then ablations).
ORDER: List[str] = [
    "fig03_ilp",
    "tab01_utilization",
    "tab02_ipc",
    "tab03_cache_hit",
    "tab05_instr_ratio",
    "fig12_incache",
    "fig13_breakdown",
    "fig14_ipc",
    "fig15_outofcache",
    "tab07_prefetch_cache",
    "fig16_multicore",
    "fig17_m4_incache",
    "fig18_m4_outofcache",
    "ablation_registers",
    "ablation_replacement",
    "ablation_hwprefetch",
    "ablation_temporal",
]


def default_results_dir() -> pathlib.Path:
    """`benchmarks/results/` relative to the repository root."""
    return pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def load_tables(results_dir: Optional[pathlib.Path] = None) -> Dict[str, str]:
    """Read every ``<name>.txt`` table from the results directory."""
    results_dir = results_dir or default_results_dir()
    if not results_dir.is_dir():
        return {}
    return {p.stem: p.read_text().rstrip() for p in sorted(results_dir.glob("*.txt"))}


def collect_summary(results_dir: Optional[pathlib.Path] = None) -> str:
    """One report with every available table, in presentation order."""
    tables = load_tables(results_dir)
    if not tables:
        return (
            "no benchmark results found — run `pytest benchmarks/ "
            "--benchmark-only` first"
        )
    parts: List[str] = [
        "HStencil reproduction — collected benchmark tables",
        "=" * 56,
    ]
    emitted = set()
    for name in ORDER:
        if name in tables:
            parts.append("")
            parts.append(tables[name])
            emitted.add(name)
    for name, text in tables.items():  # anything new/unknown goes last
        if name not in emitted:
            parts.append("")
            parts.append(text)
    missing = [n for n in ORDER if n not in tables]
    if missing:
        parts.append("")
        parts.append(f"(not yet generated: {', '.join(missing)})")
    return "\n".join(parts)


def main() -> int:
    print(collect_summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
