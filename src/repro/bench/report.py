"""Paper-style rendering of benchmark results, plus JSON artifacts.

The text formatters render the tables/figures the way the paper presents
them.  :func:`write_bench_json` additionally emits one structured
``BENCH_<experiment>.json`` artifact per benchmark run — raw counters,
derived metrics, a machine fingerprint, and cache hit/miss provenance —
so the performance trajectory of the repository is machine-readable.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Version of the ``BENCH_*.json`` artifact layout.
BENCH_JSON_SCHEMA = 1


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the figures' 'average speedup')."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_speedup_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    baseline_note: str = "normalized to auto-vectorization",
) -> str:
    """Render {workload: {method: speedup}} as a fixed-width table."""
    methods: List[str] = []
    for cells in rows.values():
        for m in cells:
            if m not in methods:
                methods.append(m)
    w0 = max([len(k) for k in rows] + [8])
    header = f"{'workload':<{w0}}  " + "  ".join(f"{m:>18}" for m in methods)
    lines = [f"== {title} ({baseline_note}) ==", header, "-" * len(header)]
    for name, cells in rows.items():
        line = f"{name:<{w0}}  "
        line += "  ".join(
            f"{cells[m]:>17.2f}x" if m in cells else f"{'-':>18}" for m in methods
        )
        lines.append(line)
    means = {
        m: geomean([cells[m] for cells in rows.values() if m in cells]) for m in methods
    }
    line = f"{'geomean':<{w0}}  " + "  ".join(f"{means[m]:>17.2f}x" for m in methods)
    lines.append("-" * len(header))
    lines.append(line)
    return "\n".join(lines)


def format_metric_table(
    title: str,
    rows: Mapping[str, Mapping[str, str]],
) -> str:
    """Render {row: {column: formatted value}} as a fixed-width table."""
    columns: List[str] = []
    for cells in rows.values():
        for c in cells:
            if c not in columns:
                columns.append(c)
    w0 = max([len(k) for k in rows] + [8])
    widths = {c: max(len(c), 14) for c in columns}
    header = f"{'':<{w0}}  " + "  ".join(f"{c:>{widths[c]}}" for c in columns)
    lines = [f"== {title} ==", header, "-" * len(header)]
    for name, cells in rows.items():
        line = f"{name:<{w0}}  " + "  ".join(
            f"{cells.get(c, '-'):>{widths[c]}}" for c in columns
        )
        lines.append(line)
    return "\n".join(lines)


def format_scaling_series(
    title: str,
    series: Mapping[str, Sequence[Tuple[int, float]]],
    unit: str = "GStencil/s",
) -> str:
    """Render {method: [(cores, value)]} as a scaling table."""
    cores = sorted({c for pts in series.values() for c, _ in pts})
    w0 = max([len(k) for k in series] + [8])
    header = f"{'method':<{w0}}  " + "  ".join(f"{c:>10d}" for c in cores)
    lines = [f"== {title} ({unit}) ==", header, "-" * len(header)]
    for name, pts in series.items():
        by_core = dict(pts)
        line = f"{name:<{w0}}  " + "  ".join(
            f"{by_core[c]:>10.2f}" if c in by_core else f"{'-':>10}" for c in cores
        )
        lines.append(line)
    return "\n".join(lines)


# -- JSON artifacts ----------------------------------------------------------


def bench_json_payload(
    experiment: str,
    runner=None,
    extra: Optional[Mapping] = None,
) -> Dict:
    """Assemble the ``BENCH_*.json`` payload for one experiment.

    ``runner`` (an :class:`~repro.bench.runner.ExperimentRunner`) supplies
    the machine fingerprint, the per-cell counter records and the cache
    provenance; ``extra`` is merged in verbatim for experiment-specific data
    (e.g. scaling points or speedup tables).
    """
    from repro.bench.cache import code_version, machine_digest, machine_fingerprint

    payload: Dict = {
        "schema": BENCH_JSON_SCHEMA,
        "experiment": experiment,
        "generated_unix": time.time(),
        "code_version": code_version(),
    }
    if runner is not None:
        payload["machine"] = machine_fingerprint(runner.machine)
        payload["machine_digest"] = machine_digest(runner.machine)
        # Which replay engine / sampled-timing mode produced the numbers.
        payload["modes"] = {
            "engine": runner.engine.engine,
            "timing": runner.engine.timing,
        }
        payload["cells"] = runner.records()
        payload["cache"] = runner.cache_stats()
    if extra:
        payload.update(dict(extra))
    return payload


def write_bench_json(
    directory,
    experiment: str,
    runner=None,
    extra: Optional[Mapping] = None,
) -> pathlib.Path:
    """Write ``BENCH_<experiment>.json`` into ``directory``; return the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{experiment}.json"
    payload = bench_json_payload(experiment, runner=runner, extra=extra)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path
