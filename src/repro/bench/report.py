"""Paper-style rendering of benchmark results."""

from __future__ import annotations

import math
from typing import Iterable, List, Mapping, Sequence, Tuple


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the figures' 'average speedup')."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_speedup_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    baseline_note: str = "normalized to auto-vectorization",
) -> str:
    """Render {workload: {method: speedup}} as a fixed-width table."""
    methods: List[str] = []
    for cells in rows.values():
        for m in cells:
            if m not in methods:
                methods.append(m)
    w0 = max([len(k) for k in rows] + [8])
    header = f"{'workload':<{w0}}  " + "  ".join(f"{m:>18}" for m in methods)
    lines = [f"== {title} ({baseline_note}) ==", header, "-" * len(header)]
    for name, cells in rows.items():
        line = f"{name:<{w0}}  "
        line += "  ".join(
            f"{cells[m]:>17.2f}x" if m in cells else f"{'-':>18}" for m in methods
        )
        lines.append(line)
    means = {
        m: geomean([cells[m] for cells in rows.values() if m in cells]) for m in methods
    }
    line = f"{'geomean':<{w0}}  " + "  ".join(f"{means[m]:>17.2f}x" for m in methods)
    lines.append("-" * len(header))
    lines.append(line)
    return "\n".join(lines)


def format_metric_table(
    title: str,
    rows: Mapping[str, Mapping[str, str]],
) -> str:
    """Render {row: {column: formatted value}} as a fixed-width table."""
    columns: List[str] = []
    for cells in rows.values():
        for c in cells:
            if c not in columns:
                columns.append(c)
    w0 = max([len(k) for k in rows] + [8])
    widths = {c: max(len(c), 14) for c in columns}
    header = f"{'':<{w0}}  " + "  ".join(f"{c:>{widths[c]}}" for c in columns)
    lines = [f"== {title} ==", header, "-" * len(header)]
    for name, cells in rows.items():
        line = f"{name:<{w0}}  " + "  ".join(
            f"{cells.get(c, '-'):>{widths[c]}}" for c in columns
        )
        lines.append(line)
    return "\n".join(lines)


def format_scaling_series(
    title: str,
    series: Mapping[str, Sequence[Tuple[int, float]]],
    unit: str = "GStencil/s",
) -> str:
    """Render {method: [(cores, value)]} as a scaling table."""
    cores = sorted({c for pts in series.values() for c, _ in pts})
    w0 = max([len(k) for k in series] + [8])
    header = f"{'method':<{w0}}  " + "  ".join(f"{c:>10d}" for c in cores)
    lines = [f"== {title} ({unit}) ==", header, "-" * len(header)]
    for name, pts in series.items():
        by_core = dict(pts)
        line = f"{name:<{w0}}  " + "  ".join(
            f"{by_core[c]:>10.2f}" if c in by_core else f"{'-':>10}" for c in cores
        )
        lines.append(line)
    return "\n".join(lines)
