"""Benchmark harness: experiment runners, caching, parallel sweeps, reports.

The modules here are what the ``benchmarks/`` suite builds on:

* :mod:`repro.bench.runner` — measure (method x stencil x size) cells with
  shared machine/engine setup, per-cell memoization and an optional
  content-addressed disk cache;
* :mod:`repro.bench.cache` — the on-disk measurement cache and its
  invalidation key (machine config + options + plan + code version);
* :mod:`repro.bench.parallel` — fan independent cells out across worker
  processes with deterministic ordering and per-cell failure capture;
* :mod:`repro.bench.report` — render rows/series the way the paper's
  tables and figures present them, and emit structured ``BENCH_*.json``
  artifacts (counters, machine fingerprint, cache provenance).
"""

from repro.bench.cache import MeasurementCache, cache_key, code_version, machine_fingerprint
from repro.bench.parallel import CellResult, run_cells
from repro.bench.runner import ExperimentRunner, Measurement
from repro.bench.report import (
    bench_json_payload,
    format_speedup_table,
    format_metric_table,
    format_scaling_series,
    geomean,
    write_bench_json,
)

__all__ = [
    "CellResult",
    "ExperimentRunner",
    "Measurement",
    "MeasurementCache",
    "bench_json_payload",
    "cache_key",
    "code_version",
    "format_speedup_table",
    "format_metric_table",
    "format_scaling_series",
    "geomean",
    "machine_fingerprint",
    "run_cells",
    "write_bench_json",
]
