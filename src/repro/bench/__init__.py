"""Benchmark harness: experiment runners and paper-style reporting.

The modules here are what the ``benchmarks/`` suite builds on:

* :mod:`repro.bench.runner` — measure (method x stencil x size) cells with
  shared machine/engine setup and per-cell caching;
* :mod:`repro.bench.report` — render rows/series the way the paper's
  tables and figures present them (speedups normalized to auto, IPC
  tables, cache-metric tables, scaling curves).
"""

from repro.bench.runner import ExperimentRunner, Measurement
from repro.bench.report import (
    format_speedup_table,
    format_metric_table,
    format_scaling_series,
    geomean,
)

__all__ = [
    "ExperimentRunner",
    "Measurement",
    "format_speedup_table",
    "format_metric_table",
    "format_scaling_series",
    "geomean",
]
