"""Multi-step stencil iteration (time-stepping driver).

Real stencil applications apply the operator repeatedly (heat diffusion,
wave propagation, Jacobi sweeps).  :class:`StencilIterator` owns a pair of
grids in one simulated memory space and ping-pongs between them, so a
multi-step run pays grid allocation and kernel construction once and the
functional engine keeps its register file across steps — the way the
paper's timed loops run.

The iterator also offers a timed variant that reports per-step cycles on
the simulated machine (steady-state: caches stay warm across steps).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.isa.program import Kernel
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2, MachineConfig
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.machine.perf import PerfCounters
from repro.machine.pipeline import PipelineModel
from repro.stencils.grid import Grid2D
from repro.stencils.spec import StencilSpec


class StencilIterator:
    """Repeated application of a 2D stencil with ping-pong grids.

    The halo of both grids is filled from the initial field and *kept
    fixed* across steps (Dirichlet-style boundary), matching
    :func:`repro.stencils.reference.iterate_reference`.
    """

    def __init__(
        self,
        spec: StencilSpec,
        machine: Optional[MachineConfig] = None,
        method: str = "hstencil",
        options: Optional[KernelOptions] = None,
    ) -> None:
        if spec.ndim != 2:
            raise ValueError("StencilIterator supports 2D stencils")
        self.spec = spec
        self.machine = machine if machine is not None else LX2()
        self.method = method
        self.options = options or KernelOptions()
        self._mem: Optional[MemorySpace] = None
        self._grids: List[Grid2D] = []
        self._kernels: List[Kernel] = []
        self._shape: Optional[tuple] = None

    # ------------------------------------------------------------------

    def _ensure_compiled(self, rows: int, cols: int) -> None:
        if self._shape == (rows, cols):
            return
        mem = MemorySpace()
        r = self.spec.radius
        g0 = Grid2D(mem, rows, cols, r, "A")
        g1 = Grid2D(mem, rows, cols, r, "B")
        k01 = make_kernel(self.method, self.spec, g0, g1, self.machine, self.options)
        k10 = make_kernel(self.method, self.spec, g1, g0, self.machine, self.options)
        self._mem = mem
        self._grids = [g0, g1]
        self._kernels = [k01, k10]
        self._shape = (rows, cols)

    # ------------------------------------------------------------------

    def run(self, field: np.ndarray, steps: int) -> np.ndarray:
        """Apply the stencil ``steps`` times; return the full final array.

        ``field`` includes the halo; the returned array has the same shape
        with the interior advanced ``steps`` times and the halo unchanged.
        """
        if steps < 0:
            raise ValueError("steps must be >= 0")
        field = np.asarray(field, dtype=np.float64)
        r = self.spec.radius
        rows, cols = field.shape[0] - 2 * r, field.shape[1] - 2 * r
        if rows <= 0 or cols <= 0:
            raise ValueError(f"field {field.shape} too small for halo {r}")
        self._ensure_compiled(rows, cols)
        g = self._grids
        g[0].set_full(field)
        g[1].set_full(field)  # halo must be present in both ping-pong grids
        engine = FunctionalEngine(self._mem)
        for step in range(steps):
            engine.run_kernel(self._kernels[step % 2])
        out = g[steps % 2].get_full()
        return out

    def time_steps(self, rows: int, cols: int, steps: int = 3) -> PerfCounters:
        """Steady-state cycles for ``steps`` iterations (warm caches).

        One unmeasured warm step precedes the measurement; the returned
        counters cover the measured steps with ``points`` accumulated
        accordingly, so ``cycles_per_point`` is the per-step steady cost.
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self._ensure_compiled(rows, cols)
        pipe = PipelineModel(self.machine)

        def one_step(idx: int) -> None:
            kernel = self._kernels[idx % 2]
            pipe.process_trace(kernel.preamble())
            for block in kernel.loop_nest():
                pipe.process_trace(kernel.emit(block))

        one_step(0)  # warm pass
        before = pipe.snapshot()
        for step in range(1, steps + 1):
            one_step(step)
        counters = PipelineModel.delta(pipe.snapshot(), before)
        counters.points = steps * rows * cols
        counters.label = f"{self.method}/{self.spec.name}/x{steps}"
        return counters
