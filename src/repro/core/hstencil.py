"""HStencil: the user-facing framework API.

Typical use::

    import numpy as np
    from repro import HStencil
    from repro.stencils import star2d

    hs = HStencil(star2d(2))              # LX2 machine, full optimizations
    field = np.random.default_rng(0).random((104, 132))   # incl. halo
    result = hs.apply(field)              # NumPy in, NumPy out
    perf = hs.benchmark(256, 256)         # simulated-machine counters

``apply`` runs the compiled kernel *functionally* on the simulated machine
(every FMOPA/FMLA/EXT actually executes), so the returned array is the
kernel's real output, not a NumPy shortcut; the test suite checks it
against :func:`repro.stencils.reference.apply_reference`.

``benchmark`` runs the timing engine (band-sampled for large grids) and
returns :class:`~repro.machine.perf.PerfCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.isa.program import Kernel
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2, MachineConfig
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.machine.perf import PerfCounters
from repro.machine.timing import SamplePlan, TimingEngine
from repro.stencils.grid import Grid2D, Grid3D
from repro.stencils.spec import StencilSpec


@dataclass
class StencilResult:
    """Output of :meth:`HStencil.apply_verbose`."""

    values: np.ndarray
    kernel_name: str
    instructions_executed: int


class HStencil:
    """Compile and run one stencil on one simulated machine.

    Parameters
    ----------
    spec:
        The stencil operator.
    machine:
        Machine configuration (default: the LX2 preset).  On machines
        without vector-FMLA capability (the M4 preset) star stencils are
        automatically routed to the M-MLA kernel (Section 4).
    method:
        Kernel method name from :data:`repro.kernels.registry.METHODS`
        (default ``"hstencil"`` — scheduling on, prefetch off, the
        in-cache configuration; use ``"hstencil-prefetch"`` for
        out-of-cache grids).
    options:
        Extra kernel options (unroll factor, replacement overrides, ...).
    """

    def __init__(
        self,
        spec: StencilSpec,
        machine: Optional[MachineConfig] = None,
        method: str = "hstencil",
        options: Optional[KernelOptions] = None,
    ) -> None:
        self.spec = spec
        self.machine = machine if machine is not None else LX2()
        self.method = method
        self.options = options or KernelOptions()

    # ------------------------------------------------------------------

    def _grids(self, mem: MemorySpace, shape: Tuple[int, ...]):
        r = self.spec.radius
        if self.spec.ndim == 2:
            rows, cols = shape
            src = Grid2D(mem, rows, cols, r, "A")
            dst = Grid2D(mem, rows, cols, r, "B")
        else:
            depth, rows, cols = shape
            src = Grid3D(mem, depth, rows, cols, r, "A")
            dst = Grid3D(mem, depth, rows, cols, r, "B")
        return src, dst

    def compile(self, shape: Tuple[int, ...], mem: Optional[MemorySpace] = None):
        """Build (kernel, src_grid, dst_grid) for an interior shape."""
        mem = mem if mem is not None else MemorySpace()
        src, dst = self._grids(mem, shape)
        kernel = make_kernel(self.method, self.spec, src, dst, self.machine, self.options)
        return kernel, src, dst

    # ------------------------------------------------------------------

    def apply(self, field: np.ndarray) -> np.ndarray:
        """Apply the stencil to a halo-padded array; return the interior.

        ``field`` must include the halo: shape ``(rows + 2r, cols + 2r)``
        for 2D (or ``(depth + 2r, rows + 2r, cols + 2r)`` for 3D).
        """
        return self.apply_verbose(field).values

    def apply_verbose(self, field: np.ndarray) -> StencilResult:
        """Like :meth:`apply` but with execution metadata."""
        r = self.spec.radius
        field = np.asarray(field, dtype=np.float64)
        if field.ndim != self.spec.ndim:
            raise ValueError(
                f"{self.spec.name} needs a {self.spec.ndim}D array, got {field.ndim}D"
            )
        interior = tuple(s - 2 * r for s in field.shape)
        if any(s <= 0 for s in interior):
            raise ValueError(f"array {field.shape} too small for halo {r}")
        mem = MemorySpace()
        kernel, src, dst = self.compile(interior, mem)
        src.set_full(field)
        engine = FunctionalEngine(mem)
        engine.run_kernel(kernel)
        return StencilResult(
            values=dst.get_interior(),
            kernel_name=kernel.name,
            instructions_executed=engine.instructions_executed,
        )

    # ------------------------------------------------------------------

    def benchmark(
        self,
        *shape: int,
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
    ) -> PerfCounters:
        """Time the kernel on an interior grid of ``shape``."""
        kernel, _src, _dst = self.compile(tuple(shape))
        engine = TimingEngine(self.machine)
        counters = engine.run(kernel, warm=warm, plan=plan)
        counters.label = f"{self.method}/{self.spec.name}"
        return counters

    def listing(self, *shape: int, block_index: int = 0) -> str:
        """Assembly listing of one block (kernel inspection)."""
        from repro.isa.asm import format_trace

        kernel, _src, _dst = self.compile(tuple(shape))
        nest = kernel.loop_nest()
        block = nest.blocks[block_index]
        text = format_trace(kernel.preamble(), numbered=False)
        body = format_trace(kernel.emit(block), numbered=True)
        return f"// preamble\n{text}\n// block {block.key}\n{body}"
