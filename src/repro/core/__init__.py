"""HStencil public API.

:class:`~repro.core.hstencil.HStencil` is the user-facing entry point: it
compiles a stencil specification into kernels for a chosen machine, runs
them functionally (returning NumPy results verified against the reference
in the test suite) and times them on the simulated machine.

:mod:`repro.core.analysis` holds the closed-form models of the paper's
analysis sections: single-register matrix-unit utilization (Table 1),
matrix/vector cycle ratios (Table 5) and the overhead equations (5)-(8).

:mod:`repro.core.autotune` sweeps the replacement-plan knobs against the
timing model, the automated analogue of the paper's hand balancing.
"""

from repro.core.hstencil import HStencil, StencilResult
from repro.core.analysis import (
    single_register_utilization,
    utilization_table,
    instruction_cycle_ratio,
    overhead_model,
    OverheadModel,
)
from repro.core.autotune import autotune_replacement
from repro.core.iterate import StencilIterator
from repro.core.temporal import TemporalBlockedIterator

__all__ = [
    "HStencil",
    "StencilIterator",
    "TemporalBlockedIterator",
    "StencilResult",
    "single_register_utilization",
    "utilization_table",
    "instruction_cycle_ratio",
    "overhead_model",
    "OverheadModel",
    "autotune_replacement",
]
