"""Temporal blocking extension (the related-work direction of [19]/[34]).

Multi-step stencil runs are memory-bound out of cache: every time step
streams the whole grid through DRAM.  Temporal blocking fuses ``T`` steps
band-wise so a band of rows is advanced several steps while it is still
cache-resident, multiplying arithmetic intensity.

This module implements the *wavefront* scheme over the ping-pong grids of
:class:`~repro.core.iterate.StencilIterator`:

* the grid is split into the kernel's row bands (8 rows each);
* on wave ``w``, time step ``t`` processes band ``w - lag * t`` — the lag
  of 2 bands per step guarantees that a step never reads rows its
  successor step has already overwritten (the successor writes bands at
  least ``2`` behind, i.e. more than the stencil radius of rows below);
* each (step, band) unit executes the corresponding bands of a
  pre-compiled HStencil kernel, so the fused schedule reuses the exact
  same instruction streams as the plain iteration.

Functional equivalence with plain iteration is property-tested; the
``bench_ablation_temporal`` benchmark measures the cache effect.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.isa.program import Kernel, KernelBlock
from repro.isa.registers import SVL_LANES
from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import LX2, MachineConfig
from repro.machine.functional import FunctionalEngine
from repro.machine.memory import MemorySpace
from repro.machine.perf import PerfCounters
from repro.machine.pipeline import PipelineModel
from repro.stencils.grid import Grid2D
from repro.stencils.spec import StencilSpec

#: Bands of lag between consecutive time steps in the wavefront.  With
#: 8-row bands this keeps a successor step's writes more than one stencil
#: radius (<= 8) of rows away from the rows its predecessor still reads.
WAVEFRONT_LAG = 2


class TemporalBlockedIterator:
    """Wavefront-fused multi-step 2D stencil execution."""

    def __init__(
        self,
        spec: StencilSpec,
        machine: Optional[MachineConfig] = None,
        method: str = "hstencil",
        options: Optional[KernelOptions] = None,
    ) -> None:
        if spec.ndim != 2:
            raise ValueError("temporal blocking is implemented for 2D stencils")
        if spec.radius > SVL_LANES:
            raise ValueError("radius must not exceed the band height")
        self.spec = spec
        self.machine = machine if machine is not None else LX2()
        self.method = method
        self.options = options or KernelOptions()
        self._mem: Optional[MemorySpace] = None
        self._grids: List[Grid2D] = []
        self._kernels: List[Kernel] = []
        self._bands: List[List[List[KernelBlock]]] = []  # per kernel: bands
        self._shape: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------

    def _ensure_compiled(self, rows: int, cols: int) -> None:
        if self._shape == (rows, cols):
            return
        mem = MemorySpace()
        r = self.spec.radius
        g0 = Grid2D(mem, rows, cols, r, "A")
        g1 = Grid2D(mem, rows, cols, r, "B")
        k01 = make_kernel(self.method, self.spec, g0, g1, self.machine, self.options)
        k10 = make_kernel(self.method, self.spec, g1, g0, self.machine, self.options)
        self._mem = mem
        self._grids = [g0, g1]
        self._kernels = [k01, k10]
        self._bands = [k.loop_nest().bands() for k in (k01, k10)]
        self._shape = (rows, cols)

    def _schedule(self, steps: int) -> List[Tuple[int, int]]:
        """The wavefront order: list of (step t, band index)."""
        n_bands = len(self._bands[0])
        units: List[Tuple[int, int]] = []
        for wave in range(n_bands + WAVEFRONT_LAG * (steps - 1)):
            for t in range(steps):
                band = wave - WAVEFRONT_LAG * t
                if 0 <= band < n_bands:
                    units.append((t, band))
        return units

    # ------------------------------------------------------------------

    def run(self, field: np.ndarray, steps: int) -> np.ndarray:
        """Apply the stencil ``steps`` times (wavefront-fused); full array out.

        Semantically identical to
        :meth:`repro.core.iterate.StencilIterator.run` (halo held fixed).
        """
        if steps < 0:
            raise ValueError("steps must be >= 0")
        field = np.asarray(field, dtype=np.float64)
        r = self.spec.radius
        rows, cols = field.shape[0] - 2 * r, field.shape[1] - 2 * r
        if rows <= 0 or cols <= 0:
            raise ValueError(f"field {field.shape} too small for halo {r}")
        self._ensure_compiled(rows, cols)
        g = self._grids
        g[0].set_full(field)
        g[1].set_full(field)
        if steps == 0:
            return g[0].get_full()
        engine = FunctionalEngine(self._mem)
        for t in range(steps):
            engine.execute_trace(self._kernels[t % 2].preamble())
        for t, band in self._schedule(steps):
            kernel = self._kernels[t % 2]
            # Re-run the preamble before each unit: the two kernels use the
            # same coefficient registers and the wavefront interleaves them.
            engine.execute_trace(kernel.preamble())
            for block in self._bands[t % 2][band]:
                engine.execute_trace(kernel.emit(block))
        return g[steps % 2].get_full()

    # ------------------------------------------------------------------

    def time_steps(self, rows: int, cols: int, steps: int = 4) -> PerfCounters:
        """Cycles for a fused ``steps``-deep run (cold caches, full grid)."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self._ensure_compiled(rows, cols)
        pipe = PipelineModel(self.machine)
        for t in range(2):
            pipe.process_trace(self._kernels[t].preamble())
        for t, band in self._schedule(steps):
            kernel = self._kernels[t % 2]
            pipe.process_trace(kernel.preamble())
            for block in self._bands[t % 2][band]:
                pipe.process_trace(kernel.emit(block))
        counters = pipe.snapshot()
        counters.points = steps * rows * cols
        counters.label = f"temporal/{self.method}/{self.spec.name}/x{steps}"
        return counters
