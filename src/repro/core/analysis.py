"""Closed-form models from the paper's analysis sections.

These are *analytic* counterparts to the measured numbers: Table 1's
single-register matrix-unit utilization, Table 5's matrix/vector cycle
ratios, and the computation/memory overhead equations (5)-(8) of Section
3.1.1.  The benches print both the analytic value and the simulator's
measured counterpart so drift between model and machine is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.isa.registers import SVL_LANES
from repro.machine.config import MachineConfig
from repro.stencils.spec import StencilSpec


def single_register_utilization(spec: StencilSpec, method: str) -> float:
    """Fraction of a single FMOPA tile's MACs that are useful (Table 1).

    ``method``:

    * ``"outer"`` — outer-axis outer products (STOP): one FMOPA per
      horizontal shift per input row; each burns a full 8x8 tile but only
      the rows with nonzero sliding coefficients contribute.  Dense box
      columns keep ``(2r+1)/8`` of the rows; a star's off-axis shifts keep
      a single row, which is what collapses star utilization.
    * ``"outer+inner"`` — the Mat-ortho split: vertical column outer-axis
      plus horizontal row inner-axis; both operands are dense columns/rows
      so utilization recovers to the box level.

    Interior placements only (the steady-state value; edge placements are
    grid-size dependent and vanish for large grids).
    """
    r = spec.radius
    plane = spec.coeffs2d
    if method == "outer":
        useful = 0
        total = 0
        for s in spec.nonzero_shifts(0):
            col = spec.column(s)
            useful += SVL_LANES * int(np.count_nonzero(col))
            total += SVL_LANES * SVL_LANES
        return useful / total if total else 0.0
    if method == "outer+inner":
        if spec.pattern != "star":
            raise ValueError("the outer+inner split is defined for star stencils")
        vcol = spec.vertical_coeffs()
        hrow = spec.horizontal_offaxis_coeffs()
        useful = SVL_LANES * int(np.count_nonzero(vcol))
        total = SVL_LANES * SVL_LANES
        useful += SVL_LANES * int(np.count_nonzero(hrow))
        total += SVL_LANES * SVL_LANES
        return useful / total
    raise ValueError(f"unknown method {method!r} (use 'outer' or 'outer+inner')")


def utilization_table(radius: int = 2) -> Dict[str, float]:
    """Reproduce Table 1's three rows for a given radius."""
    from repro.stencils.spec import box2d, star2d

    box = box2d(radius)
    star = star2d(radius)
    return {
        "Outer-axis (Box)": single_register_utilization(box, "outer"),
        "Outer-axis (Star)": single_register_utilization(star, "outer"),
        "Outer&inner-axis (Star)": single_register_utilization(star, "outer+inner"),
    }


def instruction_cycle_ratio(
    spec: StencilSpec,
    config: MachineConfig,
    method: str,
    unroll_j: int = 4,
) -> Tuple[float, float]:
    """Analytic (matrix_cycles, vector_cycles) per 8-row tile (Table 5).

    ``method`` is ``"matrix-only"`` or ``"hstencil"``.  Counts are per
    interior 8-row block of one tile column, divided by pipe counts, so
    they are directly comparable to Table 5's cycle pairs.
    """
    from repro.isa.instructions import PortClass

    v_pipes = max(config.port_count(PortClass.VECTOR), 1)
    m_pipes = max(config.port_count(PortClass.MATRIX), 1)
    n_shifts = len(spec.nonzero_shifts(0))
    if method == "matrix-only":
        matrix_ops = SVL_LANES * n_shifts  # one FMOPA per shift per input row
        vector_ops = 0.0
    elif method == "hstencil":
        if spec.pattern == "star":
            h_taps = int(np.count_nonzero(spec.horizontal_offaxis_coeffs()))
            matrix_ops = SVL_LANES * (1 + 1)  # vertical + in-place accumulate
            vector_ops = SVL_LANES * (h_taps + h_taps)  # shifts (EXT) + MLAs
        else:
            matrix_ops = SVL_LANES * n_shifts
            vector_ops = SVL_LANES * (n_shifts - 1)  # EXT data reuse
    else:
        raise ValueError(f"unknown method {method!r}")
    return matrix_ops / m_pipes, vector_ops / v_pipes


@dataclass(frozen=True)
class OverheadModel:
    """Equations (5)-(8): per-row overheads of naive vs in-place kernels."""

    naive_compute_overhead: float
    inplace_compute_overhead: float
    naive_memory_ops: Tuple[int, int]  # (loads, stores) per row
    inplace_memory_ops: Tuple[int, int]
    naive_memory_cycles: float
    inplace_memory_cycles: float


def overhead_model(config: MachineConfig) -> OverheadModel:
    """Instantiate the Section 3.1.1 overhead equations for a machine.

    The naive method pays a slice-to-vector transfer + add per row
    (dominated by MOVA, 2x the FMOPA initiation interval) plus the
    3-load/2-store memory round trip of Equation (7); the in-place method
    pays one outer product (Equation 6) and 2 loads + 1 store (Equation 8).
    """
    from repro.isa.instructions import FADD_V, FMOPA, MOVA_TILE_TO_VEC, ST1D

    mova = config.latencies[MOVA_TILE_TO_VEC.mnemonic]
    fadd = config.latencies[FADD_V.mnemonic]
    fmopa = config.latencies[FMOPA.mnemonic]
    ld = config.l1_load_latency
    st = config.latencies[ST1D.mnemonic].latency

    naive_compute = mova.latency + fadd.latency
    inplace_compute = fmopa.latency
    naive_mem = (3, 2)
    inplace_mem = (2, 1)
    return OverheadModel(
        naive_compute_overhead=float(naive_compute),
        inplace_compute_overhead=float(inplace_compute),
        naive_memory_ops=naive_mem,
        inplace_memory_ops=inplace_mem,
        naive_memory_cycles=3.0 * ld + 2.0 * st,
        inplace_memory_cycles=2.0 * ld + 1.0 * st,
    )
