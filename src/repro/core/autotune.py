"""Empirical tuning of the replacement knobs (Section 3.2.1, automated).

``plan_replacement`` picks the MLA-rollback / EXT->load split with a port-
count model; that model ignores dependence-chain latency, which the timing
engine does charge.  ``autotune_replacement`` closes the loop: it sweeps
the two knobs on a small proxy grid through the real timing engine and
returns the options that minimize measured cycles — the automated
counterpart of the paper's hand balancing.  Results are cached per
(stencil, machine, base options).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels.base import KernelOptions
from repro.kernels.registry import make_kernel
from repro.machine.config import MachineConfig
from repro.machine.memory import MemorySpace
from repro.machine.timing import TimingEngine
from repro.stencils.grid import Grid2D
from repro.stencils.spec import StencilSpec

_CACHE: Dict[Tuple, KernelOptions] = {}


def autotune_replacement(
    spec: StencilSpec,
    machine: MachineConfig,
    base: Optional[KernelOptions] = None,
    proxy_rows: int = 32,
    method: str = "hstencil",
) -> KernelOptions:
    """Return ``base`` updated with the best (mla_rollback, ext_to_load).

    Only meaningful for 2D star stencils (the knobs do nothing elsewhere);
    other specs are returned unchanged.  The proxy grid is small enough
    that the sweep costs a few hundred milliseconds per configuration.
    """
    base = base or KernelOptions()
    if spec.pattern != "star" or spec.ndim != 2:
        return base
    key = (spec.name, machine.name, method, base)
    if key in _CACHE:
        return _CACHE[key]

    n_taps = int(np.count_nonzero(spec.horizontal_offaxis_coeffs()))
    cols = 8 * base.unroll_j * 2
    engine = TimingEngine(machine)
    best: Optional[Tuple[float, int, int]] = None
    for rb in range(n_taps + 1):
        for el in range(n_taps + 1):
            options = base.with_(mla_rollback=rb, ext_to_load=el)
            mem = MemorySpace()
            src = Grid2D(mem, proxy_rows, cols, spec.radius, "A")
            dst = Grid2D(mem, proxy_rows, cols, spec.radius, "B")
            try:
                kernel = make_kernel(method, spec, src, dst, machine, options)
            except ValueError:
                continue
            cycles = engine.run(kernel, warm=True).cycles
            cand = (cycles, rb, el)
            if best is None or cand < best:
                best = cand
    if best is None:
        _CACHE[key] = base
        return base
    _, rb, el = best
    tuned = base.with_(mla_rollback=rb, ext_to_load=el)
    _CACHE[key] = tuned
    return tuned
