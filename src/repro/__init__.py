"""HStencil reproduction: matrix-vector stencil computation on a simulated
scalable-matrix/vector CPU.

Reproduces *HStencil: Matrix-Vector Stencil Computation with Interleaved
Outer Product and MLA* (SC '25) in pure Python.  The paper's kernels are
instruction-level; this package therefore ships a complete simulated
machine (SME/SVE-like ISA, in-order multi-issue pipeline with scoreboard,
two-level caches, hardware stream prefetcher, multicore bandwidth model)
and expresses every evaluated method as a code generator whose emitted
instruction streams are both functionally executed and cycle-timed.

Quick start::

    import numpy as np
    from repro import HStencil
    from repro.stencils import star2d

    hs = HStencil(star2d(2))
    field = np.random.default_rng(0).random((68, 68))  # 64x64 + halo 2
    out = hs.apply(field)
    perf = hs.benchmark(128, 128)
    print(perf.summary())

Packages: :mod:`repro.isa` (instruction set), :mod:`repro.machine`
(engines/caches/multicore), :mod:`repro.stencils` (specs/grids/reference),
:mod:`repro.kernels` (all methods + passes), :mod:`repro.core` (public
API + analytic models), :mod:`repro.bench` (experiment harness).
"""

from repro.core.hstencil import HStencil, StencilResult
from repro.core.iterate import StencilIterator
from repro.core.temporal import TemporalBlockedIterator
from repro.core.autotune import autotune_replacement
from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.machine.config import LX2, M4, MachineConfig
from repro.machine.perf import PerfCounters

__version__ = "1.0.0"

__all__ = [
    "HStencil",
    "StencilIterator",
    "TemporalBlockedIterator",
    "StencilResult",
    "KernelOptions",
    "MachineConfig",
    "LX2",
    "M4",
    "METHODS",
    "make_kernel",
    "PerfCounters",
    "autotune_replacement",
    "__version__",
]
