"""Instruction-set model of a scalable matrix/vector CPU (SME/SVE-like).

This package defines the architectural state and instruction set of the
simulated machine used throughout the reproduction:

* :mod:`repro.isa.registers` — vector registers (``z0..z31``), predicate-like
  lane masks, and two-dimensional matrix tile registers (``za0..za7``), plus
  the register-file containers used by the functional engine.
* :mod:`repro.isa.instructions` — the instruction dataclasses.  Each
  instruction knows its destination/source registers, the execution-port
  class it occupies, and how to render itself as assembly text.
* :mod:`repro.isa.asm` — assembly formatting and a round-trip parser, used by
  tests and by the kernel-inspection example.
* :mod:`repro.isa.program` — containers for straight-line instruction traces
  and structured kernels (loop nests of trace-emitting blocks).

The ISA is deliberately small: it contains exactly the instructions the
HStencil paper's kernels are built from (loads/stores in horizontal and
strided/vertical forms, vector ``FMLA``/``FADD``/``EXT``/``DUP``, matrix
``FMOPA``/``MOVA``/``ZERO``, software prefetch ``PRFM``, and the Apple-M4
matrix-MLA ``FMLA_M``), with FP64 as the only element type.
"""

from repro.isa.registers import (
    SVL_LANES,
    NUM_VREGS,
    NUM_TILES,
    VReg,
    TileReg,
    RegisterFile,
)
from repro.isa.instructions import (
    Instruction,
    PortClass,
    LD1D,
    LD1D_STRIDED,
    ST1D,
    ST1D_SLICE,
    SET_LANES,
    FMLA,
    FMLA_IDX,
    FMUL_IDX,
    FADD_V,
    EXT,
    DUP,
    FMOPA,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    ZERO_TILE,
    PRFM,
    FMLA_M,
    SCALAR_OP,
)
from repro.isa.asm import format_instruction, format_trace, parse_instruction, parse_trace
from repro.isa.program import Trace, LoopNest, Kernel, KernelBlock, concat_traces

__all__ = [
    "ST1D_SLICE",
    "SET_LANES",
    "concat_traces",
    "SVL_LANES",
    "NUM_VREGS",
    "NUM_TILES",
    "VReg",
    "TileReg",
    "RegisterFile",
    "Instruction",
    "PortClass",
    "LD1D",
    "LD1D_STRIDED",
    "ST1D",
    "FMLA",
    "FMLA_IDX",
    "FMUL_IDX",
    "FADD_V",
    "EXT",
    "DUP",
    "FMOPA",
    "MOVA_TILE_TO_VEC",
    "MOVA_VEC_TO_TILE",
    "ZERO_TILE",
    "PRFM",
    "FMLA_M",
    "SCALAR_OP",
    "format_instruction",
    "format_trace",
    "parse_instruction",
    "parse_trace",
    "Trace",
    "LoopNest",
    "Kernel",
    "KernelBlock",
]
