"""Architectural registers of the simulated scalable matrix/vector CPU.

The machine models a 512-bit scalable vector length (SVL): every vector
register holds :data:`SVL_LANES` = 8 double-precision lanes, and every matrix
tile register is an 8x8 FP64 tile (64 doubles), matching the LX2/Apple-M4
configuration described in the paper (Section 2.1: "Each tile can store up to
64 double-precision numbers, organized into 8 rows of 8 numbers, with each
row known as a slice").

Registers are identified by lightweight immutable handles (:class:`VReg`,
:class:`TileReg`); the actual storage lives in :class:`RegisterFile`, which
the functional engine owns.  Handles are hashable so the timing engine can
use them as scoreboard keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Number of FP64 lanes in one scalable vector register (512-bit SVL).
SVL_LANES = 8

#: Number of architectural vector registers (z0..z31, as in SVE).
NUM_VREGS = 32

#: Number of FP64 matrix tile registers (za0..za7, as in SME ZA storage).
NUM_TILES = 8


@dataclass(frozen=True)
class VReg:
    """Handle for a scalable vector register ``z<index>``.

    The handle carries no data; it names one of the :data:`NUM_VREGS`
    architectural vector registers.
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_VREGS:
            raise ValueError(f"vector register index out of range: {self.index}")

    @property
    def name(self) -> str:
        return f"z{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class TileReg:
    """Handle for a matrix tile register ``za<index>`` (8x8 FP64).

    Tiles are the accumulators of the outer-product unit.  A *slice* is one
    row of the tile; slice-granular dependencies matter for the scattered
    (eager) store optimization, so the timing engine tracks readiness per
    slice while the functional engine stores the full 8x8 block.
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_TILES:
            raise ValueError(f"tile register index out of range: {self.index}")

    @property
    def name(self) -> str:
        return f"za{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class RegisterFile:
    """Storage for the architectural register state.

    Vector registers are stored as a ``(NUM_VREGS, SVL_LANES)`` float64 array
    and tiles as ``(NUM_TILES, SVL_LANES, SVL_LANES)``.  Reads return copies
    so that instruction semantics cannot alias simulator state by accident;
    writes copy in.  This is the *functional* register file; the timing
    engine never touches values, only handle names.
    """

    def __init__(self) -> None:
        self._vregs = np.zeros((NUM_VREGS, SVL_LANES), dtype=np.float64)
        self._tiles = np.zeros((NUM_TILES, SVL_LANES, SVL_LANES), dtype=np.float64)

    # -- vector registers ---------------------------------------------------

    def read_v(self, reg: VReg) -> np.ndarray:
        """Return a copy of the 8-lane contents of ``reg``."""
        return self._vregs[reg.index].copy()

    def write_v(self, reg: VReg, value: np.ndarray) -> None:
        """Overwrite ``reg`` with ``value`` (must have SVL_LANES elements)."""
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (SVL_LANES,):
            raise ValueError(f"vector write must have shape ({SVL_LANES},), got {value.shape}")
        self._vregs[reg.index] = value

    # -- tile registers -----------------------------------------------------

    def read_tile(self, reg: TileReg) -> np.ndarray:
        """Return a copy of the 8x8 contents of tile ``reg``."""
        return self._tiles[reg.index].copy()

    def write_tile(self, reg: TileReg, value: np.ndarray) -> None:
        """Overwrite tile ``reg`` with an 8x8 block."""
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (SVL_LANES, SVL_LANES):
            raise ValueError(
                f"tile write must have shape ({SVL_LANES}, {SVL_LANES}), got {value.shape}"
            )
        self._tiles[reg.index] = value

    def read_slice(self, reg: TileReg, row: int) -> np.ndarray:
        """Return a copy of horizontal slice ``row`` of tile ``reg``."""
        self._check_row(row)
        return self._tiles[reg.index, row].copy()

    def write_slice(self, reg: TileReg, row: int, value: np.ndarray) -> None:
        """Overwrite horizontal slice ``row`` of tile ``reg``."""
        self._check_row(row)
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (SVL_LANES,):
            raise ValueError(f"slice write must have shape ({SVL_LANES},), got {value.shape}")
        self._tiles[reg.index, row] = value

    def accumulate_outer(self, reg: TileReg, col_vec: np.ndarray, row_vec: np.ndarray) -> None:
        """``za += outer(col_vec, row_vec)`` — the FMOPA accumulate step.

        ``col_vec`` selects/weights tile rows (the "coefficient vector" of
        the paper's scatter formulation); ``row_vec`` is broadcast across
        columns.  Rows whose coefficient is exactly zero are left untouched,
        which is what makes the in-place accumulation trick exact rather
        than approximate.
        """
        self._tiles[reg.index] += np.outer(
            np.asarray(col_vec, dtype=np.float64), np.asarray(row_vec, dtype=np.float64)
        )

    def zero_tile(self, reg: TileReg) -> None:
        """Clear tile ``reg`` to all zeros."""
        self._tiles[reg.index] = 0.0

    def reset(self) -> None:
        """Clear all architectural state (used between kernel runs)."""
        self._vregs.fill(0.0)
        self._tiles.fill(0.0)

    @staticmethod
    def _check_row(row: int) -> None:
        if not 0 <= row < SVL_LANES:
            raise ValueError(f"tile row out of range: {row}")
