"""Instruction definitions for the simulated scalable matrix/vector CPU.

Every instruction is a small dataclass that knows

* which architectural registers it reads and writes (``reads()`` /
  ``writes()``) — these are the scoreboard keys used by the timing engine.
  Tile registers are tracked at *slice* granularity (``(tile_name, row)``),
  because the scattered-store optimization of the paper depends on a tile
  row becoming available before the whole tile is finished;
* which execution-port class it occupies (:class:`PortClass`) — the paper's
  core observation is that matrix, vector and load/store instructions
  dispatch to distinct pipelines and therefore co-issue;
* its memory effects (``mem_reads()`` / ``mem_writes()``), as lists of
  ``(word_address, word_count)`` pairs consumed by the cache simulator; and
* its FLOP count, split into *total* (what the unit physically computes; an
  8x8 FMOPA always burns 128 flops of machine capability) and *useful*
  (flops that contribute to the stencil result), which is what the
  matrix-unit-utilization experiments (Table 1) measure.

Addresses are in FP64 *words* (8 bytes); the cache layer converts to bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Tuple

from repro.isa.registers import SVL_LANES, TileReg, VReg

#: Scoreboard key type: vector regs use their name, tiles use (name, row).
DepKey = object


class PortClass(enum.Enum):
    """Execution-port classes of the simulated core.

    ``VECTOR``
        Scalable-vector FP pipeline (FMLA/FADD/EXT/DUP).  The LX2 preset has
        two of these; the M4 preset keeps EXT/DUP here but has no vector
        FMLA capability (the kernel layer enforces that).
    ``MATRIX``
        Outer-product pipeline (FMOPA, MOVA, ZERO, and the M4 matrix-MLA).
    ``LOAD`` / ``STORE``
        Memory pipelines.  Software prefetch shares the load pipeline but
        never stalls on the data.
    ``SCALAR``
        Address arithmetic / loop-control overhead.
    """

    VECTOR = "V"
    MATRIX = "M"
    LOAD = "L"
    STORE = "S"
    SCALAR = "X"


def _vkey(reg: VReg) -> DepKey:
    return reg.name


def _tile_keys(tile: TileReg, rows: Iterable[int]) -> Tuple[DepKey, ...]:
    return tuple((tile.name, r) for r in rows)


ALL_ROWS: Tuple[int, ...] = tuple(range(SVL_LANES))


@dataclass(slots=True)
class Instruction:
    """Common behaviour for all instructions.

    Subclasses override the class attributes ``mnemonic`` and ``port`` and
    the dependency/memory/flop hooks.  Instances are plain mutable objects:
    scheduling passes reorder them but never mutate operands.  Every
    instruction class is ``slots=True``: traces hold millions of these
    during out-of-cache sweeps, and slotted instances are both smaller and
    faster to construct than ``__dict__``-backed ones.
    """

    mnemonic = "nop"
    port = PortClass.SCALAR

    def reads(self) -> Tuple[DepKey, ...]:
        """Scoreboard keys this instruction waits on."""
        return ()

    def writes(self) -> Tuple[DepKey, ...]:
        """Scoreboard keys this instruction produces."""
        return ()

    def mem_reads(self) -> Tuple[Tuple[int, int], ...]:
        """``(word_address, word_count)`` regions loaded from memory."""
        return ()

    def mem_writes(self) -> Tuple[Tuple[int, int], ...]:
        """``(word_address, word_count)`` regions stored to memory."""
        return ()

    @property
    def flops(self) -> int:
        """Machine flops consumed (peak-capability accounting)."""
        return 0

    @property
    def useful_flops(self) -> int:
        """Flops that contribute to the stencil result (defaults to flops)."""
        return self.flops


# ---------------------------------------------------------------------------
# Memory instructions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class LD1D(Instruction):
    """Contiguous vector load: ``dst <- mem[addr : addr+mask]``.

    ``mask`` is the active-lane count (whilelo-style predication); inactive
    lanes are zero-filled.  Tail blocks of non-conforming grids use it.
    """

    dst: VReg
    addr: int
    mask: int = SVL_LANES

    mnemonic = "ld1d"
    port = PortClass.LOAD

    def __post_init__(self) -> None:
        if not 1 <= self.mask <= SVL_LANES:
            raise ValueError(f"load mask out of range: {self.mask}")

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)

    def mem_reads(self) -> Tuple[Tuple[int, int], ...]:
        return ((self.addr, self.mask),)


@dataclass(slots=True)
class LD1D_STRIDED(Instruction):
    """Strided (gather) vector load: ``dst[k] <- mem[addr + k*stride]``.

    Used by the inner-axis (vertical) outer-product variant, whose
    column-wise accesses are exactly the non-contiguous pattern the paper
    blames for Mat-ortho's poor performance.  The cache model sees eight
    separate one-word touches.
    """

    dst: VReg
    addr: int
    stride: int

    mnemonic = "ld1d.s"
    port = PortClass.LOAD

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)

    def mem_reads(self) -> Tuple[Tuple[int, int], ...]:
        return tuple((self.addr + k * self.stride, 1) for k in range(SVL_LANES))


@dataclass(slots=True)
class ST1D(Instruction):
    """Contiguous vector store: ``mem[addr : addr+mask] <- src[:mask]``."""

    src: VReg
    addr: int
    mask: int = SVL_LANES

    mnemonic = "st1d"
    port = PortClass.STORE

    def __post_init__(self) -> None:
        if not 1 <= self.mask <= SVL_LANES:
            raise ValueError(f"store mask out of range: {self.mask}")

    def reads(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.src),)

    def mem_writes(self) -> Tuple[Tuple[int, int], ...]:
        return ((self.addr, self.mask),)


@dataclass(slots=True)
class ST1D_SLICE(Instruction):
    """Store one horizontal tile slice: ``mem[addr : addr+8] <- tile[row]``.

    This is the instruction behind the scattered-store optimization: slice
    ``row`` only needs that row's accumulation to be complete, so eager
    stores interleave with the remaining outer products.
    """

    tile: TileReg
    row: int
    addr: int
    mask: int = SVL_LANES

    mnemonic = "st1d.za"
    port = PortClass.STORE

    def __post_init__(self) -> None:
        if not 1 <= self.mask <= SVL_LANES:
            raise ValueError(f"store mask out of range: {self.mask}")

    def reads(self) -> Tuple[DepKey, ...]:
        return _tile_keys(self.tile, (self.row,))

    def mem_writes(self) -> Tuple[Tuple[int, int], ...]:
        return ((self.addr, self.mask),)


@dataclass(slots=True)
class PRFM(Instruction):
    """Software prefetch of the cache line(s) covering ``addr``.

    ``write`` hints a store target (prefetch-for-write); ``level`` selects
    the target cache level (1 = L1).  Occupies a load-port slot but never
    creates a register dependency, so it hides entirely under computation
    when scheduled as Section 3.3 prescribes.
    """

    addr: int
    level: int = 1
    write: bool = False
    length: int = SVL_LANES

    mnemonic = "prfm"
    port = PortClass.LOAD


# ---------------------------------------------------------------------------
# Vector instructions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class FMLA(Instruction):
    """Vector multiply-accumulate: ``dst += a * b`` (lane-wise)."""

    dst: VReg
    a: VReg
    b: VReg

    mnemonic = "fmla"
    port = PortClass.VECTOR

    def reads(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst), _vkey(self.a), _vkey(self.b))

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)

    @property
    def flops(self) -> int:
        return 2 * SVL_LANES


@dataclass(slots=True)
class FMLA_IDX(Instruction):
    """Indexed MLA: ``dst += a * b[idx]`` (scalar element broadcast).

    This is the gather-form workhorse (Figure 4a): the coefficient lives in
    one lane of a coefficient register and multiplies a whole loaded row.
    """

    dst: VReg
    a: VReg
    b: VReg
    idx: int

    mnemonic = "fmla.idx"
    port = PortClass.VECTOR

    def reads(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst), _vkey(self.a), _vkey(self.b))

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)

    @property
    def flops(self) -> int:
        return 2 * SVL_LANES


@dataclass(slots=True)
class FMUL_IDX(Instruction):
    """Indexed multiply (no accumulate): ``dst = a * b[idx]``.

    Starts an MLA chain without a separate zeroing instruction.
    """

    dst: VReg
    a: VReg
    b: VReg
    idx: int

    mnemonic = "fmul.idx"
    port = PortClass.VECTOR

    def reads(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.a), _vkey(self.b))

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)

    @property
    def flops(self) -> int:
        return SVL_LANES


@dataclass(slots=True)
class FADD_V(Instruction):
    """Vector add: ``dst = a + b``."""

    dst: VReg
    a: VReg
    b: VReg

    mnemonic = "fadd"
    port = PortClass.VECTOR

    def reads(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.a), _vkey(self.b))

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)

    @property
    def flops(self) -> int:
        return SVL_LANES


@dataclass(slots=True)
class EXT(Instruction):
    """Extract/concatenate: ``dst = concat(a, b)[imm : imm+8]``.

    The data-reuse primitive of Section 3.1.2: two adjacent loaded rows are
    concatenated and shifted to synthesize the ``j-1`` / ``j+1`` neighbour
    vectors without reloading.  Executes on the vector pipeline, which is
    why it contends with FMLA (Section 3.2.1) and why the EXT->LD
    replacement pass exists.
    """

    dst: VReg
    a: VReg
    b: VReg
    imm: int

    mnemonic = "ext"
    port = PortClass.VECTOR

    def __post_init__(self) -> None:
        if not 0 <= self.imm <= SVL_LANES:
            raise ValueError(f"EXT immediate out of range: {self.imm}")

    def reads(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.a), _vkey(self.b))

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)


@dataclass(slots=True)
class DUP(Instruction):
    """Broadcast an immediate into all lanes: ``dst = [value] * 8``."""

    dst: VReg
    value: float

    mnemonic = "dup"
    port = PortClass.VECTOR

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)


@dataclass(slots=True)
class SET_LANES(Instruction):
    """Materialize an arbitrary 8-lane constant (coefficient vector).

    Stands in for the small setup sequence (index/insert ops) a real kernel
    uses to build coefficient vectors; kernels emit it only in preambles, so
    its exact cost is irrelevant to steady-state measurements.
    """

    dst: VReg
    values: Tuple[float, ...]

    mnemonic = "setl"
    port = PortClass.VECTOR

    def __post_init__(self) -> None:
        if len(self.values) != SVL_LANES:
            raise ValueError(f"SET_LANES needs {SVL_LANES} values, got {len(self.values)}")
        self.values = tuple(float(v) for v in self.values)

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)


# ---------------------------------------------------------------------------
# Matrix instructions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class FMOPA(Instruction):
    """Outer-product accumulate: ``tile += outer(coef, src)``.

    ``coef`` weights tile *rows* (the scatter-form coefficient vector of
    Equation 2); ``src`` is broadcast across columns.  ``rows`` is the
    generator's static knowledge of which coefficient lanes are nonzero:
    it drives slice-granular dependence tracking and the useful-flops
    accounting behind Table 1.  When absent, all eight rows are assumed
    live (a dense coefficient vector).  ``useful_cols`` is the analogous
    column-side sparsity hint for inner-axis outer products, where the
    *source* vector is the sparse coefficient operand; it only affects
    useful-flops accounting, never dependencies (the full tile row is
    physically written).
    """

    tile: TileReg
    coef: VReg
    src: VReg
    rows: Tuple[int, ...] = field(default_factory=lambda: ALL_ROWS)
    useful_cols: Tuple[int, ...] = field(default_factory=lambda: ALL_ROWS)

    mnemonic = "fmopa"
    port = PortClass.MATRIX

    def __post_init__(self) -> None:
        self.rows = tuple(sorted(set(self.rows)))
        self.useful_cols = tuple(sorted(set(self.useful_cols)))
        for r in self.rows:
            if not 0 <= r < SVL_LANES:
                raise ValueError(f"FMOPA row out of range: {r}")
        for c in self.useful_cols:
            if not 0 <= c < SVL_LANES:
                raise ValueError(f"FMOPA column out of range: {c}")

    def reads(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.coef), _vkey(self.src)) + _tile_keys(self.tile, self.rows)

    def writes(self) -> Tuple[DepKey, ...]:
        return _tile_keys(self.tile, self.rows)

    @property
    def flops(self) -> int:
        # The matrix unit always computes the full 8x8 outer product.
        return 2 * SVL_LANES * SVL_LANES

    @property
    def useful_flops(self) -> int:
        return 2 * len(self.rows) * len(self.useful_cols)


@dataclass(slots=True)
class ZERO_TILE(Instruction):
    """Clear a tile register to zeros."""

    tile: TileReg

    mnemonic = "zero"
    port = PortClass.MATRIX

    def writes(self) -> Tuple[DepKey, ...]:
        return _tile_keys(self.tile, ALL_ROWS)


@dataclass(slots=True)
class MOVA_TILE_TO_VEC(Instruction):
    """Move a horizontal tile slice to a vector register.

    Deliberately slow (2x the FMOPA initiation interval in the LX2 preset):
    Section 3.1.1 identifies the slice-to-vector transfer as the dominant
    cost of the naive accumulation workflow, which the in-place trick
    removes.
    """

    dst: VReg
    tile: TileReg
    row: int

    mnemonic = "mova.tv"
    port = PortClass.MATRIX

    def reads(self) -> Tuple[DepKey, ...]:
        return _tile_keys(self.tile, (self.row,))

    def writes(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.dst),)


@dataclass(slots=True)
class MOVA_VEC_TO_TILE(Instruction):
    """Move a vector register into a horizontal tile slice."""

    tile: TileReg
    row: int
    src: VReg

    mnemonic = "mova.vt"
    port = PortClass.MATRIX

    def reads(self) -> Tuple[DepKey, ...]:
        return (_vkey(self.src),)

    def writes(self) -> Tuple[DepKey, ...]:
        return _tile_keys(self.tile, (self.row,))


@dataclass(slots=True)
class FMLA_M(Instruction):
    """Apple-M4 matrix-MLA on vector groups (the paper's "M-MLA").

    SME2-style multi-vector MLA: a *group of four consecutive vector
    registers* ``z[a_base] .. z[a_base+3]`` is multiplied by the broadcast
    element ``b[idx]`` and accumulated into the tile's **even** rows:

        for g in 0..3:  tile[2*g] += z[a_base + g] * b[idx]

    The fragmented even-row layout is the architectural fact that makes
    in-place accumulation infeasible on the M4 (Section 4.1) and forces
    the naive accumulation method there.
    """

    tile: TileReg
    a_base: VReg
    b: VReg
    idx: int

    mnemonic = "fmla.m"
    port = PortClass.MATRIX

    EVEN_ROWS: ClassVar[Tuple[int, ...]] = (0, 2, 4, 6)
    GROUP: ClassVar[int] = 4

    def __post_init__(self) -> None:
        if self.a_base.index + self.GROUP > 32:
            raise ValueError("FMLA_M vector group exceeds the register file")
        if not 0 <= self.idx < SVL_LANES:
            raise ValueError(f"FMLA_M index out of range: {self.idx}")

    def group_regs(self) -> Tuple[VReg, ...]:
        from repro.isa.registers import VReg as _V

        return tuple(_V(self.a_base.index + g) for g in range(self.GROUP))

    def reads(self) -> Tuple[DepKey, ...]:
        return tuple(_vkey(r) for r in self.group_regs()) + (_vkey(self.b),) + _tile_keys(
            self.tile, self.EVEN_ROWS
        )

    def writes(self) -> Tuple[DepKey, ...]:
        return _tile_keys(self.tile, self.EVEN_ROWS)

    @property
    def flops(self) -> int:
        return 2 * SVL_LANES * len(self.EVEN_ROWS)


# ---------------------------------------------------------------------------
# Scalar / control overhead
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class SCALAR_OP(Instruction):
    """Loop-control / address-arithmetic overhead instruction.

    Functionally a no-op; exists so kernels can model the scalar-side
    instruction stream that real compiled loops carry (it contributes to
    the instruction counts behind the IPC comparisons).
    """

    kind: str = "addr"

    mnemonic = "scalar"
    port = PortClass.SCALAR
