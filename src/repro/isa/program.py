"""Program containers: instruction traces and block-structured kernels.

A *trace* is a straight-line instruction sequence.  A *kernel* is the unit
the engines consume: a preamble trace (coefficient materialization, tile
zeroing where appropriate) plus an ordered iteration space of *blocks*, each
of which emits its own trace on demand.  Blocks are the tiling granularity
of the paper's micro kernels (one j-block of one i-band); emitting lazily
keeps 8192x8192 runs feasible, because the timing engine can simulate a
sampled band of blocks and extrapolate instead of materializing hundreds of
millions of instructions.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, NamedTuple, Sequence, Tuple

from repro.isa.instructions import Instruction, PortClass


class Trace(List[Instruction]):
    """A straight-line instruction sequence with summary statistics."""

    def port_counts(self) -> Dict[PortClass, int]:
        """Instruction count per execution-port class."""
        counts: Counter = Counter()
        for ins in self:
            counts[ins.port] += 1
        return dict(counts)

    def flops(self) -> int:
        """Total machine flops in the trace."""
        return sum(ins.flops for ins in self)

    def useful_flops(self) -> int:
        """Total flops contributing to the stencil result."""
        return sum(ins.useful_flops for ins in self)

    def memory_words(self) -> Tuple[int, int]:
        """``(words_loaded, words_stored)`` by the trace."""
        loads = sum(n for ins in self for _, n in ins.mem_reads())
        stores = sum(n for ins in self for _, n in ins.mem_writes())
        return loads, stores

    def __add__(self, other: Iterable[Instruction]) -> "Trace":
        out = Trace(self)
        out.extend(other)
        return out


class KernelBlock(NamedTuple):
    """One iteration of a kernel's block loop.

    ``key`` identifies the block (typically ``(i_band, j_block)`` grid-tile
    coordinates, with a leading plane index for 3D); ``points`` is the
    number of output grid points the block updates, used to extrapolate
    sampled timings to full-grid cycle counts.

    A named tuple rather than a (frozen) dataclass: an 8192^2 nest holds
    half a million blocks, and the C-level tuple constructor keeps
    materializing them from dominating multicore sweeps.
    """

    key: Tuple[int, ...]
    points: int


@dataclass
class LoopNest:
    """Ordered description of a kernel's iteration space.

    ``shape`` records the logical trip counts per loop level (outermost
    first); ``blocks`` lists every block in execution order.  ``rows`` maps
    the outermost loop index to the slice of ``blocks`` it covers, which is
    what band-sampled timing uses to pick a contiguous, representative
    region.
    """

    shape: Tuple[int, ...]
    blocks: List[KernelBlock] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[KernelBlock]:
        return iter(self.blocks)

    def total_points(self) -> int:
        return sum(b.points for b in self.blocks)

    def bands(self) -> List[List[KernelBlock]]:
        """Group blocks by their outermost loop index, in order."""
        groups: Dict[int, List[KernelBlock]] = {}
        for b in self.blocks:
            groups.setdefault(b.key[0], []).append(b)
        return [groups[k] for k in sorted(groups)]


class Kernel(abc.ABC):
    """A compiled stencil program for the simulated machine.

    Concrete kernels live in :mod:`repro.kernels`.  The contract:

    * :meth:`preamble` returns setup instructions executed once (coefficient
      vector materialization and similar);
    * :meth:`loop_nest` returns the ordered block iteration space;
    * :meth:`emit` returns the trace for one block.  Emission must be pure:
      calling it twice for the same block yields equivalent instructions,
      which is what allows functional verification and timing to share it.
    """

    #: Human-readable method name ("hstencil-inplace", "matrix-only", ...).
    name: str = "kernel"

    @abc.abstractmethod
    def preamble(self) -> Trace:
        """Setup instructions executed once before the block loop."""

    @abc.abstractmethod
    def loop_nest(self) -> LoopNest:
        """The ordered iteration space of the kernel."""

    @abc.abstractmethod
    def emit(self, block: KernelBlock) -> Trace:
        """Instruction trace for one block."""

    # -- conveniences --------------------------------------------------------

    def full_trace(self) -> Trace:
        """Materialize the whole program (small grids / tests only)."""
        out = Trace(self.preamble())
        for block in self.loop_nest():
            out.extend(self.emit(block))
        return out

    def describe(self) -> str:
        """One-line summary used in logs and benchmark tables."""
        nest = self.loop_nest()
        return f"{self.name}: {len(nest)} blocks, {nest.total_points()} points"


def concat_traces(traces: Sequence[Iterable[Instruction]]) -> Trace:
    """Concatenate several traces into one."""
    out = Trace()
    for t in traces:
        out.extend(t)
    return out
