"""Assembly text rendering and parsing for the simulated ISA.

The textual form is SME/SVE-flavoured but simplified: addresses are decimal
word addresses in brackets, tiles render as ``za<k>`` with optional
``[row]`` slice selectors, and FMOPA prints its live-row set so kernel
listings show the sparsity that utilization depends on.  ``parse_trace``
round-trips everything ``format_trace`` emits; the parser exists for tests
and for writing small hand-assembled programs in examples.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.isa.instructions import (
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    Instruction,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PRFM,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.registers import TileReg, VReg


def format_instruction(ins: Instruction) -> str:
    """Render one instruction as assembly text."""
    if isinstance(ins, LD1D):
        suffix = f", mask={ins.mask}" if ins.mask != 8 else ""
        return f"ld1d {ins.dst.name}, [{ins.addr}]{suffix}"
    if isinstance(ins, LD1D_STRIDED):
        return f"ld1d.s {ins.dst.name}, [{ins.addr}], stride={ins.stride}"
    if isinstance(ins, ST1D):
        suffix = f", mask={ins.mask}" if ins.mask != 8 else ""
        return f"st1d {ins.src.name}, [{ins.addr}]{suffix}"
    if isinstance(ins, ST1D_SLICE):
        suffix = f", mask={ins.mask}" if ins.mask != 8 else ""
        return f"st1d.za {ins.tile.name}[{ins.row}], [{ins.addr}]{suffix}"
    if isinstance(ins, PRFM):
        kind = "pstl" if ins.write else "pldl"
        return f"prfm {kind}{ins.level}keep, [{ins.addr}], len={ins.length}"
    if isinstance(ins, FMLA):
        return f"fmla {ins.dst.name}, {ins.a.name}, {ins.b.name}"
    if isinstance(ins, FMLA_IDX):
        return f"fmla {ins.dst.name}, {ins.a.name}, {ins.b.name}[{ins.idx}]"
    if isinstance(ins, FMUL_IDX):
        return f"fmul {ins.dst.name}, {ins.a.name}, {ins.b.name}[{ins.idx}]"
    if isinstance(ins, FADD_V):
        return f"fadd {ins.dst.name}, {ins.a.name}, {ins.b.name}"
    if isinstance(ins, EXT):
        return f"ext {ins.dst.name}, {ins.a.name}, {ins.b.name}, #{ins.imm}"
    if isinstance(ins, DUP):
        return f"dup {ins.dst.name}, #{ins.value!r}"
    if isinstance(ins, SET_LANES):
        vals = ", ".join(repr(v) for v in ins.values)
        return f"setl {ins.dst.name}, {{{vals}}}"
    if isinstance(ins, FMOPA):
        rows = ",".join(str(r) for r in ins.rows)
        text = f"fmopa {ins.tile.name}, {ins.coef.name}, {ins.src.name}, rows={{{rows}}}"
        if len(ins.useful_cols) != 8:
            cols = ",".join(str(c) for c in ins.useful_cols)
            text += f", cols={{{cols}}}"
        return text
    if isinstance(ins, ZERO_TILE):
        return f"zero {ins.tile.name}"
    if isinstance(ins, MOVA_TILE_TO_VEC):
        return f"mova {ins.dst.name}, {ins.tile.name}[{ins.row}]"
    if isinstance(ins, MOVA_VEC_TO_TILE):
        return f"mova {ins.tile.name}[{ins.row}], {ins.src.name}"
    if isinstance(ins, FMLA_M):
        return f"fmla.m {ins.tile.name}, {{{ins.a_base.name}:4}}, {ins.b.name}[{ins.idx}]"
    if isinstance(ins, SCALAR_OP):
        return f"scalar.{ins.kind}"
    raise TypeError(f"cannot format instruction of type {type(ins).__name__}")


def format_trace(trace: Sequence[Instruction], numbered: bool = False) -> str:
    """Render an instruction sequence as a listing (one line each)."""
    lines = [format_instruction(ins) for ins in trace]
    if numbered:
        width = len(str(len(lines)))
        lines = [f"{i:>{width}}:  {line}" for i, line in enumerate(lines)]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_VREG = re.compile(r"^z(\d+)$")
_TILE = re.compile(r"^za(\d+)$")
_TILE_SLICE = re.compile(r"^za(\d+)\[(\d+)\]$")


class AsmSyntaxError(ValueError):
    """Raised on malformed assembly text."""


def _vreg(tok: str) -> VReg:
    m = _VREG.match(tok)
    if not m:
        raise AsmSyntaxError(f"expected vector register, got {tok!r}")
    return VReg(int(m.group(1)))


def _tile(tok: str) -> TileReg:
    m = _TILE.match(tok)
    if not m:
        raise AsmSyntaxError(f"expected tile register, got {tok!r}")
    return TileReg(int(m.group(1)))


def _tile_slice(tok: str) -> tuple[TileReg, int]:
    m = _TILE_SLICE.match(tok)
    if not m:
        raise AsmSyntaxError(f"expected tile slice, got {tok!r}")
    return TileReg(int(m.group(1))), int(m.group(2))


def _addr(tok: str) -> int:
    tok = tok.strip()
    if not (tok.startswith("[") and tok.endswith("]")):
        raise AsmSyntaxError(f"expected bracketed address, got {tok!r}")
    return int(tok[1:-1])


def _split_operands(rest: str) -> List[str]:
    """Split an operand string on commas not inside {} or []."""
    parts: List[str] = []
    depth = 0
    cur = []
    for ch in rest:
        if ch in "{[":
            depth += 1
        elif ch in "}]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur).strip())
    return [p for p in parts if p]


def parse_instruction(line: str) -> Instruction:
    """Parse one line of assembly back to an :class:`Instruction`."""
    line = line.split("//")[0].strip()
    if not line:
        raise AsmSyntaxError("empty line")
    if ":" in line.split()[0] and line.split()[0].rstrip(":").isdigit():
        # numbered listing prefix "12:"
        line = line.split(":", 1)[1].strip()
    mnemonic, _, rest = line.partition(" ")
    ops = _split_operands(rest)

    if mnemonic == "ld1d":
        mask = int(ops[2].split("=")[1]) if len(ops) > 2 else 8
        return LD1D(dst=_vreg(ops[0]), addr=_addr(ops[1]), mask=mask)
    if mnemonic == "ld1d.s":
        stride = int(ops[2].split("=")[1])
        return LD1D_STRIDED(dst=_vreg(ops[0]), addr=_addr(ops[1]), stride=stride)
    if mnemonic == "st1d":
        mask = int(ops[2].split("=")[1]) if len(ops) > 2 else 8
        return ST1D(src=_vreg(ops[0]), addr=_addr(ops[1]), mask=mask)
    if mnemonic == "st1d.za":
        tile, row = _tile_slice(ops[0])
        mask = int(ops[2].split("=")[1]) if len(ops) > 2 else 8
        return ST1D_SLICE(tile=tile, row=row, addr=_addr(ops[1]), mask=mask)
    if mnemonic == "prfm":
        kind = ops[0]
        write = kind.startswith("pstl")
        level = int(kind[4])
        length = int(ops[2].split("=")[1])
        return PRFM(addr=_addr(ops[1]), level=level, write=write, length=length)
    if mnemonic == "fmla" and "[" in ops[2]:
        reg, idx = ops[2][:-1].split("[")
        return FMLA_IDX(dst=_vreg(ops[0]), a=_vreg(ops[1]), b=_vreg(reg), idx=int(idx))
    if mnemonic == "fmla":
        return FMLA(dst=_vreg(ops[0]), a=_vreg(ops[1]), b=_vreg(ops[2]))
    if mnemonic == "fmul":
        reg, idx = ops[2][:-1].split("[")
        return FMUL_IDX(dst=_vreg(ops[0]), a=_vreg(ops[1]), b=_vreg(reg), idx=int(idx))
    if mnemonic == "fadd":
        return FADD_V(dst=_vreg(ops[0]), a=_vreg(ops[1]), b=_vreg(ops[2]))
    if mnemonic == "ext":
        return EXT(dst=_vreg(ops[0]), a=_vreg(ops[1]), b=_vreg(ops[2]), imm=int(ops[3].lstrip("#")))
    if mnemonic == "dup":
        return DUP(dst=_vreg(ops[0]), value=float(ops[1].lstrip("#")))
    if mnemonic == "setl":
        body = ops[1].strip()
        if not (body.startswith("{") and body.endswith("}")):
            raise AsmSyntaxError(f"expected lane set, got {body!r}")
        values = tuple(float(v) for v in body[1:-1].split(","))
        return SET_LANES(dst=_vreg(ops[0]), values=values)
    if mnemonic == "fmopa":
        rows_tok = ops[3].split("=")[1]
        rows = tuple(int(r) for r in rows_tok.strip("{}").split(",") if r)
        kwargs = {}
        if len(ops) > 4:
            cols_tok = ops[4].split("=")[1]
            kwargs["useful_cols"] = tuple(int(c) for c in cols_tok.strip("{}").split(",") if c)
        return FMOPA(tile=_tile(ops[0]), coef=_vreg(ops[1]), src=_vreg(ops[2]), rows=rows, **kwargs)
    if mnemonic == "zero":
        return ZERO_TILE(tile=_tile(ops[0]))
    if mnemonic == "mova":
        if "[" in ops[0]:
            tile, row = _tile_slice(ops[0])
            return MOVA_VEC_TO_TILE(tile=tile, row=row, src=_vreg(ops[1]))
        tile, row = _tile_slice(ops[1])
        return MOVA_TILE_TO_VEC(dst=_vreg(ops[0]), tile=tile, row=row)
    if mnemonic == "fmla.m":
        group = ops[1].strip("{}").split(":")[0]
        reg, idx = ops[2][:-1].split("[")
        return FMLA_M(tile=_tile(ops[0]), a_base=_vreg(group), b=_vreg(reg), idx=int(idx))
    if mnemonic.startswith("scalar"):
        kind = mnemonic.partition(".")[2] or "addr"
        return SCALAR_OP(kind=kind)
    raise AsmSyntaxError(f"unknown mnemonic {mnemonic!r}")


def parse_trace(text: str) -> List[Instruction]:
    """Parse a multi-line listing into a list of instructions.

    Blank lines and ``//`` comments are skipped.
    """
    out: List[Instruction] = []
    for line in text.splitlines():
        stripped = line.split("//")[0].strip()
        if not stripped:
            continue
        out.append(parse_instruction(stripped))
    return out
