"""Command-line interface: ``python -m repro <command>``.

Commands:

``methods``
    List the registered kernel methods and machine presets.
``bench``
    Time one method on one workload and print the counters.
``compare``
    Time several methods on one workload, normalized to a baseline.
``listing``
    Print the assembly listing of one kernel block.
``verify``
    Run a method functionally and check it against the NumPy reference.
``scaling``
    Strong-scaling sweep (the Figure 16 experiment, configurable).
``serve``
    Run the persistent warm-worker stencil service on a Unix socket.
``submit``
    Submit cells to a running service (or ping/stats/shutdown it).

Examples::

    python -m repro compare --stencil box2d25p --size 128x128
    python -m repro bench --method hstencil-prefetch --stencil box2d25p \
        --size 2048x2048 --machine lx2
    python -m repro listing --stencil star2d5p --method hstencil
    python -m repro verify --stencil star3d7p --size 4x16x32
    python -m repro scaling --cores 1,2,4,8 --size 1024
    python -m repro serve --socket /tmp/repro.sock --workers 4 &
    python -m repro submit --socket /tmp/repro.sock --lane interactive \
        --methods hstencil,auto --stencils star2d5p --size 64x64
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import List, Optional, Tuple

import numpy as np

from repro.bench.report import bench_json_payload, write_bench_json
from repro.bench.runner import ExperimentRunner
from repro.core.hstencil import HStencil
from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.machine.config import LX2, M4, MachineConfig
from repro.machine.memory import MemorySpace
from repro.machine.multicore import MulticoreModel
from repro.stencils.grid import Grid2D
from repro.stencils.library import BENCHMARKS, benchmark


def _machine(name: str) -> MachineConfig:
    name = name.lower()
    if name == "lx2":
        return LX2()
    if name == "m4":
        return M4()
    raise SystemExit(f"unknown machine {name!r} (use lx2 or m4)")


def _shape(text: str, ndim: int) -> Tuple[int, ...]:
    parts = tuple(int(p) for p in text.lower().split("x"))
    if len(parts) == 1:
        parts = parts * ndim
    if len(parts) != ndim:
        raise SystemExit(f"size {text!r} does not match a {ndim}D stencil")
    return parts


def _options(args) -> KernelOptions:
    opts = KernelOptions()
    if getattr(args, "unroll", None):
        opts = opts.with_(unroll_j=args.unroll)
    return opts


def _dir_arg(args, name: str) -> Optional[str]:
    value = getattr(args, name, None)
    if value is not None:
        path = pathlib.Path(value)
        if path.exists() and not path.is_dir():
            flag = "--" + name.replace("_", "-")
            raise SystemExit(f"{flag} {value!r} exists and is not a directory")
    return value


def _runner(args) -> ExperimentRunner:
    return ExperimentRunner(
        _machine(args.machine),
        _options(args),
        cache_dir=_dir_arg(args, "cache_dir"),
        engine=getattr(args, "engine", None),
        timing=getattr(args, "timing", None),
        steady=getattr(args, "steady", None),
        sample=getattr(args, "sample", None),
        codegen=getattr(args, "codegen", None),
        artifact_dir=_dir_arg(args, "artifact_dir"),
    )


def _write_json(args, experiment: str, runner, extra=None) -> None:
    """Emit the BENCH_*.json artifact when ``--json`` was given."""
    if not getattr(args, "json", None):
        return
    target = pathlib.Path(args.json)
    if target.suffix == ".json":
        payload = bench_json_payload(experiment, runner=runner, extra=extra)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        path = target
    else:
        path = write_bench_json(target, experiment, runner=runner, extra=extra)
    print(f"wrote {path}")


def cmd_methods(_args) -> int:
    print("methods:")
    for name in METHODS:
        print(f"  {name}")
    print("\nstencils:")
    for name in BENCHMARKS:
        spec = benchmark(name)
        print(f"  {name:12s} {spec.pattern:4s} {spec.ndim}D r={spec.radius}")
    print("\nmachines: lx2, m4")
    return 0


def cmd_bench(args) -> int:
    spec = benchmark(args.stencil)
    shape = _shape(args.size, spec.ndim)
    runner = _runner(args)
    pc = runner.measure(args.method, args.stencil, shape).counters
    line_bytes = runner.machine.l1.line_bytes
    print(pc.summary())
    print(
        f"  IPC {pc.ipc:.2f} | {pc.cycles_per_point:.3f} cyc/pt | "
        f"L1 demand {pc.l1_demand_hit_rate * 100:.1f}% | "
        f"DRAM {pc.dram_bytes(line_bytes) / max(pc.points, 1):.1f} B/pt | "
        f"{pc.gstencil_per_s(runner.machine.clock_ghz):.2f} GStencil/s"
    )
    _write_json(args, "bench", runner)
    return 0


def cmd_compare(args) -> int:
    spec = benchmark(args.stencil)
    shape = _shape(args.size, spec.ndim)
    runner = _runner(args)
    methods = args.methods.split(",") if args.methods else [
        "auto",
        "vector-only",
        "matrix-only",
        "hstencil",
    ]
    sweep_methods = list(dict.fromkeys(methods + [args.baseline]))
    results = {
        r.method: r
        for r in runner.measure_many(
            [(m, args.stencil, shape) for m in sweep_methods],
            jobs=args.jobs,
            progress=args.jobs > 1,
        )
    }
    base_result = results[args.baseline]
    if not base_result.ok:
        raise SystemExit(
            f"baseline method {args.baseline!r} failed on "
            f"{args.stencil} {args.size}: {base_result.error}"
        )
    base = runner.measure(args.baseline, args.stencil, shape)
    print(f"{args.stencil} {args.size} on {args.machine.upper()}, vs {args.baseline}:")
    speedups = {}
    for method in methods:
        if not results[method].ok:
            print(f"  {method:20s} skipped ({results[method].error})")
            continue
        cell = runner.measure(method, args.stencil, shape)
        speedups[method] = cell.speedup_over(base)
        print(
            f"  {method:20s} {cell.speedup_over(base):5.2f}x  "
            f"(IPC {cell.counters.ipc:4.2f}, "
            f"{cell.counters.cycles_per_point:5.2f} cyc/pt)"
        )
    _write_json(
        args,
        "compare",
        runner,
        extra={"baseline": args.baseline, "speedups": speedups},
    )
    return 0


def cmd_listing(args) -> int:
    spec = benchmark(args.stencil)
    shape = _shape(args.size, spec.ndim)
    hs = HStencil(spec, _machine(args.machine), args.method, _options(args))
    print(hs.listing(*shape, block_index=args.block))
    return 0


def cmd_verify(args) -> int:
    from repro.machine.functional import FunctionalEngine
    from repro.stencils.grid import Grid3D
    from repro.stencils.reference import apply_reference

    spec = benchmark(args.stencil)
    shape = _shape(args.size, spec.ndim)
    mem = MemorySpace()
    r = spec.radius
    if spec.ndim == 2:
        src = Grid2D(mem, *shape, r, "A", fill="random", seed=args.seed)
        dst = Grid2D(mem, *shape, r, "B")
    else:
        src = Grid3D(mem, *shape, r, "A", fill="random", seed=args.seed)
        dst = Grid3D(mem, *shape, r, "B")
    kernel = make_kernel(args.method, spec, src, dst, _machine(args.machine), _options(args))
    engine = FunctionalEngine(mem)
    # Explicit --engine wins; None defers to REPRO_ENGINE, then "compiled".
    engine.run_kernel(kernel, engine=args.engine)
    got = dst.get_interior()
    ref = apply_reference(src.get_full(), spec)
    scale = max(float(np.max(np.abs(ref))), 1e-30)
    err = float(np.max(np.abs(got - ref))) / scale
    status = "OK" if err < 1e-11 else "MISMATCH"
    print(
        f"{status}: {args.method} on {args.stencil} {args.size} — "
        f"max relative error {err:.3e} "
        f"({engine.instructions_executed} instructions executed)"
    )
    return 0 if err < 1e-11 else 1


def cmd_scaling(args) -> int:
    spec = benchmark(args.stencil)
    if spec.ndim != 2:
        raise SystemExit("scaling supports 2D stencils")
    n = int(args.size)
    machine = _machine(args.machine)
    cores = [int(c) for c in args.cores.split(",")]
    for c in cores:
        if n // c <= 0:
            raise SystemExit(f"{c} cores leave no rows per core at size {n}")

    # Distinct slice heights (plus the 1-core serial reference) measured
    # through the experiment engine: cached, and parallel under --jobs.
    runner = _runner(args)
    heights = sorted({n // c for c in cores} | {n})
    results = runner.measure_many(
        [(args.method, args.stencil, (rows, n)) for rows in heights],
        jobs=args.jobs,
        progress=args.jobs > 1,
    )
    failed = [r for r in results if not r.ok]
    if failed:
        raise SystemExit(
            "scaling slices failed: "
            + "; ".join(f"{r.shape[0]} rows: {r.error}" for r in failed)
        )
    slices = {r.shape[0]: r.counters for r in results}

    # Same --engine/--timing (or REPRO_ENGINE/REPRO_TIMING) selection as the
    # slice measurements above, so a scalar-vs-columnar A/B governs the
    # whole sweep rather than silently reverting to the defaults here.
    mc = MulticoreModel(
        machine,
        engine=args.engine,
        timing=args.timing,
        steady=getattr(args, "steady", None),
        codegen=getattr(args, "codegen", None),
        artifact_dir=_dir_arg(args, "artifact_dir"),
    )
    points = mc.series_from_slices(slices, n, cores)
    print(f"{args.method} on {args.stencil} {n}x{n} ({machine.name}):")
    for p in points:
        note = " (bandwidth-bound)" if p.bandwidth_bound else ""
        if p.remainder_rows:
            note += f" ({p.remainder_rows} remainder rows unassigned)"
        print(
            f"  {p.cores:3d} cores: {p.gstencil_per_s:7.2f} GStencil/s  "
            f"{p.speedup_vs_serial:6.2f}x vs serial{note}"
        )
    _write_json(
        args,
        "scaling",
        runner,
        extra={
            "scaling": [
                {
                    "cores": p.cores,
                    "cycles": p.cycles,
                    "points": p.points,
                    "gstencil_per_s": p.gstencil_per_s,
                    "speedup_vs_serial": p.speedup_vs_serial,
                    "bandwidth_bound": p.bandwidth_bound,
                    "remainder_rows": p.remainder_rows,
                }
                for p in points
            ]
        },
    )
    return 0


def cmd_precompile(args) -> int:
    from repro.machine.artifacts import ArtifactStore
    from repro.stencils.library import SUITE_2D

    artifact_dir = _dir_arg(args, "artifact_dir") or os.environ.get("REPRO_ARTIFACTS")
    if not artifact_dir:
        raise SystemExit("precompile needs --artifact-dir (or REPRO_ARTIFACTS)")
    machines = [m.strip() for m in args.machines.split(",") if m.strip()]
    methods = args.methods.split(",") if args.methods else list(METHODS)
    stencils = args.stencils.split(",") if args.stencils else list(SUITE_2D)
    cells = []
    for stencil in stencils:
        spec = benchmark(stencil)
        shape = _shape(args.size, spec.ndim)
        cells.extend((method, stencil, shape) for method in methods)

    runner = None
    for machine_name in machines:
        runner = ExperimentRunner(
            _machine(machine_name),
            _options(args),
            cache_dir=_dir_arg(args, "cache_dir"),
            engine=getattr(args, "engine", None),
            timing=getattr(args, "timing", None),
            steady=getattr(args, "steady", None),
            sample=getattr(args, "sample", None),
            codegen=getattr(args, "codegen", None),
            artifact_dir=artifact_dir,
        )
        results = runner.precompile(cells, jobs=args.jobs, progress=args.jobs > 1)
        built = [r for r in results if r.ok]
        skipped = [r for r in results if not r.ok]
        for r in skipped:
            # Inapplicable method/stencil/machine combinations raise
            # ValueError, which is expected registry behaviour; anything
            # else is a real failure worth surfacing.
            if not (r.error or "").startswith("ValueError"):
                print(f"  {machine_name}: {r.method}/{r.stencil} failed: {r.error}")
        classes = sum((r.info or {}).get("classes", 0) for r in built)
        compiled = sum((r.info or {}).get("compiled", 0) for r in built)
        loaded = sum((r.info or {}).get("loaded", 0) for r in built)
        print(
            f"{machine_name}: {len(built)} cells precompiled — {classes} shape "
            f"classes ({compiled} compiled live, {loaded} loaded from store), "
            f"{len(skipped)} cells inapplicable"
        )
    if args.stats and runner is not None:
        payload = runner.artifact_stats()
        # Worker processes keep their own in-memory counters, so always
        # include the on-disk truth alongside this process's view.
        payload["disk"] = ArtifactStore(artifact_dir).disk_stats()
        print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import StencilService
    from repro.service.protocol import ServiceServer

    service = StencilService(
        workers=args.workers,
        cache_dir=_dir_arg(args, "cache_dir") or os.environ.get("REPRO_BENCH_CACHE"),
        artifact_dir=_dir_arg(args, "artifact_dir") or os.environ.get("REPRO_ARTIFACTS"),
        engine=getattr(args, "engine", None),
        timing=getattr(args, "timing", None),
        steady=getattr(args, "steady", None),
        sample=getattr(args, "sample", None),
        codegen=getattr(args, "codegen", None),
    )

    async def main_async() -> None:
        async with service:
            server = ServiceServer(service, args.socket)
            await server.start()
            print(
                f"serving on {args.socket} with {service.workers} warm workers "
                "(submit with `repro submit`, stop with Ctrl-C or "
                "`repro submit --shutdown`)"
            )
            await server.serve_forever()

    try:
        asyncio.run(main_async())
    except KeyboardInterrupt:
        service.terminate()
        print(file=sys.stderr)
    c = service.counters
    print(
        f"served {c['jobs']} jobs / {c['cells']} cells — "
        f"{c['simulated']} simulated, {c['disk_hits']} disk hits, "
        f"{c['memo_hits'] + c['coalesced_inflight']} coalesced, "
        f"{c['errors']} errors, {c['crashes']} worker crashes"
    )
    return 0


def cmd_submit(args) -> int:
    from repro.service.protocol import ServiceClient

    client = ServiceClient(args.socket, timeout=args.timeout)
    if args.ping:
        print(json.dumps(client.ping(), sort_keys=True))
        return 0
    if args.stats:
        print(json.dumps(client.stats(), indent=1, sort_keys=True))
        return 0
    if args.shutdown:
        client.shutdown()
        print("service asked to shut down")
        return 0

    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    stencils = [s.strip() for s in args.stencils.split(",") if s.strip()]
    cells = []
    for stencil in stencils:
        spec = benchmark(stencil)
        shape = _shape(args.size, spec.ndim)
        cells.extend((method, stencil, shape) for method in methods)

    done = 0

    def on_event(event) -> None:
        nonlocal done
        if event.get("event") == "cell" and args.progress:
            done += 1
            print(f"\r[submit] {done}/{len(cells)} cells", end="", file=sys.stderr, flush=True)

    out = client.submit(
        cells,
        lane=args.lane,
        machine=args.machine,
        iters=args.iters,
        on_event=on_event,
    )
    if args.progress:
        print(file=sys.stderr)
    failures = 0
    for record in out["records"]:
        name = f"{record['method']}/{record['stencil']}"
        if record.get("error"):
            failures += 1
            print(f"  {name:32s} FAILED ({record['error']})")
            continue
        derived = record.get("derived", {})
        print(
            f"  {name:32s} {record['source']:9s} "
            f"{derived.get('cycles_per_point', 0.0):7.2f} cyc/pt  "
            f"{derived.get('gstencil_per_s', 0.0):6.2f} GStencil/s  "
            f"({record['seconds']:.3f}s)"
        )
    summary = out["summary"]
    print(
        f"job {out['job']} ({summary['lane']}): {summary['completed']} cells in "
        f"{summary['seconds']:.2f}s, {summary['errors']} errors"
    )
    if args.json:
        target = pathlib.Path(args.json)
        if target.suffix != ".json":
            target = target / "BENCH_service_submit.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(
                {"experiment": "service_submit", "summary": summary, "records": out["records"]},
                indent=1,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {target}")
    return 1 if failures else 0


def cmd_cache(args) -> int:
    from repro.bench.cache import MeasurementCache
    from repro.machine.artifacts import ArtifactStore

    cache_dir = _dir_arg(args, "cache_dir") or os.environ.get("REPRO_BENCH_CACHE")
    artifact_dir = _dir_arg(args, "artifact_dir") or os.environ.get("REPRO_ARTIFACTS")
    if not cache_dir and not artifact_dir:
        raise SystemExit(
            "cache needs --cache-dir and/or --artifact-dir "
            "(or the REPRO_BENCH_CACHE / REPRO_ARTIFACTS env vars)"
        )
    payload = {}
    if args.action == "stats":
        if cache_dir:
            payload["measurements"] = MeasurementCache(cache_dir).disk_stats()
        if artifact_dir:
            payload["artifacts"] = ArtifactStore(artifact_dir).disk_stats()
    else:  # prune
        if args.max_age_days is None and args.max_bytes is None:
            raise SystemExit("prune needs --max-age-days and/or --max-bytes")
        if cache_dir:
            payload["measurements"] = MeasurementCache(cache_dir).prune(
                max_age_days=args.max_age_days, max_bytes=args.max_bytes
            )
        if artifact_dir:
            payload["artifacts"] = ArtifactStore(artifact_dir).prune(
                max_age_days=args.max_age_days, max_bytes=args.max_bytes
            )
    print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HStencil reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list methods, stencils and machines")

    def common(p, default_size="128x128"):
        p.add_argument("--stencil", default="star2d9p", help="stencil name")
        p.add_argument("--size", default=default_size, help="interior size, e.g. 128x128")
        p.add_argument("--machine", default="lx2", help="lx2 or m4")
        p.add_argument("--unroll", type=int, default=None, help="tile unroll factor")

    def engine(p):
        p.add_argument(
            "--cache-dir",
            default=None,
            help="content-addressed measurement cache directory (reused across runs)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent cells (1 = serial)",
        )
        p.add_argument(
            "--json",
            default=None,
            metavar="PATH",
            help="write a BENCH_*.json artifact (file, or directory for the default name)",
        )
        p.add_argument(
            "--timing",
            choices=["columnar", "scalar"],
            default=None,
            help="band-sampled replay mode (default: REPRO_TIMING env var, then columnar)",
        )
        p.add_argument(
            "--steady",
            choices=["on", "off"],
            default=None,
            help="band-periodic steady-state elision on full runs "
            "(default: REPRO_STEADY env var, then on; bit-identical either way)",
        )
        p.add_argument(
            "--sample",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="force band-sampled (--sample) or full exact (--no-sample) "
            "timing for every cell (default: automatic by grid size)",
        )
        p.add_argument(
            "--codegen",
            choices=["on", "off"],
            default=None,
            help="exec-compiled straight-line replay kernels "
            "(default: REPRO_CODEGEN env var, then on; bit-identical either way)",
        )
        p.add_argument(
            "--artifact-dir",
            default=None,
            help="compiled-artifact store directory (templates, lowered "
            "programs, columnar plans; default: REPRO_ARTIFACTS env var)",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="profile the run with cProfile; writes .pstats + a top-20 table "
            "next to the --json report (or into the working directory)",
        )
        _engine_arg(p)

    def _engine_arg(p):
        p.add_argument(
            "--engine",
            choices=["compiled", "reference"],
            default=None,
            help="simulation engine (default: REPRO_ENGINE env var, then compiled)",
        )

    p = sub.add_parser("bench", help="time one method")
    common(p)
    engine(p)
    p.add_argument("--method", default="hstencil")

    p = sub.add_parser("compare", help="compare methods vs a baseline")
    common(p)
    engine(p)
    p.add_argument("--methods", default=None, help="comma-separated method list")
    p.add_argument("--baseline", default="auto")

    p = sub.add_parser("listing", help="print one block's assembly")
    common(p, default_size="32x32")
    p.add_argument("--method", default="hstencil")
    p.add_argument("--block", type=int, default=0)

    p = sub.add_parser("verify", help="functional check vs NumPy reference")
    common(p, default_size="16x32")
    _engine_arg(p)
    p.add_argument("--method", default="hstencil")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("scaling", help="strong-scaling sweep (Figure 16)")
    common(p, default_size="1024")
    engine(p)
    p.add_argument("--method", default="hstencil-prefetch")
    p.add_argument("--cores", default="1,2,4,8")

    p = sub.add_parser("precompile", help="pre-build the compiled-artifact store")
    engine(p)
    p.add_argument("--machines", default="lx2,m4", help="comma-separated machine list")
    p.add_argument("--methods", default=None, help="comma-separated (default: full registry)")
    p.add_argument("--stencils", default=None, help="comma-separated (default: 2D suite)")
    p.add_argument("--size", default="128x128", help="interior size per stencil")
    p.add_argument("--unroll", type=int, default=None, help="tile unroll factor")
    p.add_argument("--stats", action="store_true", help="print pool/store counters")

    p = sub.add_parser("serve", help="run the warm-worker stencil service")
    p.add_argument("--socket", required=True, help="Unix socket path to listen on")
    p.add_argument(
        "--workers", type=int, default=None,
        help="persistent worker processes (default: cores - 1)",
    )
    p.add_argument("--cache-dir", default=None, help="measurement cache directory (default: REPRO_BENCH_CACHE)")
    p.add_argument(
        "--artifact-dir", default=None,
        help="compiled-artifact store directory (default: REPRO_ARTIFACTS)",
    )
    p.add_argument(
        "--timing", choices=["columnar", "scalar"], default=None,
        help="band-sampled replay mode (default: REPRO_TIMING env var, then columnar)",
    )
    p.add_argument(
        "--steady", choices=["on", "off"], default=None,
        help="band-periodic steady-state elision on full runs "
        "(default: REPRO_STEADY env var, then on)",
    )
    p.add_argument(
        "--sample", action=argparse.BooleanOptionalAction, default=None,
        help="force band-sampled (--sample) or full exact (--no-sample) timing",
    )
    p.add_argument(
        "--codegen", choices=["on", "off"], default=None,
        help="exec-compiled straight-line replay kernels "
        "(default: REPRO_CODEGEN env var, then on)",
    )
    _engine_arg(p)

    p = sub.add_parser("submit", help="submit cells to a running service")
    p.add_argument("--socket", required=True, help="Unix socket of a `repro serve` process")
    p.add_argument("--lane", choices=["interactive", "batch"], default="interactive")
    p.add_argument("--methods", default="hstencil", help="comma-separated method list")
    p.add_argument("--stencils", default="star2d9p", help="comma-separated stencil list")
    p.add_argument("--size", default="128x128", help="interior size, e.g. 128x128")
    p.add_argument("--machine", default="lx2", help="lx2 or m4")
    p.add_argument("--iters", type=int, default=1, help="timed passes per cell")
    p.add_argument("--timeout", type=float, default=None, help="socket timeout in seconds")
    p.add_argument("--progress", action="store_true", help="stream per-cell progress to stderr")
    p.add_argument("--json", default=None, metavar="PATH", help="write the streamed records as JSON")
    p.add_argument("--ping", action="store_true", help="just ping the service")
    p.add_argument("--stats", action="store_true", help="print service counters and exit")
    p.add_argument("--shutdown", action="store_true", help="ask the service to shut down")

    p = sub.add_parser("cache", help="inspect or prune the on-disk caches")
    p.add_argument("action", choices=["stats", "prune"])
    p.add_argument("--cache-dir", default=None, help="measurement cache directory")
    p.add_argument("--artifact-dir", default=None, help="compiled-artifact store directory")
    p.add_argument("--max-age-days", type=float, default=None, help="prune entries older than this")
    p.add_argument("--max-bytes", type=int, default=None, help="prune oldest entries above this total size")

    return parser


def _profile_base(args) -> pathlib.Path:
    """Where profile artifacts go: next to the --json report when given."""
    target = getattr(args, "json", None)
    if target:
        path = pathlib.Path(target)
        if path.suffix == ".json":
            return path.with_suffix("")
        return path / f"BENCH_{args.command}"
    return pathlib.Path(f"repro-{args.command}")


def _profiled(handler, args) -> int:
    """Run ``handler`` under cProfile; write the dump and a top-20 table."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    rc = profiler.runcall(handler, args)
    base = _profile_base(args)
    base.parent.mkdir(parents=True, exist_ok=True)
    pstats_path = base.with_name(base.name + ".pstats")
    table_path = base.with_name(base.name + ".profile.txt")
    profiler.dump_stats(str(pstats_path))
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(20)
    table_path.write_text(buffer.getvalue())
    print(f"wrote {pstats_path} and {table_path}")
    _print_compile_stats()
    return rc


def _print_compile_stats() -> None:
    """Compile-layer counters appended to every --profile run."""
    from repro.kernels.template import compile_stats
    from repro.machine.artifacts import active_store
    from repro.machine.codegen import codegen_stats
    from repro.machine.compiled import program_pool_stats

    pool = program_pool_stats()
    print(
        "program pool: "
        f"{pool['hits']} hits / {pool['misses']} misses / {pool['builds']} builds "
        f"({pool['build_seconds']:.3f}s), {pool['evictions']} evictions, "
        f"store {pool['store_hits']} hits / {pool['store_writes']} writes"
    )
    cg = codegen_stats()
    print(
        "codegen pool: "
        f"{cg['generated']} generated / {cg['loaded']} loaded / "
        f"{cg['exec_failed']} exec-failed / {cg['demoted']} demoted "
        f"({cg['verified']} verified, {cg['chunk_generated']} chunk kernels, "
        f"{cg['chunk_demoted']} chunk demotions)"
    )
    tmpl = compile_stats()
    print(
        "templates: "
        f"{tmpl['compiled_classes']} compiled ({tmpl['fit_seconds']:.3f}s fit, "
        f"{tmpl['probe_emits']} probe emits), "
        f"{tmpl['loaded_classes']} loaded ({tmpl['verify_seconds']:.3f}s verify), "
        f"{tmpl['load_demotions']} demoted on load"
    )
    store = active_store()
    if store is not None:
        s = store.stats()
        print(
            "artifact store: "
            f"{s['hits']} hits / {s['misses']} misses / {s['stores']} stores "
            f"({s['root']})"
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "methods": cmd_methods,
        "bench": cmd_bench,
        "compare": cmd_compare,
        "listing": cmd_listing,
        "verify": cmd_verify,
        "scaling": cmd_scaling,
        "precompile": cmd_precompile,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "cache": cmd_cache,
    }[args.command]
    if getattr(args, "profile", False):
        return _profiled(handler, args)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
