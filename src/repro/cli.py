"""Command-line interface: ``python -m repro <command>``.

Commands:

``methods``
    List the registered kernel methods and machine presets.
``bench``
    Time one method on one workload and print the counters.
``compare``
    Time several methods on one workload, normalized to a baseline.
``listing``
    Print the assembly listing of one kernel block.
``verify``
    Run a method functionally and check it against the NumPy reference.
``scaling``
    Strong-scaling sweep (the Figure 16 experiment, configurable).

Examples::

    python -m repro compare --stencil box2d25p --size 128x128
    python -m repro bench --method hstencil-prefetch --stencil box2d25p \
        --size 2048x2048 --machine lx2
    python -m repro listing --stencil star2d5p --method hstencil
    python -m repro verify --stencil star3d7p --size 4x16x32
    python -m repro scaling --cores 1,2,4,8 --size 1024
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

import numpy as np

from repro.bench.runner import ExperimentRunner
from repro.core.hstencil import HStencil
from repro.kernels.base import KernelOptions
from repro.kernels.registry import METHODS, make_kernel
from repro.machine.config import LX2, M4, MachineConfig
from repro.machine.memory import MemorySpace
from repro.machine.multicore import MulticoreModel
from repro.stencils.grid import Grid2D
from repro.stencils.library import BENCHMARKS, benchmark


def _machine(name: str) -> MachineConfig:
    name = name.lower()
    if name == "lx2":
        return LX2()
    if name == "m4":
        return M4()
    raise SystemExit(f"unknown machine {name!r} (use lx2 or m4)")


def _shape(text: str, ndim: int) -> Tuple[int, ...]:
    parts = tuple(int(p) for p in text.lower().split("x"))
    if len(parts) == 1:
        parts = parts * ndim
    if len(parts) != ndim:
        raise SystemExit(f"size {text!r} does not match a {ndim}D stencil")
    return parts


def _options(args) -> KernelOptions:
    opts = KernelOptions()
    if getattr(args, "unroll", None):
        opts = opts.with_(unroll_j=args.unroll)
    return opts


def cmd_methods(_args) -> int:
    print("methods:")
    for name in METHODS:
        print(f"  {name}")
    print("\nstencils:")
    for name in BENCHMARKS:
        spec = benchmark(name)
        print(f"  {name:12s} {spec.pattern:4s} {spec.ndim}D r={spec.radius}")
    print("\nmachines: lx2, m4")
    return 0


def cmd_bench(args) -> int:
    spec = benchmark(args.stencil)
    shape = _shape(args.size, spec.ndim)
    runner = ExperimentRunner(_machine(args.machine), _options(args))
    pc = runner.measure(args.method, args.stencil, shape).counters
    print(pc.summary())
    print(
        f"  IPC {pc.ipc:.2f} | {pc.cycles_per_point:.3f} cyc/pt | "
        f"L1 demand {pc.l1_demand_hit_rate * 100:.1f}% | "
        f"DRAM {pc.dram_bytes() / max(pc.points, 1):.1f} B/pt | "
        f"{pc.gstencil_per_s(runner.machine.clock_ghz):.2f} GStencil/s"
    )
    return 0


def cmd_compare(args) -> int:
    spec = benchmark(args.stencil)
    shape = _shape(args.size, spec.ndim)
    runner = ExperimentRunner(_machine(args.machine), _options(args))
    methods = args.methods.split(",") if args.methods else [
        "auto",
        "vector-only",
        "matrix-only",
        "hstencil",
    ]
    base = runner.measure(args.baseline, args.stencil, shape)
    print(f"{args.stencil} {args.size} on {args.machine.upper()}, vs {args.baseline}:")
    for method in methods:
        try:
            cell = runner.measure(method, args.stencil, shape)
        except (ValueError, KeyError) as exc:
            print(f"  {method:20s} skipped ({exc})")
            continue
        print(
            f"  {method:20s} {cell.speedup_over(base):5.2f}x  "
            f"(IPC {cell.counters.ipc:4.2f}, "
            f"{cell.counters.cycles_per_point:5.2f} cyc/pt)"
        )
    return 0


def cmd_listing(args) -> int:
    spec = benchmark(args.stencil)
    shape = _shape(args.size, spec.ndim)
    hs = HStencil(spec, _machine(args.machine), args.method, _options(args))
    print(hs.listing(*shape, block_index=args.block))
    return 0


def cmd_verify(args) -> int:
    from repro.machine.functional import FunctionalEngine
    from repro.stencils.grid import Grid3D
    from repro.stencils.reference import apply_reference

    spec = benchmark(args.stencil)
    shape = _shape(args.size, spec.ndim)
    mem = MemorySpace()
    r = spec.radius
    if spec.ndim == 2:
        src = Grid2D(mem, *shape, r, "A", fill="random", seed=args.seed)
        dst = Grid2D(mem, *shape, r, "B")
    else:
        src = Grid3D(mem, *shape, r, "A", fill="random", seed=args.seed)
        dst = Grid3D(mem, *shape, r, "B")
    kernel = make_kernel(args.method, spec, src, dst, _machine(args.machine), _options(args))
    engine = FunctionalEngine(mem)
    engine.run_kernel(kernel)
    got = dst.get_interior()
    ref = apply_reference(src.get_full(), spec)
    scale = max(float(np.max(np.abs(ref))), 1e-30)
    err = float(np.max(np.abs(got - ref))) / scale
    status = "OK" if err < 1e-11 else "MISMATCH"
    print(
        f"{status}: {args.method} on {args.stencil} {args.size} — "
        f"max relative error {err:.3e} "
        f"({engine.instructions_executed} instructions executed)"
    )
    return 0 if err < 1e-11 else 1


def cmd_scaling(args) -> int:
    spec = benchmark(args.stencil)
    if spec.ndim != 2:
        raise SystemExit("scaling supports 2D stencils")
    n = int(args.size)
    machine = _machine(args.machine)
    cores = [int(c) for c in args.cores.split(",")]

    def factory(rows: int):
        mem = MemorySpace()
        src = Grid2D(mem, rows, n, spec.radius, "A")
        dst = Grid2D(mem, rows, n, spec.radius, "B")
        return make_kernel(args.method, spec, src, dst, machine, _options(args))

    mc = MulticoreModel(machine)
    points = mc.strong_scaling(factory, n, cores)
    print(f"{args.method} on {args.stencil} {n}x{n} ({machine.name}):")
    for p in points:
        note = " (bandwidth-bound)" if p.bandwidth_bound else ""
        print(f"  {p.cores:3d} cores: {p.gstencil_per_s:7.2f} GStencil/s{note}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HStencil reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list methods, stencils and machines")

    def common(p, default_size="128x128"):
        p.add_argument("--stencil", default="star2d9p", help="stencil name")
        p.add_argument("--size", default=default_size, help="interior size, e.g. 128x128")
        p.add_argument("--machine", default="lx2", help="lx2 or m4")
        p.add_argument("--unroll", type=int, default=None, help="tile unroll factor")

    p = sub.add_parser("bench", help="time one method")
    common(p)
    p.add_argument("--method", default="hstencil")

    p = sub.add_parser("compare", help="compare methods vs a baseline")
    common(p)
    p.add_argument("--methods", default=None, help="comma-separated method list")
    p.add_argument("--baseline", default="auto")

    p = sub.add_parser("listing", help="print one block's assembly")
    common(p, default_size="32x32")
    p.add_argument("--method", default="hstencil")
    p.add_argument("--block", type=int, default=0)

    p = sub.add_parser("verify", help="functional check vs NumPy reference")
    common(p, default_size="16x32")
    p.add_argument("--method", default="hstencil")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("scaling", help="strong-scaling sweep (Figure 16)")
    common(p, default_size="1024")
    p.add_argument("--method", default="hstencil-prefetch")
    p.add_argument("--cores", default="1,2,4,8")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "methods": cmd_methods,
        "bench": cmd_bench,
        "compare": cmd_compare,
        "listing": cmd_listing,
        "verify": cmd_verify,
        "scaling": cmd_scaling,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
