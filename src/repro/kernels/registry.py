"""Method registry: name -> kernel factory (Table 6 plus breakdown points).

``make_kernel(method, spec, src, dst, config, options)`` is the single
entry point the HStencil facade, the bench harness and the tests use.  The
registry also encodes the evaluation's configuration conventions:

* ``hstencil`` enables scheduling + replacement balancing (the full
  in-cache configuration of Figures 12-14);
* ``hstencil-nosched`` is the Figure 13 ablation point (hybrid kernel, no
  instruction scheduling);
* ``hstencil-prefetch`` adds spatial prefetch (the out-of-cache
  configuration of Figure 15 / Table 7);
* on machines without vector FMLA (the M4 preset), star stencils are
  transparently routed to the M-MLA kernel, reproducing Section 4's
  portability story.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.isa.program import Kernel
from repro.kernels.autovec import AutoVectorKernel
from repro.kernels.base import KernelOptions
from repro.kernels.inplace_hybrid import InplaceHybridKernel
from repro.kernels.m4 import M4HybridKernel
from repro.kernels.matrix_only import MatrixOnlyKernel
from repro.kernels.matrix_ortho import MatrixOrthoKernel
from repro.kernels.naive_hybrid import NaiveHybridKernel
from repro.kernels.vector_only import VectorOnlyKernel
from repro.machine.config import MachineConfig
from repro.stencils.spec import StencilSpec


def _hybrid(spec, src, dst, config, options: KernelOptions) -> Kernel:
    """Route the hybrid kernel to the platform-appropriate implementation."""
    if spec.pattern == "star" and not config.has_vector_fmla:
        kernel = M4HybridKernel(spec, src, dst, config, options)
        return kernel
    return InplaceHybridKernel(spec, src, dst, config, options)


def _make(base_options: Dict) -> Callable:
    def factory(spec, src, dst, config, options: Optional[KernelOptions] = None) -> Kernel:
        opts = (options or KernelOptions()).with_(**base_options)
        return _hybrid(spec, src, dst, config, opts)

    return factory


def _simple(cls) -> Callable:
    def factory(spec, src, dst, config, options: Optional[KernelOptions] = None) -> Kernel:
        return cls(spec, src, dst, config, options or KernelOptions())

    return factory


#: method name -> factory(spec, src, dst, config, options) -> Kernel
METHODS: Dict[str, Callable] = {
    "auto": _simple(AutoVectorKernel),
    "vector-only": _simple(VectorOnlyKernel),
    "matrix-only": _simple(MatrixOnlyKernel),
    "mat-ortho": _simple(MatrixOrthoKernel),
    "hstencil-naive": _simple(NaiveHybridKernel),
    "hstencil-nosched": _make({"scheduled": False, "prefetch": False}),
    "hstencil": _make({"scheduled": True, "prefetch": False}),
    "hstencil-prefetch": _make({"scheduled": True, "prefetch": True}),
    "hstencil-noprefetch": _make({"scheduled": True, "prefetch": False}),
}


def make_kernel(
    method: str,
    spec: StencilSpec,
    src,
    dst,
    config: MachineConfig,
    options: Optional[KernelOptions] = None,
) -> Kernel:
    """Build a kernel for a named method; raises KeyError for unknown names."""
    if method not in METHODS:
        raise KeyError(f"unknown method {method!r}; known: {sorted(METHODS)}")
    kernel = METHODS[method](spec, src, dst, config, options)
    kernel.name = method
    return kernel
