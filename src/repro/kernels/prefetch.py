"""Spatial-prefetch helpers (Section 3.3 / Algorithm 3).

The prefetch *policy* lives inside the kernels (the generators know the
upcoming addresses); this module holds the shared mechanics plus analysis
utilities the benches and tests use:

* :func:`row_prefetches` — PRFM instructions covering one grid-row segment
  at cache-line granularity;
* :func:`count_prefetches` / :func:`prefetch_coverage` — trace inspection
  used by Table 7 and the prefetch ablations.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.isa.instructions import Instruction, LD1D, PRFM
from repro.isa.registers import SVL_LANES


def row_prefetches(addr: int, nwords: int, write: bool = False, level: int = 1) -> List[PRFM]:
    """PRFMs covering ``nwords`` words from ``addr``, one per vector span."""
    out: List[PRFM] = []
    for off in range(0, nwords, SVL_LANES):
        out.append(
            PRFM(addr + off, level=level, write=write, length=min(SVL_LANES, nwords - off))
        )
    return out


def count_prefetches(trace: Sequence[Instruction]) -> Tuple[int, int]:
    """``(read_prefetches, write_prefetches)`` in a trace."""
    reads = sum(1 for ins in trace if isinstance(ins, PRFM) and not ins.write)
    writes = sum(1 for ins in trace if isinstance(ins, PRFM) and ins.write)
    return reads, writes


def prefetch_coverage(trace: Sequence[Instruction], line_words: int = 8) -> float:
    """Fraction of demand-load lines that some earlier PRFM covered.

    A diagnostic for prefetch placement: 1.0 means every demanded line was
    hinted beforehand (whether the hint arrived in time is what the timing
    engine measures).
    """
    hinted: Set[int] = set()
    covered = 0
    total = 0
    for ins in trace:
        if isinstance(ins, PRFM):
            first = ins.addr // line_words
            last = (ins.addr + ins.length - 1) // line_words
            hinted.update(range(first, last + 1))
        elif isinstance(ins, LD1D):
            for addr, n in ins.mem_reads():
                first = addr // line_words
                last = (addr + n - 1) // line_words
                for line in range(first, last + 1):
                    total += 1
                    if line in hinted:
                        covered += 1
    return covered / total if total else 0.0
