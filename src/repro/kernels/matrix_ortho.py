"""Outer + inner axis outer-product kernel (``Mat-ortho`` in Figure 13).

The utilization-preserving alternative for star stencils that Section 2.3.1
describes and Figure 13a shows losing to auto-vectorization: the sparse
vertical column is handled by outer-axis outer products (like STOP), and
the horizontal taps are handled by *inner-axis* outer products — input
**columns** gathered with strided loads, scattered across output columns
with a sliding horizontal coefficient vector.

Matrix-register utilization recovers to box level (both axes now fill the
tile, Table 1 row 3), but each inner-axis operand is an 8-element gather
striding a full grid row per lane: the strided loads are slow, touch eight
cache lines each, and defeat the hardware prefetcher entirely.  That trade
is the reason HStencil moves the horizontal work to the vector unit
instead.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.instructions import FMOPA, LD1D, LD1D_STRIDED, ST1D_SLICE, ZERO_TILE
from repro.isa.program import KernelBlock, LoopNest, Trace
from repro.isa.registers import SVL_LANES, TileReg
from repro.kernels.base import (
    GroupedTrace,
    CV_POOL,
    KernelOptions,
    RegRotator,
    StencilKernelBase,
    rows_for_placement,
    sliding_vectors,
)

_ALIGNED_REGS = tuple(range(0, 6))
_COLUMN_REGS = tuple(range(6, 16))


class MatrixOrthoKernel(StencilKernelBase):
    """Hybrid outer/inner-axis outer-product kernel (2D star)."""

    method = "mat-ortho"
    traversal = "panel"
    supports_3d = False

    def __init__(self, spec, src, dst, config, options: Optional[KernelOptions] = None) -> None:
        options = options or KernelOptions()
        super().__init__(spec, src, dst, config, options)
        if spec.pattern != "star":
            raise ValueError(
                f"{self.method}: the outer+inner axis split only covers the "
                "axis taps of star stencils (box corners need the full "
                "outer-axis scatter of matrix-only)"
            )
        w = self.options.unroll_j
        if not 1 <= w <= 8:
            raise ValueError(f"unroll_j must be in [1, 8], got {w}")
        self._require_divisible(SVL_LANES * w, rows_multiple=SVL_LANES)
        r = spec.radius
        # Outer-axis: the s = 0 vertical column.
        vcol = spec.vertical_coeffs()
        self._v_table = self._write_rodata(sliding_vectors(vcol, r), "cv_vertical")
        self._v_rows = {
            d: rows_for_placement(vcol, r, d) for d in range(-r, SVL_LANES + r)
        }
        # Inner-axis: the horizontal off-axis coefficients, sliding along
        # output columns.
        hrow = spec.horizontal_offaxis_coeffs()
        self._h_table = self._write_rodata(sliding_vectors(hrow, r), "cv_horizontal")
        self._h_cols = {
            d: rows_for_placement(hrow, r, d) for d in range(-r, SVL_LANES + r)
        }

    # ------------------------------------------------------------------

    def preamble(self) -> Trace:
        return Trace()

    def loop_nest(self) -> LoopNest:
        return self._band_nest(SVL_LANES * self.options.unroll_j)

    def emit(self, block: KernelBlock) -> Trace:
        ib, jp = block.key
        w = self.options.unroll_j
        r = self.spec.radius
        i_base = ib * SVL_LANES
        j_base = jp * SVL_LANES * w
        out = GroupedTrace()
        aligned_pool = RegRotator(_ALIGNED_REGS)
        column_pool = RegRotator(_COLUMN_REGS)
        cv_pool = RegRotator(CV_POOL)
        tiles = [TileReg(u) for u in range(w)]
        row_stride = self.src.row_stride

        for tile in tiles:
            out.append(ZERO_TILE(tile))

        # Outer-axis pass: vertical column per input row.
        for d in range(-r, SVL_LANES + r):
            i0 = i_base + d
            rows = self._v_rows[d]
            if not rows:
                continue
            cv = cv_pool.take()
            out.append(LD1D(cv, self._v_table + (d + r) * SVL_LANES))
            for u in range(w):
                reg = aligned_pool.take()
                out.append(LD1D(reg, self.src.addr(i0, j_base + u * SVL_LANES)))
                out.append(FMOPA(tiles[u], cv, reg, rows=rows))
            self._overhead(out)

        # Inner-axis pass: strided column gathers, sliding along columns.
        for d in range(-r, SVL_LANES + r):
            cols = self._h_cols[d]
            if not cols:
                continue
            cv = cv_pool.take()
            out.append(LD1D(cv, self._h_table + (d + r) * SVL_LANES))
            for u in range(w):
                j0 = j_base + u * SVL_LANES + d
                col_reg = column_pool.take()
                out.append(
                    LD1D_STRIDED(col_reg, self.src.addr(i_base, j0), stride=row_stride)
                )
                out.append(
                    FMOPA(tiles[u], col_reg, cv, rows=tuple(range(SVL_LANES)), useful_cols=cols)
                )
            self._overhead(out)

        for m in range(SVL_LANES):
            for u in range(w):
                out.append(
                    ST1D_SLICE(
                        tiles[u], m, self.dst.addr(i_base + m, j_base + u * SVL_LANES)
                    )
                )
        return self._finalize(out)
