"""Expert-optimized vector kernel (``Vector-only`` in Table 6).

The gather form of Figure 4a, hand-tuned the way the DLT / temporal-
vectorization line of work writes it.  The structural win over compiler
auto-vectorization is **cross-row load reuse**: four output rows are
produced per iteration, so the ``2r + 4`` contributing input rows are
loaded once per group instead of once per output row — the load count per
point drops several-fold versus the gather baseline.  Each output row
keeps two independent FMA chains (folded by FADD); shifted operands come
from unaligned loads, which hit the lines the aligned loads just touched.

Row-major traversal keeps the access pattern within the hardware stream
prefetcher's capacity, which is why this method's L1 hit rates stay high
out of cache (Table 3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.instructions import (
    FADD_V,
    FMLA_IDX,
    FMUL_IDX,
    LD1D,
    SET_LANES,
    ST1D,
)
from repro.isa.program import KernelBlock, LoopNest, Trace
from repro.isa.registers import SVL_LANES, VReg
from repro.kernels.base import GroupedTrace, RegRotator, StencilKernelBase

#: Aligned row vectors, one per contributing input row of the row group.
_ROW_REGS = tuple(range(0, 12))
#: Accumulators: 4 output rows x 2 chains.
_ACC_REGS = tuple(range(12, 20))
#: Coefficient broadcast registers (up to 64 taps).
_COEF_REGS = tuple(range(20, 28))
#: Shifted-operand loads (one-FMA live ranges).
_SHIFT_REGS = tuple(range(28, 32))

#: Output rows produced per iteration (cross-row reuse factor).
_I_UNROLL = 4


class VectorOnlyKernel(StencilKernelBase):
    """Hand-optimized gather-form vector kernel with cross-row reuse."""

    method = "vector-only"
    traversal = "row"
    supports_3d = True

    def __init__(self, spec, src, dst, config, options=None) -> None:
        super().__init__(spec, src, dst, config, options)
        if not config.has_vector_fmla:
            raise ValueError(
                f"{config.name} has no vector-FMLA capability; use the M4 kernels"
            )
        self._require_divisible(SVL_LANES, rows_multiple=_I_UNROLL)
        if 2 * spec.radius + _I_UNROLL > len(_ROW_REGS):
            raise ValueError(
                f"{self.method}: radius {spec.radius} exceeds the row-register file"
            )
        self._taps = list(spec.taps())
        max_taps = len(_COEF_REGS) * SVL_LANES
        if len(self._taps) > max_taps:
            raise ValueError(f"{self.method}: too many taps ({len(self._taps)})")
        # Taps grouped per plane: {dz: [(di, dj, tap_index)]}.
        self._per_plane: Dict[int, List[Tuple[int, int, int]]] = {}
        for t, (dz, di, dj, _c) in enumerate(self._taps):
            self._per_plane.setdefault(dz, []).append((di, dj, t))

    # ------------------------------------------------------------------

    def preamble(self) -> Trace:
        out = Trace()
        values = [c for (_, _, _, c) in self._taps]
        while len(values) % SVL_LANES:
            values.append(0.0)
        for r, start in enumerate(range(0, len(values), SVL_LANES)):
            out.append(
                SET_LANES(VReg(_COEF_REGS[r]), tuple(values[start : start + SVL_LANES]))
            )
        return out

    def loop_nest(self) -> LoopNest:
        """One block per group of four output rows."""
        rows, cols = self.src.rows, self.src.cols
        blocks: List[KernelBlock] = []
        if self.spec.ndim == 2:
            for ig in range(rows // _I_UNROLL):
                blocks.append(KernelBlock(key=(ig,), points=_I_UNROLL * cols))
            return LoopNest(shape=(rows // _I_UNROLL,), blocks=blocks)
        depth = self.src.depth  # type: ignore[union-attr]
        for z in range(depth):
            for ig in range(rows // _I_UNROLL):
                blocks.append(KernelBlock(key=(z, ig), points=_I_UNROLL * cols))
        return LoopNest(shape=(depth, rows // _I_UNROLL), blocks=blocks)

    def emit(self, block: KernelBlock) -> Trace:
        if self.spec.ndim == 2:
            (ig,) = block.key
            z = None
        else:
            z, ig = block.key
        i_base = ig * _I_UNROLL
        out = GroupedTrace()
        shift_pool = RegRotator(_SHIFT_REGS)
        cols = self.src.cols

        for j in range(0, cols, SVL_LANES):
            # Two FMA chains per output row.
            acc = [
                (VReg(_ACC_REGS[2 * m]), VReg(_ACC_REGS[2 * m + 1]))
                for m in range(_I_UNROLL)
            ]
            started = [[False, False] for _ in range(_I_UNROLL)]

            for dz in sorted(self._per_plane):
                taps = self._per_plane[dz]
                src_z = None if z is None else z + dz
                # Hoisted aligned loads shared by all four output rows.
                needed_rows = sorted(
                    {i_base + m + di for m in range(_I_UNROLL) for (di, _dj, _t) in taps}
                )
                row_reg: Dict[int, VReg] = {}
                for k, i0 in enumerate(needed_rows):
                    reg = VReg(_ROW_REGS[k])
                    out.append(LD1D(reg, self._addr(self.src, i0, j, src_z)))
                    row_reg[i0] = reg

                for m in range(_I_UNROLL):
                    i = i_base + m
                    for tap_no, (di, dj, t) in enumerate(taps):
                        if dj == 0:
                            operand = row_reg[i + di]
                        else:
                            operand = shift_pool.take()
                            out.append(
                                LD1D(operand, self._addr(self.src, i + di, j + dj, src_z))
                            )
                        coef_reg = VReg(_COEF_REGS[t // SVL_LANES])
                        idx = t % SVL_LANES
                        chain = tap_no % 2
                        target = acc[m][chain]
                        if not started[m][chain]:
                            out.append(FMUL_IDX(target, operand, coef_reg, idx))
                            started[m][chain] = True
                        else:
                            out.append(FMLA_IDX(target, operand, coef_reg, idx))

            for m in range(_I_UNROLL):
                result = acc[m][0]
                if started[m][1]:
                    out.append(FADD_V(result, acc[m][0], acc[m][1]))
                out.append(ST1D(result, self._addr(self.dst, i_base + m, j, z)))
            self._overhead(out)
        return self._finalize(out)
