"""Kernel generators: every stencil method of the paper's evaluation.

Each generator compiles a :class:`~repro.stencils.spec.StencilSpec` plus a
pair of grids into a :class:`~repro.isa.program.Kernel` (instruction
streams for the simulated machine).  The methods match Table 6 and the
Figure 13 breakdown:

=================  =========================================================
``auto``           Compiler auto-vectorization baseline (gather form, no
                   reuse tricks) — the 1.0x normalization of every figure.
``vector-only``    Expert-optimized vector kernel (gather form, hoisted row
                   loads, EXT reuse, multiple accumulators).
``matrix-only``    STOP: outer-axis outer products, multi-register tiles,
                   deferred stores (the state of the art being improved on).
``mat-ortho``      Outer + inner axis outer products (strided column loads)
                   — the Figure 13 strawman that loses to auto on stars.
``hstencil-naive`` Naive matrix-vector method (Figure 7): independent matrix
                   and vector passes with an extra accumulation round trip.
``hstencil``       The in-place accumulation matrix-vector kernel
                   (Algorithm 2) with optional instruction scheduling and
                   spatial prefetch — the paper's contribution.
``hstencil-m4``    The Apple-M4 portability variant (Section 4): M-MLA
                   groups, naive accumulation, EXT/LD scheduling, prefetch.
=================  =========================================================

Cross-cutting passes live in :mod:`repro.kernels.replacement` (MLA rollback
and EXT->load balancing), :mod:`repro.kernels.scheduling` (dependence-aware
list scheduling) and :mod:`repro.kernels.prefetch` (spatial prefetch
insertion helpers).
"""

from repro.kernels.base import KernelOptions, StencilKernelBase, sliding_vectors
from repro.kernels.autovec import AutoVectorKernel
from repro.kernels.vector_only import VectorOnlyKernel
from repro.kernels.matrix_only import MatrixOnlyKernel
from repro.kernels.matrix_ortho import MatrixOrthoKernel
from repro.kernels.naive_hybrid import NaiveHybridKernel
from repro.kernels.inplace_hybrid import InplaceHybridKernel
from repro.kernels.m4 import M4HybridKernel
from repro.kernels.registry import make_kernel, METHODS
from repro.kernels.scheduling import schedule_trace
from repro.kernels.replacement import ReplacementPlan, plan_replacement

__all__ = [
    "KernelOptions",
    "StencilKernelBase",
    "sliding_vectors",
    "AutoVectorKernel",
    "VectorOnlyKernel",
    "MatrixOnlyKernel",
    "MatrixOrthoKernel",
    "NaiveHybridKernel",
    "InplaceHybridKernel",
    "M4HybridKernel",
    "make_kernel",
    "METHODS",
    "schedule_trace",
    "ReplacementPlan",
    "plan_replacement",
]
