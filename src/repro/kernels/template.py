"""Row-template trace compilation: emit once per shape class, replay per block.

Stencil kernels emit structurally identical traces for every interior block
of a band — only the word addresses change, and they change *affinely* in
the block's loop coordinates (row-major grids, fixed strides).  This module
exploits that regularity:

* blocks are grouped into **shape classes** by their per-dimension edge
  rank (``("L", k)`` for the first :data:`EDGE` ranks, ``("R", n - k)`` for
  the last :data:`EDGE`, ``"M"`` for everything between).  Edge blocks —
  tail-predicated columns, prefetch-clipped borders, prologue/epilogue rows
  — each get their own class, so one class only ever mixes blocks whose
  emitted streams should coincide structurally;
* the first block of a class is emitted for real and becomes the class's
  :class:`RowTemplate`: the trace, its address vector ``addr0`` and one
  address delta per varying mid dimension, fitted from a neighbour probe
  (``addr(key) = addr0 + sum_d delta_d * (key_d - key0_d)``);
* the affine model is **probe-verified** before the class is trusted: the
  adjacent block, both extremes of every varying dimension, and an
  all-extremes corner block are emitted and checked for exact structural
  equality (addresses masked) and exact address agreement.  Any mismatch
  marks the whole class non-templatable, and its blocks take the reference
  emit-and-walk path forever;
* replay then rebases ``addr0`` per block with one vectorized int64
  operation and hands the precompiled timing/functional programs the
  resulting address list — emission, scheduling and per-instruction
  metadata resolution all run once per class instead of once per block.

Probing relies on the :class:`~repro.isa.program.Kernel` contract that
``emit`` is pure.  Kernels whose emission is *not* affine in the block key
(or that emit unknown instruction types) are automatically and safely
demoted to the reference walk — correctness never depends on the fit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.program import Kernel, KernelBlock, Trace
from repro.machine.compiled import (
    FunctionalProgram,
    TimingProgram,
    build_functional_program,
    pooled_timing_program,
    trace_addresses,
    trace_signature,
)
from repro.machine.config import MachineConfig

#: Starting edge width: blocks within this many ranks of either end of a
#: dimension get their own shape class (covers prologue/epilogue rows,
#: tail-predicated columns and prefetch clipping, which all key off
#: proximity to the iteration edge).  When a class fails probe
#: verification the compiler widens the edge up to :data:`MAX_EDGE` and
#: reclassifies, so kernels whose emission diverges a little deeper from
#: the boundary still template their true interior.
EDGE = 1
MAX_EDGE = 2

_UNBUILT = object()


def _frame_analysis(
    addr0: np.ndarray, deltas: Tuple[Tuple[int, np.ndarray], ...]
) -> Tuple[Tuple[bool, ...], int, Tuple[int, ...]]:
    """Split a template's addresses into a static and a moving frame.

    A template is *two-frame clean* when one index set M moves by a single
    per-dimension stride (``delta_d[i] == v_d`` for every ``i`` in M) while
    the rest never move at all (``delta_d[i] == 0`` everywhere).  Then all
    moving addresses shift **together** from block to block and everything
    the timing memo records about them stays valid as a base-relative
    offset.  Returns ``(static_flags, base_addr_idx, nonuniform_dims)``;
    the last is non-empty only for unclean templates, which the memo skips.
    """
    n = len(addr0)
    moving = None
    for _d, delta in deltas:
        nz = np.nonzero(delta)[0]
        if nz.size == 0:
            continue
        vals = delta[nz]
        if bool(np.any(vals != vals[0])):
            moving = None
            break
        nzset = frozenset(nz.tolist())
        if moving is None:
            moving = nzset
        elif moving != nzset:
            moving = None
            break
    else:
        if moving is None:
            # No address moves at all (single-block class): treat every
            # address as moving so the class still relocates trivially.
            return (False,) * n, 0, ()
        static = tuple(i not in moving for i in range(n))
        return static, min(moving), ()
    nonuniform = tuple(
        d for d, delta in deltas if delta.size > 1 and bool(np.any(delta != delta[0]))
    )
    return (False,) * n, 0, nonuniform


class RowTemplate:
    """One compiled shape class: a representative trace plus address model."""

    __slots__ = (
        "trace",
        "signature",
        "key0",
        "addr0",
        "deltas",
        "static_addrs",
        "base_addr_idx",
        "nonuniform_dims",
        "_addr0_list",
        "_functional",
        "_timing",
        "_timing_config",
    )

    def __init__(
        self,
        trace: Trace,
        key0: Tuple[int, ...],
        addr0: np.ndarray,
        deltas: Tuple[Tuple[int, np.ndarray], ...],
        signature: Optional[Tuple] = None,
    ) -> None:
        self.trace = trace
        #: Structural trace signature (addresses masked); the key that lets
        #: shape classes of *different* kernels — multicore slice heights,
        #: repeated sweeps — share one pooled timing program.
        self.signature = signature if signature is not None else trace_signature(trace)
        self.key0 = key0
        self.addr0 = addr0
        #: ``(dimension, per-address word delta)`` for each varying dimension.
        self.deltas = deltas
        #: Two-frame partition of the address vector (see the timing memo):
        #: ``static_addrs[i]`` is True when address ``i`` never moves with
        #: the block key (coefficient tables, reduction scalars), and
        #: ``base_addr_idx`` indexes a *moving* address — the frame origin
        #: all relative line offsets are measured from.  ``nonuniform_dims``
        #: is empty exactly when the template is two-frame clean (every
        #: moving address shifts by the same amount per key step); otherwise
        #: it lists the dimensions whose deltas shift addresses relative to
        #: each other, and the memo skips the template.
        self.static_addrs, self.base_addr_idx, self.nonuniform_dims = _frame_analysis(
            addr0, deltas
        )
        self._addr0_list: List[int] = addr0.tolist()
        self._functional: object = _UNBUILT
        self._timing: object = _UNBUILT
        self._timing_config: Optional[MachineConfig] = None

    def addrs_for(self, key: Sequence[int]) -> List[int]:
        """Rebased address list for a block of this class (plain ints)."""
        addrs = self.addr0
        key0 = self.key0
        rebased = False
        for d, delta in self.deltas:
            dk = key[d] - key0[d]
            if dk:
                addrs = addrs + delta * dk if rebased else self.addr0 + delta * dk
                rebased = True
        if not rebased:
            return self._addr0_list
        return addrs.tolist()

    def timing_program(self, config: MachineConfig) -> Optional[TimingProgram]:
        """Lazily built scoreboard program (``None`` -> reference walk).

        Resolved through the global program pool, so equal-signature
        templates under the same config share one program object (and with
        it the columnar plan/memo state keyed on program identity).
        """
        if self._timing is _UNBUILT or self._timing_config is not config:
            self._timing = pooled_timing_program(self.trace, self.signature, config)
            self._timing_config = config
        return self._timing  # type: ignore[return-value]

    def functional_program(self) -> Optional[FunctionalProgram]:
        """Lazily built semantic program (``None`` -> reference walk)."""
        if self._functional is _UNBUILT:
            self._functional = build_functional_program(self.trace)
        return self._functional  # type: ignore[return-value]


class TraceCompiler:
    """Groups a kernel's blocks into probe-verified replayable templates."""

    def __init__(
        self,
        kernel: Kernel,
        edge: int = EDGE,
        max_edge: int = MAX_EDGE,
        nest=None,
    ) -> None:
        self.kernel = kernel
        self.edge = edge
        self.max_edge = max(edge, max_edge)
        if nest is None:
            # Callers that already hold the kernel's loop nest pass it in;
            # building one is pure but not free (it materializes every block).
            nest = kernel.loop_nest()
        self.shape: Tuple[int, ...] = tuple(nest.shape)
        self._by_key: Dict[Tuple[int, ...], KernelBlock] = {b.key: b for b in nest.blocks}
        #: shape class -> RowTemplate, or None when the class failed probing.
        self._classes: Dict[Tuple, Optional[RowTemplate]] = {}
        self.templated_blocks = 0
        self.fallback_blocks = 0

    # ------------------------------------------------------------------

    def lookup(self, block: KernelBlock) -> Optional[Tuple[RowTemplate, List[int]]]:
        """Template + rebased addresses for a block, or ``None`` to fall back."""
        while True:
            cls = self._class_of(block.key)
            if cls is None:
                self.fallback_blocks += 1
                return None
            try:
                template = self._classes[cls]
            except KeyError:
                template = self._compile_class(cls, block)
                self._classes[cls] = template
            if template is None and self.edge < self.max_edge and "M" in cls:
                # The class mixed structurally different blocks; widen the
                # edge bands and reclassify everything under the new width.
                self.edge += 1
                self._classes.clear()
                continue
            break
        if template is None:
            self.fallback_blocks += 1
            return None
        self.templated_blocks += 1
        return template, template.addrs_for(block.key)

    # ------------------------------------------------------------------

    def _class_of(self, key: Tuple[int, ...]) -> Optional[Tuple]:
        if len(key) != len(self.shape):
            return None
        edge = self.edge
        labels: List[object] = []
        for k, n in zip(key, self.shape):
            if k < edge:
                labels.append(("L", k))
            elif k >= n - edge:
                labels.append(("R", n - k))
            else:
                labels.append("M")
        return tuple(labels)

    def _varying_dims(self, cls: Tuple) -> List[int]:
        """Dimensions whose coordinate actually varies within the class."""
        edge = self.edge
        return [
            d
            for d, label in enumerate(cls)
            if label == "M" and (self.shape[d] - 2 * edge) >= 2
        ]

    def _compile_class(self, cls: Tuple, block: KernelBlock) -> Optional[RowTemplate]:
        kernel = self.kernel
        key0 = block.key
        trace0 = kernel.emit(block)
        sig0 = trace_signature(trace0)
        addr0 = np.asarray(trace_addresses(trace0), dtype=np.int64)

        deltas: List[Tuple[int, np.ndarray]] = []
        edge = self.edge
        for d in self._varying_dims(cls):
            lo, hi = edge, self.shape[d] - edge - 1
            k0 = key0[d]
            step = 1 if k0 < hi else -1
            adjacent = k0 + step
            fitted = self._probe(key0, d, adjacent, sig0)
            if fitted is None:
                return None
            delta = (fitted - addr0) // step
            if np.any(addr0 + delta * step != fitted):
                return None  # non-integer per-step delta
            # Verify the fit at both extremes of the dimension's range.
            for kp in (lo, hi):
                if kp in (k0, adjacent):
                    continue
                probed = self._probe(key0, d, kp, sig0)
                if probed is None or np.any(addr0 + delta * (kp - k0) != probed):
                    return None
            deltas.append((d, delta))

        if len(deltas) >= 2:
            # Corner probe: all varying dimensions at their far extreme at
            # once, checking that the per-dimension deltas add.
            corner = list(key0)
            expected = addr0.copy()
            for d, delta in deltas:
                hi = self.shape[d] - edge - 1
                kp = hi if key0[d] != hi else edge
                corner[d] = kp
                expected = expected + delta * (kp - key0[d])
            corner_block = self._by_key.get(tuple(corner))
            if corner_block is None:
                return None
            corner_trace = kernel.emit(corner_block)
            if trace_signature(corner_trace) != sig0:
                return None
            if np.any(
                np.asarray(trace_addresses(corner_trace), dtype=np.int64) != expected
            ):
                return None

        return RowTemplate(trace0, key0, addr0, tuple(deltas), signature=sig0)

    def _probe(
        self, key0: Tuple[int, ...], d: int, kp: int, sig0: Tuple
    ) -> Optional[np.ndarray]:
        """Emit the block at ``key0`` with dimension ``d`` set to ``kp``."""
        key = key0[:d] + (kp,) + key0[d + 1 :]
        probe_block = self._by_key.get(key)
        if probe_block is None:
            return None
        trace = self.kernel.emit(probe_block)
        if trace_signature(trace) != sig0:
            return None
        return np.asarray(trace_addresses(trace), dtype=np.int64)
