"""Row-template trace compilation: emit once per shape class, replay per block.

Stencil kernels emit structurally identical traces for every interior block
of a band — only the word addresses change, and they change *affinely* in
the block's loop coordinates (row-major grids, fixed strides).  This module
exploits that regularity:

* blocks are grouped into **shape classes** by their per-dimension edge
  rank (``("L", k)`` for the first :data:`EDGE` ranks, ``("R", n - k)`` for
  the last :data:`EDGE`, ``"M"`` for everything between).  Edge blocks —
  tail-predicated columns, prefetch-clipped borders, prologue/epilogue rows
  — each get their own class, so one class only ever mixes blocks whose
  emitted streams should coincide structurally;
* the first block of a class is emitted for real and becomes the class's
  :class:`RowTemplate`: the trace, its address vector ``addr0`` and one
  address delta per varying mid dimension, fitted from a neighbour probe
  (``addr(key) = addr0 + sum_d delta_d * (key_d - key0_d)``);
* the affine model is **probe-verified** before the class is trusted: the
  adjacent block, both extremes of every varying dimension, and an
  all-extremes corner block are emitted and checked for exact structural
  equality (addresses masked) and exact address agreement.  Any mismatch
  marks the whole class non-templatable, and its blocks take the reference
  emit-and-walk path forever;
* replay then rebases ``addr0`` per block with one vectorized int64
  operation and hands the precompiled timing/functional programs the
  resulting address list — emission, scheduling and per-instruction
  metadata resolution all run once per class instead of once per block.

Probing relies on the :class:`~repro.isa.program.Kernel` contract that
``emit`` is pure.  Kernels whose emission is *not* affine in the block key
(or that emit unknown instruction types) are automatically and safely
demoted to the reference walk — correctness never depends on the fit.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.program import Kernel, KernelBlock, Trace
from repro.machine import artifacts
from repro.machine.compiled import (
    FunctionalProgram,
    TimingProgram,
    pooled_functional_program,
    pooled_timing_program,
    trace_addresses,
    trace_signature,
)
from repro.machine.config import MachineConfig

#: Starting edge width: blocks within this many ranks of either end of a
#: dimension get their own shape class (covers prologue/epilogue rows,
#: tail-predicated columns and prefetch clipping, which all key off
#: proximity to the iteration edge).  When a class fails probe
#: verification the compiler widens the edge up to :data:`MAX_EDGE` and
#: reclassifies, so kernels whose emission diverges a little deeper from
#: the boundary still template their true interior.
EDGE = 1
MAX_EDGE = 2

_UNBUILT = object()
#: Sentinel distinguishing "no stored entry" from a stored demotion verdict.
_MISS = object()

#: Process-wide template-compilation accounting, split into the buckets the
#: cold-start guard measures: ``fit_seconds`` is live compile work (probe
#: emits + affine fits), ``verify_seconds`` is the probe-on-load check a
#: store-loaded template must pass before being trusted.
COMPILE_STATS: Dict[str, float] = {}

#: Process-wide probe-on-load verification memo: ``(machine digest,
#: signature digest, affine-model digest)`` triples whose stored templates
#: already passed the live-emit probe in this process.  Identical class
#: entries recur across the bundles of a warm registry sweep (methods with
#: identical emission for a class, machines sharing a layout — measured:
#: 225 warm loads collapse onto 132 distinct triples), and re-emitting a
#: live probe for each recurrence dominates warm wall time, so later loads
#: of an already-verified entry skip the live emit.  The key pins the
#: affine address model (``key0``/``addr0``/``deltas``), not just the
#: structural signature: a tampered entry therefore always misses the memo
#: and meets the full probe, preserving the demote-on-tamper contract.
#: Entries are added only on a *successful probe verification* — never on
#: a live compile — so a process that has merely written a bundle still
#: probe-checks what it later reads back; decode-time internal-consistency
#: checks (signature digest, trace/addr0 agreement, delta shapes) still
#: run on every load.
_VERIFIED_ON_LOAD: set = set()


def reset_compile_stats() -> None:
    _VERIFIED_ON_LOAD.clear()
    COMPILE_STATS.update(
        compiled_classes=0,
        loaded_classes=0,
        load_demotions=0,
        probe_emits=0,
        verify_emits=0,
        verify_memo_hits=0,
        fit_seconds=0.0,
        verify_seconds=0.0,
    )


reset_compile_stats()


def compile_stats() -> Dict[str, float]:
    """Snapshot of the process-wide template-compilation counters."""
    return dict(COMPILE_STATS)


def _spec_fingerprint(spec) -> Dict:
    """JSON-safe identity of a stencil spec (taps included)."""
    return {
        "name": spec.name,
        "pattern": spec.pattern,
        "ndim": spec.ndim,
        "radius": spec.radius,
        "planes": {
            str(dz): np.asarray(plane).tolist() for dz, plane in sorted(spec.planes.items())
        },
    }


def _grid_fingerprint(grid) -> Dict:
    """JSON-safe identity of a grid's memory layout.

    ``base`` and the strides pin the absolute word addresses a template's
    ``addr0`` embeds, so two layouts that differ in any of these can never
    share a bundle.
    """
    return {
        "name": grid.name,
        "rows": grid.rows,
        "cols": grid.cols,
        "depth": getattr(grid, "depth", None),
        "radius": grid.radius,
        "base": grid.base,
        "row_stride": grid.row_stride,
        "left_pad": grid.left_pad,
        "plane_stride": getattr(grid, "plane_stride", None),
    }


def _frame_analysis(
    addr0: np.ndarray, deltas: Tuple[Tuple[int, np.ndarray], ...]
) -> Tuple[Tuple[bool, ...], int, Tuple[int, ...]]:
    """Split a template's addresses into a static and a moving frame.

    A template is *two-frame clean* when one index set M moves by a single
    per-dimension stride (``delta_d[i] == v_d`` for every ``i`` in M) while
    the rest never move at all (``delta_d[i] == 0`` everywhere).  Then all
    moving addresses shift **together** from block to block and everything
    the timing memo records about them stays valid as a base-relative
    offset.  Returns ``(static_flags, base_addr_idx, nonuniform_dims)``;
    the last is non-empty only for unclean templates, which the memo skips.
    """
    n = len(addr0)
    moving = None
    for _d, delta in deltas:
        nz = np.nonzero(delta)[0]
        if nz.size == 0:
            continue
        vals = delta[nz]
        if bool(np.any(vals != vals[0])):
            moving = None
            break
        nzset = frozenset(nz.tolist())
        if moving is None:
            moving = nzset
        elif moving != nzset:
            moving = None
            break
    else:
        if moving is None:
            # No address moves at all (single-block class): treat every
            # address as moving so the class still relocates trivially.
            return (False,) * n, 0, ()
        static = tuple(i not in moving for i in range(n))
        return static, min(moving), ()
    nonuniform = tuple(
        d for d, delta in deltas if delta.size > 1 and bool(np.any(delta != delta[0]))
    )
    return (False,) * n, 0, nonuniform


def operand_extents(trace, addrs: Sequence[int]):
    """Word-address extents of every memory operand in ``trace``.

    Yields ``(addr_index, lo_word, hi_word, writes)`` for each instruction
    carrying an address field, with the extent rebased onto ``addrs`` (the
    block's actual address vector; the trace embeds the template's
    ``addr0``).  ``hi_word`` is exclusive.  PRFM has no architectural
    read/write regions, so its extent is the prefetched span and ``writes``
    reflects its write hint — callers treating static stores as disqualifying
    therefore also reject write-hinted prefetches of static data.
    """
    from repro.isa.instructions import PRFM
    from repro.machine.compiled import ADDR_FIELDS

    aidx = 0
    for ins in trace:
        if type(ins) not in ADDR_FIELDS:
            continue
        if isinstance(ins, PRFM):
            regions = ((ins.addr, ins.length),)
            writes = bool(ins.write)
        else:
            reads = tuple(ins.mem_reads())
            wr = tuple(ins.mem_writes())
            regions = reads + wr
            writes = bool(wr)
        if regions:
            shift = int(addrs[aidx]) - int(getattr(ins, "addr"))
            lo = min(a for a, _n in regions) + shift
            hi = max(a + n for a, n in regions) + shift
            yield aidx, int(lo), int(hi), writes
        aidx += 1


class RowTemplate:
    """One compiled shape class: a representative trace plus address model."""

    __slots__ = (
        "trace",
        "signature",
        "key0",
        "addr0",
        "deltas",
        "static_addrs",
        "base_addr_idx",
        "nonuniform_dims",
        "_addr0_list",
        "_functional",
        "_timing",
        "_timing_config",
        "_sig_digest",
    )

    def __init__(
        self,
        trace: Trace,
        key0: Tuple[int, ...],
        addr0: np.ndarray,
        deltas: Tuple[Tuple[int, np.ndarray], ...],
        signature: Optional[Tuple] = None,
    ) -> None:
        self.trace = trace
        #: Structural trace signature (addresses masked); the key that lets
        #: shape classes of *different* kernels — multicore slice heights,
        #: repeated sweeps — share one pooled timing program.
        self.signature = signature if signature is not None else trace_signature(trace)
        self.key0 = key0
        self.addr0 = addr0
        #: ``(dimension, per-address word delta)`` for each varying dimension.
        self.deltas = deltas
        #: Two-frame partition of the address vector (see the timing memo):
        #: ``static_addrs[i]`` is True when address ``i`` never moves with
        #: the block key (coefficient tables, reduction scalars), and
        #: ``base_addr_idx`` indexes a *moving* address — the frame origin
        #: all relative line offsets are measured from.  ``nonuniform_dims``
        #: is empty exactly when the template is two-frame clean (every
        #: moving address shifts by the same amount per key step); otherwise
        #: it lists the dimensions whose deltas shift addresses relative to
        #: each other, and the memo skips the template.
        self.static_addrs, self.base_addr_idx, self.nonuniform_dims = _frame_analysis(
            addr0, deltas
        )
        self._addr0_list: List[int] = addr0.tolist()
        self._functional: object = _UNBUILT
        self._timing: object = _UNBUILT
        self._timing_config: Optional[MachineConfig] = None
        self._sig_digest: Optional[str] = None

    def addrs_for(self, key: Sequence[int]) -> List[int]:
        """Rebased address list for a block of this class (plain ints)."""
        addrs = self.addr0
        key0 = self.key0
        rebased = False
        for d, delta in self.deltas:
            dk = key[d] - key0[d]
            if dk:
                addrs = addrs + delta * dk if rebased else self.addr0 + delta * dk
                rebased = True
        if not rebased:
            return self._addr0_list
        return addrs.tolist()

    def timing_program(self, config: MachineConfig) -> Optional[TimingProgram]:
        """Lazily built scoreboard program (``None`` -> reference walk).

        Resolved through the global program pool, so equal-signature
        templates under the same config share one program object (and with
        it the columnar plan/memo state keyed on program identity).
        """
        if self._timing is _UNBUILT or self._timing_config is not config:
            sig_digest = self.sig_digest() if artifacts.active_store() is not None else None
            self._timing = pooled_timing_program(
                self.trace, self.signature, config, sig_digest
            )
            self._timing_config = config
        return self._timing  # type: ignore[return-value]

    def functional_program(self) -> Optional[FunctionalProgram]:
        """Lazily built semantic program (``None`` -> reference walk)."""
        if self._functional is _UNBUILT:
            sig_digest = self.sig_digest() if artifacts.active_store() is not None else None
            self._functional = pooled_functional_program(self.trace, sig_digest)
        return self._functional  # type: ignore[return-value]

    def sig_digest(self) -> str:
        """Cross-process digest of the structural signature (cached)."""
        if self._sig_digest is None:
            self._sig_digest = artifacts.signature_digest(self.signature)
        return self._sig_digest


class TraceCompiler:
    """Groups a kernel's blocks into probe-verified replayable templates."""

    def __init__(
        self,
        kernel: Kernel,
        edge: int = EDGE,
        max_edge: int = MAX_EDGE,
        nest=None,
        config: Optional[MachineConfig] = None,
        store: Optional[artifacts.ArtifactStore] = None,
    ) -> None:
        self.kernel = kernel
        self.edge = edge
        self.max_edge = max(edge, max_edge)
        if nest is None:
            # Callers that already hold the kernel's loop nest pass it in;
            # building one is pure but not free (it materializes every block).
            nest = kernel.loop_nest()
        self.shape: Tuple[int, ...] = tuple(nest.shape)
        self._by_key: Dict[Tuple[int, ...], KernelBlock] = {b.key: b for b in nest.blocks}
        #: shape class -> RowTemplate, or None when the class failed probing.
        self._classes: Dict[Tuple, Optional[RowTemplate]] = {}
        self.templated_blocks = 0
        self.fallback_blocks = 0
        # Artifact-store persistence (optional).  The bundle digest needs
        # the machine config — address models are config-independent but the
        # probe verdicts and the downstream programs are not, and one digest
        # per (kernel, machine) keeps the invalidation story uniform.
        self.config = config if config is not None else getattr(kernel, "config", None)
        self.store = store if store is not None else artifacts.active_store()
        self.loaded_classes = 0
        self.compiled_classes = 0
        self.load_demotions = 0
        self.fit_seconds = 0.0
        self.verify_seconds = 0.0
        self._bundle_digest: Optional[str] = None
        self._bundle_inputs: Optional[Dict] = None
        #: Raw stored class entries (repr(cls) -> payload | "demoted").
        self._stored_classes: Dict[str, object] = {}
        #: Read-modify-write image flushed on every newly resolved class.
        self._bundle_out: Optional[Dict] = None
        if self.store is not None and self.config is not None:
            self._load_bundle()

    # ------------------------------------------------------------------

    def lookup(self, block: KernelBlock) -> Optional[Tuple[RowTemplate, List[int]]]:
        """Template + rebased addresses for a block, or ``None`` to fall back."""
        while True:
            cls = self._class_of(block.key)
            if cls is None:
                self.fallback_blocks += 1
                return None
            try:
                template = self._classes[cls]
            except KeyError:
                template = self._resolve_class(cls, block)
                self._classes[cls] = template
            if template is None and self.edge < self.max_edge and "M" in cls:
                # The class mixed structurally different blocks; widen the
                # edge bands and reclassify everything under the new width.
                self.edge += 1
                self._classes.clear()
                # Stored entries are keyed under the old edge's class
                # labels; drop them and let the write-back path persist
                # the reclassified bundle under the new edge.
                self._stored_classes = {}
                self._bundle_out = None
                continue
            break
        if template is None:
            self.fallback_blocks += 1
            return None
        self.templated_blocks += 1
        return template, template.addrs_for(block.key)

    # -- artifact-store persistence ------------------------------------

    def _bundle_key_inputs(self) -> Optional[Dict]:
        """Canonical identity of this (kernel, machine) pair, or ``None``.

        Kernels without the standard identity attributes (spec/grids/
        options) simply don't participate in persistence; everything else
        behaves as before.
        """
        kernel = self.kernel
        spec = getattr(kernel, "spec", None)
        src = getattr(kernel, "src", None)
        dst = getattr(kernel, "dst", None)
        options = getattr(kernel, "options", None)
        name = getattr(kernel, "name", None)
        if spec is None or src is None or dst is None or options is None or name is None:
            return None
        try:
            return {
                "kind": "templates",
                "meta": artifacts.artifact_meta(),
                "machine": artifacts.machine_digest(self.config),
                "method": name,
                "spec": _spec_fingerprint(spec),
                "src": _grid_fingerprint(src),
                "dst": _grid_fingerprint(dst),
                "options": dataclasses.asdict(options),
                "shape": list(self.shape),
            }
        except (AttributeError, TypeError):
            return None

    def _load_bundle(self) -> None:
        inputs = self._bundle_key_inputs()
        if inputs is None:
            self.store = None
            return
        self._bundle_inputs = inputs
        self._bundle_digest = artifacts.artifact_digest(inputs)
        data = self.store.load("templates", self._bundle_digest)
        if not isinstance(data, dict):
            return
        classes = data.get("classes")
        edge = data.get("edge")
        if not isinstance(classes, dict) or not isinstance(edge, int):
            return
        if edge < self.edge or edge > self.max_edge:
            return  # incompatible edge width; recompile from scratch
        # Adopt the stored edge: a bundle written after live widening lets
        # warm processes skip the widen-and-recompile round entirely.
        self.edge = edge
        self._stored_classes = classes

    def _resolve_class(self, cls: Tuple, block: KernelBlock) -> Optional[RowTemplate]:
        template = self._load_class(cls, block)
        if template is not _MISS:
            return template  # type: ignore[return-value]
        start = perf_counter()
        template = self._compile_class(cls, block)
        elapsed = perf_counter() - start
        self.fit_seconds += elapsed
        self.compiled_classes += 1
        COMPILE_STATS["fit_seconds"] += elapsed
        COMPILE_STATS["compiled_classes"] += 1
        self._record_class(cls, template)
        return template

    def _load_class(self, cls: Tuple, block: KernelBlock):
        """Adopt a stored class entry, or :data:`_MISS` to compile live.

        Safety contract: a deserialized template is probe-checked with one
        live emit of the block actually being replayed (signature + exact
        addresses through the template's affine model) before it is
        trusted.  A failed check demotes the class permanently — exactly
        what the live path does on a failed probe — and persists the
        verdict.  Corrupt/undecodable entries fall back to a live compile.
        """
        stored = self._stored_classes.get(repr(cls)) if self._stored_classes else None
        if stored is None:
            return _MISS
        if stored == "demoted":
            self.loaded_classes += 1
            COMPILE_STATS["loaded_classes"] += 1
            return None
        start = perf_counter()
        template = self._decode_class(stored)
        if template is None:
            self.verify_seconds += perf_counter() - start
            return _MISS
        memo_key = None
        if self._bundle_inputs is not None:
            memo_key = (
                self._bundle_inputs["machine"],
                template._sig_digest,
                artifacts.artifact_digest(
                    {
                        "key0": stored["key0"],
                        "addr0": stored["addr0"],
                        "deltas": stored["deltas"],
                    }
                ),
            )
        if memo_key is not None and memo_key in _VERIFIED_ON_LOAD:
            # This (machine, signature) already survived a live-emit probe
            # in this process; the decode above re-checked the entry's own
            # internal consistency, so skip the expensive re-probe.
            elapsed = perf_counter() - start
            self.verify_seconds += elapsed
            COMPILE_STATS["verify_seconds"] += elapsed
            COMPILE_STATS["verify_memo_hits"] += 1
            self.loaded_classes += 1
            COMPILE_STATS["loaded_classes"] += 1
            return template
        live = self.kernel.emit(block)
        ok = (
            trace_signature(live) == template.signature
            and trace_addresses(live) == template.addrs_for(block.key)
        )
        elapsed = perf_counter() - start
        self.verify_seconds += elapsed
        COMPILE_STATS["verify_seconds"] += elapsed
        COMPILE_STATS["verify_emits"] += 1
        if not ok:
            self.load_demotions += 1
            COMPILE_STATS["load_demotions"] += 1
            self._record_class(cls, None)
            return None
        if memo_key is not None:
            _VERIFIED_ON_LOAD.add(memo_key)
        self.loaded_classes += 1
        COMPILE_STATS["loaded_classes"] += 1
        return template

    def _decode_class(self, stored) -> Optional[RowTemplate]:
        try:
            trace = artifacts.decode_trace(stored["trace"])
            if trace is None:
                return None
            key0 = tuple(stored["key0"])
            addr0 = np.asarray(stored["addr0"], dtype=np.int64)
            deltas = tuple(
                (int(d), np.asarray(vals, dtype=np.int64)) for d, vals in stored["deltas"]
            )
            sig_digest = stored["sig"]
        except (KeyError, TypeError, ValueError):
            return None
        if len(key0) != len(self.shape):
            return None
        sig0 = trace_signature(trace)
        # Internal-consistency checks: the digest pins the structural
        # signature, and the rebuilt trace must embed exactly the stored
        # address vector (same fit inputs as the original compile).
        if artifacts.signature_digest(sig0) != sig_digest:
            return None
        if trace_addresses(trace) != addr0.tolist():
            return None
        if any(delta.shape != addr0.shape for _d, delta in deltas):
            return None
        template = RowTemplate(trace, key0, addr0, deltas, signature=sig0)
        template._sig_digest = sig_digest
        return template

    def _record_class(self, cls: Tuple, template: Optional[RowTemplate]) -> None:
        """Write a freshly resolved class (or demotion verdict) back."""
        if self.store is None or self._bundle_digest is None:
            return
        if template is None:
            entry: object = "demoted"
        else:
            trace_payload = artifacts.encode_trace(template.trace)
            if trace_payload is None:
                return  # instruction type outside the codec; keep it live-only
            entry = {
                "trace": trace_payload,
                "key0": list(template.key0),
                "addr0": template.addr0.tolist(),
                "deltas": [[d, delta.tolist()] for d, delta in template.deltas],
                "sig": template.sig_digest(),
            }
        if self._bundle_out is None:
            self._bundle_out = {"edge": self.edge, "classes": dict(self._stored_classes)}
        self._bundle_out["edge"] = self.edge
        self._bundle_out["classes"][repr(cls)] = entry
        # Read-modify-write with atomic replace: concurrent writers may
        # race, but entries are deterministic per digest, so last-writer-
        # wins only ever loses still-recomputable classes, never coherence.
        self.store.store(
            "templates", self._bundle_digest, self._bundle_out, inputs=self._bundle_inputs
        )

    # ------------------------------------------------------------------

    def _class_of(self, key: Tuple[int, ...]) -> Optional[Tuple]:
        if len(key) != len(self.shape):
            return None
        edge = self.edge
        labels: List[object] = []
        for k, n in zip(key, self.shape):
            if k < edge:
                labels.append(("L", k))
            elif k >= n - edge:
                labels.append(("R", n - k))
            else:
                labels.append("M")
        return tuple(labels)

    def _varying_dims(self, cls: Tuple) -> List[int]:
        """Dimensions whose coordinate actually varies within the class."""
        edge = self.edge
        return [
            d
            for d, label in enumerate(cls)
            if label == "M" and (self.shape[d] - 2 * edge) >= 2
        ]

    def _compile_class(self, cls: Tuple, block: KernelBlock) -> Optional[RowTemplate]:
        kernel = self.kernel
        key0 = block.key
        COMPILE_STATS["probe_emits"] += 1
        trace0 = kernel.emit(block)
        sig0 = trace_signature(trace0)
        addr0 = np.asarray(trace_addresses(trace0), dtype=np.int64)

        deltas: List[Tuple[int, np.ndarray]] = []
        edge = self.edge
        for d in self._varying_dims(cls):
            lo, hi = edge, self.shape[d] - edge - 1
            k0 = key0[d]
            step = 1 if k0 < hi else -1
            adjacent = k0 + step
            fitted = self._probe(key0, d, adjacent, sig0)
            if fitted is None:
                return None
            delta = (fitted - addr0) // step
            if np.any(addr0 + delta * step != fitted):
                return None  # non-integer per-step delta
            # Verify the fit at both extremes of the dimension's range.
            for kp in (lo, hi):
                if kp in (k0, adjacent):
                    continue
                probed = self._probe(key0, d, kp, sig0)
                if probed is None or np.any(addr0 + delta * (kp - k0) != probed):
                    return None
            deltas.append((d, delta))

        if len(deltas) >= 2:
            # Corner probe: all varying dimensions at their far extreme at
            # once, checking that the per-dimension deltas add.
            corner = list(key0)
            expected = addr0.copy()
            for d, delta in deltas:
                hi = self.shape[d] - edge - 1
                kp = hi if key0[d] != hi else edge
                corner[d] = kp
                expected = expected + delta * (kp - key0[d])
            corner_block = self._by_key.get(tuple(corner))
            if corner_block is None:
                return None
            COMPILE_STATS["probe_emits"] += 1
            corner_trace = kernel.emit(corner_block)
            if trace_signature(corner_trace) != sig0:
                return None
            if np.any(
                np.asarray(trace_addresses(corner_trace), dtype=np.int64) != expected
            ):
                return None

        return RowTemplate(trace0, key0, addr0, tuple(deltas), signature=sig0)

    def _probe(
        self, key0: Tuple[int, ...], d: int, kp: int, sig0: Tuple
    ) -> Optional[np.ndarray]:
        """Emit the block at ``key0`` with dimension ``d`` set to ``kp``."""
        key = key0[:d] + (kp,) + key0[d + 1 :]
        probe_block = self._by_key.get(key)
        if probe_block is None:
            return None
        COMPILE_STATS["probe_emits"] += 1
        trace = self.kernel.emit(probe_block)
        if trace_signature(trace) != sig0:
            return None
        return np.asarray(trace_addresses(trace), dtype=np.int64)
