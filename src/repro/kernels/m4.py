"""Apple-M4 portability kernel (Section 4).

The M4 preset has no vector-FMLA capability; the inner-axis work of star
stencils runs on the matrix unit's **M-MLA** (``FMLA_M``) instruction
instead, which multiplies a group of four consecutive vector registers by
a broadcast coefficient and accumulates into the *even* rows of a tile.
That fragmented layout makes in-place accumulation architecturally
infeasible (Section 4.1), so the kernel reverts to the naive structure:

* **pass 1** — vertical outer products accumulate into the output tiles;
* **pass 2** — per four-row group: shifted row vectors are synthesized
  with EXT (still available and overlappable with matrix instructions,
  Section 4.2) and M-MLA accumulates the horizontal taps into a scratch
  tile's even rows;
* **combine** — the multi-stage workflow of Section 3.1.1 that in-place
  accumulation exists to avoid: each partial sum is moved out of the
  tiles with the slow slice-to-vector MOVA (2x the outer-product
  initiation interval), aggregated with FADD, and stored.

Box stencils need no vector-compute part, so on the M4 they use the
ordinary :class:`~repro.kernels.inplace_hybrid.InplaceHybridKernel` box
path (see :mod:`repro.kernels.registry`); this class implements the star
path only.  Scheduling and spatial prefetch apply exactly as on the LX2
(Sections 4.2/4.3, Figure 18).
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import (
    EXT,
    FADD_V,
    FMLA_M,
    FMOPA,
    LD1D,
    MOVA_TILE_TO_VEC,
    PRFM,
    SET_LANES,
    ST1D,
    ZERO_TILE,
)
from repro.isa.program import KernelBlock, LoopNest, Trace
from repro.isa.registers import SVL_LANES, TileReg, VReg
from repro.kernels.base import (
    GroupedTrace,
    COEF_H_REG,
    CV_POOL,
    KernelOptions,
    RegRotator,
    StencilKernelBase,
    rows_for_placement,
    sliding_vectors,
)

#: Aligned row vectors of one 4-row group: left, center, right banks.
_LEFT_REGS = tuple(range(0, 4))
_CENTER_REGS = tuple(range(4, 8))
#: The M-MLA vector-group window (must be consecutive registers).
_GROUP_BASE = 8
_RIGHT_REGS = tuple(range(12, 16))
#: Combine-phase temporaries (deep rotation so the scheduler can
#: overlap the MOVA->FADD->store chains of adjacent row groups).
_COMBINE_REGS = tuple(range(17, 24))

_GROUP = FMLA_M.GROUP  # 4 rows per M-MLA


class M4HybridKernel(StencilKernelBase):
    """Star-stencil kernel for the Apple M4 (M-MLA + naive accumulation)."""

    method = "hstencil-m4"
    traversal = "panel"
    supports_3d = False

    def __init__(self, spec, src, dst, config, options: Optional[KernelOptions] = None) -> None:
        options = options or KernelOptions()
        super().__init__(spec, src, dst, config, options)
        if spec.pattern != "star":
            raise ValueError(
                f"{self.method} implements the star path; box stencils use the "
                "inplace kernel's box path on the M4"
            )
        if not config.has_matrix_mla:
            raise ValueError(f"{config.name} has no matrix-MLA (M-MLA) support")
        w = self.options.unroll_j
        if not 1 <= w <= 6:
            # Two tiles are reserved as alternating M-MLA scratch
            # accumulators (double buffering decouples adjacent groups).
            raise ValueError(f"unroll_j must be in [1, 6] on the M4, got {w}")
        self._require_divisible(SVL_LANES * w, rows_multiple=SVL_LANES)
        r = spec.radius
        vcol = spec.vertical_coeffs()
        self._v_table = self._write_rodata(sliding_vectors(vcol, r), "cv_vertical")
        self._v_rows = {
            d: rows_for_placement(vcol, r, d) for d in range(-r, SVL_LANES + r)
        }
        hrow = spec.horizontal_offaxis_coeffs()
        self._h_shifts = [s for s in range(-r, r + 1) if s != 0 and hrow[s + r] != 0.0]
        coefs = [hrow[s + r] for s in self._h_shifts]
        while len(coefs) < SVL_LANES:
            coefs.append(0.0)
        if len(coefs) > SVL_LANES:
            raise ValueError(f"{self.method}: too many horizontal taps")
        self._hcoef_values = tuple(coefs)

    # ------------------------------------------------------------------

    def preamble(self) -> Trace:
        out = Trace()
        out.append(SET_LANES(COEF_H_REG, self._hcoef_values))
        return out

    def loop_nest(self) -> LoopNest:
        return self._band_nest(SVL_LANES * self.options.unroll_j)

    def emit(self, block: KernelBlock) -> Trace:
        ib, jp = block.key
        w = self.options.unroll_j
        r = self.spec.radius
        i_base = ib * SVL_LANES
        j_base = jp * SVL_LANES * w
        out = GroupedTrace()
        aligned_pool = RegRotator(tuple(range(0, 10)))
        cv_pool = RegRotator(CV_POOL)
        combine_pool = RegRotator(_COMBINE_REGS)
        tiles = [TileReg(u) for u in range(w)]
        scratches = [TileReg(w), TileReg(w + 1)]
        rows_limit = self.src.rows

        # ---- pass 1: vertical outer products into the output tiles ----
        for tile in tiles:
            out.append(ZERO_TILE(tile))
        for d in range(-r, SVL_LANES + r):
            i0 = i_base + d
            rows = self._v_rows[d]
            if not rows:
                continue
            cv = cv_pool.take()
            out.append(LD1D(cv, self._v_table + (d + r) * SVL_LANES))
            if self.options.prefetch:
                nxt = i0 + self.options.prefetch_distance
                if nxt < rows_limit + r:
                    for u in range(w):
                        out.append(PRFM(self.src.addr(nxt, j_base + u * SVL_LANES)))
            for u in range(w):
                reg = aligned_pool.take()
                out.append(LD1D(reg, self.src.addr(i0, j_base + u * SVL_LANES)))
                out.append(FMOPA(tiles[u], cv, reg, rows=rows))
            self._overhead(out)

        # ---- pass 2: M-MLA horizontal axis + multi-stage combine ----
        group_no = 0
        for u in range(w):
            j = j_base + u * SVL_LANES
            for g0 in range(0, SVL_LANES, _GROUP):
                scratch = scratches[group_no % 2]
                group_no += 1
                self._emit_group(out, combine_pool, scratch, tiles[u], i_base, g0, j)
            self._overhead(out)

        return self._finalize(out)

    # ------------------------------------------------------------------

    def _emit_group(
        self,
        out: Trace,
        combine_pool: RegRotator,
        scratch: TileReg,
        vertical_tile: TileReg,
        i_base: int,
        g0: int,
        j: int,
    ) -> None:
        """Horizontal taps + combine for rows ``i_base+g0 .. +3``."""
        i0 = i_base + g0
        out.append(ZERO_TILE(scratch))

        # Aligned banks for the four rows (left / center / right).
        need_left = any(s < 0 for s in self._h_shifts)
        need_right = any(s > 0 for s in self._h_shifts)
        for k in range(_GROUP):
            out.append(LD1D(VReg(_CENTER_REGS[k]), self.src.addr(i0 + k, j)))
            if need_left:
                out.append(LD1D(VReg(_LEFT_REGS[k]), self.src.addr(i0 + k, j - SVL_LANES)))
            if need_right:
                out.append(LD1D(VReg(_RIGHT_REGS[k]), self.src.addr(i0 + k, j + SVL_LANES)))

        if self.options.prefetch:
            out.append(PRFM(self.dst.addr(i0, j), write=True))

        for t, s in enumerate(self._h_shifts):
            # Build the shifted vector group in the consecutive window.
            for k in range(_GROUP):
                dst = VReg(_GROUP_BASE + k)
                if s > 0:
                    out.append(EXT(dst, VReg(_CENTER_REGS[k]), VReg(_RIGHT_REGS[k]), s))
                else:
                    out.append(
                        EXT(dst, VReg(_LEFT_REGS[k]), VReg(_CENTER_REGS[k]), SVL_LANES + s)
                    )
            out.append(FMLA_M(scratch, VReg(_GROUP_BASE), COEF_H_REG, t))

        # Multi-stage combine (Section 3.1.1's workflow, forced by the
        # fragmented M-MLA layout): slice both partial sums out of the
        # tiles with slow MOVAs, aggregate, write back.
        for k in range(_GROUP):
            horiz = combine_pool.take()
            out.append(MOVA_TILE_TO_VEC(horiz, scratch, 2 * k))
            vert = combine_pool.take()
            out.append(MOVA_TILE_TO_VEC(vert, vertical_tile, g0 + k))
            out.append(FADD_V(horiz, horiz, vert))
            out.append(ST1D(horiz, self.dst.addr(i0 + k, j)))
