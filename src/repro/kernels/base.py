"""Shared infrastructure for kernel generators.

Conventions used by every generator:

* **Register map.**  ``z0..z15`` form the rotating data/temporary pool,
  ``z16`` holds the compacted horizontal coefficients, ``z17..z22`` rotate
  loaded sliding coefficient vectors, ``z23`` is scratch, and ``z24..z31``
  hold the unit-basis vectors ``e0..e7`` used by the in-place accumulation
  trick.  Pools rotate so consecutive iterations never create false
  (WAW/WAR) dependencies on the in-order scoreboard.

* **Coefficient tables (.rodata).**  Sliding coefficient vectors (one per
  vertical placement ``d`` per horizontal shift ``s`` per plane ``dz``) are
  precomputed at kernel-construction time and written straight into
  simulated memory, the way real kernels keep coefficient tables in the
  data segment.  The kernel loads the vector it needs with an ordinary
  ``LD1D`` (these stay L1-resident).

* **Traversal.**  Matrix-family kernels traverse *panels* (``j`` outer,
  ``i`` bands inner) — Figure 11's access pattern; vector-family kernels
  traverse rows (``i`` outer, ``j`` inner streaming).  Bands group blocks
  by the outer index for band-sampled timing.

* **Divisibility.**  Matrix kernels require the interior row count to be a
  multiple of the tile height (8) and the column count a multiple of
  ``8 * unroll_j``; vector kernels require columns to be a multiple of 8.
  Real implementations peel remainders with predication; the reproduction
  keeps grids conforming instead (all evaluation sizes are powers of two).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.isa.instructions import SCALAR_OP, SET_LANES
from repro.isa.program import Kernel, KernelBlock, LoopNest, Trace
from repro.isa.registers import SVL_LANES, VReg
from repro.machine.config import MachineConfig
from repro.stencils.grid import Grid2D, Grid3D
from repro.stencils.spec import StencilSpec

#: Rotating data/temporary registers.
DATA_POOL: Tuple[int, ...] = tuple(range(0, 16))
#: Horizontal (off-axis) coefficient register.
COEF_H_REG = VReg(16)
#: Rotating pool for loaded sliding coefficient vectors.
CV_POOL: Tuple[int, ...] = tuple(range(17, 23))
#: Scratch register.
SCRATCH_REG = VReg(23)
#: Unit-basis vectors e0..e7 (in-place accumulation).
UNIT_BASE = 24


@dataclass(frozen=True)
class KernelOptions:
    """Tuning knobs shared by the kernel generators.

    The defaults describe the *unoptimized* hybrid kernel; the HStencil
    configurations of the evaluation turn on ``scheduled`` and
    ``prefetch`` (see :mod:`repro.kernels.registry`).
    """

    #: Matrix tile registers used concurrently (multi-register kernel).
    unroll_j: int = 4
    #: Synthesize shifted vectors with EXT concatenation (data reuse);
    #: when False every shifted vector is an unaligned load.
    ext_reuse: bool = True
    #: Apply the dependence-aware list-scheduling pass to each block.
    scheduled: bool = False
    #: Insert spatial-prefetch instructions (Algorithm 3).
    prefetch: bool = False
    #: Rows ahead to prefetch the input grid.
    prefetch_distance: int = 1
    #: Horizontal taps rolled back from vector MLA to outer products
    #: (None = balance automatically, see replacement.plan_replacement).
    mla_rollback: Optional[int] = None
    #: Shifts whose EXT is replaced by an unaligned load
    #: (None = balance automatically).
    ext_to_load: Optional[int] = None
    #: SCALAR_OP loop-overhead instructions emitted per micro-iteration.
    scalar_overhead: int = 1
    #: Chunk size of the baseline (compiler/core) local scheduler that every
    #: kernel enjoys; 0 disables it.  ``scheduled=True`` upgrades this to
    #: whole-block scheduling (the paper's manual interleaving).
    compiler_window: int = 24

    def with_(self, **kwargs) -> "KernelOptions":
        """Functional update."""
        return replace(self, **kwargs)


class RegRotator:
    """Round-robin handle allocator over a fixed register set.

    Generators take a fresh register for every produced value; as long as
    each value's last use happens within ``len(pool)`` subsequent takes,
    rotation is safe and removes false dependencies.
    """

    def __init__(self, indices: Sequence[int]) -> None:
        if not indices:
            raise ValueError("register pool cannot be empty")
        self._regs = [VReg(i) for i in indices]
        self._next = 0

    def take(self) -> VReg:
        reg = self._regs[self._next % len(self._regs)]
        self._next += 1
        return reg

    def reset(self) -> None:
        self._next = 0

    def __len__(self) -> int:
        return len(self._regs)


def sliding_vectors(column: np.ndarray, radius: int) -> np.ndarray:
    """All vertical placements of one coefficient column.

    ``column`` is the length ``2r+1`` coefficient column of one horizontal
    shift (``StencilSpec.column``).  Returns an ``(8 + 2r, 8)`` array
    whose row ``d + r`` is the FMOPA coefficient vector for input row
    ``i0 = i + d``:  ``v[k] = column[d - k + r]`` clipped to the tile.
    """
    side = 2 * radius + 1
    if column.shape != (side,):
        raise ValueError(f"column must have length {side}, got {column.shape}")
    out = np.zeros((SVL_LANES + 2 * radius, SVL_LANES))
    for di, d in enumerate(range(-radius, SVL_LANES + radius)):
        for k in range(SVL_LANES):
            idx = d - k + radius
            if 0 <= idx < side:
                out[di, k] = column[idx]
    return out


def rows_for_placement(column: np.ndarray, radius: int, d: int) -> Tuple[int, ...]:
    """Tile rows with nonzero coefficient for placement ``d`` of a column."""
    side = 2 * radius + 1
    rows = []
    for k in range(SVL_LANES):
        idx = d - k + radius
        if 0 <= idx < side and column[idx] != 0.0:
            rows.append(k)
    return tuple(rows)


class GroupedTrace(Trace):
    """A trace with recorded loop-body boundaries.

    Kernels emit into one of these; ``mark()`` closes the current body
    (called by ``StencilKernelBase._overhead`` at each micro-iteration).
    Baseline scheduling operates per body.
    """

    def __init__(self) -> None:
        super().__init__()
        self._marks: List[int] = []

    def mark(self) -> None:
        """Record a body boundary at the current position."""
        if not self._marks or self._marks[-1] != len(self):
            self._marks.append(len(self))

    def bodies(self) -> List[Trace]:
        """Split the trace at the recorded boundaries."""
        out: List[Trace] = []
        start = 0
        for end in self._marks:
            if end > start:
                out.append(Trace(self[start:end]))
            start = end
        if start < len(self):
            out.append(Trace(self[start:]))
        return out


GridLike = Union[Grid2D, Grid3D]


class StencilKernelBase(Kernel):
    """Common construction/validation for all stencil kernels."""

    #: Set by subclasses; appears in benchmark tables.
    method = "base"
    #: "panel" (j outer) or "row" (i outer) traversal.
    traversal = "panel"
    #: Whether the subclass implements 3D specs.
    supports_3d = False

    def __init__(
        self,
        spec: StencilSpec,
        src: GridLike,
        dst: GridLike,
        config: MachineConfig,
        options: Optional[KernelOptions] = None,
    ) -> None:
        self.spec = spec
        self.src = src
        self.dst = dst
        self.config = config
        self.options = options or KernelOptions()
        self.name = self.method
        self._validate()

    # -- validation -----------------------------------------------------------

    def _validate(self) -> None:
        spec, src, dst = self.spec, self.src, self.dst
        if spec.ndim == 3 and not self.supports_3d:
            raise ValueError(f"{self.method} kernel does not support 3D stencils")
        if spec.ndim == 2 and not isinstance(src, Grid2D):
            raise TypeError("2D stencil needs Grid2D operands")
        if spec.ndim == 3 and not isinstance(src, Grid3D):
            raise TypeError("3D stencil needs Grid3D operands")
        if type(src) is not type(dst):
            raise TypeError("source and destination grids must have the same type")
        if (src.rows, src.cols) != (dst.rows, dst.cols):
            raise ValueError("source and destination grids must have equal shape")
        if src.radius < spec.radius or dst.radius < spec.radius:
            raise ValueError(
                f"grids need halo >= stencil radius {spec.radius}"
            )
        if spec.ndim == 3 and src.depth != dst.depth:  # type: ignore[union-attr]
            raise ValueError("3D grids must have equal depth")

    def _require_divisible(self, cols_multiple: int, rows_multiple: int = 1) -> None:
        if self.src.cols % cols_multiple != 0:
            raise ValueError(
                f"{self.method}: interior columns ({self.src.cols}) must be a "
                f"multiple of {cols_multiple}"
            )
        if rows_multiple > 1 and self.src.rows % rows_multiple != 0:
            raise ValueError(
                f"{self.method}: interior rows ({self.src.rows}) must be a "
                f"multiple of {rows_multiple}"
            )

    # -- coefficient materialization --------------------------------------------

    def _write_rodata(self, table: np.ndarray, name: str) -> int:
        """Place a coefficient table into simulated memory; return base."""
        base = self.src.mem.alloc(table.size, name=f"{self.name}/{name}-{id(self):x}")
        self.src.mem.write_array(base, table)
        return base

    def _unit_vector_preamble(self) -> Trace:
        """Materialize e0..e7 into z24..z31."""
        out = Trace()
        for k in range(SVL_LANES):
            values = [0.0] * SVL_LANES
            values[k] = 1.0
            out.append(SET_LANES(VReg(UNIT_BASE + k), tuple(values)))
        return out

    @staticmethod
    def unit_reg(row: int) -> VReg:
        """Register holding the unit-basis vector for tile row ``row``."""
        if not 0 <= row < SVL_LANES:
            raise ValueError(f"row out of range: {row}")
        return VReg(UNIT_BASE + row)

    # -- loop-nest helpers --------------------------------------------------------

    def _band_nest(self, tile_cols: int) -> LoopNest:
        """Band-major traversal (Algorithm 2: ``for i: for j:``).

        Key = (band, panel [, z leading]).  Each band sweeps the full row
        width; consecutive bands re-read the ``2r`` overlapping input rows,
        the reuse whose survival in L1 is grid-size dependent (Table 3).
        """
        rows, cols = self.src.rows, self.src.cols
        panels = cols // tile_cols
        bands = rows // SVL_LANES
        blocks: List[KernelBlock] = []
        if self.spec.ndim == 2:
            for ib in range(bands):
                for jp in range(panels):
                    blocks.append(KernelBlock(key=(ib, jp), points=SVL_LANES * tile_cols))
            return LoopNest(shape=(bands, panels), blocks=blocks)
        depth = self.src.depth  # type: ignore[union-attr]
        for z in range(depth):
            for ib in range(bands):
                for jp in range(panels):
                    blocks.append(
                        KernelBlock(key=(z, ib, jp), points=SVL_LANES * tile_cols)
                    )
        return LoopNest(shape=(depth, bands, panels), blocks=blocks)

    def _row_nest(self) -> LoopNest:
        """Row traversal: key = (row [, z]); one block per output row."""
        rows, cols = self.src.rows, self.src.cols
        blocks: List[KernelBlock] = []
        if self.spec.ndim == 2:
            for i in range(rows):
                blocks.append(KernelBlock(key=(i,), points=cols))
            return LoopNest(shape=(rows,), blocks=blocks)
        depth = self.src.depth  # type: ignore[union-attr]
        for z in range(depth):
            for i in range(rows):
                blocks.append(KernelBlock(key=(z, i), points=cols))
        return LoopNest(shape=(depth, rows), blocks=blocks)

    # -- addressing --------------------------------------------------------------

    def _addr(self, grid: GridLike, i: int, j: int, z: Optional[int] = None) -> int:
        if self.spec.ndim == 2:
            return grid.addr(i, j)  # type: ignore[call-arg]
        return grid.addr(z, i, j)  # type: ignore[call-arg, arg-type]

    # -- misc ----------------------------------------------------------------------

    def _overhead(self, out: Trace) -> None:
        """Emit loop-overhead instructions and close the current loop body.

        Every kernel calls this exactly once per micro-iteration, so it
        doubles as the body boundary marker for baseline scheduling.
        """
        for _ in range(self.options.scalar_overhead):
            out.append(SCALAR_OP(kind="loop"))
        if isinstance(out, GroupedTrace):
            out.mark()

    def _finalize(self, trace: Trace) -> Trace:
        """Apply the scheduling policy to a finished block trace.

        Baseline (``scheduled=False``): each loop *body* is scheduled
        independently — the compiler's basic-block scheduler, which every
        real comparison method is compiled with; instructions never move
        across iteration boundaries.  ``scheduled=True`` schedules the
        whole block at once: HStencil's fine-grained matrix-vector
        interleaving across iterations (Section 3.2.2).
        """
        from repro.kernels.scheduling import schedule_trace

        if self.options.scheduled:
            return schedule_trace(trace, self.config)
        if isinstance(trace, GroupedTrace) and self.options.compiler_window:
            out = Trace()
            for body in trace.bodies():
                out.extend(schedule_trace(body, self.config))
            return out
        if self.options.compiler_window:
            return schedule_trace(trace, self.config, window=self.options.compiler_window)
        return trace

    def describe_options(self) -> str:
        o = self.options
        bits = [f"w={o.unroll_j}"]
        if o.ext_reuse:
            bits.append("ext")
        if o.scheduled:
            bits.append("sched")
        if o.prefetch:
            bits.append("pf")
        return ",".join(bits)
