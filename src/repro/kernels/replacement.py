"""Vector-instruction replacement planning (Section 3.2.1).

The hybrid kernel has freedom in two places:

* **MLA rollback** — a horizontal star tap can be computed either by the
  vector unit (FMLA into the row partial sum) or rolled back to the matrix
  unit (an extra FMOPA with a single-live-row sliding coefficient vector).
  All-vector leaves the matrix unit idle; all-matrix recreates STOP's
  utilization problem.
* **EXT vs load** — each shifted operand can be synthesized with EXT (a
  vector-pipe instruction, contending with FMLA) or fetched with an
  unaligned load (a load-pipe instruction that hits L1).

``plan_replacement`` enumerates both knobs and picks the assignment that
minimizes the bottleneck pipe's cycles per block, using the machine's port
counts — a faithful, automated version of the paper's hand balancing
("we alter some of the EXT instructions back to load instructions, thereby
balancing more of the pipeline").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.isa.instructions import PortClass
from repro.isa.registers import SVL_LANES
from repro.kernels.base import KernelOptions
from repro.machine.config import MachineConfig
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class ReplacementPlan:
    """Outcome of pipeline balancing for one (spec, machine, options)."""

    #: Horizontal star taps computed on the vector unit (shifts).
    vector_shifts: Tuple[int, ...]
    #: Horizontal taps rolled back to single-row outer products (shifts).
    rollback_shifts: Tuple[int, ...]
    #: Shifted operands synthesized by EXT concatenation (shifts).
    ext_shifts: Tuple[int, ...]
    #: Shifted operands fetched with unaligned loads (shifts).
    load_shifts: Tuple[int, ...]
    #: Estimated bottleneck cycles per block for the chosen plan.
    est_cycles: float
    #: Estimated per-pipe cycles per block (diagnostics / tests).
    pipe_cycles: Dict[str, float]

    @property
    def n_rollback(self) -> int:
        return len(self.rollback_shifts)

    @property
    def n_ext_to_load(self) -> int:
        return len(self.load_shifts)


def _estimate(
    spec: StencilSpec,
    config: MachineConfig,
    options: KernelOptions,
    n_rollback: int,
    n_load: int,
    hybrid_star: bool,
) -> Tuple[float, Dict[str, float]]:
    """Pipe cycles per block for a candidate (rollback, ext->load) split."""
    r = spec.radius
    w = options.unroll_j
    d_total = SVL_LANES + 2 * r  # input-row iterations per block
    d_inner = SVL_LANES  # iterations with a vector part
    planes = len(spec.plane_offsets())

    if hybrid_star:
        h_shifts = [s for s in spec.nonzero_shifts(0) if s != 0]
        n_shift = len(h_shifts)
        n_vec = n_shift - n_rollback
        matrix_per_d_all = planes * w  # vertical FMOPA per plane per tile
        matrix_per_d_inner = w * (n_rollback + (1 if n_vec > 0 else 0))
        vector_per_d_inner = w * ((n_shift - n_load) + n_vec)
        loads_per_d_all = planes * w + planes  # aligned + cv loads
        loads_per_d_inner = w * n_load + n_rollback + (2 if (n_shift - n_load) > 0 else 0)
    else:
        # Box hybrid: every shift on the matrix unit; knob = EXT vs load.
        shifts = [s for dz in spec.plane_offsets() for s in spec.nonzero_shifts(dz)]
        n_shift = len([s for s in shifts if s != 0])
        if n_rollback:  # meaningless for box
            return float("inf"), {}
        matrix_per_d_all = w * len(shifts)
        matrix_per_d_inner = 0.0
        vector_per_d_inner = 0.0
        vector_per_d_all = w * (n_shift - n_load)
        loads_per_d_all = (
            planes * w + len(shifts) + w * n_load + (2 if (n_shift - n_load) > 0 else 0)
        )
        loads_per_d_inner = 0.0

    store_per_block = SVL_LANES * w
    if options.prefetch:
        loads_per_d_all += 2 * w  # PRFM for A's next row and B's dest row

    v_ops = d_inner * vector_per_d_inner
    if not hybrid_star:
        v_ops = d_total * vector_per_d_all
    m_ops = d_total * matrix_per_d_all + d_inner * matrix_per_d_inner
    l_ops = d_total * loads_per_d_all + d_inner * loads_per_d_inner
    s_ops = store_per_block

    pipes = {
        "V": v_ops / max(config.port_count(PortClass.VECTOR), 1),
        "M": m_ops / max(config.port_count(PortClass.MATRIX), 1),
        "L": l_ops / max(config.port_count(PortClass.LOAD), 1),
        "S": s_ops / max(config.port_count(PortClass.STORE), 1),
    }
    return max(pipes.values()), pipes


def plan_replacement(
    spec: StencilSpec,
    config: MachineConfig,
    options: Optional[KernelOptions] = None,
) -> ReplacementPlan:
    """Choose the MLA-rollback / EXT->load split for the hybrid kernel.

    Honors explicit ``options.mla_rollback`` / ``options.ext_to_load``
    overrides; otherwise enumerates all feasible splits and keeps the one
    with the lowest bottleneck estimate (ties: fewer rollbacks, fewer load
    conversions — i.e. the least-intrusive plan).
    """
    options = options or KernelOptions()
    hybrid_star = spec.pattern == "star"
    h_shifts = sorted(
        (s for s in spec.nonzero_shifts(0) if s != 0), key=lambda s: (-abs(s), s)
    )
    n_shift = len(h_shifts)

    rollback_range = range(n_shift + 1) if hybrid_star else (0,)
    if (
        options.mla_rollback is None
        and hybrid_star
        and spec.radius == 1
        and options.prefetch
    ):
        # Empirical default (see bench_ablation_replacement): for radius-1
        # stars on out-of-cache grids the two-tap MLA chain serializes on
        # missed operands faster than prefetch can cover — rolling both
        # taps back to single-row outer products is ~2.5x faster, while
        # in-cache the vector path wins.  Radius >= 2 prefers the vector
        # path everywhere.
        rollback_range = (n_shift,)
    if options.mla_rollback is not None:
        if not 0 <= options.mla_rollback <= n_shift:
            raise ValueError(f"mla_rollback must be in [0, {n_shift}]")
        rollback_range = (options.mla_rollback,)
    load_range = range(n_shift + 1)
    if options.ext_to_load is not None:
        if not 0 <= options.ext_to_load <= n_shift:
            raise ValueError(f"ext_to_load must be in [0, {n_shift}]")
        load_range = (options.ext_to_load,)
    if not options.ext_reuse:
        load_range = (n_shift,)

    best: Optional[Tuple[float, int, int, Dict[str, float]]] = None
    for n_rb in rollback_range:
        for n_ld in load_range:
            est, pipes = _estimate(spec, config, options, n_rb, n_ld, hybrid_star)
            key = (est, n_rb, n_ld)
            if best is None or key < (best[0], best[1], best[2]):
                best = (est, n_rb, n_ld, pipes)
    assert best is not None
    est, n_rb, n_ld, pipes = best

    rollback = tuple(h_shifts[:n_rb]) if hybrid_star else ()
    vector = tuple(s for s in h_shifts if s not in rollback) if hybrid_star else ()
    # Far shifts are converted to loads first (they need the widest EXT).
    if hybrid_star:
        shift_universe = h_shifts
    else:
        shift_universe = sorted(
            {s for dz in spec.plane_offsets() for s in spec.nonzero_shifts(dz) if s != 0},
            key=lambda s: (-abs(s), s),
        )
        n_ld = min(n_ld, len(shift_universe))
    loads = tuple(shift_universe[:n_ld])
    exts = tuple(s for s in shift_universe if s not in loads)
    return ReplacementPlan(
        vector_shifts=vector,
        rollback_shifts=rollback,
        ext_shifts=exts,
        load_shifts=loads,
        est_cycles=est,
        pipe_cycles=pipes,
    )
