"""The HStencil in-place accumulation matrix-vector kernel (Algorithm 2).

This is the paper's contribution.  For every output tile (8 rows x 8w
columns held in ``w`` ZA registers):

* the **matrix unit** computes the outer-axis part: one FMOPA per input row
  against the sliding vertical coefficient vector (for box stencils, one
  per horizontal shift — the full Equation 3 scatter);
* the **vector unit** computes the inner-axis part of star stencils: the
  horizontal taps of each interior row are gathered with FMLA chains into
  a row partial sum;
* the partial sum is accumulated **in place** into the tile with a single
  outer product against a unit-basis coefficient vector — the trick of
  Section 3.1.1 that replaces the slice-to-vector transfer + add + store
  round trip of the naive method with one matrix-pipe instruction
  (Equation 6's ``T_overhead = T_outer_product``);
* tile row ``m`` is complete once input row ``i + m + r`` has been
  processed, so its store is emitted inside the loop (the scattered-store
  optimization of Section 3.2.2) instead of as an end-of-block burst;
* shifted operands come from EXT data reuse or unaligned loads according
  to the :mod:`~repro.kernels.replacement` plan, which also decides how
  many horizontal taps are rolled back to the matrix unit;
* with ``options.scheduled`` the block trace is re-ordered by the
  dependence-aware list scheduler (Section 3.2.2), and with
  ``options.prefetch`` the spatial-prefetch instructions of Algorithm 3
  are inserted (next input row, destination output row).

3D stencils accumulate all ``dz`` planes into the same tile before the
row store — the paper's "2D stencil with different weights" treatment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.isa.instructions import (
    EXT,
    FADD_V,
    FMLA_IDX,
    FMOPA,
    FMUL_IDX,
    LD1D,
    PRFM,
    SET_LANES,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.program import KernelBlock, LoopNest, Trace
from repro.isa.registers import SVL_LANES, TileReg, VReg
from repro.kernels.base import (
    GroupedTrace,
    COEF_H_REG,
    CV_POOL,
    KernelOptions,
    RegRotator,
    StencilKernelBase,
    rows_for_placement,
    sliding_vectors,
)
from repro.kernels.replacement import ReplacementPlan, plan_replacement

def _register_pools(w: int):
    """(aligned, shift, vacc) register pools for unroll factor ``w``.

    Rotation depth is what lets the list scheduler run MLA chains ahead of
    the tile dependency chain: partial-sum accumulators and shifted
    operands each need several registers in flight, otherwise WAR hazards
    couple consecutive iterations and serialize the kernel.
    """
    if w <= 4:
        return tuple(range(0, 6)), tuple(range(6, 11)), tuple(range(11, 16))
    return tuple(range(0, 10)), tuple(range(10, 13)), tuple(range(13, 16))


class InplaceHybridKernel(StencilKernelBase):
    """HStencil: hybrid matrix-vector kernel with in-place accumulation."""

    method = "hstencil"
    traversal = "panel"
    supports_3d = True

    def __init__(self, spec, src, dst, config, options: Optional[KernelOptions] = None) -> None:
        options = options or KernelOptions()
        super().__init__(spec, src, dst, config, options)
        w = self.options.unroll_j
        if not 1 <= w <= 8:
            raise ValueError(f"unroll_j must be in [1, 8], got {w}")
        # Unlike the comparison kernels, the HStencil kernel handles
        # arbitrary interior sizes: partial bands use a shorter input-row
        # window and partial tiles use masked stores (tail predication).
        self._is_star = spec.pattern == "star"
        if self._is_star:
            if not config.has_vector_fmla:
                raise ValueError(
                    f"{config.name} has no vector FMLA; use the hstencil-m4 kernel"
                )
            if not config.supports_inplace_accumulation:
                raise ValueError(
                    f"{config.name} cannot accumulate in place (fragmented "
                    "M-MLA layout); use the hstencil-m4 kernel"
                )
        self.plan: ReplacementPlan = plan_replacement(spec, config, self.options)
        self._build_tables()

    # ------------------------------------------------------------------

    def _build_tables(self) -> None:
        spec = self.spec
        r = spec.radius
        self._cv_tables: Dict[Tuple[int, int], int] = {}
        self._cv_rows: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}
        self._matrix_shifts: Dict[int, Tuple[int, ...]] = {}

        for dz in spec.plane_offsets():
            if self._is_star:
                shifts: Tuple[int, ...] = (0,)
            else:
                shifts = spec.nonzero_shifts(dz)
            self._matrix_shifts[dz] = shifts
            for s in shifts:
                col = spec.column(s, dz=dz)
                self._cv_tables[(dz, s)] = self._write_rodata(
                    sliding_vectors(col, r), f"cv_dz{dz}_s{s}"
                )
                for d in range(-r, SVL_LANES + r):
                    self._cv_rows[(dz, s, d)] = rows_for_placement(col, r, d)

        # Rolled-back horizontal taps: single-live-row sliding vectors.
        if self._is_star:
            hrow = spec.horizontal_offaxis_coeffs()
            for s in self.plan.rollback_shifts:
                col = np.zeros(2 * r + 1)
                col[r] = hrow[s + r]
                self._cv_tables[("rb", s)] = self._write_rodata(
                    sliding_vectors(col, r), f"cv_rb_s{s}"
                )
            # Compacted vector-tap coefficients: lane t holds the t-th
            # vector shift's coefficient (consumed by FMLA_IDX).
            coefs = [hrow[s + r] for s in self.plan.vector_shifts]
            while len(coefs) < SVL_LANES:
                coefs.append(0.0)
            if len(coefs) > SVL_LANES:
                raise ValueError(
                    f"{self.method}: more than {SVL_LANES} vector taps "
                    f"({len(coefs)}) — roll more back to the matrix unit"
                )
            self._hcoef_values = tuple(coefs)
        else:
            self._hcoef_values = tuple([0.0] * SVL_LANES)

    # ------------------------------------------------------------------

    def preamble(self) -> Trace:
        out = Trace()
        if self._is_star and self.plan.vector_shifts:
            out.extend(self._unit_vector_preamble())
            out.append(SET_LANES(COEF_H_REG, self._hcoef_values))
        return out

    def loop_nest(self) -> LoopNest:
        """Band-major nest with partial tail bands/panels (predication)."""
        rows, cols = self.src.rows, self.src.cols
        w8 = SVL_LANES * self.options.unroll_j
        bands = (rows + SVL_LANES - 1) // SVL_LANES
        panels = (cols + w8 - 1) // w8
        blocks = []

        def band_height(ib: int) -> int:
            return min(SVL_LANES, rows - ib * SVL_LANES)

        def panel_width(jp: int) -> int:
            return min(w8, cols - jp * w8)

        if self.spec.ndim == 2:
            for ib in range(bands):
                for jp in range(panels):
                    blocks.append(
                        KernelBlock(
                            key=(ib, jp), points=band_height(ib) * panel_width(jp)
                        )
                    )
            return LoopNest(shape=(bands, panels), blocks=blocks)
        depth = self.src.depth  # type: ignore[union-attr]
        for z in range(depth):
            for ib in range(bands):
                for jp in range(panels):
                    blocks.append(
                        KernelBlock(
                            key=(z, ib, jp), points=band_height(ib) * panel_width(jp)
                        )
                    )
        return LoopNest(shape=(depth, bands, panels), blocks=blocks)

    # ------------------------------------------------------------------

    def emit(self, block: KernelBlock) -> Trace:
        if self.spec.ndim == 2:
            ib, jp = block.key
            z = None
        else:
            z, ib, jp = block.key
        w = self.options.unroll_j
        r = self.spec.radius
        rows, cols = self.src.rows, self.src.cols
        i_base = ib * SVL_LANES
        j_base = jp * SVL_LANES * w
        band_h = min(SVL_LANES, rows - i_base)
        panel_w = min(SVL_LANES * w, cols - j_base)
        # Tile widths of this panel: full vectors plus a masked tail.
        widths = [SVL_LANES] * (panel_w // SVL_LANES)
        if panel_w % SVL_LANES:
            widths.append(panel_w % SVL_LANES)
        n_tiles = len(widths)
        full_panel = panel_w == SVL_LANES * w
        out = GroupedTrace()
        aligned_regs, shift_regs, vacc_regs = _register_pools(w)
        aligned_pool = RegRotator(aligned_regs)
        shift_pool = RegRotator(shift_regs)
        vacc_pool = RegRotator(vacc_regs)
        cv_pool = RegRotator(CV_POOL)
        tiles = [TileReg(u) for u in range(n_tiles)]
        rows_limit = rows

        for tile in tiles:
            out.append(ZERO_TILE(tile))

        for d in range(-r, band_h + r):
            i0 = i_base + d
            interior = 0 <= d < band_h

            # Spatial prefetch of B's destination row (Algorithm 3 line 6):
            # issued at iteration start so it leads the store by the whole
            # compute body.
            if self.options.prefetch and d >= r:
                m = d - r
                for u in range(n_tiles):
                    out.append(
                        PRFM(
                            self._addr(self.dst, i_base + m, j_base + u * SVL_LANES, z),
                            write=True,
                            length=widths[u],
                        )
                    )

            for dz in self.spec.plane_offsets():
                src_z = None if z is None else z + dz
                self._emit_plane(
                    out,
                    aligned_pool,
                    shift_pool,
                    vacc_pool,
                    cv_pool,
                    tiles,
                    d,
                    dz,
                    i0,
                    j_base,
                    src_z,
                    interior,
                    rows_limit,
                    band_h,
                    full_panel,
                )

            # Scattered store: row m = d - r is complete after this
            # iteration's vertical contribution (Algorithm 2 line 13-14).
            if d >= r:
                m = d - r
                for u in range(n_tiles):
                    out.append(
                        ST1D_SLICE(
                            tiles[u],
                            m,
                            self._addr(self.dst, i_base + m, j_base + u * SVL_LANES, z),
                            mask=widths[u],
                        )
                    )
            self._overhead(out)

        return self._finalize(out)

    # ------------------------------------------------------------------

    def _emit_plane(
        self,
        out: Trace,
        aligned_pool: RegRotator,
        shift_pool: RegRotator,
        vacc_pool: RegRotator,
        cv_pool: RegRotator,
        tiles: List[TileReg],
        d: int,
        dz: int,
        i0: int,
        j_base: int,
        src_z: Optional[int],
        interior: bool,
        rows_limit: int,
        band_h: int = SVL_LANES,
        full_panel: bool = True,
    ) -> None:
        w = len(tiles)
        r = self.spec.radius
        mat_shifts = [
            s for s in self._matrix_shifts[dz] if self._cv_rows[(dz, s, d)]
        ]
        star_extra = self._is_star and interior and dz == 0
        rollback = list(self.plan.rollback_shifts) if star_extra else []
        vector = list(self.plan.vector_shifts) if star_extra else []
        needed_shifts = sorted({s for s in mat_shifts + rollback + vector if s != 0})
        need_ext = any(s in self.plan.ext_shifts for s in needed_shifts)
        need_any = bool(mat_shifts or rollback or vector)
        if not need_any:
            return

        # Aligned loads (plus EXT neighbours) for this input row.  A tail
        # panel has no right-neighbour vector to concatenate from, so its
        # shifted operands fall back to unaligned loads.
        aligned: Dict[int, VReg] = {}
        lo = -1 if need_ext else 0
        hi = (w + 1) if (need_ext and full_panel) else w
        for u in range(lo, hi):
            reg = aligned_pool.take()
            out.append(
                LD1D(reg, self._addr(self.src, i0, j_base + u * SVL_LANES, src_z))
            )
            aligned[u] = reg

        # Spatial prefetch of the next input row (Algorithm 3 line 4).
        # One extra vector covers the right-neighbour line the EXT reuse
        # will touch; the left neighbour was covered by the previous block.
        # Clipped to the band's own read window: prefetching into the next
        # band is wasted (the line is evicted during the rest of the sweep
        # and refetched anyway, pure DRAM-traffic overhead).
        if self.options.prefetch:
            nxt = i0 + self.options.prefetch_distance
            if nxt < rows_limit + r and d + self.options.prefetch_distance < band_h + r:
                extra = 1 if full_panel else 0
                for u in range(w + extra):
                    out.append(
                        PRFM(self._addr(self.src, nxt, j_base + u * SVL_LANES, src_z))
                    )

        def operand(u: int, s: int) -> VReg:
            if s == 0:
                return aligned[u]
            reg = shift_pool.take()
            # The last tile of a tail panel has no right-neighbour vector;
            # positive shifts there use an unaligned load instead of EXT.
            no_right = s > 0 and (u + 1) not in aligned
            if s in self.plan.load_shifts or no_right:
                out.append(
                    LD1D(reg, self._addr(self.src, i0, j_base + u * SVL_LANES + s, src_z))
                )
            elif s > 0:
                out.append(EXT(reg, aligned[u], aligned[u + 1], s))
            else:
                out.append(EXT(reg, aligned[u - 1], aligned[u], SVL_LANES + s))
            return reg

        # Matrix part: outer-axis FMOPAs (all planes, all matrix shifts).
        for s in mat_shifts:
            cv = cv_pool.take()
            out.append(LD1D(cv, self._cv_addr((dz, s), d)))
            rows = self._cv_rows[(dz, s, d)]
            for u in range(w):
                out.append(FMOPA(tiles[u], cv, operand(u, s), rows=rows))

        # Rolled-back horizontal taps: single-live-row outer products.
        for s in rollback:
            cv = cv_pool.take()
            out.append(LD1D(cv, self._cv_addr(("rb", s), d)))
            for u in range(w):
                out.append(FMOPA(tiles[u], cv, operand(u, s), rows=(d,)))

        # Vector part + in-place accumulation (Algorithm 2 lines 9-12).
        # Four or more taps are split into two FMA sub-chains folded by one
        # FADD, halving the partial-sum latency the accumulate waits on.
        if vector:
            for u in range(w):
                n = len(vector)
                split = n >= 4
                vacc = vacc_pool.take()
                vacc2 = vacc_pool.take() if split else None
                started = [False, False]
                for t, s in enumerate(vector):
                    op = operand(u, s)
                    chain = t % 2 if split else 0
                    target = vacc if chain == 0 else vacc2
                    if not started[chain]:
                        out.append(FMUL_IDX(target, op, COEF_H_REG, t))
                        started[chain] = True
                    else:
                        out.append(FMLA_IDX(target, op, COEF_H_REG, t))
                if split and started[1]:
                    out.append(FADD_V(vacc, vacc, vacc2))
                out.append(
                    FMOPA(tiles[u], self.unit_reg(d), vacc, rows=(d,))
                )

    def _cv_addr(self, key, d: int) -> int:
        return self._cv_tables[key] + (d + self.spec.radius) * SVL_LANES
