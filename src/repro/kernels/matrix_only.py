"""STOP: the outer-axis outer-product kernel (``Matrix-only`` in Table 6).

Implements the state-of-the-art method HStencil improves on, from the
paper's own description (Section 2.2, Equations 3/4, Figure 5):

* scatter form — every input row is broadcast against a sliding coefficient
  column and accumulated into the output tile with one FMOPA per
  horizontal shift;
* multi-register tiles along ``j`` (Figure 9's data tiling) so at least
  four independent outer products are in flight;
* shifted operands come from EXT concatenation of the aligned row loads
  (STOP descends from the vector-outer-product line of work and reuses
  loaded data; Table 5's "40 / 0" matrix/vector split counts *compute*
  cycles — EXT is a permute).  No MLA-rollback balancing, no instruction
  scheduling beyond the compiler's loop body, and no software prefetch —
  exactly what Figures 13/15 charge against it;
* stores are deferred to the end of each block (the contiguous up-to-512
  doubles burst Section 3.2.2 criticizes);
* band-major traversal (Algorithm 2's ``for i: for j``) whose ~``2r + 16``
  concurrent row streams overwhelm the hardware stream prefetcher and
  produce the low, size-degrading out-of-cache L1 hit rates of Table 3.

The sparse sliding coefficient vectors give star stencils their poor
single-register matrix utilization (Table 1), measured here through the
``rows``/``useful_cols`` accounting on every FMOPA.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.isa.instructions import EXT, FMOPA, LD1D, ST1D_SLICE, ZERO_TILE
from repro.isa.program import KernelBlock, LoopNest, Trace
from repro.isa.registers import SVL_LANES, TileReg
from repro.kernels.base import (
    GroupedTrace,
    CV_POOL,
    KernelOptions,
    RegRotator,
    StencilKernelBase,
    rows_for_placement,
    sliding_vectors,
)

#: Aligned data vectors (w + 2 live through one (d, dz) iteration).
_ALIGNED_REGS = tuple(range(0, 10))
#: EXT results (one-FMOPA live ranges).
_SHIFT_REGS = tuple(range(10, 16))


class MatrixOnlyKernel(StencilKernelBase):
    """Outer-axis outer-product stencil (the STOP baseline)."""

    method = "matrix-only"
    traversal = "panel"
    supports_3d = True

    def __init__(self, spec, src, dst, config, options: Optional[KernelOptions] = None) -> None:
        options = options or KernelOptions()
        super().__init__(spec, src, dst, config, options)
        w = self.options.unroll_j
        if not 1 <= w <= 8:
            raise ValueError(f"unroll_j must be in [1, 8], got {w}")
        self._require_divisible(SVL_LANES * w, rows_multiple=SVL_LANES)
        r = spec.radius
        # Sliding coefficient tables, one per (dz, shift) with any nonzero.
        self._cv_tables: Dict[Tuple[int, int], int] = {}
        self._cv_rows: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}
        self._cv_cols: Dict[Tuple[int, int], np.ndarray] = {}
        for dz in spec.plane_offsets():
            for s in spec.nonzero_shifts(dz):
                col = spec.column(s, dz=dz)
                self._cv_cols[(dz, s)] = col
                table = sliding_vectors(col, r)
                self._cv_tables[(dz, s)] = self._write_rodata(table, f"cv_dz{dz}_s{s}")
                for d in range(-r, SVL_LANES + r):
                    self._cv_rows[(dz, s, d)] = rows_for_placement(col, r, d)

    # ------------------------------------------------------------------

    def preamble(self) -> Trace:
        return Trace()

    def loop_nest(self) -> LoopNest:
        return self._band_nest(SVL_LANES * self.options.unroll_j)

    def emit(self, block: KernelBlock) -> Trace:
        if self.spec.ndim == 2:
            ib, jp = block.key
            z = None
        else:
            z, ib, jp = block.key
        w = self.options.unroll_j
        r = self.spec.radius
        i_base = ib * SVL_LANES
        j_base = jp * SVL_LANES * w
        out = GroupedTrace()
        aligned_pool = RegRotator(_ALIGNED_REGS)
        shift_pool = RegRotator(_SHIFT_REGS)
        cv_pool = RegRotator(CV_POOL)
        tiles = [TileReg(u) for u in range(w)]

        for tile in tiles:
            out.append(ZERO_TILE(tile))

        for d in range(-r, SVL_LANES + r):
            i0 = i_base + d
            for dz in self.spec.plane_offsets():
                src_z = None if z is None else z + dz
                shifts = [
                    s for s in self.spec.nonzero_shifts(dz) if self._cv_rows[(dz, s, d)]
                ]
                if not shifts:
                    continue
                need_ext = any(s != 0 for s in shifts)
                # Aligned loads, plus left/right neighbours for EXT reuse.
                aligned = {}
                lo = -1 if need_ext else 0
                hi = w + 1 if need_ext else w
                for u in range(lo, hi):
                    reg = aligned_pool.take()
                    out.append(
                        LD1D(reg, self._addr(self.src, i0, j_base + u * SVL_LANES, src_z))
                    )
                    aligned[u] = reg
                for s in shifts:
                    rows = self._cv_rows[(dz, s, d)]
                    cv = cv_pool.take()
                    out.append(LD1D(cv, self._cv_addr(dz, s, d)))
                    for u in range(w):
                        if s == 0:
                            operand = aligned[u]
                        elif s > 0:
                            operand = shift_pool.take()
                            out.append(EXT(operand, aligned[u], aligned[u + 1], s))
                        else:
                            operand = shift_pool.take()
                            out.append(
                                EXT(operand, aligned[u - 1], aligned[u], SVL_LANES + s)
                            )
                        out.append(FMOPA(tiles[u], cv, operand, rows=rows))
            self._overhead(out)

        # Deferred stores: the whole block's 8 x (8*w) output burst at once.
        for m in range(SVL_LANES):
            for u in range(w):
                out.append(
                    ST1D_SLICE(
                        tiles[u],
                        m,
                        self._addr(self.dst, i_base + m, j_base + u * SVL_LANES, z),
                    )
                )
        return self._finalize(out)

    # ------------------------------------------------------------------

    def _cv_addr(self, dz: int, s: int, d: int) -> int:
        """Address of the sliding coefficient vector for placement ``d``."""
        base = self._cv_tables[(dz, s)]
        return base + (d + self.spec.radius) * SVL_LANES
