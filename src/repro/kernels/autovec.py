"""Auto-vectorization baseline (``Auto`` in Table 6).

Models what a compiler emits for the plain scalar stencil loop at ``-O3``:
the gather form of Figure 4a, vectorized along ``j``, with

* one (redundant) vector load per tap — no cross-tap or cross-iteration
  reuse, exactly the memory behaviour data-layout papers criticize;
* a short unroll of two ``j`` blocks with independent accumulator chains
  (compilers do break the FMA dependence chain this far, and without it
  the baseline would be implausibly slow);
* row-major traversal, which is why the hardware stream prefetcher covers
  it well (Table 3's high vector-method hit rates).

Every figure normalizes speedups to this kernel.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import FADD_V, FMLA_IDX, FMUL_IDX, LD1D, SET_LANES, ST1D
from repro.isa.program import KernelBlock, LoopNest, Trace
from repro.isa.registers import SVL_LANES, VReg
from repro.kernels.base import GroupedTrace, RegRotator, StencilKernelBase

#: Registers reserved for broadcast coefficient lanes (z16..z27).
_COEF_REGS = tuple(range(16, 28))
#: Data rotation pool (z0..z11); loaded values have one-instruction live
#: ranges so a 12-deep rotation can never clobber a live value.
_DATA_REGS = tuple(range(0, 12))
#: Accumulators live until the block's store, so they get their own pool.
_ACC_REGS = tuple(range(12, 16))
#: j-blocks processed per iteration with independent accumulators.
_UNROLL = 2


class AutoVectorKernel(StencilKernelBase):
    """Gather-form compiler-baseline kernel."""

    method = "auto"
    traversal = "row"
    supports_3d = True

    def __init__(self, spec, src, dst, config, options=None) -> None:
        super().__init__(spec, src, dst, config, options)
        self._require_divisible(SVL_LANES)
        self._taps = list(spec.taps())
        max_taps = len(_COEF_REGS) * SVL_LANES
        if len(self._taps) > max_taps:
            raise ValueError(
                f"{self.method}: {len(self._taps)} taps exceed coefficient "
                f"register capacity ({max_taps})"
            )

    # ------------------------------------------------------------------

    def preamble(self) -> Trace:
        """Materialize tap coefficients into broadcast registers."""
        out = Trace()
        values: List[float] = [c for (_, _, _, c) in self._taps]
        while len(values) % SVL_LANES:
            values.append(0.0)
        for r, start in enumerate(range(0, len(values), SVL_LANES)):
            out.append(
                SET_LANES(VReg(_COEF_REGS[r]), tuple(values[start : start + SVL_LANES]))
            )
        return out

    def loop_nest(self) -> LoopNest:
        return self._row_nest()

    def emit(self, block: KernelBlock) -> Trace:
        if self.spec.ndim == 2:
            (i,) = block.key
            z = None
        else:
            z, i = block.key
        out = GroupedTrace()
        data = RegRotator(_DATA_REGS)
        acc_pool = RegRotator(_ACC_REGS)
        cols = self.src.cols
        for j0 in range(0, cols, SVL_LANES * _UNROLL):
            accs = []
            for u in range(_UNROLL):
                j = j0 + u * SVL_LANES
                if j >= cols:
                    break
                acc = self._emit_point_block(out, data, acc_pool, i, j, z)
                accs.append((acc, j))
            for acc, j in accs:
                out.append(ST1D(acc, self._addr(self.dst, i, j, z)))
            self._overhead(out)
        return self._finalize(out)

    def _emit_point_block(
        self, out: Trace, data: RegRotator, acc_pool: RegRotator, i: int, j: int, z
    ) -> VReg:
        """One 8-wide output vector: a load + FMA per tap, two FMA chains.

        Two accumulators per block model the chain-breaking modern
        compilers apply to reassociable reductions; the chains are folded
        with one FADD before the store.
        """
        acc0 = acc_pool.take()
        acc1 = acc_pool.take()
        started = [False, False]
        for t, (dz, di, dj, _c) in enumerate(self._taps):
            reg = data.take()
            src_z = None if z is None else z + dz
            out.append(LD1D(reg, self._addr(self.src, i + di, j + dj, src_z)))
            coef_reg = VReg(_COEF_REGS[t // SVL_LANES])
            idx = t % SVL_LANES
            acc = acc0 if t % 2 == 0 else acc1
            if not started[t % 2]:
                out.append(FMUL_IDX(acc, reg, coef_reg, idx))
                started[t % 2] = True
            else:
                out.append(FMLA_IDX(acc, reg, coef_reg, idx))
        if started[1]:
            out.append(FADD_V(acc0, acc0, acc1))
        return acc0
