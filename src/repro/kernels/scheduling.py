"""Fine-grained matrix-vector instruction scheduling (Section 3.2.2).

``schedule_trace`` re-orders a block's instruction trace so that load,
matrix, vector and store instructions interleave across their pipelines —
the software equivalent of the paper's hand scheduling.  The algorithm is
dependence-aware greedy list scheduling driven by the *same* issue rules
the timing engine applies (in-order frontier, operand readiness, port
initiation intervals, issue width), so what the scheduler optimizes is
exactly what the machine measures:

1. build the dependence DAG (RAW/WAR/WAW on registers and tile slices;
   memory edges only when a block actually aliases loads and stores, which
   the generated kernels never do — the check is still performed);
2. compute critical-path priorities;
3. repeatedly pick, among ready instructions, the one that can issue
   earliest on a simulated scoreboard (ties broken by critical path, then
   original order);
4. cost the candidate schedule and the original order on a cold timing
   engine and keep whichever is faster.  The scoreboard is dependence- and
   port-accurate but cache-oblivious, so degenerate traces (e.g. cold-miss
   loads hoisted between aliasing stores) can otherwise be scheduled into
   something slower than program order; the final arbitration makes the
   "scheduling never hurts" property hold by construction.

Because all interior blocks of a kernel share one register/dependence
structure (only addresses differ), the computed permutation is cached by
structural signature and re-applied in O(n) — without this, band-sampled
out-of-cache runs would re-schedule thousands of identical blocks.

A scheduled trace is a permutation of the input: functional semantics are
preserved by construction (property-tested in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.isa.instructions import Instruction, PortClass, PRFM
from repro.isa.program import Trace
from repro.machine.config import MachineConfig

#: Ready instructions examined per scheduling step (priority-ordered).
_BEAM = 24

#: Permutation cache keyed by (machine name, structural signature).
_PERM_CACHE: Dict[Tuple, Tuple[int, ...]] = {}


def _signature(trace: Sequence[Instruction]) -> Tuple:
    """Structural signature: registers and ports, addresses ignored."""
    return tuple(
        (ins.mnemonic, ins.port, tuple(ins.reads()), tuple(ins.writes()))
        for ins in trace
    )


def _has_memory_aliasing(trace: Sequence[Instruction]) -> bool:
    """True if any store overlaps any load or another store.

    Either case requires memory ordering edges (and disables permutation
    caching).  The generated kernels keep loads and stores in disjoint
    regions and never store twice to the same words within a block, so the
    fast path applies to them; hand-written traces get the safe path.
    """
    stores: List[Tuple[int, int]] = []
    loads: List[Tuple[int, int]] = []
    s_app = stores.append
    l_app = loads.append
    for ins in trace:
        if isinstance(ins, PRFM):
            continue  # hints carry no ordering requirement
        for a, n in ins.mem_writes():
            s_app((a, a + n))
        for a, n in ins.mem_reads():
            l_app((a, a + n))
    if not stores:
        return False
    stores.sort()
    # store-store overlap (WAW on memory)
    for (lo_a, hi_a), (lo_b, _hi_b) in zip(stores, stores[1:]):
        if lo_b < hi_a:
            return True
    loads.sort()
    si = 0
    for lo, hi in loads:
        while si < len(stores) and stores[si][1] <= lo:
            si += 1
        if si < len(stores) and stores[si][0] < hi:
            return True
    return False


def _build_dag(
    trace: Sequence[Instruction], memory_edges: bool
) -> Tuple[List[List[int]], List[int]]:
    """Return (successors, indegree) of the dependence DAG."""
    n = len(trace)
    succs: List[List[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    edges = set()

    def add_edge(a: int, b: int) -> None:
        if a != b and (a, b) not in edges:
            edges.add((a, b))
            succs[a].append(b)
            indeg[b] += 1

    last_writer: Dict[object, int] = {}
    readers: Dict[object, List[int]] = {}
    mem_stores: List[Tuple[int, int, int]] = []
    mem_loads: List[Tuple[int, int, int]] = []

    for idx, ins in enumerate(trace):
        for key in ins.reads():
            if key in last_writer:
                add_edge(last_writer[key], idx)  # RAW
            readers.setdefault(key, []).append(idx)
        for key in ins.writes():
            if key in last_writer:
                add_edge(last_writer[key], idx)  # WAW
            for r in readers.get(key, ()):  # WAR
                add_edge(r, idx)
            last_writer[key] = idx
            readers[key] = []
        if memory_edges and not isinstance(ins, PRFM):
            for a, cnt in ins.mem_reads():
                for sa, se, sidx in mem_stores:
                    if sa < a + cnt and a < se:
                        add_edge(sidx, idx)
                mem_loads.append((a, a + cnt, idx))
            for a, cnt in ins.mem_writes():
                for sa, se, sidx in mem_stores:
                    if sa < a + cnt and a < se:
                        add_edge(sidx, idx)
                for la, le, lidx in mem_loads:
                    if la < a + cnt and a < le:
                        add_edge(lidx, idx)
                mem_stores.append((a, a + cnt, idx))
    return succs, indeg


def _critical_paths(
    trace: Sequence[Instruction], succs: List[List[int]], config: MachineConfig
) -> List[int]:
    """Longest latency path from each node to any sink."""
    n = len(trace)
    cp = [0] * n
    for idx in range(n - 1, -1, -1):
        lat = config.latency_for(trace[idx]).latency
        best = 0
        for s in succs[idx]:
            if cp[s] > best:
                best = cp[s]
        cp[idx] = lat + best
    return cp


def _greedy_order(
    trace: Sequence[Instruction],
    succs: List[List[int]],
    indeg: List[int],
    config: MachineConfig,
) -> List[int]:
    """Greedy list scheduling against a simulated scoreboard."""
    n = len(trace)
    indeg = list(indeg)
    ready: List[int] = [i for i in range(n) if indeg[i] == 0]

    reg_ready: Dict[object, int] = {}
    port_free: Dict[PortClass, List[int]] = {
        port: [0] * count for port, count in config.ports.items()
    }
    frontier = 0
    cycle = 0
    issued = 0
    order: List[int] = []

    def estimate(idx: int) -> int:
        ins = trace[idx]
        t = frontier
        for key in ins.reads():
            r = reg_ready.get(key, 0)
            if r > t:
                t = r
        for key in ins.writes():
            r = reg_ready.get(key, 0)
            if r > t:
                t = r
        pipes = port_free[ins.port]
        p = min(pipes)
        if p > t:
            t = p
        if t == cycle and issued >= config.issue_width:
            t += 1
        return t

    cps = _critical_paths(trace, succs, config)

    while ready:
        # Examine the highest-priority ready instructions and commit the
        # one that can issue earliest.
        ready.sort(key=lambda i: (-cps[i], i))
        beam = ready[:_BEAM]
        best_idx = None
        best_key = None
        for i in beam:
            t = estimate(i)
            key = (t, -cps[i], i)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        assert best_idx is not None
        ready.remove(best_idx)
        ins = trace[best_idx]
        spec = config.latency_for(ins)
        t = estimate(best_idx)
        if t > cycle:
            cycle = t
            issued = 0
        issued += 1
        pipes = port_free[ins.port]
        pipe = min(range(len(pipes)), key=pipes.__getitem__)
        pipes[pipe] = t + spec.initiation_interval
        frontier = t
        done = t + spec.latency
        for key in ins.writes():
            reg_ready[key] = done
        order.append(best_idx)
        for s in succs[best_idx]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)

    if len(order) != n:
        raise RuntimeError("scheduling failed to order all instructions (cyclic deps?)")
    return order


def _arbitrated_perm(
    trace: Sequence[Instruction], perm: Sequence[int], config: MachineConfig
) -> Tuple[int, ...]:
    """Keep ``perm`` only if it is no slower than program order when timed.

    Both orders are costed on a cold machine, exactly how the scheduling
    quality properties measure them.  The greedy scoreboard ignores the
    cache hierarchy, so this guard is what turns "usually helps" into
    "never hurts".
    """
    from repro.machine.timing import TimingEngine

    scheduled = TimingEngine(config).run_trace(Trace(trace[i] for i in perm))
    original = TimingEngine(config).run_trace(Trace(trace))
    if scheduled.cycles <= original.cycles:
        return tuple(perm)
    return tuple(range(len(trace)))


def schedule_trace(
    trace: Sequence[Instruction],
    config: MachineConfig,
    window: int = 0,
) -> Trace:
    """Reorder a block trace for ILP; semantics-preserving.

    ``window = 0`` schedules the whole block at once — the paper's manual
    fine-grained matrix-vector interleaving.  A positive ``window``
    schedules fixed-size chunks independently, never moving an instruction
    across a chunk boundary: this models the *baseline* a real toolchain
    provides (the compiler's basic-block scheduler plus the core's limited
    reorder capability), which every kernel — including the comparison
    methods — enjoys.  The Figure 13 scheduling ablation is therefore the
    delta between local (windowed) and global scheduling, not between
    scheduled and pathologically serialized code.
    """
    if len(trace) <= 2:
        return Trace(trace)
    if window and window > 0 and len(trace) > window:
        out = Trace()
        for start in range(0, len(trace), window):
            out.extend(schedule_trace(trace[start : start + window], config, window=0))
        return out
    aliasing = _has_memory_aliasing(trace)
    if not aliasing:
        key = (config.name, _signature(trace))
        perm = _PERM_CACHE.get(key)
        if perm is None:
            succs, indeg = _build_dag(trace, memory_edges=False)
            perm = _arbitrated_perm(trace, _greedy_order(trace, succs, indeg, config), config)
            _PERM_CACHE[key] = perm
        return Trace(trace[i] for i in perm)
    succs, indeg = _build_dag(trace, memory_edges=True)
    order = _arbitrated_perm(trace, _greedy_order(trace, succs, indeg, config), config)
    return Trace(trace[i] for i in order)


def clear_schedule_cache() -> None:
    """Drop the permutation cache (tests / memory hygiene)."""
    _PERM_CACHE.clear()
