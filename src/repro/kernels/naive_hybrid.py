"""Naive matrix-vector method (Figure 7): independent passes + round trip.

The first hybrid design of Section 3.1.1, kept as a comparison point and as
the accumulation structure the Apple-M4 kernel is forced back to:

* **pass 1 (matrix)** — outer-axis outer products for the vertical axis,
  intermediate tile stored to the output array;
* **pass 2 (vector)** — horizontal MLA partial sums, then *reload* the
  intermediate row, FADD, and store again.

Per output row this costs three loads and two stores (Equation 7) versus
the in-place kernel's two loads and one store (Equation 8), and the matrix
and vector passes cannot overlap — both measurable with the timing engine.

Star 2D only: the naive split has no meaning for box stencils (there is no
vector compute part) and the paper uses it for the star discussion.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import (
    FADD_V,
    FMLA_IDX,
    FMOPA,
    FMUL_IDX,
    LD1D,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.program import KernelBlock, LoopNest, Trace
from repro.isa.registers import SVL_LANES, TileReg
from repro.kernels.base import (
    GroupedTrace,
    COEF_H_REG,
    CV_POOL,
    KernelOptions,
    RegRotator,
    StencilKernelBase,
    rows_for_placement,
    sliding_vectors,
)

_ALIGNED_REGS = tuple(range(0, 10))
_SHIFT_REGS = tuple(range(10, 14))
_VACC_REGS = (14, 15)


class NaiveHybridKernel(StencilKernelBase):
    """Naive (non-overlapping) matrix-vector stencil kernel."""

    method = "hstencil-naive"
    traversal = "panel"
    supports_3d = False

    def __init__(self, spec, src, dst, config, options: Optional[KernelOptions] = None) -> None:
        options = options or KernelOptions()
        super().__init__(spec, src, dst, config, options)
        if spec.pattern != "star":
            raise ValueError(f"{self.method} is defined for star stencils only")
        if not config.has_vector_fmla:
            raise ValueError(f"{config.name} has no vector FMLA; use hstencil-m4")
        w = self.options.unroll_j
        if not 1 <= w <= 8:
            raise ValueError(f"unroll_j must be in [1, 8], got {w}")
        self._require_divisible(SVL_LANES * w, rows_multiple=SVL_LANES)
        r = spec.radius
        vcol = spec.vertical_coeffs()
        self._v_table = self._write_rodata(sliding_vectors(vcol, r), "cv_vertical")
        self._v_rows = {
            d: rows_for_placement(vcol, r, d) for d in range(-r, SVL_LANES + r)
        }
        hrow = spec.horizontal_offaxis_coeffs()
        self._h_shifts = [s for s in range(-r, r + 1) if s != 0 and hrow[s + r] != 0.0]
        coefs = [hrow[s + r] for s in self._h_shifts]
        while len(coefs) < SVL_LANES:
            coefs.append(0.0)
        if len(coefs) > SVL_LANES:
            raise ValueError(f"{self.method}: too many horizontal taps")
        self._hcoef_values = tuple(coefs)

    # ------------------------------------------------------------------

    def preamble(self) -> Trace:
        out = Trace()
        out.append(SET_LANES(COEF_H_REG, self._hcoef_values))
        return out

    def loop_nest(self) -> LoopNest:
        return self._band_nest(SVL_LANES * self.options.unroll_j)

    def emit(self, block: KernelBlock) -> Trace:
        ib, jp = block.key
        w = self.options.unroll_j
        r = self.spec.radius
        i_base = ib * SVL_LANES
        j_base = jp * SVL_LANES * w
        out = GroupedTrace()
        aligned_pool = RegRotator(_ALIGNED_REGS)
        shift_pool = RegRotator(_SHIFT_REGS)
        vacc_pool = RegRotator(_VACC_REGS)
        cv_pool = RegRotator(CV_POOL)
        tiles = [TileReg(u) for u in range(w)]

        # ---- pass 1: matrix-only vertical axis, intermediate stored ----
        for tile in tiles:
            out.append(ZERO_TILE(tile))
        for d in range(-r, SVL_LANES + r):
            i0 = i_base + d
            rows = self._v_rows[d]
            if not rows:
                continue
            cv = cv_pool.take()
            out.append(LD1D(cv, self._v_table + (d + r) * SVL_LANES))
            for u in range(w):
                reg = aligned_pool.take()
                out.append(LD1D(reg, self.src.addr(i0, j_base + u * SVL_LANES)))
                out.append(FMOPA(tiles[u], cv, reg, rows=rows))
            self._overhead(out)
        for m in range(SVL_LANES):
            for u in range(w):
                out.append(
                    ST1D_SLICE(tiles[u], m, self.dst.addr(i_base + m, j_base + u * SVL_LANES))
                )

        # ---- pass 2: vector horizontal axis + accumulation round trip ----
        for m in range(SVL_LANES):
            i = i_base + m
            for u in range(w):
                j = j_base + u * SVL_LANES
                vacc = vacc_pool.take()
                first = True
                for t, s in enumerate(self._h_shifts):
                    reg = shift_pool.take()
                    out.append(LD1D(reg, self.src.addr(i, j + s)))
                    if first:
                        out.append(FMUL_IDX(vacc, reg, COEF_H_REG, t))
                        first = False
                    else:
                        out.append(FMLA_IDX(vacc, reg, COEF_H_REG, t))
                # The accumulation overhead of Equation 5/7: reload the
                # intermediate, add, store back.
                inter = aligned_pool.take()
                out.append(LD1D(inter, self.dst.addr(i, j)))
                out.append(FADD_V(vacc, vacc, inter))
                out.append(ST1D(vacc, self.dst.addr(i, j)))
            self._overhead(out)
        return self._finalize(out)
