"""Halo-padded grid layout in simulated memory.

Grids are laid out row-major with

* a halo of ``radius`` cells on every side (stencils read the halo, write
  only the interior);
* the interior origin aligned to a cache line, so unshifted vector loads
  touch a single line while shifted (±s) loads straddle two — the spatial
  reuse structure the cache experiments depend on;
* the row stride padded up to a whole number of vector lengths.

Interior coordinates are used throughout the kernels: ``addr(i, j)`` with
``i in [-r, rows + r)`` covers halo rows with negative / overflowing
indices.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import zlib

from repro.isa.registers import SVL_LANES
from repro.machine.memory import MemorySpace

#: Grid bases are aligned to this many words (256 KiB) so that a grid's
#: cache-set phase is a function of its *name* only, never of the sizes of
#: previously allocated grids.  Without this, the set distance between the
#: input and output arrays changes with grid height and experiments become
#: sensitive to power-of-two aliasing luck.
BASE_ALIGN_WORDS = 32768

#: Per-name set-phase skew, in cache lines (8 words), derived from a
#: stable hash so "A" and "B" land in decorrelated set phases.
_SKEW_SPAN_LINES = 2048


def _name_skew_words(name: str) -> int:
    return (zlib.crc32(name.encode("utf-8")) % _SKEW_SPAN_LINES) * SVL_LANES


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


class Grid2D:
    """A 2D grid with halo, resident in a :class:`MemorySpace`."""

    def __init__(
        self,
        mem: MemorySpace,
        rows: int,
        cols: int,
        radius: int,
        name: str,
        fill: Optional[str] = None,
        seed: int = 0,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if radius < 0:
            raise ValueError("radius must be >= 0")
        self.mem = mem
        self.rows = rows
        self.cols = cols
        self.radius = radius
        self.name = name
        #: Words before interior column 0 in each row (line-aligned, >= r).
        self.left_pad = _round_up(max(radius, 0), SVL_LANES) if radius else 0
        self.row_stride = _round_up(self.left_pad + cols + radius, SVL_LANES)
        self.total_rows = rows + 2 * radius
        skew = _name_skew_words(name)
        # One vector of guard words: tail blocks of non-conforming grids
        # issue full-width loads whose inactive lanes read into the pad.
        raw = mem.alloc(
            self.total_rows * self.row_stride + skew + SVL_LANES,
            name=name,
            align=BASE_ALIGN_WORDS,
        )
        self.base = raw + skew
        if fill == "random":
            self.randomize(seed)
        elif fill == "zero" or fill is None:
            pass
        else:
            raise ValueError(f"unknown fill mode {fill!r}")

    # -- addressing -----------------------------------------------------------

    def addr(self, i: int, j: int) -> int:
        """Word address of interior cell ``(i, j)``; halo via out-of-range."""
        r = self.radius
        if not -r <= i < self.rows + r:
            raise IndexError(f"row {i} outside grid+halo of {self.name}")
        if not -self.left_pad <= j < self.row_stride - self.left_pad:
            raise IndexError(f"col {j} outside padded row of {self.name}")
        return self.base + (i + r) * self.row_stride + self.left_pad + j

    @property
    def words(self) -> int:
        """Total words occupied including halo and padding."""
        return self.total_rows * self.row_stride

    # -- bulk data ------------------------------------------------------------

    def randomize(self, seed: int = 0) -> None:
        """Fill interior *and halo* with reproducible random values."""
        rng = np.random.default_rng(seed)
        r = self.radius
        full = rng.uniform(-1.0, 1.0, size=(self.total_rows, 2 * r + self.cols))
        self.set_full(full)

    def set_full(self, array: np.ndarray) -> None:
        """Write the logical (rows+2r, cols+2r) array (halo included)."""
        r = self.radius
        array = np.asarray(array, dtype=np.float64)
        expected = (self.total_rows, self.cols + 2 * r)
        if array.shape != expected:
            raise ValueError(f"expected shape {expected}, got {array.shape}")
        for li in range(self.total_rows):
            self.mem.write(self.addr(li - r, -r), array[li])

    def get_full(self) -> np.ndarray:
        """Read the logical (rows+2r, cols+2r) array (halo included)."""
        r = self.radius
        out = np.zeros((self.total_rows, self.cols + 2 * r))
        for li in range(self.total_rows):
            out[li] = self.mem.read(self.addr(li - r, -r), self.cols + 2 * r)
        return out

    def set_interior(self, array: np.ndarray) -> None:
        """Write the interior (rows, cols) block."""
        array = np.asarray(array, dtype=np.float64)
        if array.shape != (self.rows, self.cols):
            raise ValueError(f"expected shape {(self.rows, self.cols)}, got {array.shape}")
        for i in range(self.rows):
            self.mem.write(self.addr(i, 0), array[i])

    def get_interior(self) -> np.ndarray:
        """Read the interior (rows, cols) block."""
        out = np.zeros((self.rows, self.cols))
        for i in range(self.rows):
            out[i] = self.mem.read(self.addr(i, 0), self.cols)
        return out

    def get_rows(self, i0: int, i1: int) -> np.ndarray:
        """Read interior rows ``[i0, i1)`` (band verification)."""
        out = np.zeros((i1 - i0, self.cols))
        for k, i in enumerate(range(i0, i1)):
            out[k] = self.mem.read(self.addr(i, 0), self.cols)
        return out


class Grid3D:
    """A 3D grid with halo: ``depth`` planes of a 2D layout."""

    def __init__(
        self,
        mem: MemorySpace,
        depth: int,
        rows: int,
        cols: int,
        radius: int,
        name: str,
        fill: Optional[str] = None,
        seed: int = 0,
    ) -> None:
        if depth <= 0 or rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.mem = mem
        self.depth = depth
        self.rows = rows
        self.cols = cols
        self.radius = radius
        self.name = name
        self.left_pad = _round_up(max(radius, 0), SVL_LANES) if radius else 0
        self.row_stride = _round_up(self.left_pad + cols + radius, SVL_LANES)
        self.total_rows = rows + 2 * radius
        self.plane_stride = self.total_rows * self.row_stride
        self.total_planes = depth + 2 * radius
        skew = _name_skew_words(name)
        raw = mem.alloc(
            self.total_planes * self.plane_stride + skew + SVL_LANES,
            name=name,
            align=BASE_ALIGN_WORDS,
        )
        self.base = raw + skew
        if fill == "random":
            self.randomize(seed)
        elif fill not in (None, "zero"):
            raise ValueError(f"unknown fill mode {fill!r}")

    def addr(self, z: int, i: int, j: int) -> int:
        """Word address of interior cell ``(z, i, j)``."""
        r = self.radius
        if not -r <= z < self.depth + r:
            raise IndexError(f"plane {z} outside grid+halo of {self.name}")
        if not -r <= i < self.rows + r:
            raise IndexError(f"row {i} outside grid+halo of {self.name}")
        if not -self.left_pad <= j < self.row_stride - self.left_pad:
            raise IndexError(f"col {j} outside padded row of {self.name}")
        return (
            self.base
            + (z + r) * self.plane_stride
            + (i + r) * self.row_stride
            + self.left_pad
            + j
        )

    @property
    def words(self) -> int:
        return self.total_planes * self.plane_stride

    def randomize(self, seed: int = 0) -> None:
        """Fill interior and halo with reproducible random values."""
        rng = np.random.default_rng(seed)
        r = self.radius
        full = rng.uniform(
            -1.0, 1.0, size=(self.total_planes, self.total_rows, self.cols + 2 * r)
        )
        self.set_full(full)

    def set_full(self, array: np.ndarray) -> None:
        """Write the logical (depth+2r, rows+2r, cols+2r) array."""
        r = self.radius
        array = np.asarray(array, dtype=np.float64)
        expected = (self.total_planes, self.total_rows, self.cols + 2 * r)
        if array.shape != expected:
            raise ValueError(f"expected shape {expected}, got {array.shape}")
        for lz in range(self.total_planes):
            for li in range(self.total_rows):
                self.mem.write(self.addr(lz - r, li - r, -r), array[lz, li])

    def get_full(self) -> np.ndarray:
        r = self.radius
        out = np.zeros((self.total_planes, self.total_rows, self.cols + 2 * r))
        for lz in range(self.total_planes):
            for li in range(self.total_rows):
                out[lz, li] = self.mem.read(self.addr(lz - r, li - r, -r), self.cols + 2 * r)
        return out

    def get_interior(self) -> np.ndarray:
        out = np.zeros((self.depth, self.rows, self.cols))
        for z in range(self.depth):
            for i in range(self.rows):
                out[z, i] = self.mem.read(self.addr(z, i, 0), self.cols)
        return out

    def plane_view(self, z: int) -> Tuple[int, int]:
        """(base address of plane z's halo origin, row stride)."""
        return self.addr(z, -self.radius, -self.radius), self.row_stride
