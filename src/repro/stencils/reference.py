"""Vectorized NumPy reference stencils — the ground truth for every kernel.

``reference_stencil_2d(full, spec)`` consumes the *logical full* array
(interior plus halo of width ``r``) and returns the interior result.  It is
implemented with shifted-slice accumulation, so it is fast enough to verify
large bands and obviously correct by construction.
"""

from __future__ import annotations

import numpy as np

from repro.stencils.spec import StencilSpec


def reference_stencil_2d(full: np.ndarray, spec: StencilSpec) -> np.ndarray:
    """Apply a 2D stencil to a (rows+2r, cols+2r) array; return (rows, cols)."""
    if spec.ndim != 2:
        raise ValueError(f"{spec.name} is not a 2D stencil")
    r = spec.radius
    rows = full.shape[0] - 2 * r
    cols = full.shape[1] - 2 * r
    if rows <= 0 or cols <= 0:
        raise ValueError(f"array {full.shape} too small for radius {r}")
    out = np.zeros((rows, cols))
    plane = spec.coeffs2d
    for di in range(-r, r + 1):
        for dj in range(-r, r + 1):
            c = plane[di + r, dj + r]
            if c == 0.0:
                continue
            out += c * full[r + di : r + di + rows, r + dj : r + dj + cols]
    return out


def reference_stencil_3d(full: np.ndarray, spec: StencilSpec) -> np.ndarray:
    """Apply a 3D stencil to a (depth+2r, rows+2r, cols+2r) array."""
    if spec.ndim != 3:
        raise ValueError(f"{spec.name} is not a 3D stencil")
    r = spec.radius
    depth = full.shape[0] - 2 * r
    rows = full.shape[1] - 2 * r
    cols = full.shape[2] - 2 * r
    if depth <= 0 or rows <= 0 or cols <= 0:
        raise ValueError(f"array {full.shape} too small for radius {r}")
    out = np.zeros((depth, rows, cols))
    for dz, plane in spec.planes.items():
        for di in range(-r, r + 1):
            for dj in range(-r, r + 1):
                c = plane[di + r, dj + r]
                if c == 0.0:
                    continue
                out += c * full[
                    r + dz : r + dz + depth,
                    r + di : r + di + rows,
                    r + dj : r + dj + cols,
                ]
    return out


def apply_reference(full: np.ndarray, spec: StencilSpec) -> np.ndarray:
    """Dispatch on the spec's dimensionality."""
    if spec.ndim == 2:
        return reference_stencil_2d(full, spec)
    return reference_stencil_3d(full, spec)


def iterate_reference(full: np.ndarray, spec: StencilSpec, steps: int) -> np.ndarray:
    """Apply a 2D stencil ``steps`` times (halo kept fixed between steps).

    Used by the heat-diffusion example to cross-check multi-step runs.
    """
    if spec.ndim != 2:
        raise ValueError("iterate_reference supports 2D stencils only")
    r = spec.radius
    cur = np.array(full, dtype=np.float64)
    for _ in range(steps):
        interior = reference_stencil_2d(cur, spec)
        cur = cur.copy()
        cur[r:-r, r:-r] = interior
    return cur
