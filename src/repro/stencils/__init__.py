"""Stencil problem definitions, grids and the NumPy gold reference.

* :mod:`repro.stencils.spec` — :class:`StencilSpec`: pattern (star/box),
  dimensionality, radius and coefficient planes, plus the decompositions
  (vertical/horizontal/shifted-column coefficient vectors) the kernel
  generators consume.
* :mod:`repro.stencils.grid` — halo-padded grid layout in simulated memory.
* :mod:`repro.stencils.reference` — vectorized NumPy reference used as
  ground truth by every kernel-correctness test.
* :mod:`repro.stencils.library` — the named benchmark suite of the paper's
  evaluation (Star/Box 2D/3D at several radii, Heat-2D).
"""

from repro.stencils.spec import StencilSpec, star2d, box2d, star3d, box3d, heat2d
from repro.stencils.grid import Grid2D, Grid3D
from repro.stencils.reference import reference_stencil_2d, reference_stencil_3d, apply_reference
from repro.stencils.library import BENCHMARKS, benchmark, benchmark_names

__all__ = [
    "StencilSpec",
    "star2d",
    "box2d",
    "star3d",
    "box3d",
    "heat2d",
    "Grid2D",
    "Grid3D",
    "reference_stencil_2d",
    "reference_stencil_3d",
    "apply_reference",
    "BENCHMARKS",
    "benchmark",
    "benchmark_names",
]
