"""Named stencil benchmark suite (the workloads of the paper's evaluation).

The evaluation exercises 2D and 3D star and box stencils at radii 1-4 plus
the Heat-2D kernel; Figures 12-14 sweep this suite in-cache, Figures 15-16
and Tables 3/7 use the ``box2d25p`` (r = 2 box) workload out-of-cache, and
Figure 16 scales ``box2d9p`` to 32 cores.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.stencils.spec import StencilSpec, box2d, box3d, heat2d, star2d, star3d

#: Factory per benchmark name.  Factories are zero-argument so the registry
#: stays cheap to import; specs are built on demand and cached.
_FACTORIES: Dict[str, Callable[[], StencilSpec]] = {
    "star2d5p": lambda: star2d(1),
    "star2d9p": lambda: star2d(2),
    "star2d13p": lambda: star2d(3),
    "star2d17p": lambda: star2d(4),
    "box2d9p": lambda: box2d(1),
    "box2d25p": lambda: box2d(2),
    "box2d49p": lambda: box2d(3),
    "box2d81p": lambda: box2d(4),
    "star3d7p": lambda: star3d(1),
    "star3d13p": lambda: star3d(2),
    "box3d27p": lambda: box3d(1),
    "box3d125p": lambda: box3d(2),
    "heat2d": lambda: heat2d(),
}

_CACHE: Dict[str, StencilSpec] = {}

#: In-cache 2D suite used by Figures 12a / 13 / 14.
SUITE_2D: Tuple[str, ...] = (
    "star2d5p",
    "star2d9p",
    "star2d13p",
    "box2d9p",
    "box2d25p",
    "box2d49p",
    "heat2d",
)

#: 3D suite used by Figure 12b.
SUITE_3D: Tuple[str, ...] = ("star3d7p", "star3d13p", "box3d27p")

#: All registered names, in registry order.
BENCHMARKS: Tuple[str, ...] = tuple(_FACTORIES)


def benchmark(name: str) -> StencilSpec:
    """Look up a benchmark stencil by name (cached)."""
    if name not in _FACTORIES:
        raise KeyError(f"unknown stencil benchmark {name!r}; known: {sorted(_FACTORIES)}")
    if name not in _CACHE:
        _CACHE[name] = _FACTORIES[name]()
    return _CACHE[name]


def benchmark_names(pattern: str = "", ndim: int = 0) -> Tuple[str, ...]:
    """Filter registered benchmarks by pattern and/or dimensionality."""
    out = []
    for name in BENCHMARKS:
        spec = benchmark(name)
        if pattern and spec.pattern != pattern:
            continue
        if ndim and spec.ndim != ndim:
            continue
        out.append(name)
    return tuple(out)
