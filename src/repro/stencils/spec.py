"""Stencil specifications: pattern, radius, coefficient planes.

A stencil is described by one coefficient *plane* per ``dz`` offset:
``planes[dz][di + r, dj + r]`` is the weight of input point
``A[z + dz, i + di, j + dj]`` in output point ``B[z, i, j]`` (2D stencils
have the single plane ``dz = 0``).  This is exactly the matrix form of the
paper's Equation (3)/(4): box stencils have dense planes; star stencils'
planes are the sparse axis-only forms whose low outer-product utilization
motivates the hybrid kernel.

The spec also exposes the *decompositions* the kernel generators build on:

* :meth:`column` — one vertical coefficient vector per horizontal shift,
  the per-input-row FMOPA coefficient of the outer-axis method;
* :meth:`vertical_coeffs` / :meth:`horizontal_coeffs` — the star split used
  by the hybrid kernels (outer products handle the vertical axis, vector
  MLA handles the horizontal axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class StencilSpec:
    """Immutable description of one stencil operator."""

    name: str
    pattern: str  # "star" or "box"
    ndim: int  # 2 or 3
    radius: int
    #: dz -> (2r+1, 2r+1) coefficient plane.  2D stencils: {0: plane}.
    planes: Dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pattern not in ("star", "box"):
            raise ValueError(f"pattern must be 'star' or 'box', got {self.pattern!r}")
        if self.ndim not in (2, 3):
            raise ValueError(f"ndim must be 2 or 3, got {self.ndim}")
        if self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {self.radius}")
        side = 2 * self.radius + 1
        if not self.planes:
            raise ValueError("stencil needs at least one coefficient plane")
        for dz, plane in self.planes.items():
            if self.ndim == 2 and dz != 0:
                raise ValueError("2D stencil can only have the dz=0 plane")
            if abs(dz) > self.radius:
                raise ValueError(f"plane offset {dz} exceeds radius {self.radius}")
            if plane.shape != (side, side):
                raise ValueError(
                    f"plane {dz} must be {side}x{side}, got {plane.shape}"
                )
        if self.pattern == "star":
            for dz, plane in self.planes.items():
                r = self.radius
                mask = np.ones_like(plane, dtype=bool)
                if dz == 0:
                    mask[r, :] = False
                    mask[:, r] = False
                else:
                    # Off-center planes of a 3D star: only the axis point.
                    mask[r, r] = False
                if np.any(plane[mask] != 0.0):
                    raise ValueError(f"star stencil has off-axis coefficients in plane {dz}")
                if dz != 0:
                    off_axis = plane.copy()
                    off_axis[r, r] = 0.0
                    if np.any(off_axis != 0.0):
                        raise ValueError(
                            f"star stencil plane {dz} may only have its center coefficient"
                        )

    # -- basic properties ----------------------------------------------------

    @property
    def side(self) -> int:
        """Plane side length, ``2r + 1``."""
        return 2 * self.radius + 1

    @property
    def coeffs2d(self) -> np.ndarray:
        """The central (dz = 0) coefficient plane."""
        return self.planes[0]

    def taps(self) -> Iterator[Tuple[int, int, int, float]]:
        """Yield every nonzero ``(dz, di, dj, coefficient)``."""
        r = self.radius
        for dz in sorted(self.planes):
            plane = self.planes[dz]
            for di in range(-r, r + 1):
                for dj in range(-r, r + 1):
                    c = float(plane[di + r, dj + r])
                    if c != 0.0:
                        yield (dz, di, dj, c)

    @property
    def num_points(self) -> int:
        """Number of nonzero taps (the 'P' in Star-2D5P etc.)."""
        return sum(1 for _ in self.taps())

    @property
    def flops_per_point(self) -> int:
        """Useful flops per output point (one FMA per tap)."""
        return 2 * self.num_points

    # -- kernel-facing decompositions ------------------------------------------

    def column(self, shift: int, dz: int = 0) -> np.ndarray:
        """Vertical coefficient vector for horizontal shift ``shift``.

        ``column(s)[di + r]`` weights input row ``i + di`` shifted by ``s``
        columns — the FMOPA coefficient vector of the outer-axis method
        (one outer product per shift, Equation 3).
        """
        r = self.radius
        if abs(shift) > r:
            raise ValueError(f"shift {shift} exceeds radius {r}")
        return self.planes[dz][:, shift + r].copy()

    def vertical_coeffs(self, dz: int = 0) -> np.ndarray:
        """The on-axis vertical coefficients (``shift = 0`` column)."""
        return self.column(0, dz=dz)

    def horizontal_coeffs(self, dz: int = 0) -> np.ndarray:
        """The on-axis horizontal coefficients (center row of the plane).

        For the hybrid split the center element belongs to the *vertical*
        part (it is in ``vertical_coeffs``), so callers that hand this row
        to the vector unit must zero index ``r`` — see
        :meth:`horizontal_offaxis_coeffs`.
        """
        return self.planes[dz][self.radius, :].copy()

    def horizontal_offaxis_coeffs(self, dz: int = 0) -> np.ndarray:
        """Center row with the center element zeroed.

        This is the vector-MLA workload of the hybrid kernels: horizontal
        neighbours only, since the ``shift = 0`` FMOPA already covers the
        center column.
        """
        row = self.horizontal_coeffs(dz=dz)
        row[self.radius] = 0.0
        return row

    def nonzero_shifts(self, dz: int = 0) -> Tuple[int, ...]:
        """Horizontal shifts whose coefficient column is not all zero."""
        r = self.radius
        return tuple(
            s for s in range(-r, r + 1) if np.any(self.planes[dz][:, s + r] != 0.0)
        )

    def plane_offsets(self) -> Tuple[int, ...]:
        """The ``dz`` offsets present (sorted)."""
        return tuple(sorted(self.planes))

    def scaled(self, factor: float, name: Optional[str] = None) -> "StencilSpec":
        """A copy with every coefficient multiplied by ``factor``."""
        return StencilSpec(
            name=name or f"{self.name}-scaled",
            pattern=self.pattern,
            ndim=self.ndim,
            radius=self.radius,
            planes={dz: plane * factor for dz, plane in self.planes.items()},
        )


# ---------------------------------------------------------------------------
# Factories
# ---------------------------------------------------------------------------


def _coeff_values(n: int, seed: int) -> np.ndarray:
    """Deterministic, distinct, well-conditioned coefficients.

    Distinct values make tests catch transposed/reflected coefficient bugs
    that symmetric choices would hide.
    """
    rng = np.random.default_rng(seed)
    return rng.uniform(0.1, 1.0, size=n)


def star2d(radius: int, coefficients: Optional[np.ndarray] = None, name: Optional[str] = None) -> StencilSpec:
    """2D star stencil of ``4r + 1`` points.

    ``coefficients`` (optional) is the full ``(2r+1, 2r+1)`` plane; the
    default draws distinct deterministic values on the two axes.
    """
    side = 2 * radius + 1
    if coefficients is None:
        plane = np.zeros((side, side))
        vals = _coeff_values(2 * side - 1, seed=101 + radius)
        plane[radius, :] = vals[:side]
        plane[:, radius] = vals[side - 1 :]
    else:
        plane = np.array(coefficients, dtype=np.float64)
    return StencilSpec(
        name=name or f"star2d{4 * radius + 1}p",
        pattern="star",
        ndim=2,
        radius=radius,
        planes={0: plane},
    )


def box2d(radius: int, coefficients: Optional[np.ndarray] = None, name: Optional[str] = None) -> StencilSpec:
    """2D box stencil of ``(2r+1)^2`` points."""
    side = 2 * radius + 1
    if coefficients is None:
        plane = _coeff_values(side * side, seed=202 + radius).reshape(side, side)
    else:
        plane = np.array(coefficients, dtype=np.float64)
    return StencilSpec(
        name=name or f"box2d{side * side}p",
        pattern="box",
        ndim=2,
        radius=radius,
        planes={0: plane},
    )


def star3d(radius: int, name: Optional[str] = None) -> StencilSpec:
    """3D star stencil of ``6r + 1`` points (axis neighbours in x, y, z)."""
    side = 2 * radius + 1
    planes: Dict[int, np.ndarray] = {}
    vals = _coeff_values(3 * side - 2, seed=303 + radius)
    center_plane = np.zeros((side, side))
    center_plane[radius, :] = vals[:side]
    center_plane[:, radius] = vals[side - 1 : 2 * side - 1]
    planes[0] = center_plane
    k = 2 * side - 1
    for dz in range(-radius, radius + 1):
        if dz == 0:
            continue
        plane = np.zeros((side, side))
        plane[radius, radius] = vals[k]
        k += 1
        planes[dz] = plane
    return StencilSpec(
        name=name or f"star3d{6 * radius + 1}p",
        pattern="star",
        ndim=3,
        radius=radius,
        planes=planes,
    )


def box3d(radius: int, name: Optional[str] = None) -> StencilSpec:
    """3D box stencil of ``(2r+1)^3`` points."""
    side = 2 * radius + 1
    vals = _coeff_values(side**3, seed=404 + radius).reshape(side, side, side)
    planes = {dz: vals[dz + radius].copy() for dz in range(-radius, radius + 1)}
    return StencilSpec(
        name=name or f"box3d{side**3}p",
        pattern="box",
        ndim=3,
        radius=radius,
        planes=planes,
    )


def heat2d(alpha: float = 0.125, name: str = "heat2d") -> StencilSpec:
    """The Heat-2D stencil (explicit FTCS step).

    ``B = (1 - 4*alpha) * C + alpha * (N + S + E + W)``.
    """
    plane = np.array(
        [
            [0.0, alpha, 0.0],
            [alpha, 1.0 - 4.0 * alpha, alpha],
            [0.0, alpha, 0.0],
        ]
    )
    return StencilSpec(name=name, pattern="star", ndim=2, radius=1, planes={0: plane})
