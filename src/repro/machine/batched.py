"""Lockstep batched functional replay of shape-class block runs.

``FunctionalEngine.execute_template`` replays one block at a time: a Python
loop over the template's :class:`~repro.machine.compiled.FunctionalProgram`
per block, thousands of times per sweep with only addresses changing.  This
module executes a whole *run* of same-template blocks **one opcode at a time
across the entire batch**: the register file becomes a struct-of-blocks
array (``(n_blocks, NUM_VREGS, SVL_LANES)`` vectors, ``(n_blocks,
NUM_TILES, SVL_LANES, SVL_LANES)`` tiles), loads gather and stores scatter
against one flat float64 snapshot of the touched span, and every arithmetic
op is a single vectorized NumPy statement — so a sweep cell costs
O(program length) Python steps instead of O(blocks x program length).

Bit-identity with the sequential walk is guaranteed by two *checked*
preconditions; any failure falls back to the per-block replay:

* **register independence** — no register the program reads before writing
  (its live-in set) is ever written by the program.  Sequentially, block
  ``k``'s live-ins then come out of state no earlier block changed, so all
  blocks see identical live-in values and the lockstep register file is
  exact.  Partially-written tiles (slice moves, strided-row FMLA_M) count
  as read-modify-write, so a tile carried across blocks is never batched
  into divergence.
* **memory disjointness** — across the whole batch, every stored word is
  stored exactly once and no stored word is ever loaded (by any block,
  itself included).  Loads may then all gather from the pre-batch snapshot
  and stores may scatter in any order: the interleaving the lockstep
  execution changes is unobservable.  The check is exact, on the actual
  word sets, not on hulls.

Per-lane IEEE arithmetic is elementwise identical under batching (the same
multiplies and adds on the same values, just stacked), so the grids and the
instruction counts the equivalence tests compare come out bit-equal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.registers import NUM_TILES, NUM_VREGS, SVL_LANES
from repro.machine.compiled import (
    F_CONST,
    F_EXT,
    F_FADD,
    F_FMLA,
    F_FMLA_IDX,
    F_FMLA_M,
    F_FMOPA,
    F_FMUL_IDX,
    F_LD,
    F_LD_STRIDED,
    F_LD_TAIL,
    F_MOVA_TV,
    F_MOVA_VT,
    F_ST,
    F_ST_SLICE,
    F_ZERO,
    FunctionalProgram,
)
from repro.machine.memory import PAGE_WORDS

#: Batches below this many blocks are not worth the setup cost.
MIN_BATCH = 4

#: Spans above this many words (128 MiB of float64) are not snapshotted.
MAX_SPAN_WORDS = 1 << 24


def template_runs(entries: Sequence) -> List[Tuple[object, int, int]]:
    """Group template-lookup results into maximal same-template runs.

    ``entries`` holds, per block, either ``None`` (no template — reference
    walk) or a ``(template, addrs)`` pair.  Returns ``(template_or_None,
    lo, hi)`` half-open runs of consecutive blocks sharing one template
    identity, in order.  This is the batching granularity both lockstep
    functional replay and columnar timing replay operate on: everything a
    run shares (program, address matrix, batch plan) is computed once per
    run instead of once per block.
    """
    runs: List[Tuple[object, int, int]] = []
    i = 0
    n = len(entries)
    while i < n:
        entry = entries[i]
        template = None if entry is None else entry[0]
        j = i + 1
        while j < n:
            nxt = entries[j]
            if (None if nxt is None else nxt[0]) is not template:
                break
            j += 1
        runs.append((template, i, j))
        i = j
    return runs


class BatchPlan:
    """Static batchability analysis of one :class:`FunctionalProgram`."""

    __slots__ = ("batchable", "loads", "stores")

    def __init__(
        self,
        batchable: bool,
        loads: Tuple[Tuple[int, int, int], ...],
        stores: Tuple[Tuple[int, int], ...],
    ) -> None:
        #: Register independence holds (memory checks are per batch).
        self.batchable = batchable
        #: ``(addr_idx, nwords, stride)`` per load op.
        self.loads = loads
        #: ``(addr_idx, nwords)`` per store op.
        self.stores = stores


def analyze_program(program: FunctionalProgram) -> BatchPlan:
    """Register-independence analysis + memory-op extraction (see module doc)."""
    full_v: set = set()
    full_t: set = set()
    written: set = set()  # ("v"|"t", index) — any write, partial included
    live_in: set = set()
    loads: List[Tuple[int, int, int]] = []
    stores: List[Tuple[int, int]] = []

    def read_v(i: int) -> None:
        if i not in full_v:
            live_in.add(("v", i))

    def read_t(i: int) -> None:
        if i not in full_t:
            live_in.add(("t", i))

    for op in program.ops:
        code = op[0]
        if code == F_LD:
            loads.append((op[2], SVL_LANES, 1))
            full_v.add(op[1]); written.add(("v", op[1]))
        elif code == F_LD_TAIL:
            loads.append((op[2], op[3], 1))
            full_v.add(op[1]); written.add(("v", op[1]))
        elif code == F_LD_STRIDED:
            loads.append((op[2], SVL_LANES, op[3]))
            full_v.add(op[1]); written.add(("v", op[1]))
        elif code == F_ST:
            read_v(op[1])
            stores.append((op[2], op[3]))
        elif code == F_ST_SLICE:
            read_t(op[1])
            stores.append((op[3], op[4]))
        elif code == F_FMLA or code == F_FMLA_IDX:
            read_v(op[1]); read_v(op[2]); read_v(op[3])
            full_v.add(op[1]); written.add(("v", op[1]))
        elif code == F_FMUL_IDX or code == F_FADD or code == F_EXT:
            read_v(op[2]); read_v(op[3])
            full_v.add(op[1]); written.add(("v", op[1]))
        elif code == F_CONST:
            full_v.add(op[1]); written.add(("v", op[1]))
        elif code == F_FMOPA:
            read_t(op[1]); read_v(op[2]); read_v(op[3])
            full_t.add(op[1]); written.add(("t", op[1]))
        elif code == F_ZERO:
            full_t.add(op[1]); written.add(("t", op[1]))
        elif code == F_MOVA_TV:
            read_t(op[2])
            full_v.add(op[1]); written.add(("v", op[1]))
        elif code == F_MOVA_VT:
            read_v(op[3]); read_t(op[1])  # partial tile write: RMW
            written.add(("t", op[1]))
        elif code == F_FMLA_M:
            read_v(op[3]); read_t(op[1])  # partial tile write: RMW
            for g in range(4):
                read_v(op[2] + g)
            written.add(("t", op[1]))
        else:  # unknown opcode: never batch (the sequential path will raise)
            return BatchPlan(False, (), ())

    batchable = not (live_in & written)
    return BatchPlan(batchable, tuple(loads), tuple(stores))


def _word_sets(
    plan: BatchPlan, addrs_mat: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All (block, op) load / store word addresses, flattened."""
    load_parts = [
        (addrs_mat[:, i][:, None] + np.arange(n, dtype=np.int64) * stride).ravel()
        for i, n, stride in plan.loads
    ]
    store_parts = [
        (addrs_mat[:, i][:, None] + np.arange(n, dtype=np.int64)).ravel()
        for i, n in plan.stores
    ]
    empty = np.empty(0, dtype=np.int64)
    loads = np.concatenate(load_parts) if load_parts else empty
    stores = np.concatenate(store_parts) if store_parts else empty
    return loads, stores


class BatchReplayer:
    """Executes runs of same-template blocks for one ``FunctionalEngine``.

    Owns the per-program :class:`BatchPlan` cache for one kernel run; the
    cache holds strong references to the programs, so identity keying is
    safe for the replayer's lifetime.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self._plans: Dict[FunctionalProgram, BatchPlan] = {}
        #: Instrumentation: blocks executed batched vs singly.
        self.batched_blocks = 0
        self.sequential_blocks = 0

    # ------------------------------------------------------------------

    def run(self, program: FunctionalProgram, addrs_list: List[Sequence[int]]) -> None:
        """Execute a run of blocks sharing ``program``, batched when safe."""
        if len(addrs_list) >= MIN_BATCH:
            plan = self._plans.get(program)
            if plan is None:
                plan = analyze_program(program)
                self._plans[program] = plan
            if plan.batchable and self._run_batched(program, plan, addrs_list):
                self.batched_blocks += len(addrs_list)
                return
        engine = self.engine
        self.sequential_blocks += len(addrs_list)
        for addrs in addrs_list:
            # The per-block fallback goes through the engine's dispatcher, so
            # with codegen enabled these blocks run the exec-compiled kernel
            # (probe-verified on first use) rather than the opcode loop.
            engine.execute_template(program, addrs)

    # ------------------------------------------------------------------

    def _run_batched(
        self,
        program: FunctionalProgram,
        plan: BatchPlan,
        addrs_list: List[Sequence[int]],
    ) -> bool:
        """Lockstep execution; returns False to request the sequential path."""
        engine = self.engine
        mem = engine.memory
        addrs_mat = np.asarray(addrs_list, dtype=np.int64)
        loads, stores = _word_sets(plan, addrs_mat)

        # Bounds: everything must be inside allocated space (out-of-bounds
        # accesses take the sequential path so they raise the canonical
        # errors), and the touched span must be snapshot-sized.
        touched = [a for a in (loads, stores) if a.size]
        if not touched:
            lo, hi = 0, 0
        else:
            lo = int(min(a.min() for a in touched))
            hi = int(max(a.max() for a in touched)) + 1
            if lo < mem._BASE or hi > mem._next or hi - lo > MAX_SPAN_WORDS:
                return False

        # Memory disjointness (exact, word-granular): every stored word is
        # stored once across the whole batch, and never loaded.
        store_unique = np.unique(stores)
        if store_unique.size != stores.size:
            return False
        if loads.size and store_unique.size and np.isin(
            store_unique, np.unique(loads), assume_unique=True
        ).any():
            return False

        # Snapshot the touched span as one flat array (absent pages read 0).
        flat = np.zeros(hi - lo, dtype=np.float64)
        if hi > lo:
            first_page, last_page = lo // PAGE_WORDS, (hi - 1) // PAGE_WORDS
            pages = mem._pages
            for page_id in range(first_page, last_page + 1):
                page = pages.get(page_id)
                if page is None:
                    continue
                base = page_id * PAGE_WORDS
                src_lo, src_hi = max(lo, base), min(hi, base + PAGE_WORDS)
                flat[src_lo - lo : src_hi - lo] = page[src_lo - base : src_hi - base]

        self._execute_ops(program, addrs_mat, flat, lo)

        # Scatter the stored words back into the paged memory.
        if store_unique.size:
            values = flat[store_unique - lo]
            page_ids = store_unique // PAGE_WORDS
            boundaries = np.nonzero(np.diff(page_ids))[0] + 1
            for words, vals in zip(
                np.split(store_unique, boundaries), np.split(values, boundaries)
            ):
                page, _ = mem._page_for(int(words[0]), create=True)
                page[words - int(words[0] // PAGE_WORDS) * PAGE_WORDS] = vals

        engine.instructions_executed += program.count * len(addrs_list)
        return True

    def _execute_ops(
        self,
        program: FunctionalProgram,
        addrs_mat: np.ndarray,
        flat: np.ndarray,
        lo: int,
    ) -> None:
        """One opcode at a time across the whole batch (see module doc)."""
        engine = self.engine
        n_blocks = addrs_mat.shape[0]
        lanes = SVL_LANES
        # Struct-of-blocks register file, seeded with the sequential state:
        # live-ins are identical for every block (checked), everything else
        # is written before read.
        V = np.broadcast_to(
            engine.regs._vregs, (n_blocks, NUM_VREGS, lanes)
        ).copy()
        T = np.broadcast_to(
            engine.regs._tiles, (n_blocks, NUM_TILES, lanes, lanes)
        ).copy()
        lane_idx = np.arange(lanes, dtype=np.int64)

        for op in program.ops:
            code = op[0]
            if code == F_FMLA:
                V[:, op[1]] += V[:, op[2]] * V[:, op[3]]
            elif code == F_FMLA_IDX:
                V[:, op[1]] += V[:, op[2]] * V[:, op[3], op[4], None]
            elif code == F_LD:
                V[:, op[1]] = flat[(addrs_mat[:, op[2]] - lo)[:, None] + lane_idx]
            elif code == F_EXT:
                imm = op[4]
                if imm == 0:
                    V[:, op[1]] = V[:, op[2]]
                elif imm == lanes:
                    V[:, op[1]] = V[:, op[3]]
                else:
                    out = np.empty((n_blocks, lanes))
                    out[:, : lanes - imm] = V[:, op[2], imm:]
                    out[:, lanes - imm :] = V[:, op[3], :imm]
                    V[:, op[1]] = out
            elif code == F_FMOPA:
                T[:, op[1]] += V[:, op[2], :, None] * V[:, op[3], None, :]
            elif code == F_ST:
                mask = op[3]
                flat[(addrs_mat[:, op[2]] - lo)[:, None] + lane_idx[:mask]] = V[
                    :, op[1], :mask
                ]
            elif code == F_ST_SLICE:
                mask = op[4]
                flat[(addrs_mat[:, op[3]] - lo)[:, None] + lane_idx[:mask]] = T[
                    :, op[1], op[2], :mask
                ]
            elif code == F_FMUL_IDX:
                V[:, op[1]] = V[:, op[2]] * V[:, op[3], op[4], None]
            elif code == F_FADD:
                V[:, op[1]] = V[:, op[2]] + V[:, op[3]]
            elif code == F_LD_TAIL:
                mask = op[3]
                V[:, op[1], mask:] = 0.0
                V[:, op[1], :mask] = flat[
                    (addrs_mat[:, op[2]] - lo)[:, None] + lane_idx[:mask]
                ]
            elif code == F_LD_STRIDED:
                V[:, op[1]] = flat[
                    (addrs_mat[:, op[2]] - lo)[:, None] + lane_idx * op[3]
                ]
            elif code == F_CONST:
                V[:, op[1]] = op[2]
            elif code == F_ZERO:
                T[:, op[1]] = 0.0
            elif code == F_MOVA_TV:
                V[:, op[1]] = T[:, op[2], op[3]]
            elif code == F_MOVA_VT:
                T[:, op[1], op[2]] = V[:, op[3]]
            elif code == F_FMLA_M:
                scalar = V[:, op[3], op[4], None]
                for g in range(4):
                    T[:, op[1], 2 * g] += V[:, op[2] + g] * scalar
            else:  # pragma: no cover — analyze_program rejects unknown ops
                raise ValueError(f"unknown functional opcode {code}")

        # Architectural state after the batch == state after the last block.
        engine.regs._vregs[:] = V[-1]
        engine.regs._tiles[:] = T[-1]
