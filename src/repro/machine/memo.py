"""Context-hashed timing memoization for template replay.

``PipelineModel.process_template`` replays a block's precompiled
:class:`~repro.machine.compiled.TimingProgram` one step at a time.  For the
interior of a stencil sweep that walk is almost entirely redundant: the same
program is replayed thousands of times and the *observable* microarchitectural
context — the scoreboard carry-in relative to the issue frontier, the port
pipes, and the handful of cache/prefetcher facts the walk actually reads —
recurs after a short ramp, even while the raw cache contents keep changing
underneath.  This module memoizes the walk on exactly that observable
context:

* the first time a (program, context signature) pair is seen, an
  **instrumented recording replay** runs.  It is bit-identical to
  ``process_template`` (same state mutations, same counters, in the same
  order) and additionally captures

  - the **observation set**: every pre-state fact the walk read, as
    relocatable checks — per-line L1/L2 membership, dirty bits of eviction
    victims, the LRU-minimum identity of every evicting set (with the lines
    the block itself refreshed excluded), set-occupancy facts (an exact
    length where an eviction decision depended on it, a weaker "at least k
    ways free" bound where none did, so cold, still-filling sets keep
    matching), and stream-table presence/advance/order facts; and
  - the **transition set**: the walk's net effect — final per-line LRU
    ticks (as offsets from the tick counter), evictions, dirty-bit updates,
    an ordered stream-table op list, counter deltas, and the
    scoreboard/pipe outputs relative to the entry frontier;

* on a later replay whose signature matches and whose checks all hold
  against the current pre-state, the recorded transitions are applied
  directly — O(observations) dict operations instead of O(program steps)
  scoreboard arithmetic;
* every :data:`TimingMemo.probe_interval`-th hit of an entry is
  **re-simulated**: the recording replay runs for real and its observation
  and transition sets are compared against the stored entry.  Any mismatch
  permanently demotes the whole program to the plain replay loop — the same
  verify-or-fall-back discipline the template layer uses for its affine
  address fit, so bit-identity with the reference walk never depends on the
  memo being right, only on the recording replay being right (and that is
  what ``tests/test_engine_equivalence.py`` enforces).

Relocation is **two-frame**.  A stencil template's addresses split into a
*moving* frame (grid rows: every address shifts by the same amount from
block to block) and a *static* frame (coefficient tables: the same absolute
words every block) — :class:`~repro.kernels.template.RowTemplate` exposes
the partition as ``static_addrs``/``base_addr_idx``.  Every line or stream
operand in an entry carries a frame bit: moving lines are stored as offsets
from the block's base line (``rel << 1``), static lines as absolute lines
(``(line << 1) | 1``), and both decode with one shift-and-add at check and
apply time.  Set-indexed facts (occupancy, LRU minima) relocate soundly
because set collisions are translation-invariant *within* a frame; the few
facts that couple the frames are pinned by explicit cross-frame checks
(``C_*_XCOLL``/``C_*_XDISJ`` for sets that mix installs from both frames or
could merge under a new base, ``C_FR_DISJ`` for line-level aliasing), and a
recording whose frames collide on a single line is tainted and never
stored.  The signature therefore only needs the base's line phase — the
sole residual base dependence — plus the per-dimension key offsets of any
template whose deltas are not two-frame clean.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.machine.compiled import (
    K_PRFM,
    K_STORE,
    N_SLOTS,
    SCOREBOARD_KEYS,
    SLOT_OF,
    TimingProgram,
)
from repro.machine.prefetcher import LINES_PER_PAGE, _Stream

#: Observation (check) opcodes.  All checks are evaluated against the
#: *pre-replay* state.  Line/stream operands are frame-encoded integers:
#: ``rel << 1`` for the moving frame (offset from the block's base line),
#: ``(line << 1) | 1`` for the static frame (absolute line) — decoded as
#: ``(e >> 1) + (base_line, 0)[e & 1]``.
(
    C_L1_MEM,   # (op, enc, expect)           line membership in L1
    C_L2_MEM,   # (op, enc, expect)           line membership in L2
    C_L1_DIRTY, # (op, enc, expect)           L1 dirty-bit of a victim
    C_L2_DIRTY, # (op, enc, expect)           L2 dirty-bit of a victim
    C_L1_LEN,   # (op, enc, n)                exact occupancy of enc's L1 set
    C_L2_LEN,   # (op, enc, n)                exact occupancy of enc's L2 set
    C_L1_ROOM,  # (op, enc, k)                enc's L1 set has room for k installs
    C_L2_ROOM,  # (op, enc, k)                enc's L2 set has room for k installs
    C_L1_MIN,   # (op, enc, excl, victim)     LRU-min of enc's L1 set (excl skipped)
    C_L2_MIN,   # (op, enc, excl, victim)     LRU-min of enc's L2 set (excl skipped)
    C_PF_AT,    # (op, enc, expect)           stream-table presence at enc
    C_PF_ADV,   # (op, enc, n)                advance class of the stream at enc
                #                             (exact below the confirm
                #                             threshold, -1 = saturated: all
                #                             confirmed streams behave alike)
    C_PF_LEN,   # (op, n)                     exact stream-table size
    C_PF_ROOM,  # (op, k)                     stream table has room for k streams
    C_PF_HEAD,  # (op, victim, skip)          LRU head after skipping `skip` is
                #                             victim (None: no pre-state stream
                #                             outside `skip` remains at all)
    C_PG_ROOM,  # (op, enc, m)                >= m lines left on enc's page
    C_PG_AT,    # (op, enc, m)                exactly m lines left on enc's page
    C_L1_XCOLL, # (op, rel, set_idx)          moving rel still maps to the L1 set
                #                             where it mixed with static installs
    C_L2_XCOLL, # (op, rel, set_idx)          ... same for L2
    C_L1_XDISJ, # (op, rels, set_idxs)        no pure-moving-install L1 set lands
                #                             on a pure-static-install L1 set
    C_L2_XDISJ, # (op, rels, set_idxs)        ... same for L2
    C_FR_DISJ,  # (op, lines, rels)           no static line aliases a moving rel
) = range(22)

#: Stream-table transition opcodes (applied in recorded order).
PF_MOVE, PF_ADVANCE, PF_ALLOC, PF_POP = range(4)


#: Valid ``REPRO_MEMO`` modes.  ``pass`` (the default) enables only the
#: pass-level fixed-point memoization in :class:`TimingEngine` — it is pure
#: win on repeated-iteration runs and free everywhere else.  ``block``
#: enables only the per-block context memo in this module, which pays off
#: when the same block context recurs many times (roughly five or more
#: replays per recorded context); ``full`` enables both, ``off`` neither.
MEMO_MODES = ("off", "block", "pass", "full")

_MODE_ALIASES = {
    "0": "off",
    "false": "off",
    "1": "full",
    "on": "full",
    "true": "full",
}


def memo_mode() -> str:
    """Resolved ``REPRO_MEMO`` mode (see :data:`MEMO_MODES`)."""
    raw = os.environ.get("REPRO_MEMO", "pass").lower()
    mode = _MODE_ALIASES.get(raw, raw)
    if mode not in MEMO_MODES:
        raise ValueError(f"unknown REPRO_MEMO mode {raw!r}; expected one of {MEMO_MODES}")
    return mode


def memo_enabled() -> bool:
    """Whether the per-block context memo is active."""
    return memo_mode() in ("block", "full")


def pass_memo_enabled() -> bool:
    """Whether the pass-level fixed-point memoization is active."""
    return memo_mode() in ("pass", "full")


class MemoEntry:
    """One recorded replay: observation set, transition set, outputs."""

    __slots__ = (
        "checks",
        "l1_ticks",
        "l1_dels",
        "l1_dirty",
        "l1_bumps",
        "l2_ticks",
        "l2_dels",
        "l2_dirty",
        "l2_bumps",
        "pf_ops",
        "counters",
        "slots_out",
        "pipes_out",
        "frontier_rel",
        "cycle_lag",
        "issued_out",
        "max_done_rel",
        "tainted",
        "hits",
    )

    def signature(self) -> Tuple:
        """Comparable identity of the recorded behaviour (probe equality)."""
        return (
            self.checks,
            self.l1_ticks,
            self.l1_dels,
            self.l1_dirty,
            self.l1_bumps,
            self.l2_ticks,
            self.l2_dels,
            self.l2_dirty,
            self.l2_bumps,
            self.pf_ops,
            self.counters,
            self.slots_out,
            self.pipes_out,
            self.frontier_rel,
            self.cycle_lag,
            self.issued_out,
            self.max_done_rel,
            self.tainted,
        )


class _LevelRec:
    """Recording adapter for one :class:`~repro.machine.cache.CacheLevel`.

    Performs the *real* mutations on the level's sets while tracking what
    the walk learned (membership, dirty bits, occupancy) so each pre-state
    fact becomes exactly one check and everything derivable from the
    block's own earlier activity is never checked at all.  Every line is
    assigned a frame (moving/static) at first touch; a later touch under
    the other frame taints the recording (the entry is then discarded).
    """

    __slots__ = (
        "level",
        "base",
        "checks",
        "c_mem",
        "c_dirty",
        "c_len",
        "c_room",
        "c_min",
        "c_xcoll",
        "c_xdisj",
        "known",
        "pre_present",
        "dirty_known",
        "ordinal",
        "added",
        "set_info",
        "fr",
        "conflict",
        "bumps",
        "writebacks",
    )

    def __init__(self, level, base_line: int, checks: List, is_l1: bool) -> None:
        self.level = level
        self.base = base_line
        self.checks = checks
        if is_l1:
            self.c_mem, self.c_dirty = C_L1_MEM, C_L1_DIRTY
            self.c_len, self.c_room, self.c_min = C_L1_LEN, C_L1_ROOM, C_L1_MIN
            self.c_xcoll, self.c_xdisj = C_L1_XCOLL, C_L1_XDISJ
        else:
            self.c_mem, self.c_dirty = C_L2_MEM, C_L2_DIRTY
            self.c_len, self.c_room, self.c_min = C_L2_LEN, C_L2_ROOM, C_L2_MIN
            self.c_xcoll, self.c_xdisj = C_L2_XCOLL, C_L2_XDISJ
        #: line -> currently-known membership.
        self.known: Dict[int, bool] = {}
        #: line -> membership in the pre-state (recorded when first learned).
        self.pre_present: Dict[int, bool] = {}
        #: line -> known current dirty-bit value.
        self.dirty_known: Dict[int, bool] = {}
        #: line -> bump ordinal of its most recent tick assignment.
        self.ordinal: Dict[int, int] = {}
        #: lines currently present that the block itself installed.
        self.added: set = set()
        #: set index -> [net occupancy delta, exact-len checked, max room
        #: needed, anchor line, displaced pre-state lines (bumped/evicted),
        #: had moving install, had static install, a moving-install line].
        self.set_info: Dict[int, List] = {}
        #: line -> frame (0 moving, 1 static), fixed at first touch.
        self.fr: Dict[int, int] = {}
        self.conflict = False
        self.bumps = 0
        self.writebacks = 0

    def _enc(self, line: int) -> int:
        if self.fr.get(line, 0):
            return (line << 1) | 1
        return (line - self.base) << 1

    # -- observations ------------------------------------------------------

    def contains(self, line: int, st: int) -> bool:
        """Membership probe; emits a pre-state check the first time."""
        if self.fr.setdefault(line, st) != st:
            self.conflict = True
        present = self.known.get(line)
        if present is None:
            present = line in self.level._sets[line % self.level.num_sets]
            self.known[line] = present
            self.pre_present[line] = present
            self.checks.append((self.c_mem, self._enc(line), present))
        return present

    def dirty_contains(self, line: int) -> bool:
        dirty = self.dirty_known.get(line)
        if dirty is None:
            dirty = line in self.level._dirty
            self.dirty_known[line] = dirty
            self.checks.append((self.c_dirty, self._enc(line), dirty))
        return dirty

    # -- mutations ---------------------------------------------------------

    def _info(self, line: int) -> List:
        set_idx = line % self.level.num_sets
        info = self.set_info.get(set_idx)
        if info is None:
            info = [0, False, 0, line, [], False, False, 0]
            self.set_info[set_idx] = info
        return info

    def bump(self, line: int) -> None:
        """LRU promotion of a (present) line."""
        lvl = self.level
        lvl._tick += 1
        lvl._sets[line % lvl.num_sets][line] = lvl._tick
        self.bumps += 1
        self.ordinal[line] = self.bumps
        if line not in self.added:
            self._info(line)[4].append(line)

    def set_dirty(self, line: int) -> None:
        self.level._dirty.add(line)
        self.dirty_known[line] = True

    def install(self, line: int, dirty: bool, l2rec: Optional["_LevelRec"], st: int) -> None:
        """Mirror of ``CacheLevel.install`` + the hierarchy writeback chain.

        ``l2rec`` is the next level, used for the dirty-victim writeback
        path (``None`` when self *is* L2: its dirty victims go to DRAM and
        the caller counts them via the ``writebacks`` delta).  Call sites
        guarantee ``line`` is absent (they probed first).
        """
        if self.fr.setdefault(line, st) != st:
            self.conflict = True
        lvl = self.level
        ways = lvl._sets[line % lvl.num_sets]
        info = self._info(line)
        if st:
            info[6] = True
        else:
            info[5] = True
            info[7] = line

        lvl._tick += 1
        self.bumps += 1
        ways[line] = lvl._tick
        self.ordinal[line] = self.bumps
        self.known[line] = True
        if not self.pre_present.setdefault(line, False):
            self.added.add(line)
        if dirty:
            lvl._dirty.add(line)
            self.dirty_known[line] = True
        else:
            self.dirty_known[line] = False

        if len(ways) > lvl.assoc:
            if not info[1]:
                # The eviction decision depends on the exact pre-occupancy;
                # pin it (pre-len = occupancy before this insert minus the
                # block's own net delta so far).
                self.checks.append(
                    (self.c_len, self._enc(info[3]), len(ways) - 1 - info[0])
                )
                info[1] = True
            victim = min(ways, key=ways.__getitem__)
            if victim not in self.added:
                # Pre-state line: its being the LRU-minimum (once the lines
                # the block already refreshed or evicted are excluded) is a
                # pre-state fact.  An unobserved victim defaults to the
                # moving frame (a static victim then simply fails the check
                # at a different base and re-records — sound, never wrong).
                self.fr.setdefault(victim, 0)
                # The victim is a pre-state resident even if never probed
                # directly; record that so ``finish`` emits its eviction.
                self.pre_present[victim] = True
                excl = tuple(self._enc(r) for r in info[4] if r != victim)
                self.checks.append(
                    (self.c_min, self._enc(line), excl, self._enc(victim))
                )
                info[4].append(victim)
            del ways[victim]
            self.known[victim] = False
            self.ordinal.pop(victim, None)
            self.added.discard(victim)
            info[0] -= 1
            if self.dirty_contains(victim):
                lvl._dirty.discard(victim)
                self.dirty_known[victim] = False
                lvl.stats.writebacks += 1
                self.writebacks += 1
                if l2rec is not None:
                    # L1 -> L2 writeback (membership-only L2 probe, exactly
                    # CacheHierarchy._fill_l1's lookup(update_lru=False)).
                    vf = self.fr.get(victim, 0)
                    if not l2rec.contains(victim, vf):
                        l2rec.install(victim, True, None, vf)
                    else:
                        l2rec.set_dirty(victim)
        else:
            info[0] += 1
            if not info[1] and info[0] > info[2]:
                info[2] = info[0]

    # -- compression -------------------------------------------------------

    def finish(self) -> Tuple[Tuple, Tuple, Tuple, int]:
        """Emit occupancy / cross-frame checks and the transition set."""
        base = self.base
        enc = self._enc
        mov_sets: List[int] = []
        stat_sets: List[int] = []
        for set_idx, info in self.set_info.items():
            if not info[1] and info[2] > 0:
                self.checks.append((self.c_room, enc(info[3]), info[2]))
            if info[5] and info[6]:
                # Installs from both frames shared this set: the recorded
                # eviction/occupancy interplay is only valid while they
                # still collide.
                self.checks.append((self.c_xcoll, info[7] - base, set_idx))
            elif info[5]:
                mov_sets.append(info[7] - base)
            elif info[6]:
                stat_sets.append(set_idx)
        if mov_sets and stat_sets:
            # Pure-moving-install sets must not relocate onto a
            # pure-static-install set (their room checks are per-set).
            self.checks.append((self.c_xdisj, tuple(mov_sets), tuple(stat_sets)))
        ticks = tuple(
            (enc(line), k) for line, k in self.ordinal.items() if self.known.get(line)
        )
        dels = tuple(
            enc(line)
            for line, pre in self.pre_present.items()
            if pre and self.known.get(line) is False
        )
        dirty = tuple(
            (enc(line), bit)
            for line, bit in self.dirty_known.items()
            if self.known.get(line)
        )
        return ticks, dels, dirty, self.bumps


def _record(
    pipe,
    program: TimingProgram,
    addrs: Sequence[int],
    base_line: int,
    static_addrs: Tuple[bool, ...],
) -> MemoEntry:
    """Instrumented replay: bit-identical to ``process_template``, plus it
    captures the observation and transition sets into a :class:`MemoEntry`.
    """
    cfg = pipe.config
    ready = pipe._ready
    hierarchy = pipe.hierarchy
    line_words = hierarchy.line_words
    checks: List[Tuple] = []
    l1r = _LevelRec(hierarchy.l1, base_line, checks, is_l1=True)
    l2r = _LevelRec(hierarchy.l2, base_line, checks, is_l1=False)

    pf = pipe.prefetcher
    pf_on = pf.enabled and pf.num_streams > 0
    pf_streams = pf._streams
    pf_confirm = pf.confirm_advances
    pf_max = pf.num_streams
    pf_depth = pf.depth
    pf_ops: List[Tuple] = []
    #: stream key -> known presence (pre-state value recorded on first probe).
    pf_known: Dict[int, bool] = {}
    #: stream key -> frame (0 moving, 1 static), fixed at first touch.
    pf_fr: Dict[int, int] = {}
    #: keys whose advance count is known (checked pre streams, block streams).
    pf_adv_known: set = set()
    #: keys currently at block-determined positions (moved/advanced/allocated).
    pf_moved: set = set()
    #: pre-state keys displaced from their pre-state position, in order.
    pf_skip: List[int] = []
    pf_conflict = False
    pf_net = 0
    pf_len_exact = False
    pf_room_need = 0
    #: issue-ahead site enc -> (exact, lines issued): page-phase facts
    #: (the entry is relocatable across page phases that break identically).
    page_req: Dict[int, Tuple[bool, int]] = {}

    def pf_enc(key: int) -> int:
        if pf_fr.get(key, 0):
            return (key << 1) | 1
        return (key - base_line) << 1

    def pf_present(key: int, st: int) -> bool:
        nonlocal pf_conflict
        if pf_fr.setdefault(key, st) != st:
            pf_conflict = True
        present = pf_known.get(key)
        if present is None:
            present = key in pf_streams
            pf_known[key] = present
            checks.append((C_PF_AT, pf_enc(key), present))
        return present

    # Counter deltas (mirrors process_template's aggregate bookkeeping; the
    # recording applies them to the real counters at commit and stores them
    # in the entry for the apply path).
    c_l1_da = c_l1_dh = c_l1_pp = c_l1_pph = c_l1_pf = 0
    c_l2_da = c_l2_dh = 0
    c_mem_rd = c_mem_wr = 0
    c_pf_iss = c_pf_conf = c_pf_alloc = 0

    def fill_l1(line: int, dirty: bool, st: int) -> None:
        # A dirty L2 eviction triggered by the L1 writeback chain goes to
        # DRAM (CacheHierarchy._fill_l1's l2_victim path).
        nonlocal c_mem_wr
        before = l2r.writebacks
        l1r.install(line, dirty, l2r, st)
        c_mem_wr += l2r.writebacks - before

    def fill_l2(line: int, st: int) -> None:
        nonlocal c_mem_wr
        before = l2r.writebacks
        l2r.install(line, False, None, st)
        c_mem_wr += l2r.writebacks - before

    # -- scoreboard walk (mirrors process_template) ------------------------
    slot_of_get = SLOT_OF.get
    slots = [0] * N_SLOTS
    for key, val in ready.items():
        idx = slot_of_get(key)
        if idx is not None:
            slots[idx] = val
    pipes_by_id = [pipe._port_free[p] for p in program.ports]
    pipes_assigned: set = set()
    issue_width = cfg.issue_width
    penalty = (
        0,
        0,
        cfg.l2_load_latency - cfg.l1_load_latency,
        cfg.mem_load_latency - cfg.l1_load_latency,
    )
    f0 = pipe._frontier
    frontier = f0
    cycle = pipe._cycle
    issued = pipe._issued_this_cycle
    max_done = 0

    for dep_slots, write_slots, port_id, base_latency, ii, kind, memops in program.steps:
        t = frontier
        for s in dep_slots:
            r = slots[s]
            if r > t:
                t = r

        pipes = pipes_by_id[port_id]
        if len(pipes) == 1:
            pipe_idx = 0
        elif len(pipes) == 2:
            pipe_idx = 0 if pipes[0] <= pipes[1] else 1
        else:
            pipe_idx = min(range(len(pipes)), key=pipes.__getitem__)
        if pipes[pipe_idx] > t:
            t = pipes[pipe_idx]

        if t > cycle:
            cycle = t
            issued = 0
        if issued >= issue_width:
            t = cycle + 1
            cycle = t
            issued = 0

        latency = base_latency
        if kind:
            if kind == K_PRFM:
                # Mirrors CacheHierarchy.software_prefetch.
                addr_idx, length, wr = memops
                st = 1 if static_addrs[addr_idx] else 0
                addr = addrs[addr_idx]
                first = addr // line_words
                last = (addr + length - 1) // line_words
                for line in range(first, last + 1):
                    c_l1_pp += 1
                    if l1r.contains(line, st):
                        l1r.bump(line)
                        c_l1_pph += 1
                        continue
                    if not l2r.contains(line, st):
                        c_mem_rd += 1
                        fill_l2(line, st)
                    else:
                        l2r.bump(line)
                    fill_l1(line, wr, st)
                    c_l1_pf += 1
            else:
                is_store = kind == K_STORE
                worst = 1  # L1
                for addr_idx, offset, nwords in memops:
                    st = 1 if static_addrs[addr_idx] else 0
                    addr = addrs[addr_idx] + offset
                    first = addr // line_words
                    last = (addr + nwords - 1) // line_words
                    level = 1
                    line = first
                    while True:
                        # Inlined _access_line / _access_line_miss.
                        c_l1_da += 1
                        if l1r.contains(line, st):
                            l1r.bump(line)
                            c_l1_dh += 1
                            if is_store:
                                l1r.set_dirty(line)
                        else:
                            c_l2_da += 1
                            if l2r.contains(line, st):
                                l2r.bump(line)
                                c_l2_dh += 1
                                fill_l1(line, is_store, st)
                                if level < 2:
                                    level = 2
                            else:
                                c_mem_rd += 1
                                fill_l2(line, st)
                                fill_l1(line, is_store, st)
                                level = 3
                        if line == last:
                            break
                        line += 1
                    if pf_on:
                        # Inlined StreamPrefetcher._observe_line.
                        hit = level == 1
                        line = first
                        while True:
                            if pf_present(line, st):
                                pf_streams.move_to_end(line)
                                pf_ops.append((PF_MOVE, pf_enc(line)))
                                if line not in pf_moved:
                                    pf_skip.append(line)
                                    pf_moved.add(line)
                            elif pf_present(line - 1, st):
                                old = line - 1
                                stream = pf_streams[old]
                                if old not in pf_adv_known:
                                    adv = stream.advances
                                    checks.append(
                                        (
                                            C_PF_ADV,
                                            pf_enc(old),
                                            adv if adv < pf_confirm else -1,
                                        )
                                    )
                                if old not in pf_moved:
                                    pf_skip.append(old)
                                del pf_streams[old]
                                stream.advances += 1
                                stream.tail_line = line
                                pf_streams[line] = stream
                                pf_ops.append((PF_ADVANCE, pf_enc(old)))
                                pf_known[old] = False
                                pf_moved.discard(old)
                                pf_adv_known.discard(old)
                                pf_known[line] = True
                                pf_moved.add(line)
                                pf_adv_known.add(line)
                                if stream.advances == pf_confirm:
                                    c_pf_conf += 1
                                if stream.advances >= pf_confirm:
                                    # Inlined _issue_ahead + hardware_prefetch.
                                    # How far the issue window runs before the
                                    # page boundary is the only base-phase
                                    # dependence of the walk; record it as a
                                    # relocatable check instead of keying on
                                    # the phase.
                                    avail = (
                                        LINES_PER_PAGE - 1 - line % LINES_PER_PAGE
                                    )
                                    pe = pf_enc(line)
                                    if pe not in page_req:
                                        page_req[pe] = (
                                            avail < pf_depth,
                                            min(avail, pf_depth),
                                        )
                                    page = line // LINES_PER_PAGE
                                    for target in range(line + 1, line + pf_depth + 1):
                                        if target // LINES_PER_PAGE != page:
                                            break
                                        if not l1r.contains(target, st):
                                            if l2r.contains(target, st):
                                                l2r.bump(target)
                                            else:
                                                c_mem_rd += 1
                                                fill_l2(target, st)
                                            fill_l1(target, False, st)
                                            c_l1_pf += 1
                                        c_pf_iss += 1
                            elif not hit:
                                if pf_fr.setdefault(line, st) != st:
                                    pf_conflict = True
                                pf_streams[line] = _Stream(tail_line=line)
                                pf_ops.append((PF_ALLOC, pf_enc(line)))
                                pf_known[line] = True
                                pf_moved.add(line)
                                pf_adv_known.add(line)
                                c_pf_alloc += 1
                                if len(pf_streams) > pf_max:
                                    if not pf_len_exact:
                                        checks.append(
                                            (C_PF_LEN, len(pf_streams) - 1 - pf_net)
                                        )
                                        pf_len_exact = True
                                    victim = next(iter(pf_streams))
                                    skip = tuple(pf_enc(k) for k in pf_skip)
                                    if victim in pf_moved:
                                        # Head fell through to a block-placed
                                        # stream: the pre-state fact is that
                                        # no unskipped pre stream remains.
                                        checks.append((C_PF_HEAD, None, skip))
                                    else:
                                        pf_fr.setdefault(victim, 0)
                                        checks.append(
                                            (C_PF_HEAD, pf_enc(victim), skip)
                                        )
                                        pf_skip.append(victim)
                                    pf_streams.popitem(last=False)
                                    pf_ops.append((PF_POP,))
                                    pf_known[victim] = False
                                    pf_moved.discard(victim)
                                    pf_adv_known.discard(victim)
                                else:
                                    pf_net += 1
                                    if not pf_len_exact and pf_net > pf_room_need:
                                        pf_room_need = pf_net
                            if line == last:
                                break
                            line += 1
                    if level > worst:
                        worst = level
                if not is_store:
                    latency += penalty[worst]

        pipes[pipe_idx] = t + ii
        pipes_assigned.add((port_id, pipe_idx))
        frontier = t
        issued += 1
        done = t + latency
        for s in write_slots:
            slots[s] = done
        if done > max_done:
            max_done = done

    # -- commit (identical to process_template's exit) ---------------------
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    l1.stats.demand_accesses += c_l1_da
    l1.stats.demand_hits += c_l1_dh
    l1.stats.prefetch_probes += c_l1_pp
    l1.stats.prefetch_probe_hits += c_l1_pph
    l1.stats.prefetch_fills += c_l1_pf
    l2.stats.demand_accesses += c_l2_da
    l2.stats.demand_hits += c_l2_dh
    hierarchy.mem_lines_read += c_mem_rd
    hierarchy.mem_lines_written += c_mem_wr
    pf.prefetches_issued += c_pf_iss
    pf.streams_confirmed += c_pf_conf
    pf.streams_allocated += c_pf_alloc

    for i in range(N_SLOTS):
        v = slots[i]
        if v:
            ready[SCOREBOARD_KEYS[i]] = v
    pipe._frontier = frontier
    pipe._cycle = cycle
    pipe._issued_this_cycle = issued
    if max_done > pipe.makespan:
        pipe.makespan = max_done
    pipe.instructions_retired += program.count
    by_port = pipe.instructions_by_port
    for port, n in program.port_counts.items():
        by_port[port] += n
    pipe.flops += program.flops
    pipe.useful_flops += program.useful_flops
    pipe.sw_prefetches += program.n_prfm

    # -- entry -------------------------------------------------------------
    if not pf_len_exact and pf_room_need > 0:
        checks.append((C_PF_ROOM, pf_room_need))
    for pe in sorted(page_req):
        exact, m = page_req[pe]
        checks.append((C_PG_AT if exact else C_PG_ROOM, pe, m))
    entry = MemoEntry()
    entry.l1_ticks, entry.l1_dels, entry.l1_dirty, entry.l1_bumps = l1r.finish()
    entry.l2_ticks, entry.l2_dels, entry.l2_dirty, entry.l2_bumps = l2r.finish()
    # Line-level frame aliasing guard: the per-line checks and transitions
    # above decode moving and static operands independently, which is only
    # exact while no static line coincides with a relocated moving line.
    mov_rels: set = set()
    stat_lines: set = set()
    for frd in (l1r.fr, l2r.fr, pf_fr):
        for ln, f in frd.items():
            if f:
                stat_lines.add(ln)
            else:
                mov_rels.add(ln - base_line)
    if stat_lines and mov_rels:
        checks.append((C_FR_DISJ, tuple(sorted(stat_lines)), frozenset(mov_rels)))
    entry.checks = tuple(checks)
    entry.pf_ops = tuple(pf_ops)
    entry.counters = (
        c_l1_da, c_l1_dh, c_l1_pp, c_l1_pph, c_l1_pf, l1r.writebacks,
        c_l2_da, c_l2_dh, l2r.writebacks,
        c_mem_rd, c_mem_wr, c_pf_iss, c_pf_conf, c_pf_alloc,
    )
    entry.slots_out = tuple((s, slots[s] - f0) for s in program.write_union())
    entry.pipes_out = tuple(
        (pid, j, pipes_by_id[pid][j] - f0) for pid, j in sorted(pipes_assigned)
    )
    entry.frontier_rel = frontier - f0
    entry.cycle_lag = frontier - cycle
    entry.issued_out = issued
    entry.max_done_rel = max_done - f0
    entry.tainted = l1r.conflict or l2r.conflict or pf_conflict
    entry.hits = 0
    return entry


def _checks_pass(checks: Tuple, base_line: int, pipe) -> bool:
    """Evaluate an entry's observation set against the current pre-state."""
    h = pipe.hierarchy
    l1 = h.l1
    l2 = h.l2
    l1_sets = l1._sets
    l2_sets = l2._sets
    l1_ns = l1.num_sets
    l2_ns = l2.num_sets
    streams = pipe.prefetcher._streams
    bases = (base_line, 0)
    for c in checks:
        op = c[0]
        if op == C_L1_MEM:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if (line in l1_sets[line % l1_ns]) != c[2]:
                return False
        elif op == C_L2_MEM:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if (line in l2_sets[line % l2_ns]) != c[2]:
                return False
        elif op == C_PF_AT:
            e = c[1]
            if (((e >> 1) + bases[e & 1]) in streams) != c[2]:
                return False
        elif op == C_L1_MIN or op == C_L2_MIN:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if op == C_L1_MIN:
                ways = l1_sets[line % l1_ns]
            else:
                ways = l2_sets[line % l2_ns]
            excl = c[2]
            ev = c[3]
            victim = (ev >> 1) + bases[ev & 1]
            best = None
            best_tick = 0
            for ln, tk in ways.items():
                if best is None or tk < best_tick:
                    if ((ln - base_line) << 1) in excl or ((ln << 1) | 1) in excl:
                        continue
                    best = ln
                    best_tick = tk
            if best != victim:
                return False
        elif op == C_L1_ROOM:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if len(l1_sets[line % l1_ns]) + c[2] > l1.assoc:
                return False
        elif op == C_L2_ROOM:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if len(l2_sets[line % l2_ns]) + c[2] > l2.assoc:
                return False
        elif op == C_L1_LEN:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if len(l1_sets[line % l1_ns]) != c[2]:
                return False
        elif op == C_L2_LEN:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if len(l2_sets[line % l2_ns]) != c[2]:
                return False
        elif op == C_L1_DIRTY:
            e = c[1]
            if (((e >> 1) + bases[e & 1]) in l1._dirty) != c[2]:
                return False
        elif op == C_L2_DIRTY:
            e = c[1]
            if (((e >> 1) + bases[e & 1]) in l2._dirty) != c[2]:
                return False
        elif op == C_PF_ADV:
            e = c[1]
            s = streams.get((e >> 1) + bases[e & 1])
            if s is None:
                return False
            n = c[2]
            if n < 0:
                if s.advances < pipe.prefetcher.confirm_advances:
                    return False
            elif s.advances != n:
                return False
        elif op == C_PF_LEN:
            if len(streams) != c[1]:
                return False
        elif op == C_PF_ROOM:
            if len(streams) + c[1] > pipe.prefetcher.num_streams:
                return False
        elif op == C_PG_ROOM:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if LINES_PER_PAGE - 1 - line % LINES_PER_PAGE < c[2]:
                return False
        elif op == C_PG_AT:
            e = c[1]
            line = (e >> 1) + bases[e & 1]
            if LINES_PER_PAGE - 1 - line % LINES_PER_PAGE != c[2]:
                return False
        elif op == C_PF_HEAD:
            ev = c[1]
            skip = c[2]
            head = None
            for k in streams:
                if ((k - base_line) << 1) in skip or ((k << 1) | 1) in skip:
                    continue
                head = k
                break
            if ev is None:
                if head is not None:
                    return False
            elif head != (ev >> 1) + bases[ev & 1]:
                return False
        elif op == C_L1_XCOLL:
            if (base_line + c[1]) % l1_ns != c[2]:
                return False
        elif op == C_L2_XCOLL:
            if (base_line + c[1]) % l2_ns != c[2]:
                return False
        elif op == C_L1_XDISJ:
            idxs = c[2]
            for r in c[1]:
                if (base_line + r) % l1_ns in idxs:
                    return False
        elif op == C_L2_XDISJ:
            idxs = c[2]
            for r in c[1]:
                if (base_line + r) % l2_ns in idxs:
                    return False
        else:  # C_FR_DISJ
            mov = c[2]
            for s_line in c[1]:
                if (s_line - base_line) in mov:
                    return False
    return True


def _apply(entry: MemoEntry, pipe, program: TimingProgram, base_line: int) -> None:
    """Apply a verified entry's transitions — no replay."""
    h = pipe.hierarchy
    l1 = h.l1
    l2 = h.l2
    bases = (base_line, 0)

    t0 = l1._tick
    sets = l1._sets
    ns = l1.num_sets
    for e, k in entry.l1_ticks:
        line = (e >> 1) + bases[e & 1]
        sets[line % ns][line] = t0 + k
    l1._tick = t0 + entry.l1_bumps
    dirty = l1._dirty
    for e in entry.l1_dels:
        line = (e >> 1) + bases[e & 1]
        del sets[line % ns][line]
        dirty.discard(line)
    for e, bit in entry.l1_dirty:
        line = (e >> 1) + bases[e & 1]
        if bit:
            dirty.add(line)
        else:
            dirty.discard(line)

    t0 = l2._tick
    sets = l2._sets
    ns = l2.num_sets
    for e, k in entry.l2_ticks:
        line = (e >> 1) + bases[e & 1]
        sets[line % ns][line] = t0 + k
    l2._tick = t0 + entry.l2_bumps
    dirty = l2._dirty
    for e in entry.l2_dels:
        line = (e >> 1) + bases[e & 1]
        del sets[line % ns][line]
        dirty.discard(line)
    for e, bit in entry.l2_dirty:
        line = (e >> 1) + bases[e & 1]
        if bit:
            dirty.add(line)
        else:
            dirty.discard(line)

    pf = pipe.prefetcher
    streams = pf._streams
    for op in entry.pf_ops:
        code = op[0]
        if code == PF_MOVE:
            e = op[1]
            streams.move_to_end((e >> 1) + bases[e & 1])
        elif code == PF_ADVANCE:
            e = op[1]
            old = (e >> 1) + bases[e & 1]
            s = streams.pop(old)
            s.advances += 1
            s.tail_line = old + 1
            streams[old + 1] = s
        elif code == PF_ALLOC:
            e = op[1]
            line = (e >> 1) + bases[e & 1]
            streams[line] = _Stream(tail_line=line)
        else:
            streams.popitem(last=False)

    (
        c_l1_da, c_l1_dh, c_l1_pp, c_l1_pph, c_l1_pf, c_l1_wb,
        c_l2_da, c_l2_dh, c_l2_wb,
        c_mem_rd, c_mem_wr, c_pf_iss, c_pf_conf, c_pf_alloc,
    ) = entry.counters
    l1.stats.demand_accesses += c_l1_da
    l1.stats.demand_hits += c_l1_dh
    l1.stats.prefetch_probes += c_l1_pp
    l1.stats.prefetch_probe_hits += c_l1_pph
    l1.stats.prefetch_fills += c_l1_pf
    l1.stats.writebacks += c_l1_wb
    l2.stats.demand_accesses += c_l2_da
    l2.stats.demand_hits += c_l2_dh
    l2.stats.writebacks += c_l2_wb
    h.mem_lines_read += c_mem_rd
    h.mem_lines_written += c_mem_wr
    pf.prefetches_issued += c_pf_iss
    pf.streams_confirmed += c_pf_conf
    pf.streams_allocated += c_pf_alloc

    f0 = pipe._frontier
    ready = pipe._ready
    keys = SCOREBOARD_KEYS
    for s, rel in entry.slots_out:
        ready[keys[s]] = f0 + rel
    ports = program.ports
    port_free = pipe._port_free
    for pid, j, rel in entry.pipes_out:
        port_free[ports[pid]][j] = f0 + rel
    pipe._frontier = f0 + entry.frontier_rel
    pipe._cycle = pipe._frontier - entry.cycle_lag
    pipe._issued_this_cycle = entry.issued_out
    done = f0 + entry.max_done_rel
    if done > pipe.makespan:
        pipe.makespan = done
    pipe.instructions_retired += program.count
    by_port = pipe.instructions_by_port
    for port, n in program.port_counts.items():
        by_port[port] += n
    pipe.flops += program.flops
    pipe.useful_flops += program.useful_flops
    pipe.sw_prefetches += program.n_prfm


def _pipes_key(vals: List[int], f0: int) -> Tuple[int, ...]:
    """Port-pipe context: exact offsets past the frontier, rank order below.

    Pipes still busy past the entry frontier matter exactly (they can stall
    issue), so they key by offset.  Pipes at or before the frontier can
    never stall, but their *relative order* (including ties) still decides
    which pipe the least-loaded choice picks, so they key by dense rank,
    encoded negatively to stay disjoint from the offsets.
    """
    n = len(vals)
    if n == 1:
        p = vals[0]
        return ((p - f0) if p > f0 else -1,)
    stale = sorted({p for p in vals if p <= f0})
    return tuple((p - f0) if p > f0 else stale.index(p) - n for p in vals)


class TimingMemo:
    """Per-run memo table: (program, context signature) -> recorded replay.

    One instance serves one :class:`~repro.machine.pipeline.PipelineModel`
    (warm and measured passes share it, which is where much of the reuse
    comes from).  Programs whose probe re-simulation ever disagrees with a
    stored entry are demoted permanently to the plain replay loop.
    """

    #: Every Nth hit of an entry re-simulates and compares (verify-or-demote).
    probe_interval = 64
    #: Distinct recorded contexts kept per (program, signature) bucket.
    max_candidates = 8

    def __init__(self, config) -> None:
        # Cache-set collisions are translation-invariant within a frame
        # (two moving lines share a set iff their rels are congruent mod
        # num_sets, whatever the base), so the only base dependence in the
        # key is the line-split phase; page-boundary and cross-frame
        # effects are handled by relocatable checks.
        line_words = config.l1.line_bytes // 8
        self._align_words = line_words
        self._line_words = line_words
        self._tables: Dict[TimingProgram, Dict] = {}
        self._live_keys: Dict[TimingProgram, Tuple] = {}
        self._demoted: set = set()
        self.hits = 0
        self.misses = 0
        self.probes = 0
        self.demotions = 0

    # ------------------------------------------------------------------

    def _program_live_keys(self, program: TimingProgram) -> Tuple:
        live = self._live_keys.get(program)
        if live is None:
            live = tuple(SCOREBOARD_KEYS[s] for s in program.dep_union())
            self._live_keys[program] = live
        return live

    def replay(self, pipe, program: TimingProgram, template, addrs: Sequence[int]) -> None:
        """Replay a template block through the memo (or the plain loop)."""
        if program in self._demoted or template.nonuniform_dims:
            # Non-two-frame-clean templates shift their addresses relative
            # to each other from block to block; their recorded contexts
            # never recur, so recording them is pure overhead.
            pipe.process_template(program, addrs)
            return
        if pipe.hierarchy.static_watch is not None:
            # A steady-state verification window is open: the window's
            # zero-static-event proof needs every cache event to flow
            # through the instrumented paths, and _apply's recorded
            # transitions would sidestep them.  The memo is a pure
            # performance layer (bit-identical either way), so suspend it
            # for the window's bands rather than give up on elision.
            pipe.process_template(program, addrs)
            return
        base = addrs[template.base_addr_idx] if addrs else 0
        base_line = base // self._line_words

        live_keys = self._program_live_keys(program)
        f0 = pipe._frontier
        rg = pipe._ready.get
        sb = tuple((v - f0) if (v := rg(k, 0)) > f0 else 0 for k in live_keys)
        port_free = pipe._port_free
        pipes_sig = tuple(_pipes_key(port_free[port], f0) for port in program.ports)
        key = (
            base % self._align_words,
            # Page phase: where previous blocks' hardware prefetch windows
            # broke against page boundaries shapes the stream tails and
            # prefetched-ahead lines this block *inherits*, so entry state
            # only recurs at equal phase (the block's own window breaks are
            # pinned by C_PG_* checks instead and need no key part).
            base_line % LINES_PER_PAGE,
            sb,
            pipes_sig,
            f0 - pipe._cycle,
            pipe._issued_this_cycle,
        )

        buckets = self._tables.get(program)
        if buckets is None:
            buckets = {}
            self._tables[program] = buckets
        cands = buckets.get(key)
        if cands:
            for entry in cands:
                if _checks_pass(entry.checks, base_line, pipe):
                    entry.hits += 1
                    if entry.hits % self.probe_interval == 0:
                        self.probes += 1
                        fresh = _record(
                            pipe, program, addrs, base_line, template.static_addrs
                        )
                        if fresh.signature() != entry.signature():
                            self._demote(program)
                        return
                    self.hits += 1
                    _apply(entry, pipe, program, base_line)
                    return
        self.misses += 1
        if cands is None:
            # First sighting of this context: contexts that never recur
            # (cold ramp, pass boundaries) vastly outnumber the steady
            # state, so pay the instrumented-recording cost only once a
            # context proves it repeats (the empty list marks "seen once").
            buckets[key] = []
            pipe.process_template(program, addrs)
            return
        if len(cands) >= self.max_candidates:
            pipe.process_template(program, addrs)
            return
        entry = _record(pipe, program, addrs, base_line, template.static_addrs)
        if not entry.tainted:
            cands.append(entry)

    def _demote(self, program: TimingProgram) -> None:
        self._demoted.add(program)
        self._tables.pop(program, None)
        self._live_keys.pop(program, None)
        self.demotions += 1
