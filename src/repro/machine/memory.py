"""Sparse, word-addressed FP64 memory for the simulated machine.

Addresses are in 8-byte *words*.  Storage is paged and allocated lazily so
that out-of-cache experiments can address 8192 x 8192 grids (plus halos)
without committing gigabytes: the timing engine never reads data values, and
the functional engine only touches the bands it actually verifies.

Allocation is a bump allocator with line alignment; freed space is never
reclaimed (kernels allocate a handful of arrays per experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: Words per allocation page (64 KiB pages).
PAGE_WORDS = 8192

#: Words per cache line (64-byte lines of FP64).
LINE_WORDS = 8


@dataclass(frozen=True)
class Allocation:
    """Record of one named allocation."""

    name: str
    base: int
    nwords: int

    @property
    def end(self) -> int:
        return self.base + self.nwords


class MemorySpace:
    """Lazily-paged FP64 memory with a bump allocator.

    The address space starts at a nonzero base so that address 0 is never
    valid (catches uninitialized-address bugs in kernel generators).
    """

    _BASE = 1024

    def __init__(self) -> None:
        self._pages: Dict[int, np.ndarray] = {}
        self._next = self._BASE
        self._allocations: Dict[str, Allocation] = {}

    # -- allocation ----------------------------------------------------------

    def alloc(self, nwords: int, name: Optional[str] = None, align: int = LINE_WORDS) -> int:
        """Reserve ``nwords`` words, line-aligned by default; return base."""
        if nwords <= 0:
            raise ValueError(f"allocation size must be positive, got {nwords}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise ValueError(f"alignment must be a positive power of two, got {align}")
        base = (self._next + align - 1) & ~(align - 1)
        self._next = base + nwords
        if name is None:
            name = f"anon@{base}"
        if name in self._allocations:
            raise ValueError(f"allocation name already used: {name!r}")
        self._allocations[name] = Allocation(name=name, base=base, nwords=nwords)
        return base

    def allocation(self, name: str) -> Allocation:
        """Look up a named allocation."""
        return self._allocations[name]

    @property
    def words_reserved(self) -> int:
        """Total words handed out by the allocator."""
        return self._next - self._BASE

    @property
    def words_resident(self) -> int:
        """Words actually backed by committed pages."""
        return len(self._pages) * PAGE_WORDS

    # -- word access ---------------------------------------------------------

    def _page_for(self, addr: int, create: bool) -> Optional[Tuple[np.ndarray, int]]:
        page_id, offset = divmod(addr, PAGE_WORDS)
        page = self._pages.get(page_id)
        if page is None:
            if not create:
                return None
            page = np.zeros(PAGE_WORDS, dtype=np.float64)
            self._pages[page_id] = page
        return page, offset

    def read(self, addr: int, nwords: int) -> np.ndarray:
        """Read ``nwords`` consecutive words starting at ``addr``."""
        self._check_range(addr, nwords)
        out = np.zeros(nwords, dtype=np.float64)
        pos = 0
        while pos < nwords:
            got = self._page_for(addr + pos, create=False)
            page_id, offset = divmod(addr + pos, PAGE_WORDS)
            chunk = min(nwords - pos, PAGE_WORDS - offset)
            if got is not None:
                out[pos : pos + chunk] = got[0][offset : offset + chunk]
            pos += chunk
        return out

    def write(self, addr: int, values: np.ndarray) -> None:
        """Write consecutive words starting at ``addr``."""
        values = np.asarray(values, dtype=np.float64).ravel()
        self._check_range(addr, len(values))
        pos = 0
        n = len(values)
        while pos < n:
            page, offset = self._page_for(addr + pos, create=True)
            chunk = min(n - pos, PAGE_WORDS - offset)
            page[offset : offset + chunk] = values[pos : pos + chunk]
            pos += chunk

    def read_strided(self, addr: int, nwords: int, stride: int) -> np.ndarray:
        """Read ``nwords`` words at ``addr + k*stride`` (gather)."""
        out = np.zeros(nwords, dtype=np.float64)
        for k in range(nwords):
            out[k] = self.read(addr + k * stride, 1)[0]
        return out

    # -- bulk array helpers (test / experiment setup) -------------------------

    def write_array(self, base: int, array: np.ndarray) -> None:
        """Copy a contiguous NumPy array into memory at ``base``."""
        self.write(base, np.ascontiguousarray(array, dtype=np.float64).ravel())

    def read_array(self, base: int, shape: Tuple[int, ...]) -> np.ndarray:
        """Read a contiguous array of ``shape`` starting at ``base``."""
        n = int(np.prod(shape))
        return self.read(base, n).reshape(shape)

    def write_row(self, base: int, row_stride: int, row: int, values: np.ndarray, col: int = 0) -> None:
        """Write one row of a 2D array laid out with ``row_stride``."""
        self.write(base + row * row_stride + col, values)

    def read_row(self, base: int, row_stride: int, row: int, ncols: int, col: int = 0) -> np.ndarray:
        """Read one row of a 2D array laid out with ``row_stride``."""
        return self.read(base + row * row_stride + col, ncols)

    # -------------------------------------------------------------------------

    def _check_range(self, addr: int, nwords: int) -> None:
        if addr < self._BASE:
            raise ValueError(f"access below address base: {addr}")
        if addr + nwords > self._next:
            raise ValueError(
                f"access past end of allocated space: [{addr}, {addr + nwords})"
                f" but allocator frontier is {self._next}"
            )
