"""Performance counters and derived metrics.

:class:`PerfCounters` is the result object every engine run produces.  It
mirrors what the paper collects with ``perf stat`` (instructions, cycles,
L1-dcache loads/misses) plus simulator-only insight (flops, useful flops,
per-port instruction mix, DRAM traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.instructions import PortClass


@dataclass
class PerfCounters:
    """Counters for one (possibly extrapolated) kernel execution."""

    #: Method / kernel name the counters belong to.
    label: str = ""

    cycles: float = 0.0
    instructions: int = 0
    instructions_by_port: Dict[PortClass, int] = field(default_factory=dict)

    flops: int = 0
    useful_flops: int = 0

    #: Grid points updated (for GStencil/s and cycles/point).
    points: int = 0

    # L1 statistics (perf-style: demand + software-prefetch probes).
    l1_accesses: int = 0
    l1_hits: int = 0
    l1_demand_accesses: int = 0
    l1_demand_hits: int = 0
    l1_prefetch_fills: int = 0

    l2_accesses: int = 0
    l2_hits: int = 0

    dram_lines_read: int = 0
    dram_lines_written: int = 0

    sw_prefetches: int = 0
    hw_prefetches: int = 0

    #: True when cycles/points were extrapolated from a sampled band.
    sampled: bool = False

    #: Cache-line size the DRAM line counters were collected at.  Set by the
    #: timing engine from the machine configuration; 64 only as a fallback
    #: for hand-built counters.
    line_bytes: int = 64

    # -- derived -------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_hit_rate(self) -> float:
        """Hit rate as a PMU reports it (includes SW prefetch probes)."""
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l1_demand_hit_rate(self) -> float:
        return (
            self.l1_demand_hits / self.l1_demand_accesses if self.l1_demand_accesses else 0.0
        )

    @property
    def cycles_per_point(self) -> float:
        return self.cycles / self.points if self.points else 0.0

    @property
    def matrix_utilization(self) -> float:
        """Useful flops over machine-capability flops of matrix instructions.

        This is only meaningful for counters restricted to matrix
        instructions; :meth:`repro.core.analysis` computes the single-register
        utilization of Table 1 analytically instead.
        """
        return self.useful_flops / self.flops if self.flops else 0.0

    def gstencil_per_s(self, clock_ghz: float) -> float:
        """Grid-point updates per wall-clock second, in 1e9/s."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / (clock_ghz * 1e9)
        return self.points / seconds / 1e9

    def dram_bytes(self, line_bytes: Optional[int] = None) -> int:
        """Total DRAM traffic (reads + writebacks) in bytes.

        ``line_bytes`` defaults to the line size the counters were collected
        at (``self.line_bytes``); pass a value only to override it.
        """
        if line_bytes is None:
            line_bytes = self.line_bytes
        return (self.dram_lines_read + self.dram_lines_written) * line_bytes

    # -- combination -----------------------------------------------------------

    def scaled(self, factor: float) -> "PerfCounters":
        """Return a copy with extensive counters multiplied by ``factor``.

        Used to extrapolate a sampled band to the full grid.  Counter values
        stay floats for cycles and are rounded for integral counters.
        """
        out = PerfCounters(label=self.label, sampled=True, line_bytes=self.line_bytes)
        out.cycles = self.cycles * factor
        out.instructions = round(self.instructions * factor)
        out.instructions_by_port = {
            k: round(v * factor) for k, v in self.instructions_by_port.items()
        }
        out.flops = round(self.flops * factor)
        out.useful_flops = round(self.useful_flops * factor)
        out.points = round(self.points * factor)
        out.l1_accesses = round(self.l1_accesses * factor)
        out.l1_hits = round(self.l1_hits * factor)
        out.l1_demand_accesses = round(self.l1_demand_accesses * factor)
        out.l1_demand_hits = round(self.l1_demand_hits * factor)
        out.l1_prefetch_fills = round(self.l1_prefetch_fills * factor)
        out.l2_accesses = round(self.l2_accesses * factor)
        out.l2_hits = round(self.l2_hits * factor)
        out.dram_lines_read = round(self.dram_lines_read * factor)
        out.dram_lines_written = round(self.dram_lines_written * factor)
        out.sw_prefetches = round(self.sw_prefetches * factor)
        out.hw_prefetches = round(self.hw_prefetches * factor)
        return out

    def merge(self, other: "PerfCounters") -> None:
        """Accumulate another run's extensive counters into this one."""
        self.cycles += other.cycles
        self.instructions += other.instructions
        for k, v in other.instructions_by_port.items():
            self.instructions_by_port[k] = self.instructions_by_port.get(k, 0) + v
        self.flops += other.flops
        self.useful_flops += other.useful_flops
        self.points += other.points
        self.l1_accesses += other.l1_accesses
        self.l1_hits += other.l1_hits
        self.l1_demand_accesses += other.l1_demand_accesses
        self.l1_demand_hits += other.l1_demand_hits
        self.l1_prefetch_fills += other.l1_prefetch_fills
        self.l2_accesses += other.l2_accesses
        self.l2_hits += other.l2_hits
        self.dram_lines_read += other.dram_lines_read
        self.dram_lines_written += other.dram_lines_written
        self.sw_prefetches += other.sw_prefetches
        self.hw_prefetches += other.hw_prefetches
        self.sampled = self.sampled or other.sampled

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe dict (``instructions_by_port`` keyed by port name)."""
        return {
            "label": self.label,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "instructions_by_port": {
                port.name: count for port, count in self.instructions_by_port.items()
            },
            "flops": self.flops,
            "useful_flops": self.useful_flops,
            "points": self.points,
            "l1_accesses": self.l1_accesses,
            "l1_hits": self.l1_hits,
            "l1_demand_accesses": self.l1_demand_accesses,
            "l1_demand_hits": self.l1_demand_hits,
            "l1_prefetch_fills": self.l1_prefetch_fills,
            "l2_accesses": self.l2_accesses,
            "l2_hits": self.l2_hits,
            "dram_lines_read": self.dram_lines_read,
            "dram_lines_written": self.dram_lines_written,
            "sw_prefetches": self.sw_prefetches,
            "hw_prefetches": self.hw_prefetches,
            "sampled": self.sampled,
            "line_bytes": self.line_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PerfCounters":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        out = cls()
        ports = data.get("instructions_by_port", {})
        for key, value in data.items():
            if key == "instructions_by_port":
                continue
            if not hasattr(out, key):
                raise ValueError(f"unknown PerfCounters field {key!r}")
            setattr(out, key, value)
        out.instructions_by_port = {PortClass[name]: count for name, count in ports.items()}
        return out

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.label or 'run'}: {self.cycles:.0f} cycles, "
            f"{self.instructions} instr (IPC {self.ipc:.2f}), "
            f"{self.points} points ({self.cycles_per_point:.2f} cyc/pt), "
            f"L1 {100 * self.l1_hit_rate:.1f}%"
        )
