"""Band-periodic steady-state elision: exact full-grid timing in O(prologue + period).

A stencil sweep's machine state at *band boundaries* is overwhelmingly
periodic once the caches reach capacity streaming: every band touches the
same line pattern shifted by one fixed stride, so the cache tags, the
prefetcher stream table and the pipeline scoreboard recur *modulo a uniform
address shift*.  This module detects that recurrence, verifies one full
period live, and then applies the remaining bands arithmetically — the same
fixed-point trick the pass-level memoization plays across measured passes
(PR 3), pushed down to band granularity within a single pass.

Soundness rests on three pillars:

* **A band certificate** (:func:`build_certificate`), built once from a
  representative interior band whose shape classes are already compiled:
  every block templated, every template two-frame clean, all band-moving
  operands advancing by one common per-band stride ``d_lines`` (whole cache
  lines), all band-static operands read-only and page-disjoint from the
  moving span (with a one-page margin so a prefetch stream adjacent to the
  moving region can never walk into static data).  The certificate also
  fixes the **period alignment**: a candidate period ``p`` is only eligible
  when ``p * d_lines`` is a multiple of both the L1 set count and the
  4 KiB page size, so a shift by ``p`` bands preserves L1 set indices and
  page offsets exactly.  L2 set indices are *not* constrained — the L2
  signature is compared under a set *rotation* instead, which is a true
  automorphism of LRU behaviour as long as no static line lives in L2.

* **Rebased signatures** (:func:`rebased_signature`): the exact
  ``state_signature()`` structure with every moving cache tag, dirty bit
  and stream-table entry translated back by ``k * d_lines`` at boundary
  ``k``, L2 sets read off in rotated order, and static lines kept fixed
  (tagged so a static tag can never collide with a translated moving one).
  The signature is ``None`` — boundary ineligible — while any static line
  sits in L2, because the rotation argument needs an all-moving L2.

* **Probe-verify-or-demote**: a recurring digest with an aligned period is
  only a *candidate*.  One additional full period is simulated live with a
  **static watch** armed on the hierarchy (counting demand misses,
  software-prefetch fills, hardware-prefetch fills and dirty-victim
  writebacks that touch a certificate-static line, i.e. every channel by
  which a static line could enter L2 mid-period).  The elision engages only
  if the signature digest recurs again, the raw counter delta repeats
  exactly, the watch saw zero events and the compiler's edge width never
  widened.  Any mismatch demotes the run permanently to the plain band
  walk — the result is then simply the exact simulation, never an
  approximation.

The engaged jump multiplies the verified per-period counter delta onto the
raw pipeline/cache/prefetcher counters (exact integer arithmetic, the
``_add_scaled`` contract), shifts every moving line by ``m * p * d_lines``
and every scoreboard/port timestamp by the period's cycle delta.  Verified
``(period, delta, digest)`` records persist in the artifact store so warm
processes skip detection and go straight to the verification window.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.machine import artifacts
from repro.machine.config import MachineConfig
from repro.machine.pipeline import PipelineModel
from repro.machine.prefetcher import LINES_PER_PAGE, _Stream

#: Grids with fewer bands than this never amortize detection + verification.
MIN_BANDS = 8

#: Moving spans smaller than this many L2 capacities are (near-)resident:
#: band boundaries then depend on the whole access history rather than a
#: streaming window, recurrence is unlikely, and the per-boundary signature
#: walk would be pure overhead on in-cache workloads.
SPAN_L2_FACTOR = 2

#: Detection gives up (and stops paying for signatures) when no aligned
#: recurrence appeared within this many aligned periods plus slack.
DETECT_ALIGN_WINDOW = 6
DETECT_SLACK = 8

#: Pages of clearance required between static lines and the moving span.
PAGE_MARGIN = 1

#: Number of integer fields in a raw counter vector (ports excluded).
_N_RAW = 24


@dataclass
class SteadyStats:
    """Run-level accounting for the steady-state controller."""

    detect_sigs: int = 0
    record_probes: int = 0
    candidates: int = 0
    verified: int = 0
    engaged: int = 0
    demoted: int = 0
    elided_bands: int = 0
    record_mode: bool = False
    disabled: str = ""

    def to_dict(self) -> Dict:
        return {
            "detect_sigs": self.detect_sigs,
            "record_probes": self.record_probes,
            "candidates": self.candidates,
            "verified": self.verified,
            "engaged": self.engaged,
            "demoted": self.demoted,
            "elided_bands": self.elided_bands,
            "record_mode": self.record_mode,
            "disabled": self.disabled,
        }


@dataclass(frozen=True)
class BandCertificate:
    """Static proof obligations for band-periodic elision (see module doc)."""

    edge: int
    d_lines: int
    align: int
    static_lines: frozenset
    span_lines: int


def build_certificate(
    compiler, bands, config: MachineConfig
) -> Tuple[Optional[BandCertificate], str]:
    """Certify a kernel's bands for periodic elision, or explain why not.

    Must be called only after at least one interior band has executed, so
    every interior shape class is already resolved — ``compiler.lookup``
    then never triggers new probe emits or edge widening.
    """
    from repro.kernels.template import operand_extents

    edge = compiler.edge
    B = len(bands)
    if B < MIN_BANDS or B <= 2 * edge + 2:
        return None, "too-few-bands"
    keys = []
    for band in bands:
        k0s = {b.key[0] for b in band}
        if len(k0s) != 1:
            return None, "mixed-band-keys"
        keys.append(k0s.pop())
    step = keys[1] - keys[0]
    if step <= 0 or any(keys[i + 1] - keys[i] != step for i in range(B - 1)):
        return None, "nonuniform-band-keys"

    line_words = config.l1.line_bytes // 8
    d_words: Optional[int] = None
    static_lines: set = set()
    moving_lo: Optional[int] = None
    moving_hi: Optional[int] = None
    for block in bands[edge]:
        entry = compiler.lookup(block)
        if entry is None:
            return None, "untemplated-block"
        template, addrs = entry
        if template.nonuniform_dims:
            return None, "nonuniform-template"
        delta0 = None
        for d, delta in template.deltas:
            if d == 0:
                delta0 = delta
                break
        for aidx, lo, hi, writes in operand_extents(template.trace, addrs):
            v = 0 if delta0 is None else int(delta0[aidx])
            first = lo // line_words
            last = (hi - 1) // line_words
            if v == 0:
                if writes:
                    # A written static line would turn dirty and eventually
                    # wash into L2, breaking the all-moving-L2 rotation.
                    return None, "static-store"
                static_lines.update(range(first, last + 1))
            else:
                move = v * step
                if d_words is None:
                    d_words = move
                elif move != d_words:
                    return None, "mixed-strides"
                moving_lo = first if moving_lo is None else min(moving_lo, first)
                moving_hi = last if moving_hi is None else max(moving_hi, last)
    if compiler.edge != edge:
        return None, "edge-widened"
    if d_words is None or d_words <= 0:
        return None, "no-band-motion"
    if d_words % line_words:
        return None, "unaligned-stride"
    d_lines = d_words // line_words

    # Moving span over every interior band (the steady window only ever
    # covers interior bands; prologue/epilogue always run live).
    span_lo = int(moving_lo)
    span_hi = int(moving_hi) + (B - 1 - 2 * edge) * d_lines
    span_lines = span_hi - span_lo + 1
    l2_capacity = config.l2.num_sets * config.l2.associativity
    if span_lines <= SPAN_L2_FACTOR * l2_capacity:
        return None, "in-cache"

    static_pages = {ln // LINES_PER_PAGE for ln in static_lines}
    page_lo = span_lo // LINES_PER_PAGE - PAGE_MARGIN
    page_hi = span_hi // LINES_PER_PAGE + PAGE_MARGIN
    if any(page_lo <= pg <= page_hi for pg in static_pages):
        return None, "static-overlaps-moving"

    n1 = config.l1.num_sets
    a1 = n1 // math.gcd(d_lines, n1)
    ap = LINES_PER_PAGE // math.gcd(d_lines, LINES_PER_PAGE)
    align = a1 * ap // math.gcd(a1, ap)
    cert = BandCertificate(
        edge=edge,
        d_lines=d_lines,
        align=align,
        static_lines=frozenset(static_lines),
        span_lines=span_lines,
    )
    return cert, ""


# -- rebased signatures -------------------------------------------------------


def rebased_signature(
    pipe: PipelineModel, static_lines: frozenset, off: int
) -> Optional[tuple]:
    """Band-relative machine state at a boundary ``off = k * d_lines`` lines in.

    Returns ``None`` while any static line is resident in L2 (the L2
    rotation argument requires an all-moving L2).  Static tags are kept
    fixed and tagged ``("s", line)`` so they can never collide with a
    translated moving tag.  Dirty sets are serialized as *sorted tuples*:
    signatures are compared by digest-of-repr, which must not depend on
    hash-table insertion history.
    """
    h = pipe.hierarchy
    l1 = h.l1
    l1_sig = tuple(
        tuple(
            (("s", t) if t in static_lines else t - off)
            for t in sorted(ways, key=ways.__getitem__)
        )
        for ways in l1._sets
    )
    l1_dirty = tuple(
        sorted(
            ((("s", t) if t in static_lines else t - off) for t in l1._dirty),
            key=lambda t: (1, t[1]) if type(t) is tuple else (0, t),
        )
    )
    l2 = h.l2
    n2 = l2.num_sets
    rot = off % n2
    l2_sets = l2._sets
    l2_sig: List[tuple] = []
    for sigma in range(n2):
        ways = l2_sets[(sigma + rot) % n2]
        tags = []
        for t in sorted(ways, key=ways.__getitem__):
            if t in static_lines:
                return None
            tags.append(t - off)
        l2_sig.append(tuple(tags))
    l2_dirty = tuple(sorted(t - off for t in l2._dirty))
    pf_sig = tuple(
        ((("s", line) if line in static_lines else line - off), s.advances)
        for line, s in pipe.prefetcher._streams.items()
    )
    return (
        pipe._core_signature(),
        (l1_sig, l1_dirty),
        (tuple(l2_sig), l2_dirty),
        pf_sig,
    )


# -- raw counter algebra ------------------------------------------------------
#
# A raw vector is ``(core, ports)``: ``core`` is a fixed-order integer tuple
# (the order below is mirrored exactly by ``apply_jump``), ``ports`` a sorted
# tuple of ``(str(port), count)``.  Index 1 is the in-order frontier; signature
# equality at both window endpoints forces the makespan (0) and cycle (2)
# deltas to equal the frontier delta, which ``SteadyController`` checks before
# trusting a window.


def raw_counters(pipe: PipelineModel) -> tuple:
    h = pipe.hierarchy
    a = h.l1.stats
    b = h.l2.stats
    pf = pipe.prefetcher
    core = (
        pipe.makespan,
        pipe._frontier,
        pipe._cycle,
        pipe.instructions_retired,
        pipe.flops,
        pipe.useful_flops,
        pipe.sw_prefetches,
        a.demand_accesses,
        a.demand_hits,
        a.prefetch_probes,
        a.prefetch_probe_hits,
        a.prefetch_fills,
        a.writebacks,
        b.demand_accesses,
        b.demand_hits,
        b.prefetch_probes,
        b.prefetch_probe_hits,
        b.prefetch_fills,
        b.writebacks,
        h.mem_lines_read,
        h.mem_lines_written,
        pf.prefetches_issued,
        pf.streams_confirmed,
        pf.streams_allocated,
    )
    ports = tuple(
        sorted((str(p), int(n)) for p, n in pipe.instructions_by_port.items())
    )
    return core, ports


def raw_delta(after: tuple, before: tuple) -> tuple:
    core = tuple(x - y for x, y in zip(after[0], before[0]))
    pa = dict(after[1])
    pb = dict(before[1])
    ports = tuple(
        sorted((k, pa.get(k, 0) - pb.get(k, 0)) for k in set(pa) | set(pb))
    )
    return core, ports


def apply_jump(
    pipe: PipelineModel, static_lines: frozenset, shift: int, m: int, delta: tuple
) -> None:
    """Advance the machine by ``m`` verified periods without simulating them.

    ``shift`` is the total line translation (``m * period * d_lines``; the
    caller guarantees it is a multiple of the L1 set count and the page
    size).  Counters gain ``m * delta`` exactly; every moving cache tag,
    dirty bit and stream-table entry translates by ``shift``; the scoreboard,
    port frontiers, cycle bookkeeping and makespan translate by the period's
    cycle delta.  Scoreboard entries already at or below the frontier are
    dead (they can never raise a future issue cycle), so translating them
    uniformly preserves every future issue decision bit-exactly.
    """
    core, ports = delta
    T = m * core[1]

    pipe.makespan += m * core[0]
    pipe._frontier += T
    pipe._cycle += m * core[2]
    pipe.instructions_retired += m * core[3]
    pipe.flops += m * core[4]
    pipe.useful_flops += m * core[5]
    pipe.sw_prefetches += m * core[6]
    h = pipe.hierarchy
    a = h.l1.stats
    a.demand_accesses += m * core[7]
    a.demand_hits += m * core[8]
    a.prefetch_probes += m * core[9]
    a.prefetch_probe_hits += m * core[10]
    a.prefetch_fills += m * core[11]
    a.writebacks += m * core[12]
    b = h.l2.stats
    b.demand_accesses += m * core[13]
    b.demand_hits += m * core[14]
    b.prefetch_probes += m * core[15]
    b.prefetch_probe_hits += m * core[16]
    b.prefetch_fills += m * core[17]
    b.writebacks += m * core[18]
    h.mem_lines_read += m * core[19]
    h.mem_lines_written += m * core[20]
    pf = pipe.prefetcher
    pf.prefetches_issued += m * core[21]
    pf.streams_confirmed += m * core[22]
    pf.streams_allocated += m * core[23]
    by_port = pipe.instructions_by_port
    port_by_name = {str(p): p for p in pipe._port_free}
    for name, n in ports:
        if n:
            by_port[port_by_name[name]] += m * n

    pipe._ready = {k: v + T for k, v in pipe._ready.items()}
    for pipes in pipe._port_free.values():
        for i in range(len(pipes)):
            pipes[i] += T

    l1 = h.l1
    l1._sets = [
        {(t if t in static_lines else t + shift): tick for t, tick in ways.items()}
        for ways in l1._sets
    ]
    l1._dirty = {(t if t in static_lines else t + shift) for t in l1._dirty}
    l1._tick += 1  # invalidate the signature-digest memo
    l2 = h.l2
    n2 = l2.num_sets
    new_sets: List[Dict[int, int]] = [dict() for _ in range(n2)]
    for ways in l2._sets:
        for t, tick in ways.items():
            t2 = t + shift
            new_sets[t2 % n2][t2] = tick
    l2._sets = new_sets
    l2._dirty = {t + shift for t in l2._dirty}
    l2._tick += 1
    streams: "OrderedDict[int, _Stream]" = OrderedDict()
    for line, s in pf._streams.items():
        line2 = line if line in static_lines else line + shift
        streams[line2] = _Stream(tail_line=line2, advances=s.advances)
    pf._streams = streams


# -- persisted records --------------------------------------------------------


def steady_record_key(compiler) -> Optional[str]:
    """Artifact-store digest for a kernel's steady record, or ``None``.

    Mirrors the template bundle identity (machine digest, kernel/spec/grid
    fingerprints, options, shape) under its own ``kind`` so a steady record
    invalidates on exactly the same inputs as the templates it rides on.
    """
    inputs = compiler._bundle_key_inputs()
    if inputs is None:
        return None
    inputs = dict(inputs)
    inputs["kind"] = "steady"
    return artifacts.artifact_digest(inputs)


# -- the controller -----------------------------------------------------------


class SteadyController:
    """Detect -> verify -> engage state machine for one pass of one kernel.

    Drive it with :meth:`after_band` after each completed band (solo), or
    with :meth:`observe_band` / :meth:`engage` from a lockstep driver that
    requires all cores to be ready simultaneously.  ``k`` is always the
    number of completed bands.  Any mismatch disables the controller for
    the rest of the run — the pass then finishes as a plain exact walk.
    """

    def __init__(
        self,
        pipe: PipelineModel,
        compiler,
        bands,
        config: MachineConfig,
        *,
        record: Optional[Dict] = None,
        on_record: Optional[Callable[[Dict], None]] = None,
        stats: Optional[SteadyStats] = None,
    ) -> None:
        self.pipe = pipe
        self.compiler = compiler
        self.bands = bands
        self.B = len(bands)
        self.config = config
        self.record = record
        self.on_record = on_record
        self.stats = stats if stats is not None else SteadyStats()
        self.cert: Optional[BandCertificate] = None
        self.state = "detect"
        self._seen: Dict[str, Tuple[int, tuple]] = {}
        self.period = 0
        self.target = -1
        self.expected_digest: Optional[str] = None
        self.expected_delta: Optional[tuple] = None
        self.base_raw: Optional[tuple] = None
        self.ready_at = -1
        self._rec_period = 0
        self._rec_digest: Optional[str] = None
        self._rec_delta: Optional[tuple] = None
        if self.B < MIN_BANDS:
            self._disable("too-few-bands")

    # -- lifecycle ------------------------------------------------------

    def _disable(self, reason: str, demoted: bool = False) -> None:
        if self.state == "disabled":
            return
        self.state = "disabled"
        self.stats.disabled = reason
        h = self.pipe.hierarchy
        h.static_watch = None
        h.static_watch_hits = 0
        if demoted:
            self.stats.demoted += 1

    def force_disable(self, reason: str = "lockstep") -> None:
        """Lockstep all-or-none demotion: drop an in-flight claim."""
        if self.state in ("disabled", "engaged"):
            return
        self._disable(reason, demoted=self.state in ("verify", "ready"))

    def _ensure_cert(self) -> bool:
        if self.cert is not None:
            return True
        if self.state == "disabled":
            return False
        cert, reason = build_certificate(self.compiler, self.bands, self.config)
        if cert is None:
            self._disable(reason)
            return False
        self.cert = cert
        if self.record is not None:
            r = self.record
            if (
                r.get("d_lines") != cert.d_lines
                or r.get("edge") != cert.edge
                or r.get("align") != cert.align
                or not self._decode_record(r)
            ):
                self.record = None  # stale record: fall back to live detection
            else:
                self.stats.record_mode = True
        return True

    def _decode_record(self, r: Dict) -> bool:
        try:
            p = int(r["period"])
            digest = r["sig"]
            core = tuple(int(x) for x in r["delta"]["core"])
            ports = tuple((str(nm), int(n)) for nm, n in r["delta"]["ports"])
        except (KeyError, TypeError, ValueError):
            return False
        if (
            p <= 0
            or p % self.cert.align
            or len(core) != _N_RAW
            or not isinstance(digest, str)
            or not (core[0] == core[1] == core[2])
        ):
            return False
        self._rec_period = p
        self._rec_digest = digest
        self._rec_delta = (core, ports)
        return True

    # -- per-boundary protocol ------------------------------------------

    def observe_band(self, k: int) -> str:
        """Advance the state machine at boundary ``k`` (bands completed)."""
        if self.state in ("disabled", "engaged"):
            return self.state
        e = self.compiler.edge
        if k < e + 1 or k > self.B - e:
            return self.state
        if not self._ensure_cert():
            return self.state
        cert = self.cert
        if self.compiler.edge != cert.edge:
            self._disable("edge-widened")
            return self.state
        if self.state == "ready":
            return self.state
        if self.state == "verify":
            if k >= self.target:
                self._finish_verify(k)
            return self.state

        # detect (or record scan)
        if self.record is None and k > e + DETECT_ALIGN_WINDOW * cert.align + DETECT_SLACK:
            self._disable("no-recurrence")
            return self.state
        sig = rebased_signature(self.pipe, cert.static_lines, k * cert.d_lines)
        if sig is None:
            return self.state  # a static line is still washing out of L2
        digest = artifacts.signature_digest(sig)
        raw = raw_counters(self.pipe)
        if self.record is not None:
            self.stats.record_probes += 1
            if digest == self._rec_digest:
                if self._has_room(k, self._rec_period):
                    self._start_verify(k, self._rec_period, digest, self._rec_delta, raw)
                else:
                    self._disable("no-room")
            return self.state
        self.stats.detect_sigs += 1
        prev = self._seen.get(digest)
        if prev is None:
            self._seen[digest] = (k, raw)
            return self.state
        k0, raw0 = prev
        p = k - k0
        if p % cert.align:
            # Unaligned recurrences can be coincidental (uniform streaming
            # makes L1 sets look alike); only set/page-preserving periods
            # carry the shift-automorphism proof.  Keep the earlier entry.
            return self.state
        if not self._has_room(k, p):
            self._disable("no-room")
            return self.state
        delta = raw_delta(raw, raw0)
        if not (delta[0][0] == delta[0][1] == delta[0][2]):
            self._seen[digest] = (k, raw)
            return self.state
        self._start_verify(k, p, digest, delta, raw)
        return self.state

    def _has_room(self, k: int, p: int) -> bool:
        # The verify window occupies bands [k, k+p); at least one more full
        # period must remain inside the interior to make the jump worthwhile.
        last = self.B - self.compiler.edge
        return k + p <= last and (last - k - p) >= p

    def _start_verify(
        self, k: int, p: int, digest: str, delta: tuple, raw: tuple
    ) -> None:
        self.period = p
        self.target = k + p
        self.expected_digest = digest
        self.expected_delta = delta
        self.base_raw = raw
        h = self.pipe.hierarchy
        h.static_watch = self.cert.static_lines
        h.static_watch_hits = 0
        self.stats.candidates += 1
        self.state = "verify"

    def _finish_verify(self, k: int) -> None:
        cert = self.cert
        h = self.pipe.hierarchy
        ok = (
            k == self.target
            and h.static_watch_hits == 0
            and self.compiler.edge == cert.edge
        )
        if ok:
            sig = rebased_signature(self.pipe, cert.static_lines, k * cert.d_lines)
            ok = sig is not None and artifacts.signature_digest(sig) == self.expected_digest
        if ok:
            ok = raw_delta(raw_counters(self.pipe), self.base_raw) == self.expected_delta
        if not ok:
            self._disable("verify-mismatch", demoted=True)
            return
        # Hold the window open: the watch stays armed so the engage point
        # can be deferred (lockstep) with the zero-static-event proof intact
        # — per-band behaviour is periodic from here for *any* later aligned
        # start inside the interior, so deferral costs only live bands.
        self.state = "ready"
        self.ready_at = k
        self.stats.verified += 1

    # -- engagement -----------------------------------------------------

    def max_engage_periods(self, k: int) -> int:
        if self.state != "ready":
            return 0
        return (self.B - self.compiler.edge - k) // self.period

    def engage(self, k: int, m: int) -> Optional[int]:
        """Jump ``m`` periods from boundary ``k``; return the new boundary."""
        if self.state != "ready" or m < 1:
            return None
        h = self.pipe.hierarchy
        if h.static_watch_hits != 0 or self.compiler.edge != self.cert.edge:
            self._disable("verify-mismatch", demoted=True)
            return None
        shift = m * self.period * self.cert.d_lines
        apply_jump(self.pipe, self.cert.static_lines, shift, m, self.expected_delta)
        self.state = "engaged"
        h.static_watch = None
        h.static_watch_hits = 0
        self.stats.engaged += 1
        self.stats.elided_bands += m * self.period
        if self.on_record is not None and self.record is None:
            core, ports = self.expected_delta
            self.on_record(
                {
                    "sig": self.expected_digest,
                    "period": self.period,
                    "delta": {
                        "core": list(core),
                        "ports": [[nm, n] for nm, n in ports],
                    },
                    "d_lines": self.cert.d_lines,
                    "edge": self.cert.edge,
                    "align": self.cert.align,
                }
            )
        return k + m * self.period

    def after_band(self, k: int) -> Optional[int]:
        """Solo driver: observe boundary ``k``, engage as soon as ready.

        Returns the new boundary (bands completed) after a jump, else
        ``None`` (continue with the next band).
        """
        self.observe_band(k)
        if self.state != "ready":
            return None
        m = self.max_engage_periods(k)
        if m < 1:
            self._disable("no-room")
            return None
        return self.engage(k, m)
