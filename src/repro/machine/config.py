"""Machine configurations: pipelines, latencies, caches, prefetcher.

Two presets reproduce the paper's platforms:

``LX2()``
    The next-generation HPC CPU of Sections 2.1/5.1.  Calibrated so that the
    architectural facts the paper leans on hold by construction:

    * FP64 outer-product peak is 4x the vector-MLA peak — one matrix pipe
      retiring 128 flops/cycle vs two vector pipes retiring 2 x 16 = 32;
    * an FMOPA has a 4-cycle dependency latency with single-cycle initiation,
      so peak matrix throughput needs >= 4 independent accumulator tiles
      (Figure 3a) and single-register kernels leave the unit 4x underused;
    * matrix, vector and load/store instructions occupy distinct pipelines
      and co-issue (Figure 3b);
    * the tile-slice-to-vector move (MOVA) has twice the FMOPA initiation
      interval, making the naive accumulation workflow expensive (§3.1.1).

``M4()``
    The Apple M4 Pro portability target of Section 5.4: same tile geometry,
    *no vector-FMLA capability* (matrix-MLA ``FMLA_M`` instead), 128 KB L1
    data cache and a large shared L2.

All parameters are plain dataclass fields so experiments and tests can
derive variants (e.g. disabling the hardware prefetcher).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.isa.instructions import (
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    Instruction,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PortClass,
    PRFM,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int
    associativity: int

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.associativity)
        if sets <= 0:
            raise ValueError("cache too small for its line size / associativity")
        return sets


@dataclass(frozen=True)
class LatencySpec:
    """``(latency, initiation_interval)`` of an instruction class.

    ``latency`` is cycles until the result is usable; ``initiation_interval``
    is cycles the pipe stays busy (1 = fully pipelined).
    """

    latency: int
    initiation_interval: int = 1


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated core + its memory system."""

    name: str

    #: Pipes available per port class (co-issue capability).
    ports: Dict[PortClass, int] = field(
        default_factory=lambda: {
            PortClass.VECTOR: 2,
            PortClass.MATRIX: 1,
            PortClass.LOAD: 2,
            PortClass.STORE: 1,
            PortClass.SCALAR: 2,
        }
    )

    #: Maximum instructions issued per cycle across all ports.
    issue_width: int = 4

    #: Latency/II per instruction mnemonic (see :meth:`latency_for`).
    latencies: Dict[str, LatencySpec] = field(default_factory=dict)

    #: Whether the core has vector-FMLA capability (False on the M4, which
    #: replaces it with matrix-MLA; kernels consult this flag).
    has_vector_fmla: bool = True

    #: Whether the core supports the matrix-MLA (FMLA_M) instruction.
    has_matrix_mla: bool = False

    #: Whether in-place accumulation (vector results accumulated into a tile
    #: via a unit-basis FMOPA) is architecturally available.  On the M4 the
    #: fragmented M-MLA layout forbids it (Section 4.1).
    supports_inplace_accumulation: bool = True

    # -- memory hierarchy ---------------------------------------------------

    l1: CacheGeometry = CacheGeometry(64 * 1024, 64, 8)
    l2: CacheGeometry = CacheGeometry(512 * 1024, 64, 8)

    #: Load-to-use latencies *visible to the in-order model*.  A real
    #: core's out-of-order window hides most of an L2 hit and part of a
    #: DRAM access; the presets encode the unhidden portion, which is
    #: what stall-on-use scoreboarding should charge.
    l1_load_latency: int = 4
    l2_load_latency: int = 7
    mem_load_latency: int = 60

    #: Hardware stream prefetcher: number of tracked streams and how many
    #: lines ahead it runs.  The stream-table capacity is the mechanism that
    #: separates the vector method (few streams, fully covered) from the
    #: matrix method (2r+8 concurrent row streams, table thrashes) — §2.3.3.
    hw_prefetch_streams: int = 16
    hw_prefetch_depth: int = 4
    hw_prefetch_enabled: bool = True

    #: Shared DRAM bandwidth in bytes/cycle (whole socket, for multicore).
    mem_bandwidth_bytes_per_cycle: float = 800.0

    #: Nominal clock for converting cycles to seconds (GStencil/s).
    clock_ghz: float = 2.5

    # -----------------------------------------------------------------------

    def latency_for(self, ins: Instruction) -> LatencySpec:
        """Latency/II for an instruction (memory level handled by caller)."""
        try:
            memo = self._latency_memo
        except AttributeError:
            # Frozen dataclass: stash the per-mnemonic memo out of band.  The
            # memo aliases ``latencies`` entries, so it can never go stale
            # unless the table itself is mutated (configs are treated as
            # immutable everywhere).
            memo = dict(self.latencies)
            object.__setattr__(self, "_latency_memo", memo)
        spec = memo.get(ins.mnemonic)
        if spec is None:
            raise KeyError(f"{self.name}: no latency configured for {ins.mnemonic!r}")
        return spec

    def port_count(self, port: PortClass) -> int:
        return self.ports.get(port, 1)

    def without_hw_prefetch(self) -> "MachineConfig":
        """Variant with the hardware prefetcher disabled (ablations)."""
        return replace(self, hw_prefetch_enabled=False, name=self.name + "-nohwpf")

    def validate(self) -> None:
        """Sanity-check internal consistency (used by tests)."""
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        for port, count in self.ports.items():
            if count < 0:
                raise ValueError(f"negative pipe count for {port}")
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("L1/L2 line sizes must match")
        for mnemonic, spec in self.latencies.items():
            if spec.latency < 1 or spec.initiation_interval < 1:
                raise ValueError(f"bad latency spec for {mnemonic}: {spec}")


def _common_latencies() -> Dict[str, LatencySpec]:
    """Latency table shared by both presets.

    Load latencies here are the *L1-hit* values; the timing engine adds the
    L2/memory penalty according to where the access actually hits.
    """
    return {
        LD1D.mnemonic: LatencySpec(latency=4, initiation_interval=1),
        # A strided gather touches eight cache lines with eight address
        # generations: it occupies its load pipe for eight slots.
        LD1D_STRIDED.mnemonic: LatencySpec(latency=14, initiation_interval=8),
        ST1D.mnemonic: LatencySpec(latency=1, initiation_interval=1),
        ST1D_SLICE.mnemonic: LatencySpec(latency=1, initiation_interval=1),
        PRFM.mnemonic: LatencySpec(latency=1, initiation_interval=1),
        FMLA.mnemonic: LatencySpec(latency=3, initiation_interval=1),
        FMLA_IDX.mnemonic: LatencySpec(latency=3, initiation_interval=1),
        FMUL_IDX.mnemonic: LatencySpec(latency=3, initiation_interval=1),
        FADD_V.mnemonic: LatencySpec(latency=3, initiation_interval=1),
        EXT.mnemonic: LatencySpec(latency=2, initiation_interval=1),
        DUP.mnemonic: LatencySpec(latency=1, initiation_interval=1),
        SET_LANES.mnemonic: LatencySpec(latency=2, initiation_interval=1),
        FMOPA.mnemonic: LatencySpec(latency=4, initiation_interval=1),
        ZERO_TILE.mnemonic: LatencySpec(latency=1, initiation_interval=1),
        # Slice-to-vector transfer: "requiring two times more cycles than
        # outer product instructions" (§3.1.1) — II 2, long latency.
        MOVA_TILE_TO_VEC.mnemonic: LatencySpec(latency=8, initiation_interval=2),
        MOVA_VEC_TO_TILE.mnemonic: LatencySpec(latency=4, initiation_interval=2),
        FMLA_M.mnemonic: LatencySpec(latency=4, initiation_interval=1),
        SCALAR_OP.mnemonic: LatencySpec(latency=1, initiation_interval=1),
    }


def LX2() -> MachineConfig:
    """The LX2 high-performance CPU preset (Sections 2.1, 5.1)."""
    cfg = MachineConfig(
        name="LX2",
        ports={
            PortClass.VECTOR: 2,
            PortClass.MATRIX: 1,
            PortClass.LOAD: 2,
            PortClass.STORE: 1,
            PortClass.SCALAR: 2,
        },
        issue_width=4,
        latencies=_common_latencies(),
        has_vector_fmla=True,
        has_matrix_mla=False,
        supports_inplace_accumulation=True,
        l1=CacheGeometry(64 * 1024, 64, 8),
        l2=CacheGeometry(512 * 1024, 64, 8),
        l1_load_latency=4,
        l2_load_latency=7,
        mem_load_latency=60,
        hw_prefetch_streams=16,
        hw_prefetch_depth=4,
        mem_bandwidth_bytes_per_cycle=800.0,
        clock_ghz=2.5,
    )
    cfg.validate()
    return cfg


def M4() -> MachineConfig:
    """The Apple M4 Pro preset (Section 5.4).

    128 KB L1 data cache, large shared L2, no *streaming* vector-FMLA
    capability (matrix-MLA instead), in-place accumulation architecturally
    infeasible.  The auto-vectorization baseline on the M4 is NEON
    (128-bit): vector FMA instructions carry a doubled initiation interval
    so a full 512-bit-equivalent op costs two slots — the throughput ratio
    between four 128-bit NEON pipes and this model's two 512-bit pipes.
    """
    neon_latencies = _common_latencies()
    for mnemonic in (FMLA.mnemonic, FMLA_IDX.mnemonic, FMUL_IDX.mnemonic):
        neon_latencies[mnemonic] = LatencySpec(latency=3, initiation_interval=2)
    cfg = MachineConfig(
        name="M4",
        ports={
            PortClass.VECTOR: 2,
            PortClass.MATRIX: 1,
            PortClass.LOAD: 2,
            PortClass.STORE: 1,
            PortClass.SCALAR: 2,
        },
        issue_width=4,
        latencies=neon_latencies,
        has_vector_fmla=False,
        has_matrix_mla=True,
        supports_inplace_accumulation=False,
        l1=CacheGeometry(128 * 1024, 64, 8),
        l2=CacheGeometry(1 * 1024 * 1024, 64, 8),
        l1_load_latency=4,
        l2_load_latency=8,
        mem_load_latency=70,
        hw_prefetch_streams=16,
        hw_prefetch_depth=4,
        mem_bandwidth_bytes_per_cycle=96.0,
        clock_ghz=3.0,
    )
    cfg.validate()
    return cfg
