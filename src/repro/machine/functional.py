"""Functional (semantic) execution of instruction traces.

This engine gives every kernel its ground truth: it interprets each
instruction against a :class:`~repro.isa.registers.RegisterFile` and a
:class:`~repro.machine.memory.MemorySpace`, so a generated kernel is correct
iff the grid it leaves in memory matches the NumPy reference stencil.  All
stencil-correctness tests and the in-place-accumulation exactness property
run through here.

The engine is deliberately straight-line Python + small NumPy vectors; it is
fast enough for the grid sizes tests use (up to ~256x256 full grids, or
sampled bands of the out-of-cache sizes).
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.isa.instructions import (
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    Instruction,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PRFM,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.program import Kernel, KernelBlock
from repro.isa.registers import RegisterFile, SVL_LANES
from repro.machine.compiled import (
    F_CONST,
    F_EXT,
    F_FADD,
    F_FMLA,
    F_FMLA_IDX,
    F_FMLA_M,
    F_FMOPA,
    F_FMUL_IDX,
    F_LD,
    F_LD_STRIDED,
    F_LD_TAIL,
    F_MOVA_TV,
    F_MOVA_VT,
    F_ST,
    F_ST_SLICE,
    F_ZERO,
    FunctionalProgram,
)
from repro.machine.memory import MemorySpace, PAGE_WORDS


class FunctionalEngine:
    """Interprets instruction streams for their architectural effects."""

    def __init__(
        self, memory: Optional[MemorySpace] = None, codegen: Optional[bool] = None
    ) -> None:
        self.memory = memory if memory is not None else MemorySpace()
        self.regs = RegisterFile()
        self.instructions_executed = 0
        if codegen is None:
            from repro.machine.codegen import default_codegen

            codegen = default_codegen() == "on"
        #: Template replays dispatch to exec-compiled kernels when set
        #: (probe-verified against the interpreted replay on first use).
        self.codegen = codegen

    def reset_registers(self) -> None:
        """Clear architectural register state between kernel runs."""
        self.regs.reset()

    # ------------------------------------------------------------------

    def execute(self, ins: Instruction) -> None:
        """Execute one instruction's semantics."""
        regs, mem = self.regs, self.memory
        self.instructions_executed += 1

        if isinstance(ins, LD1D):
            if ins.mask == SVL_LANES:
                regs.write_v(ins.dst, mem.read(ins.addr, SVL_LANES))
            else:
                lanes = np.zeros(SVL_LANES)
                lanes[: ins.mask] = mem.read(ins.addr, ins.mask)
                regs.write_v(ins.dst, lanes)
        elif isinstance(ins, LD1D_STRIDED):
            regs.write_v(ins.dst, mem.read_strided(ins.addr, SVL_LANES, ins.stride))
        elif isinstance(ins, ST1D):
            mem.write(ins.addr, regs.read_v(ins.src)[: ins.mask])
        elif isinstance(ins, ST1D_SLICE):
            mem.write(ins.addr, regs.read_slice(ins.tile, ins.row)[: ins.mask])
        elif isinstance(ins, PRFM):
            pass  # cache hint only; no architectural effect
        elif isinstance(ins, FMLA):
            regs.write_v(ins.dst, regs.read_v(ins.dst) + regs.read_v(ins.a) * regs.read_v(ins.b))
        elif isinstance(ins, FMLA_IDX):
            scalar = regs.read_v(ins.b)[ins.idx]
            regs.write_v(ins.dst, regs.read_v(ins.dst) + regs.read_v(ins.a) * scalar)
        elif isinstance(ins, FMUL_IDX):
            scalar = regs.read_v(ins.b)[ins.idx]
            regs.write_v(ins.dst, regs.read_v(ins.a) * scalar)
        elif isinstance(ins, FADD_V):
            regs.write_v(ins.dst, regs.read_v(ins.a) + regs.read_v(ins.b))
        elif isinstance(ins, EXT):
            joined = np.concatenate([regs.read_v(ins.a), regs.read_v(ins.b)])
            regs.write_v(ins.dst, joined[ins.imm : ins.imm + SVL_LANES])
        elif isinstance(ins, DUP):
            regs.write_v(ins.dst, np.full(SVL_LANES, float(ins.value)))
        elif isinstance(ins, SET_LANES):
            regs.write_v(ins.dst, np.array(ins.values, dtype=np.float64))
        elif isinstance(ins, FMOPA):
            regs.accumulate_outer(ins.tile, regs.read_v(ins.coef), regs.read_v(ins.src))
        elif isinstance(ins, ZERO_TILE):
            regs.zero_tile(ins.tile)
        elif isinstance(ins, MOVA_TILE_TO_VEC):
            regs.write_v(ins.dst, regs.read_slice(ins.tile, ins.row))
        elif isinstance(ins, MOVA_VEC_TO_TILE):
            regs.write_slice(ins.tile, ins.row, regs.read_v(ins.src))
        elif isinstance(ins, FMLA_M):
            scalar = regs.read_v(ins.b)[ins.idx]
            for g, src in enumerate(ins.group_regs()):
                row = 2 * g
                slice_ = regs.read_slice(ins.tile, row)
                regs.write_slice(ins.tile, row, slice_ + regs.read_v(src) * scalar)
        elif isinstance(ins, SCALAR_OP):
            pass  # loop/address overhead; no architectural effect
        else:
            raise TypeError(f"functional engine cannot execute {type(ins).__name__}")

    def execute_trace(self, trace: Iterable[Instruction]) -> None:
        """Execute a straight-line instruction sequence."""
        for ins in trace:
            self.execute(ins)

    def execute_template(self, program: FunctionalProgram, addrs: Sequence[int]) -> None:
        """Replay a precompiled template, through a generated kernel if possible.

        With :attr:`codegen` set, the program's exec-compiled straight-line
        kernel (:mod:`repro.machine.codegen`) replaces the interpreted
        opcode loop: generated lazily (or loaded from the AOT store),
        verified bit-exactly against :meth:`execute_template_interp` on its
        first live emit, and demoted permanently on any mismatch or
        ``exec`` failure.  The interpreted result always stands during the
        probe, so architectural state is bit-identical on every path.
        """
        if self.codegen:
            state = program.codegen
            if state is None:
                from repro.machine.codegen import install_functional

                state = install_functional(program)
            if not state.demoted:
                if state.verified:
                    state.fn(self, addrs)
                    return
                from repro.machine.codegen import probe_functional

                probe_functional(state, self, program, addrs)
                return
        self.execute_template_interp(program, addrs)

    def execute_template_interp(
        self, program: FunctionalProgram, addrs: Sequence[int]
    ) -> None:
        """Replay a precompiled template with rebased addresses (interpreted).

        Bit-identical to :meth:`execute_trace` on the template's
        instructions carrying the given addresses: the flat ops perform the
        same IEEE operations in the same order, just without per-instruction
        ``isinstance`` chains or defensive register copies.  Loads and
        stores that stay within one memory page skip the paged read/write
        machinery (the overwhelmingly common case for line-aligned rows).
        """
        regs = self.regs
        vregs = regs._vregs
        tiles = regs._tiles
        mem = self.memory
        pages = mem._pages
        check_range = mem._check_range
        page_for = mem._page_for
        mem_base = mem._BASE
        mem_next = mem._next
        lanes = SVL_LANES
        self.instructions_executed += program.count

        for op in program.ops:
            code = op[0]
            if code == F_FMLA:
                vregs[op[1]] += vregs[op[2]] * vregs[op[3]]
            elif code == F_FMLA_IDX:
                vregs[op[1]] += vregs[op[2]] * vregs[op[3]][op[4]]
            elif code == F_LD:
                addr = addrs[op[2]]
                if addr < mem_base or addr + lanes > mem_next:
                    check_range(addr, lanes)
                page_id, off = divmod(addr, PAGE_WORDS)
                if off + lanes <= PAGE_WORDS:
                    page = pages.get(page_id)
                    if page is None:
                        vregs[op[1]] = 0.0
                    else:
                        vregs[op[1]] = page[off : off + lanes]
                else:
                    vregs[op[1]] = mem.read(addr, lanes)
            elif code == F_EXT:
                imm = op[4]
                if imm == 0:
                    vregs[op[1]] = vregs[op[2]]
                elif imm == lanes:
                    vregs[op[1]] = vregs[op[3]]
                else:
                    head = vregs[op[2]][imm:]
                    tail = vregs[op[3]][: imm]
                    out = np.empty(lanes)
                    out[: lanes - imm] = head
                    out[lanes - imm :] = tail
                    vregs[op[1]] = out
            elif code == F_FMOPA:
                tiles[op[1]] += vregs[op[2]].reshape(lanes, 1) * vregs[op[3]]
            elif code == F_ST:
                addr = addrs[op[2]]
                mask = op[3]
                if addr < mem_base or addr + mask > mem_next:
                    check_range(addr, mask)
                page_id, off = divmod(addr, PAGE_WORDS)
                if off + mask <= PAGE_WORDS:
                    page, _ = page_for(addr, True)
                    page[off : off + mask] = vregs[op[1]][: mask]
                else:
                    mem.write(addr, vregs[op[1]][: mask])
            elif code == F_ST_SLICE:
                addr = addrs[op[3]]
                mask = op[4]
                if addr < mem_base or addr + mask > mem_next:
                    check_range(addr, mask)
                page_id, off = divmod(addr, PAGE_WORDS)
                if off + mask <= PAGE_WORDS:
                    page, _ = page_for(addr, True)
                    page[off : off + mask] = tiles[op[1], op[2]][: mask]
                else:
                    mem.write(addr, tiles[op[1], op[2]][: mask])
            elif code == F_FMUL_IDX:
                vregs[op[1]] = vregs[op[2]] * vregs[op[3]][op[4]]
            elif code == F_FADD:
                vregs[op[1]] = vregs[op[2]] + vregs[op[3]]
            elif code == F_LD_TAIL:
                addr = addrs[op[2]]
                mask = op[3]
                row = vregs[op[1]]
                row[mask:] = 0.0
                row[: mask] = mem.read(addr, mask)
            elif code == F_LD_STRIDED:
                vregs[op[1]] = mem.read_strided(addrs[op[2]], lanes, op[3])
            elif code == F_CONST:
                vregs[op[1]] = op[2]
            elif code == F_ZERO:
                tiles[op[1]] = 0.0
            elif code == F_MOVA_TV:
                vregs[op[1]] = tiles[op[2], op[3]]
            elif code == F_MOVA_VT:
                tiles[op[1], op[2]] = vregs[op[3]]
            elif code == F_FMLA_M:
                scalar = vregs[op[3]][op[4]]
                tile = op[1]
                base = op[2]
                for g in range(4):
                    tiles[tile, 2 * g] += vregs[base + g] * scalar
            else:  # pragma: no cover - builder emits only known opcodes
                raise ValueError(f"unknown functional opcode {code}")

    # ------------------------------------------------------------------

    def run_kernel(self, kernel: Kernel, engine: Optional[str] = None) -> None:
        """Execute a kernel in full: preamble, then every block in order.

        ``engine`` selects the compiled template-replay fast path
        (``"compiled"``, the default) or the per-instruction reference walk
        (``"reference"``); unset, the ``REPRO_ENGINE`` environment variable
        decides.  Both produce bit-identical architectural state.

        The compiled path additionally executes runs of consecutive blocks
        that share a template *batched*: one NumPy opcode at a time across
        the whole run (:mod:`repro.machine.batched`), falling back to the
        per-block replay whenever the batch safety analysis says the
        lockstep reordering could be observable.
        """
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE", "compiled")
        if engine == "reference":
            self.execute_trace(kernel.preamble())
            for block in kernel.loop_nest():
                self.execute_trace(kernel.emit(block))
            return
        if engine != "compiled":
            raise ValueError(f"unknown engine {engine!r}")
        from repro.kernels.template import TraceCompiler
        from repro.machine.batched import BatchReplayer

        compiler = TraceCompiler(kernel)
        replayer = BatchReplayer(self)
        pending_program = None
        pending_addrs: list = []

        def flush() -> None:
            nonlocal pending_program
            if pending_program is not None:
                replayer.run(pending_program, pending_addrs)
                pending_program = None
                pending_addrs.clear()

        self.execute_trace(kernel.preamble())
        for block in kernel.loop_nest():
            entry = compiler.lookup(block)
            if entry is not None:
                template, addrs = entry
                program = template.functional_program()
                if program is not None:
                    if program is not pending_program:
                        flush()
                        pending_program = program
                    pending_addrs.append(addrs)
                    continue
            flush()
            self.execute_trace(kernel.emit(block))
        flush()

    def run_blocks(self, kernel: Kernel, blocks: Iterable[KernelBlock]) -> None:
        """Execute the preamble plus a subset of blocks (band verification)."""
        self.execute_trace(kernel.preamble())
        for block in blocks:
            self.execute_trace(kernel.emit(block))
