"""Functional (semantic) execution of instruction traces.

This engine gives every kernel its ground truth: it interprets each
instruction against a :class:`~repro.isa.registers.RegisterFile` and a
:class:`~repro.machine.memory.MemorySpace`, so a generated kernel is correct
iff the grid it leaves in memory matches the NumPy reference stencil.  All
stencil-correctness tests and the in-place-accumulation exactness property
run through here.

The engine is deliberately straight-line Python + small NumPy vectors; it is
fast enough for the grid sizes tests use (up to ~256x256 full grids, or
sampled bands of the out-of-cache sizes).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.isa.instructions import (
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    Instruction,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PRFM,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.program import Kernel, KernelBlock
from repro.isa.registers import RegisterFile, SVL_LANES
from repro.machine.memory import MemorySpace


class FunctionalEngine:
    """Interprets instruction streams for their architectural effects."""

    def __init__(self, memory: Optional[MemorySpace] = None) -> None:
        self.memory = memory if memory is not None else MemorySpace()
        self.regs = RegisterFile()
        self.instructions_executed = 0

    def reset_registers(self) -> None:
        """Clear architectural register state between kernel runs."""
        self.regs.reset()

    # ------------------------------------------------------------------

    def execute(self, ins: Instruction) -> None:
        """Execute one instruction's semantics."""
        regs, mem = self.regs, self.memory
        self.instructions_executed += 1

        if isinstance(ins, LD1D):
            if ins.mask == SVL_LANES:
                regs.write_v(ins.dst, mem.read(ins.addr, SVL_LANES))
            else:
                lanes = np.zeros(SVL_LANES)
                lanes[: ins.mask] = mem.read(ins.addr, ins.mask)
                regs.write_v(ins.dst, lanes)
        elif isinstance(ins, LD1D_STRIDED):
            regs.write_v(ins.dst, mem.read_strided(ins.addr, SVL_LANES, ins.stride))
        elif isinstance(ins, ST1D):
            mem.write(ins.addr, regs.read_v(ins.src)[: ins.mask])
        elif isinstance(ins, ST1D_SLICE):
            mem.write(ins.addr, regs.read_slice(ins.tile, ins.row)[: ins.mask])
        elif isinstance(ins, PRFM):
            pass  # cache hint only; no architectural effect
        elif isinstance(ins, FMLA):
            regs.write_v(ins.dst, regs.read_v(ins.dst) + regs.read_v(ins.a) * regs.read_v(ins.b))
        elif isinstance(ins, FMLA_IDX):
            scalar = regs.read_v(ins.b)[ins.idx]
            regs.write_v(ins.dst, regs.read_v(ins.dst) + regs.read_v(ins.a) * scalar)
        elif isinstance(ins, FMUL_IDX):
            scalar = regs.read_v(ins.b)[ins.idx]
            regs.write_v(ins.dst, regs.read_v(ins.a) * scalar)
        elif isinstance(ins, FADD_V):
            regs.write_v(ins.dst, regs.read_v(ins.a) + regs.read_v(ins.b))
        elif isinstance(ins, EXT):
            joined = np.concatenate([regs.read_v(ins.a), regs.read_v(ins.b)])
            regs.write_v(ins.dst, joined[ins.imm : ins.imm + SVL_LANES])
        elif isinstance(ins, DUP):
            regs.write_v(ins.dst, np.full(SVL_LANES, float(ins.value)))
        elif isinstance(ins, SET_LANES):
            regs.write_v(ins.dst, np.array(ins.values, dtype=np.float64))
        elif isinstance(ins, FMOPA):
            regs.accumulate_outer(ins.tile, regs.read_v(ins.coef), regs.read_v(ins.src))
        elif isinstance(ins, ZERO_TILE):
            regs.zero_tile(ins.tile)
        elif isinstance(ins, MOVA_TILE_TO_VEC):
            regs.write_v(ins.dst, regs.read_slice(ins.tile, ins.row))
        elif isinstance(ins, MOVA_VEC_TO_TILE):
            regs.write_slice(ins.tile, ins.row, regs.read_v(ins.src))
        elif isinstance(ins, FMLA_M):
            scalar = regs.read_v(ins.b)[ins.idx]
            for g, src in enumerate(ins.group_regs()):
                row = 2 * g
                slice_ = regs.read_slice(ins.tile, row)
                regs.write_slice(ins.tile, row, slice_ + regs.read_v(src) * scalar)
        elif isinstance(ins, SCALAR_OP):
            pass  # loop/address overhead; no architectural effect
        else:
            raise TypeError(f"functional engine cannot execute {type(ins).__name__}")

    def execute_trace(self, trace: Iterable[Instruction]) -> None:
        """Execute a straight-line instruction sequence."""
        for ins in trace:
            self.execute(ins)

    # ------------------------------------------------------------------

    def run_kernel(self, kernel: Kernel) -> None:
        """Execute a kernel in full: preamble, then every block in order."""
        self.execute_trace(kernel.preamble())
        for block in kernel.loop_nest():
            self.execute_trace(kernel.emit(block))

    def run_blocks(self, kernel: Kernel, blocks: Iterable[KernelBlock]) -> None:
        """Execute the preamble plus a subset of blocks (band verification)."""
        self.execute_trace(kernel.preamble())
        for block in blocks:
            self.execute_trace(kernel.emit(block))
