"""Content-addressed on-disk artifact store for the compile layer.

The trace-replay engine's cold start is dominated by work whose result is a
pure function of the simulator sources, the machine configuration and the
kernel being compiled: template fitting (probe emits + affine address-model
fits in :mod:`repro.kernels.template`), ``TimingProgram`` /
``FunctionalProgram`` lowering (:mod:`repro.machine.compiled`) and columnar
plan construction (:mod:`repro.machine.columnar`).  This module persists
those products across processes the same way :mod:`repro.bench.cache`
persists measurements: one JSON file per artifact under
``<root>/<kind>/<digest[:2]>/<digest>.json``, where the digest hashes a
canonical JSON rendering of every input that determines the artifact —
:func:`code_version`, :func:`machine_digest`, the kernel/grid identity and
the trace signature.  Invalidation is therefore automatic: any source or
config change produces a different digest and the stale entry is simply
never looked up again.

Safety contract: a deserialized template is *never* trusted blindly.  The
template compiler re-runs the cheap probe check (one live emit, signature +
exact address comparison) once per shape class before adopting a stored
template, and demotes the class permanently on mismatch — exactly as the
live compile path does.  Deserialized programs need no probe: their stored
form is bit-exact (JSON round-trips Python ints and float ``repr`` exactly)
and their digest pins the trace signature they were lowered from.

The store is optional and off by default.  It activates when a path is
installed explicitly (:func:`install_artifact_store`, reached through the
``--artifact-dir`` CLI flag and the ``artifact_dir=`` keyword on
``TimingEngine`` / ``ExperimentRunner`` / ``MulticoreModel``) or via the
``REPRO_ARTIFACTS`` environment variable.  Writes are atomic (temp file +
``os.replace``), so concurrent sweep workers can share one store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.instructions import (
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    Instruction,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PRFM,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.registers import TileReg, VReg
from repro.machine.config import MachineConfig

#: Bump to invalidate every stored artifact regardless of source hashing.
ARTIFACT_SCHEMA = 1

#: Subpackages whose sources determine simulation results.  ``bench`` and
#: ``cli`` are deliberately excluded: harness changes must not invalidate
#: measurements or compiled artifacts.
_SIMULATION_PACKAGES = ("isa", "machine", "kernels", "stencils", "core")


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every simulation-relevant source file in the package."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for package in _SIMULATION_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def machine_fingerprint(config: MachineConfig) -> Dict:
    """Canonical JSON-safe rendering of a machine configuration."""
    return {
        "name": config.name,
        "ports": {port.name: count for port, count in sorted(
            config.ports.items(), key=lambda kv: kv[0].name)},
        "issue_width": config.issue_width,
        "latencies": {
            mnemonic: [spec.latency, spec.initiation_interval]
            for mnemonic, spec in sorted(config.latencies.items())
        },
        "has_vector_fmla": config.has_vector_fmla,
        "has_matrix_mla": config.has_matrix_mla,
        "supports_inplace_accumulation": config.supports_inplace_accumulation,
        "l1": dataclasses.asdict(config.l1),
        "l2": dataclasses.asdict(config.l2),
        "l1_load_latency": config.l1_load_latency,
        "l2_load_latency": config.l2_load_latency,
        "mem_load_latency": config.mem_load_latency,
        "hw_prefetch_streams": config.hw_prefetch_streams,
        "hw_prefetch_depth": config.hw_prefetch_depth,
        "hw_prefetch_enabled": config.hw_prefetch_enabled,
        "mem_bandwidth_bytes_per_cycle": config.mem_bandwidth_bytes_per_cycle,
        "clock_ghz": config.clock_ghz,
    }


def machine_digest(config: MachineConfig) -> str:
    """Short stable digest of a machine configuration."""
    blob = json.dumps(machine_fingerprint(config), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def artifact_meta() -> Dict:
    """Environment inputs shared by every artifact digest.

    NumPy participates because the columnar walk and the affine address
    rebasing run on it — source hashing alone cannot see its version.
    """
    return {
        "schema": ARTIFACT_SCHEMA,
        "code_version": code_version(),
        "numpy": np.__version__,
    }


def artifact_digest(inputs: Dict) -> str:
    """Content digest of a canonical (JSON-safe) input description."""
    blob = json.dumps(inputs, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def signature_digest(signature: Tuple) -> str:
    """Cross-process digest of a trace signature.

    ``repr`` of a signature is deterministic: it is built from class reprs,
    register reprs (``z3`` / ``za1``), enum reprs and scalar reprs, all of
    which are stable across processes and platforms.
    """
    return hashlib.sha256(repr(signature).encode()).hexdigest()[:32]


# -- instruction trace codec --------------------------------------------------

#: Every instruction type the codec can round-trip.  A trace containing any
#: other type is simply not persisted (``encode_trace`` returns ``None``).
_TRACE_TYPES: Tuple[type, ...] = (
    LD1D,
    LD1D_STRIDED,
    ST1D,
    ST1D_SLICE,
    PRFM,
    FMLA,
    FMLA_IDX,
    FMUL_IDX,
    FADD_V,
    EXT,
    DUP,
    SET_LANES,
    FMOPA,
    ZERO_TILE,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    FMLA_M,
    SCALAR_OP,
)
_TYPE_BY_NAME: Dict[str, type] = {cls.__name__: cls for cls in _TRACE_TYPES}
_FIELDS_OF: Dict[type, Tuple[str, ...]] = {
    cls: tuple(f.name for f in dataclasses.fields(cls)) for cls in _TRACE_TYPES
}


def _encode_value(value):
    # Tagged lists for the structured field values; scalars pass through.
    # JSON float repr round-trips doubles exactly, so floats stay bit-exact.
    if isinstance(value, VReg):
        return ["z", value.index]
    if isinstance(value, TileReg):
        return ["za", value.index]
    if isinstance(value, tuple):
        return ["t", list(value)]
    return value


def _decode_value(value):
    if isinstance(value, list):
        tag, payload = value
        if tag == "z":
            return VReg(payload)
        if tag == "za":
            return TileReg(payload)
        if tag == "t":
            return tuple(payload)
        raise ValueError(f"unknown value tag {tag!r}")
    return value


def encode_trace(trace: Sequence[Instruction]) -> Optional[List]:
    """JSON-safe rendering of an instruction trace, or ``None``.

    ``None`` means some instruction type is outside the codec's registry;
    the caller then skips persistence (the live path is unaffected).
    """
    out: List[List] = []
    for ins in trace:
        cls = type(ins)
        names = _FIELDS_OF.get(cls)
        if names is None:
            return None
        out.append([cls.__name__] + [_encode_value(getattr(ins, n)) for n in names])
    return out


def decode_trace(payload: Sequence) -> Optional[List[Instruction]]:
    """Rebuild a trace from :func:`encode_trace` output, or ``None``.

    Reconstruction goes through the dataclass constructors, so the usual
    ``__post_init__`` validation/normalization runs; any malformed record
    yields ``None`` rather than an exception (corrupt store entries must
    fall back to a live build).
    """
    trace: List[Instruction] = []
    try:
        for record in payload:
            cls = _TYPE_BY_NAME[record[0]]
            trace.append(cls(*(_decode_value(v) for v in record[1:])))
    except (KeyError, IndexError, TypeError, ValueError):
        return None
    return trace


# -- directory scan / prune helpers (shared with the measurement cache) ------


def _kind_of(root: Path, path: Path) -> str:
    """Artifact kind of an entry: its first path component under ``root``.

    The measurement cache stores its entries flat, so files directly under
    the root report as kind ``"."``.
    """
    rel = path.relative_to(root)
    return rel.parts[0] if len(rel.parts) > 1 else "."


def scan_tree(root) -> Dict:
    """Entry count / byte size / age span of a ``*.json`` artifact tree.

    The aggregate keys are kept for existing consumers; ``kinds`` breaks
    entry counts and byte sizes down per artifact kind (``timing``,
    ``functional``, ``templates``, ``codegen``, ``steady``, ...).
    """
    root = Path(root)
    entries = 0
    total_bytes = 0
    oldest: Optional[float] = None
    newest: Optional[float] = None
    kinds: Dict[str, Dict[str, int]] = {}
    for path in root.rglob("*.json"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries += 1
        total_bytes += stat.st_size
        oldest = stat.st_mtime if oldest is None else min(oldest, stat.st_mtime)
        newest = stat.st_mtime if newest is None else max(newest, stat.st_mtime)
        bucket = kinds.setdefault(_kind_of(root, path), {"entries": 0, "bytes": 0})
        bucket["entries"] += 1
        bucket["bytes"] += stat.st_size
    now = time.time()
    return {
        "root": str(root),
        "entries": entries,
        "bytes": total_bytes,
        "kinds": {kind: kinds[kind] for kind in sorted(kinds)},
        "oldest_age_days": (now - oldest) / 86400.0 if oldest is not None else None,
        "newest_age_days": (now - newest) / 86400.0 if newest is not None else None,
    }


def prune_tree(root, max_age_days: Optional[float] = None,
               max_bytes: Optional[int] = None) -> Dict:
    """Delete ``*.json`` entries by age and/or total size (oldest first).

    Aggregate keys are kept for existing consumers; ``kinds`` reports the
    per-kind removed/kept breakdown.
    """
    root = Path(root)
    files: List[Tuple[float, int, Path]] = []
    for path in root.rglob("*.json"):
        try:
            stat = path.stat()
        except OSError:
            continue
        files.append((stat.st_mtime, stat.st_size, path))
    files.sort()  # oldest first
    now = time.time()
    removed = 0
    removed_bytes = 0
    kinds: Dict[str, Dict[str, int]] = {}

    def bucket_for(path: Path) -> Dict[str, int]:
        return kinds.setdefault(
            _kind_of(root, path), {"removed": 0, "removed_bytes": 0, "kept": 0}
        )

    keep: List[Tuple[float, int, Path]] = []
    for mtime, size, path in files:
        if max_age_days is not None and (now - mtime) > max_age_days * 86400.0:
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            removed_bytes += size
            bucket = bucket_for(path)
            bucket["removed"] += 1
            bucket["removed_bytes"] += size
        else:
            keep.append((mtime, size, path))
    if max_bytes is not None:
        total = sum(size for _, size, _ in keep)
        idx = 0
        while total > max_bytes and idx < len(keep):
            _, size, path = keep[idx]
            idx += 1
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            removed_bytes += size
            total -= size
            bucket = bucket_for(path)
            bucket["removed"] += 1
            bucket["removed_bytes"] += size
        keep = keep[idx:]
    for _mtime, _size, path in keep:
        bucket_for(path)["kept"] += 1
    return {
        "root": str(root),
        "removed": removed,
        "removed_bytes": removed_bytes,
        "kept": len(files) - removed,
        "kinds": {kind: kinds[kind] for kind in sorted(kinds)},
    }


# -- the store ----------------------------------------------------------------


class ArtifactStore:
    """Disk-backed store of compiled artifacts, one JSON file per digest.

    ``kind`` partitions the namespace (``timing`` / ``functional`` /
    ``templates``); the digest already encodes every input, so ``load`` only
    cross-checks the stored meta block as a belt-and-braces guard against a
    digest collision across schema versions.  All read/parse failures count
    as misses — a corrupt or truncated entry must never surface as an error,
    only as a live rebuild.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalid = 0
        self.store_errors = 0

    def path_for(self, kind: str, digest: str) -> Path:
        return self.root / kind / digest[:2] / f"{digest}.json"

    def load(self, kind: str, digest: str) -> Optional[Dict]:
        """Return the stored data payload, or ``None`` on miss/corruption."""
        path = self.path_for(kind, digest)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:  # present but truncated/corrupt
            self.invalid += 1
            self.misses += 1
            return None
        try:
            if payload["meta"] != artifact_meta():
                self.invalid += 1
                self.misses += 1
                return None
            data = payload["data"]
        except (KeyError, TypeError):
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return data

    def store(self, kind: str, digest: str, data, inputs: Optional[Dict] = None) -> bool:
        """Persist an artifact atomically; best-effort (I/O errors counted).

        A store that cannot be written (read-only directory, disk full) must
        not break the simulation that produced the artifact, so failures are
        swallowed and surfaced only through ``store_errors``.
        """
        path = self.path_for(kind, digest)
        payload = {"kind": kind, "meta": artifact_meta(), "inputs": inputs, "data": data}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            self.store_errors += 1
            return False
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            self.store_errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stores += 1
        return True

    def stats(self) -> Dict:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "store_errors": self.store_errors,
        }

    def disk_stats(self) -> Dict:
        return scan_tree(self.root)

    def prune(self, max_age_days: Optional[float] = None,
              max_bytes: Optional[int] = None) -> Dict:
        return prune_tree(self.root, max_age_days=max_age_days, max_bytes=max_bytes)


# -- process-wide active store ------------------------------------------------

_active_store: Optional[ArtifactStore] = None
_active_explicit = False
#: Per-path singletons for the environment fallback, so counters accumulate.
_env_stores: Dict[str, ArtifactStore] = {}


def install_artifact_store(store=None) -> Optional[ArtifactStore]:
    """Install the process-wide artifact store.

    ``store`` may be an :class:`ArtifactStore`, a path, or ``None`` to reset
    to the default behaviour (the ``REPRO_ARTIFACTS`` environment variable,
    or no store at all).  Reinstalling the same path keeps the existing
    store object so its counters keep accumulating.
    """
    global _active_store, _active_explicit
    if store is None:
        _active_store = None
        _active_explicit = False
        return None
    if not isinstance(store, ArtifactStore):
        path = Path(store)
        if _active_explicit and _active_store is not None and _active_store.root == path:
            return _active_store
        store = ArtifactStore(path)
    _active_store = store
    _active_explicit = True
    return store


def active_store() -> Optional[ArtifactStore]:
    """The store compile-layer callers should use, or ``None`` (disabled)."""
    if _active_explicit:
        return _active_store
    path = os.environ.get("REPRO_ARTIFACTS")
    if not path:
        return None
    store = _env_stores.get(path)
    if store is None:
        store = _env_stores.setdefault(path, ArtifactStore(path))
    return store
