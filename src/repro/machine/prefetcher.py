"""Hardware stream prefetcher (next-line, stream-table based).

Models the commodity 1-D spatial prefetcher the paper contrasts with its
software spatial prefetch (Sections 2.3.3 / 3.3), with the three
limitations that shape real behaviour:

* a small LRU **stream table** — the vector method's ``2r + 2`` row
  streams fit; the matrix method's ``2r + 16`` concurrent input/output row
  streams thrash it, so matrix-method streams are repeatedly evicted and
  must retrain;
* **miss-based allocation, any-access advance** — new streams are only
  allocated on L1 demand misses (hits carry no training information for
  an untracked stream), but a *resident* stream advances and prefetches
  on every sequential access.  A stream that stays resident (vector
  kernels) therefore sustains full coverage, while one that is evicted
  between touches (matrix kernels) must re-pay the allocation+confirm
  misses every few lines;
* **two-advance confirmation** — a stream only starts prefetching after
  two consecutive line advances, so every retrain costs misses;
* **page-boundary stops** — streams never cross a 4 KiB page, the
  standard safety restriction; long rows retrain once per page.

Together these reproduce the paper's observation that the "complex memory
access pattern of outer-product computation hinders the utilization of
such hardware features" while row-streaming vector kernels stay covered.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.machine.cache import CacheHierarchy

#: Lines per 4 KiB page (64-byte lines).
LINES_PER_PAGE = 64


@dataclass(slots=True)
class _Stream:
    tail_line: int
    advances: int = 0

    @property
    def confirmed(self) -> bool:
        return self.advances >= 2


class StreamPrefetcher:
    """LRU stream table issuing next-line prefetches into L1."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        num_streams: int,
        depth: int,
        enabled: bool = True,
        confirm_advances: int = 2,
    ) -> None:
        self.hierarchy = hierarchy
        self.num_streams = num_streams
        self.depth = depth
        self.enabled = enabled
        self.confirm_advances = confirm_advances
        # Stream table keyed by tail line, least-recently-used first.  Tail
        # lines are unique (a stream only ever advances to — and is only
        # ever allocated at — a line no other stream currently tails), so
        # the key doubles as stream identity and every probe is O(1).
        self._streams: "OrderedDict[int, _Stream]" = OrderedDict()
        self.prefetches_issued = 0
        self.streams_confirmed = 0
        self.streams_allocated = 0
        #: Memoized ``(signature, digest)`` for :meth:`signature_digest`.
        self._sig_memo = None

    def observe(self, word_addr: int, nwords: int, hit: bool = False) -> None:
        """Train on a demand access (loads and stores both train).

        ``hit`` marks an L1 demand hit: hits advance *resident* streams
        but never allocate new ones.
        """
        if not self.enabled or self.num_streams <= 0:
            return
        for line in self.hierarchy.lines_for(word_addr, nwords):
            self._observe_line(line, hit)

    def _observe_line(self, line: int, hit: bool) -> None:
        streams = self._streams
        stream = streams.get(line)
        if stream is not None:
            # Re-access of the tail: refresh recency only.
            streams.move_to_end(line)
            return
        stream = streams.get(line - 1)
        if stream is not None:
            del streams[line - 1]
            stream.advances += 1
            stream.tail_line = line
            streams[line] = stream
            if stream.advances == self.confirm_advances:
                self.streams_confirmed += 1
            if stream.advances >= self.confirm_advances:
                self._issue_ahead(line)
            return
        if hit:
            return  # hits never allocate a stream
        # New candidate stream (unconfirmed); evict LRU if full.
        streams[line] = _Stream(tail_line=line)
        self.streams_allocated += 1
        if len(streams) > self.num_streams:
            streams.popitem(last=False)

    def _issue_ahead(self, line: int) -> None:
        """Prefetch up to ``depth`` lines ahead, stopping at the page edge."""
        page = line // LINES_PER_PAGE
        for ahead in range(1, self.depth + 1):
            target = line + ahead
            if target // LINES_PER_PAGE != page:
                break
            self.hierarchy.hardware_prefetch(target)
            self.prefetches_issued += 1

    def clone(self, hierarchy: CacheHierarchy) -> "StreamPrefetcher":
        """Independent copy of the stream table, bound to ``hierarchy``.

        The caller supplies the (cloned) hierarchy so prefetch fills issued
        by the copy land in the copied caches, not the originals.
        """
        out = StreamPrefetcher(
            hierarchy,
            num_streams=self.num_streams,
            depth=self.depth,
            enabled=self.enabled,
            confirm_advances=self.confirm_advances,
        )
        for line, stream in self._streams.items():
            out._streams[line] = _Stream(
                tail_line=stream.tail_line, advances=stream.advances
            )
        out.prefetches_issued = self.prefetches_issued
        out.streams_confirmed = self.streams_confirmed
        out.streams_allocated = self.streams_allocated
        return out

    def active_streams(self) -> int:
        return len(self._streams)

    def state_signature(self) -> tuple:
        """Canonical stream-table state: (tail line, advances) in LRU order.

        Table order is part of the signature because eviction pops the
        least-recently-used entry.  Advance counts saturate behaviourally at
        ``confirm_advances`` (everything past confirmation acts the same),
        but the exact count is kept so equality stays trivially sound.
        """
        return tuple((line, s.advances) for line, s in self._streams.items())

    def signature_digest(self) -> str:
        """Digest of :meth:`state_signature`, memoized on the signature.

        The stream table is tiny (at most ``num_streams`` entries), so the
        signature tuple itself is cheap to rebuild and doubles as its own
        validity key — hot paths mutate ``_streams`` through local aliases,
        so no mutation counter could be kept coherent here.
        """
        sig = self.state_signature()
        memo = self._sig_memo
        if memo is not None and memo[0] == sig:
            return memo[1]
        digest = hashlib.sha256(repr(sig).encode()).hexdigest()
        self._sig_memo = (sig, digest)
        return digest

    def reset_stats(self) -> None:
        self.prefetches_issued = 0
        self.streams_confirmed = 0
        self.streams_allocated = 0
