"""Simulated machine: functional execution, timing, caches, multicore.

The machine package is the hardware substrate that replaces the paper's LX2
and Apple M4 CPUs (see DESIGN.md, substitution table).  It contains:

* :mod:`repro.machine.config` — :class:`MachineConfig` and the ``LX2`` /
  ``M4`` presets (pipelines, latencies, cache geometry, prefetcher).
* :mod:`repro.machine.memory` — sparse word-addressed FP64 memory.
* :mod:`repro.machine.cache` — set-associative write-back caches.
* :mod:`repro.machine.prefetcher` — stream-table hardware prefetcher and
  software-prefetch handling.
* :mod:`repro.machine.functional` — semantic execution of instruction
  traces (what makes kernel results checkable against NumPy).
* :mod:`repro.machine.pipeline` — the event-scoreboard in-order timing
  model (ports, latencies, issue width).
* :mod:`repro.machine.timing` — the engine that walks a kernel's block
  loop (optionally band-sampled) through pipeline + caches and produces
  :class:`repro.machine.perf.PerfCounters`.
* :mod:`repro.machine.compiled` — trace-to-program builders behind the
  ``engine="compiled"`` template-replay fast path (see
  :mod:`repro.kernels.template`).
* :mod:`repro.machine.multicore` — row-partitioned strong-scaling model
  with shared-memory-bandwidth contention.
"""

from repro.machine.config import MachineConfig, LX2, M4
from repro.machine.memory import MemorySpace
from repro.machine.cache import CacheLevel, CacheHierarchy
from repro.machine.prefetcher import StreamPrefetcher
from repro.machine.perf import PerfCounters
from repro.machine.functional import FunctionalEngine
from repro.machine.pipeline import PipelineModel
from repro.machine.timing import ENGINES, TimingEngine, SamplePlan, default_engine
from repro.machine.multicore import MulticoreModel, ScalingPoint

__all__ = [
    "MachineConfig",
    "LX2",
    "M4",
    "MemorySpace",
    "CacheLevel",
    "CacheHierarchy",
    "StreamPrefetcher",
    "PerfCounters",
    "FunctionalEngine",
    "PipelineModel",
    "TimingEngine",
    "SamplePlan",
    "ENGINES",
    "default_engine",
    "MulticoreModel",
    "ScalingPoint",
]
