"""Columnar timing replay for the band-sampled (out-of-cache) path.

Out-of-cache grids are where the simulator spends its time: cache state
never recurs, so the pass- and block-level memoization layers never fire
and every instruction of every sampled band takes a scalar Python trip
through the scoreboard, the cache hierarchy and the prefetcher.  This
module reorganizes that walk the same way the vectorization literature
reorganizes stencil loops — hoist the regular part out and batch it:

* **Address-stream precomputation.**  Template replay already proves a
  per-class affine address model (:mod:`repro.kernels.template`), so for a
  *run* of consecutive same-template blocks the full word-address stream —
  every memop's start address and first/last cache line — is computed as
  one NumPy expression over the whole run instead of per-instruction
  integer arithmetic inside the walk.

* **Phase split.**  The memory subsystem (caches + stream prefetcher)
  never reads scoreboard state, and the scoreboard reads memory behaviour
  only through one number per load step (the worst level reached).  Each
  block therefore splits exactly into a *memory phase* — a tight loop over
  just the precomputed memory operations, mirroring
  ``PipelineModel.process_template``'s cache/prefetcher handling
  operation-for-operation and emitting the per-load level vector — and a
  *scoreboard phase* consuming that vector.

* **Scoreboard memoization.**  The scoreboard recurrence is a pure,
  translation-invariant function of its relative entry context (live-in
  slot offsets past the frontier, port-pipe offsets/rank order, issue-slot
  state) and the level vector.  In the steady state of a band the same
  context recurs block after block, so phase two collapses to a dictionary
  hit that applies the recorded relative outputs — the same exact-key
  discipline as the pass-level fixed point, needing no verification.

* **Probe-verify / demote.**  Although both phases are constructed to be
  bit-identical to the scalar walk, the replay still follows the
  established safety pattern: per shape class it replays a representative
  block, a steady-state (mid-run) block and a band-boundary block — plus a
  periodic re-probe — on a *cloned* pipeline, runs the scalar walk on the
  real one, and compares counters, cache/prefetcher/scoreboard state
  signatures and absolute issue state.  Any mismatch permanently demotes
  the class to the scalar walk (whose result is already in place, so a
  failed probe costs nothing but the clone).

``REPRO_TIMING=columnar|scalar`` (and ``--timing`` on the CLI) selects
this engine.  It engages on the compiled engine's band-sampled path *and*
on full simulations' measured passes (the in-cache first pass that the
pass-level fixed point cannot skip); ``REPRO_MEMO`` block-level modes keep
the scalar memoized walk.  :class:`~repro.machine.timing.TimingEngine`
drives one :class:`ColumnarReplayer` per run, but all runs of one engine
share a :class:`ColumnarShare`: memory plans and the scoreboard memo are
keyed on (pooled) program identity and relative context only, so a
multicore sweep evaluates each distinct slice height against the same
warmed state instead of rebuilding it per height.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.program import Kernel, KernelBlock
from repro.kernels.template import RowTemplate, TraceCompiler
from repro.machine.batched import template_runs
from repro.machine.compiled import (
    K_LOAD,
    K_PRFM,
    K_STORE,
    N_SLOTS,
    SCOREBOARD_KEYS,
    SLOT_OF,
    TimingProgram,
)
from repro.machine.config import MachineConfig
from repro.machine.memo import _pipes_key
from repro.machine.pipeline import PipelineModel
from repro.machine.prefetcher import LINES_PER_PAGE, _Stream

#: Columnar-replayed blocks of a class between defensive periodic re-probes
#: (on top of the representative / steady-state / band-boundary probes).
REPROBE_INTERVAL = 256

#: Scoreboard-recurrence memoization granularity, in program steps.  Out of
#: cache the *global* per-block miss pattern rarely recurs (different lines
#: straddle sets and pages differently block to block), but locally most
#: chunks are all-L1 with a steady relative pipeline rhythm — memoizing per
#: chunk lets those hit even when the blocks' full level vectors differ.
SB_CHUNK = 48


def _lru_victim(ways: Dict[int, int]) -> int:
    """Smallest-tick key of a cache set — the LRU eviction victim.

    Equivalent to ``min(ways, key=ways.__getitem__)`` (ticks are unique, so
    there are no ties to break) but ~2.5x faster: one C-level pass over
    ``items()`` instead of a hash probe per key.  Eviction runs once per
    fill in the steady out-of-cache state, which makes this the single
    hottest arithmetic in the memory phase.
    """
    it = iter(ways.items())
    vk, vt = next(it)
    for k, t in it:
        if t < vt:
            vk = k
            vt = t
    return vk


class _MemPlan:
    """Per-program memory plan: flattened memops + step-level op list.

    ``m_ai``/``m_off``/``m_nw`` are parallel arrays over every memory
    operand of the program (loads, stores and prefetches), so a run's full
    address stream is ``addrs[:, m_ai] + m_off`` — one vectorized int64
    expression.  ``ops`` keeps the step structure the walk needs: which
    flattened range belongs to which load/store step (levels aggregate per
    step) and each prefetch's length/write flag.

    ``chunks`` partitions the program's steps for the scoreboard phase.
    Each chunk record carries everything the memo key and the walk need:
    ``(steps, live_in, write_out, port_ids, lev_lo, lev_hi)`` where
    ``live_in`` lists slots read before written inside the chunk (the only
    entry values that can influence it) and ``port_ids`` the port classes
    it issues to.
    """

    __slots__ = (
        "m_ai",
        "m_off",
        "m_nw",
        "ops",
        "n_loads",
        "chunks",
        "live_in",
        "write_union",
    )

    def __init__(self, program: TimingProgram) -> None:
        m_ai: List[int] = []
        m_off: List[int] = []
        m_nw: List[int] = []
        ops: List[Tuple] = []
        n_loads = 0
        for _dep, _wr, _port, _lat, _ii, kind, memops in program.steps:
            if not kind:
                continue
            if kind == K_PRFM:
                addr_idx, length, wr = memops
                ops.append((K_PRFM, len(m_ai), length, wr))
                m_ai.append(addr_idx)
                m_off.append(0)
                m_nw.append(length)
            else:
                lo = len(m_ai)
                for addr_idx, offset, nwords in memops:
                    m_ai.append(addr_idx)
                    m_off.append(offset)
                    m_nw.append(nwords)
                # Uniform 4-tuples so the memory phase unpacks every op in
                # one UNPACK_SEQUENCE (the trailing 0 pads load/store ops).
                ops.append((kind, lo, len(m_ai), 0))
                if kind == K_LOAD:
                    n_loads += 1
        self.m_ai = np.asarray(m_ai, dtype=np.int64)
        self.m_off = np.asarray(m_off, dtype=np.int64)
        self.m_nw = np.asarray(m_nw, dtype=np.int64)
        self.ops = tuple(ops)
        self.n_loads = n_loads

        # Block-level scoreboard frame: slots read before written anywhere
        # in the program (the only entry values the whole-block walk can
        # observe) and slots written anywhere (the only ones it can change).
        written_all: set = set()
        live_all: set = set()
        for dep_slots, write_slots, _port, _lat, _ii, _kind, _memops in program.steps:
            for s in dep_slots:
                if s not in written_all:
                    live_all.add(s)
            written_all.update(write_slots)
        self.live_in = tuple(sorted(live_all))
        self.write_union = tuple(sorted(written_all))

        chunks: List[Tuple] = []
        steps = program.steps
        lev_lo = 0
        for lo in range(0, len(steps), SB_CHUNK):
            chunk_steps = steps[lo : lo + SB_CHUNK]
            written: set = set()
            live: set = set()
            port_ids: set = set()
            lev_hi = lev_lo
            for dep_slots, write_slots, port_id, _lat, _ii, kind, _memops in chunk_steps:
                for s in dep_slots:
                    if s not in written:
                        live.add(s)
                written.update(write_slots)
                port_ids.add(port_id)
                if kind == K_LOAD:
                    lev_hi += 1
            chunks.append(
                (
                    chunk_steps,
                    tuple(sorted(live)),
                    tuple(sorted(written)),
                    tuple(sorted(port_ids)),
                    lev_lo,
                    lev_hi,
                )
            )
            lev_lo = lev_hi
        self.chunks = tuple(chunks)


def plan_payload_for(program: TimingProgram) -> Dict:
    """JSON-safe rendering of a program's memory plan (artifact store).

    A :class:`_MemPlan` is a pure function of its program, so the payload
    only has to carry the derived arrays; each chunk's step slice is
    rebuilt by indexing the (deserialized) program's own ``steps``, which
    keeps the payload small and the reconstruction exact.
    """
    plan = _MemPlan(program)
    return {
        "n_steps": len(program.steps),
        "m_ai": plan.m_ai.tolist(),
        "m_off": plan.m_off.tolist(),
        "m_nw": plan.m_nw.tolist(),
        "ops": [list(op) for op in plan.ops],
        "n_loads": plan.n_loads,
        "live_in": list(plan.live_in),
        "write_union": list(plan.write_union),
        "chunks": [
            [list(live), list(written), list(ports), lo, hi]
            for _steps, live, written, ports, lo, hi in plan.chunks
        ],
    }


def plan_from_payload(program: TimingProgram, payload) -> Optional[_MemPlan]:
    """Rebuild a :class:`_MemPlan`; ``None`` on any shape mismatch.

    ``None`` sends the caller to live plan construction — a corrupt or
    stale payload must never produce a wrong plan, and the step-count guard
    rejects payloads that were serialized against a different program.
    """
    try:
        steps = program.steps
        if payload["n_steps"] != len(steps):
            return None
        chunks_raw = payload["chunks"]
        if len(chunks_raw) != (len(steps) + SB_CHUNK - 1) // SB_CHUNK:
            return None
        plan = object.__new__(_MemPlan)
        plan.m_ai = np.asarray(payload["m_ai"], dtype=np.int64)
        plan.m_off = np.asarray(payload["m_off"], dtype=np.int64)
        plan.m_nw = np.asarray(payload["m_nw"], dtype=np.int64)
        plan.ops = tuple(tuple(op) for op in payload["ops"])
        plan.n_loads = payload["n_loads"]
        plan.live_in = tuple(payload["live_in"])
        plan.write_union = tuple(payload["write_union"])
        chunks: List[Tuple] = []
        for idx, (live, written, ports, lo, hi) in enumerate(chunks_raw):
            chunks.append(
                (
                    steps[idx * SB_CHUNK : (idx + 1) * SB_CHUNK],
                    tuple(live),
                    tuple(written),
                    tuple(ports),
                    lo,
                    hi,
                )
            )
        plan.chunks = tuple(chunks)
        if len(plan.m_ai) != len(plan.m_off) or len(plan.m_ai) != len(plan.m_nw):
            return None
        return plan
    except (KeyError, TypeError, ValueError, IndexError):
        return None


class ColumnarShare:
    """Cross-run columnar state: memory plans and scoreboard memo tables.

    Everything here is keyed on :class:`TimingProgram` identity, and
    programs are pooled per ``(config, structural signature)``
    (:func:`repro.machine.compiled.pooled_timing_program`); the memo keys
    themselves are purely relative (translation-invariant contexts).  One
    share is therefore sound across kernels, passes, runs and multicore
    slice heights *of the same config* — which is exactly the lifetime of a
    :class:`~repro.machine.timing.TimingEngine`, the object that owns one.
    Replayers constructed without an explicit share get a private one.
    """

    __slots__ = ("plans", "pmemo", "bmemo", "chunk_fns")

    def __init__(self) -> None:
        #: program -> flattened memory plan.
        self.plans: Dict[TimingProgram, _MemPlan] = {}
        #: program -> per-chunk {relative scoreboard context -> outputs}.
        self.pmemo: Dict[TimingProgram, List[Dict[Tuple, Tuple]]] = {}
        #: program -> whole-block {relative scoreboard context -> outputs};
        #: tried before the chunk tables, hit when an entire block's entry
        #: context recurs (the common case once a band reaches steady state).
        self.bmemo: Dict[TimingProgram, Dict[Tuple, Tuple]] = {}
        #: program -> {chunk index -> generated walk fn | False (demoted)};
        #: the exec-compiled Phase-P chunk bodies of
        #: :mod:`repro.machine.codegen`, each verified against
        #: :meth:`ColumnarReplayer._scoreboard_walk` on its first use.
        self.chunk_fns: Dict[TimingProgram, Dict[int, object]] = {}

    def drop(self, program: TimingProgram) -> None:
        """Forget everything recorded for ``program`` (demotion path)."""
        self.plans.pop(program, None)
        self.pmemo.pop(program, None)
        self.bmemo.pop(program, None)
        self.chunk_fns.pop(program, None)


class _ClassState:
    """Probe/demotion lifecycle of one shape class (one template)."""

    __slots__ = ("demoted", "probed", "first_band", "since_probe")

    def __init__(self, first_band: int) -> None:
        self.demoted = False
        #: Probe kinds already passed: "rep", "steady", "band".
        self.probed: set = set()
        self.first_band = first_band
        self.since_probe = 0


class ColumnarReplayer:
    """Band-at-a-time columnar replay driver for one kernel run.

    Owns the kernel's :class:`~repro.kernels.template.TraceCompiler` and
    (a view of) a :class:`ColumnarShare`; mutates the supplied pipe exactly
    as the scalar per-block walk would (bit-identical counters and state,
    enforced by the probe lifecycle and ``tests/test_columnar_timing.py``).
    """

    def __init__(
        self,
        kernel: Kernel,
        config: MachineConfig,
        pipe: PipelineModel,
        nest=None,
        compiler: Optional[TraceCompiler] = None,
        share: Optional[ColumnarShare] = None,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.pipe = pipe
        self.compiler = compiler or TraceCompiler(kernel, nest=nest, config=config)
        self.share = share if share is not None else ColumnarShare()
        self._plans = self.share.plans
        self._pmemo = self.share.pmemo
        self._bmemo = self.share.bmemo
        self._classes: Dict[RowTemplate, _ClassState] = {}
        self._band_no = 0
        self._line_words = config.l1.line_bytes // 8
        self._penalty = (
            0,
            0,
            config.l2_load_latency - config.l1_load_latency,
            config.mem_load_latency - config.l1_load_latency,
        )
        #: Persistent scoreboard slot array, synchronized with the pipe's
        #: ``_ready`` dict lazily (``_slots_stale`` marks which side wins).
        self._slots = [0] * N_SLOTS
        self._slots_stale = True

        # Lifecycle statistics (exposed for tests and diagnostics).
        self.columnar_blocks = 0
        self.scalar_blocks = 0
        self.verifications = 0
        self.demotions = 0

    # -- scoreboard slot synchronization -------------------------------------

    def _sync_slots(self) -> None:
        """Refresh the slot array from the pipe's ready dict if stale."""
        if not self._slots_stale:
            return
        slots = self._slots
        for i in range(N_SLOTS):
            slots[i] = 0
        slot_of_get = SLOT_OF.get
        for key, val in self.pipe._ready.items():
            idx = slot_of_get(key)
            if idx is not None:
                slots[idx] = val
        self._slots_stale = False

    def _writeback_slots(self) -> None:
        """Flush the slot array into the ready dict (scalar walk entry)."""
        if self._slots_stale:
            return
        ready = self.pipe._ready
        slots = self._slots
        for i in range(N_SLOTS):
            v = slots[i]
            if v:
                ready[SCOREBOARD_KEYS[i]] = v

    # -- band driver ----------------------------------------------------------

    def process_band(self, band: Sequence[KernelBlock]) -> None:
        """Process one outer-loop band, bit-identically to the scalar walk."""
        band_no = self._band_no
        self._band_no += 1
        compiler = self.compiler
        config = self.config
        # Lookups are pipe-independent, so resolving the whole band up
        # front (same order as the scalar walk) lets runs of consecutive
        # same-template blocks share one vectorized address computation.
        entries = [compiler.lookup(block) for block in band]
        for template, i, j in template_runs(entries):
            program = None if template is None else template.timing_program(config)
            if program is None:
                for k in range(i, j):
                    self._run_scalar_trace(band[k])
                continue
            state = self._classes.get(template)
            if state is None:
                state = _ClassState(band_no)
                self._classes[template] = state
            if state.demoted:
                for k in range(i, j):
                    self._run_scalar_template(program, entries[k][1])
                continue
            self._run_columnar(template, program, state, entries, i, j, band_no)
        # Leave the pipe fully consistent at band boundaries (snapshots and
        # state signatures are taken between bands).
        self._writeback_slots()

    # -- scalar fallbacks ------------------------------------------------------

    def _run_scalar_trace(self, block: KernelBlock) -> None:
        self._writeback_slots()
        self._slots_stale = True
        self.pipe.process_trace(self.kernel.emit(block))
        self.scalar_blocks += 1

    def _run_scalar_template(self, program: TimingProgram, addrs: Sequence[int]) -> None:
        self._writeback_slots()
        self._slots_stale = True
        self.pipe.process_template(program, addrs)
        self.scalar_blocks += 1

    # -- columnar run ----------------------------------------------------------

    def _run_columnar(
        self,
        template: RowTemplate,
        program: TimingProgram,
        state: _ClassState,
        entries: List,
        i: int,
        j: int,
        band_no: int,
    ) -> int:
        """Replay run ``entries[i:j]`` columnar; returns the next index."""
        plan = self._plans.get(program)
        if plan is None:
            # Store-loaded programs ship their serialized plan; a malformed
            # payload silently falls back to live construction.
            if program.plan_payload is not None:
                plan = plan_from_payload(program, program.plan_payload)
            if plan is None:
                plan = _MemPlan(program)
            self._plans[program] = plan

        # Vectorized address-stream precomputation for the whole run: the
        # start word address, first line and last line of every memop of
        # every block, as plain nested lists for the interpreter loop.
        nb = j - i
        addr_mat = np.asarray([entries[k][1] for k in range(i, j)], dtype=np.int64)
        starts = addr_mat[:, plan.m_ai] + plan.m_off
        firsts = starts // self._line_words
        lasts = (starts + (plan.m_nw - 1)) // self._line_words
        starts_l = starts.tolist()
        firsts_l = firsts.tolist()
        lasts_l = lasts.tolist()

        pipe = self.pipe
        for k in range(nb):
            probe = self._due_probe(state, band_no, k, nb)
            if probe is not None:
                ok = self._probe(
                    template, program, plan, state, probe,
                    entries[i + k][1], starts_l[k], firsts_l[k], lasts_l[k],
                )
                if not ok:
                    # Demoted: the scalar walk already advanced the real
                    # pipe past the probed block; finish the run scalar.
                    for kk in range(k + 1, nb):
                        self._run_scalar_template(program, entries[i + kk][1])
                    return j
                continue
            state.since_probe += 1
            self._sync_slots()
            levels = self._phase_memory(plan, starts_l[k], firsts_l[k], lasts_l[k], pipe)
            self._phase_scoreboard(program, plan, levels, pipe, self._slots)
            self.columnar_blocks += 1
        return j

    def _due_probe(self, state: _ClassState, band_no: int, k: int, nb: int) -> Optional[str]:
        probed = state.probed
        if "rep" not in probed:
            return "rep"  # representative: first block of the class
        if "steady" not in probed and nb >= 3 and k == nb // 2:
            return "steady"  # steady state: middle of an interior run
        if "band" not in probed and band_no != state.first_band:
            return "band"  # band boundary: first block in a later band
        if state.since_probe >= REPROBE_INTERVAL:
            return "periodic"
        return None

    # -- probe-verify / demote -------------------------------------------------

    def _probe(
        self,
        template: RowTemplate,
        program: TimingProgram,
        plan: _MemPlan,
        state: _ClassState,
        kind: str,
        addrs: Sequence[int],
        S_row: List[int],
        F_row: List[int],
        L_row: List[int],
    ) -> bool:
        """Columnar on a clone vs scalar on the real pipe; demote on mismatch.

        Running the scalar walk on the *real* pipe means its (trusted)
        result is already in place whichever way the comparison goes; on a
        match the clone is byte-for-byte the same state, so continuing
        columnar afterwards is seamless.
        """
        self.verifications += 1
        pipe = self.pipe
        self._writeback_slots()
        self._slots_stale = True

        clone = pipe.clone()
        clone_slots = [0] * N_SLOTS
        slot_of_get = SLOT_OF.get
        for key, val in clone._ready.items():
            idx = slot_of_get(key)
            if idx is not None:
                clone_slots[idx] = val
        levels = self._phase_memory(plan, S_row, F_row, L_row, clone)
        self._phase_scoreboard(program, plan, levels, clone, clone_slots)
        ready = clone._ready
        for i in range(N_SLOTS):
            v = clone_slots[i]
            if v:
                ready[SCOREBOARD_KEYS[i]] = v

        # The probe's trusted side must be the interpreted walk itself, not
        # the process_template dispatcher (which could route to a generated
        # kernel whose own verification chain this probe sits above).
        pipe.process_template_interp(program, addrs)
        self.scalar_blocks += 1

        if self._columnar_matches(clone, pipe):
            state.probed.add(kind)
            state.since_probe = 0
            return True
        self._demote(template, state)
        return False

    @staticmethod
    def _columnar_matches(clone: PipelineModel, pipe: PipelineModel) -> bool:
        """Full structural state comparison of the columnar and scalar pipes.

        Because the clone starts as an exact copy (including absolute LRU
        ticks) and both sides then process the same block, a correct replay
        leaves *identical* absolute state — so this compares raw structures
        directly, which is both stricter and much cheaper than building the
        normalized ``state_signature`` tuples.  Stream-table order matters
        (LRU eviction), hence the item-list comparison.
        """
        ch, ph = clone.hierarchy, pipe.hierarchy
        cf, pf = clone.prefetcher, pipe.prefetcher
        return (
            clone._frontier == pipe._frontier
            and clone._cycle == pipe._cycle
            and clone._issued_this_cycle == pipe._issued_this_cycle
            and clone.makespan == pipe.makespan
            and clone._port_free == pipe._port_free
            and clone._ready == pipe._ready
            and clone.instructions_retired == pipe.instructions_retired
            and clone.instructions_by_port == pipe.instructions_by_port
            and clone.flops == pipe.flops
            and clone.useful_flops == pipe.useful_flops
            and clone.sw_prefetches == pipe.sw_prefetches
            and ch.mem_lines_read == ph.mem_lines_read
            and ch.mem_lines_written == ph.mem_lines_written
            and ch.l1._tick == ph.l1._tick
            and ch.l1._sets == ph.l1._sets
            and ch.l1._dirty == ph.l1._dirty
            and ch.l1.stats == ph.l1.stats
            and ch.l2._tick == ph.l2._tick
            and ch.l2._sets == ph.l2._sets
            and ch.l2._dirty == ph.l2._dirty
            and ch.l2.stats == ph.l2.stats
            and list(cf._streams.items()) == list(pf._streams.items())
            and cf.prefetches_issued == pf.prefetches_issued
            and cf.streams_confirmed == pf.streams_confirmed
            and cf.streams_allocated == pf.streams_allocated
        )

    def _demote(self, template: RowTemplate, state: _ClassState) -> None:
        state.demoted = True
        self.demotions += 1
        program = template.timing_program(self.config)
        # Drop shared state too: other replayers on the same share rebuild
        # plans/memos on demand, so discarding is always safe.
        self.share.drop(program)

    # -- phase one: memory ----------------------------------------------------

    def _phase_memory(
        self,
        plan: _MemPlan,
        S_row: List[int],
        F_row: List[int],
        L_row: List[int],
        pipe: PipelineModel,
    ) -> bytes:
        """Drive the block's memory operations; return per-load-step levels.

        Operation-for-operation identical to the memory handling inside
        ``PipelineModel.process_template`` (same inlined L1 probe, same
        shared miss path, same inlined prefetcher training in the same
        order) — only the scoreboard arithmetic is absent, which is sound
        because nothing in the cache or prefetcher ever reads it.
        """
        hierarchy = pipe.hierarchy
        l1 = hierarchy.l1
        l1_stats = l1.stats
        l1_num_sets = l1.num_sets
        l1_assoc = l1.assoc
        l1_sets = l1._sets
        l1_dirty = l1._dirty
        l2 = hierarchy.l2
        l2_stats = l2.stats
        l2_num_sets = l2.num_sets
        l2_assoc = l2.assoc
        l2_sets = l2._sets
        l2_dirty = l2._dirty
        pf = pipe.prefetcher
        pf_on = pf.enabled and pf.num_streams > 0
        pf_streams = pf._streams
        pf_move = pf_streams.move_to_end
        pf_confirm = pf.confirm_advances
        pf_max = pf.num_streams
        pf_depth = pf.depth
        watch = hierarchy.static_watch
        watch_hits = 0
        demand_accesses = 0
        demand_hits = 0
        l2_demand_accesses = 0
        l2_demand_hits = 0
        mem_reads = 0
        mem_writes = 0
        prefetch_fills = 0
        prefetches_issued = 0
        pf_probes = 0
        pf_probe_hits = 0
        # Both cache ticks run in locals and resynchronize around the one
        # remaining method call (software prefetch) — everything else, the
        # full miss path and the stream fills included, is inlined below
        # and touches no attributes at all.
        l1_tick = l1._tick
        l2_tick = l2._tick
        levels_out: List[int] = []
        append_level = levels_out.append

        lpp_minus1 = LINES_PER_PAGE - 1

        pf_pop = pf_streams.pop

        def advance_stream(line: int, stream) -> None:
            # Inlined stream advance + _issue_ahead/hardware_prefetch (the
            # fill code mirrors the demand path's install/writeback chain).
            # Shared by the L1-hit fast paths and the general training loop
            # below; the caller has already popped ``line - 1``'s stream
            # (one hash probe doubles as the membership test).  Targets
            # ascend, so _issue_ahead's per-target page check is equivalent
            # to clipping the range at the page's last line up front —
            # which also turns the issue counter into one bulk add.
            nonlocal l1_tick, l2_tick, mem_reads, mem_writes
            nonlocal prefetch_fills, prefetches_issued, watch_hits
            stream.advances += 1
            stream.tail_line = line
            pf_streams[line] = stream
            if stream.advances == pf_confirm:
                pf.streams_confirmed += 1
            if stream.advances >= pf_confirm:
                stop = line + pf_depth
                page_end = line - line % LINES_PER_PAGE + lpp_minus1
                if stop > page_end:
                    stop = page_end
                prefetches_issued += stop - line
                for target in range(line + 1, stop + 1):
                    ways = l1_sets[target % l1_num_sets]
                    if target not in ways:
                        if watch is not None and target in watch:
                            watch_hits += 1
                        ways2 = l2_sets[target % l2_num_sets]
                        if target in ways2:
                            l2_tick += 1
                            ways2[target] = l2_tick
                        else:
                            mem_reads += 1
                            l2_tick += 1
                            ways2[target] = l2_tick
                            if len(ways2) > l2_assoc:
                                v2 = _lru_victim(ways2)
                                del ways2[v2]
                                if v2 in l2_dirty:
                                    l2_dirty.discard(v2)
                                    l2_stats.writebacks += 1
                                    mem_writes += 1
                        l1_tick += 1
                        ways[target] = l1_tick
                        if len(ways) > l1_assoc:
                            victim = _lru_victim(ways)
                            del ways[victim]
                            if victim in l1_dirty:
                                if watch is not None and victim in watch:
                                    watch_hits += 1
                                l1_dirty.discard(victim)
                                l1_stats.writebacks += 1
                                wv = l2_sets[victim % l2_num_sets]
                                if victim in wv:
                                    l2_dirty.add(victim)
                                else:
                                    l2_tick += 1
                                    wv[victim] = l2_tick
                                    l2_dirty.add(victim)
                                    if len(wv) > l2_assoc:
                                        v2 = _lru_victim(wv)
                                        del wv[v2]
                                        if v2 in l2_dirty:
                                            l2_dirty.discard(v2)
                                            l2_stats.writebacks += 1
                                            mem_writes += 1
                        prefetch_fills += 1

        # L1-hit fast paths.  Vector loads and stores are narrower than a
        # cache line, so most operations touch exactly one line or
        # straddle two — and out of cache the prefetcher keeps the demand
        # stream hitting in L1.  Probing all touched lines up front (peeks
        # only, no state change) proves the demand pass reduces to tick
        # refreshes with ``level == 1``, so the allocation branch of the
        # training pass is dead and training collapses to the per-line
        # move/advance checks spelled out inline below — the exact
        # ``_observe_line`` sequence the general walk runs, minus its
        # loops.  Misses, wider spans, and multi-memop groups fall through
        # to the general walk untouched.
        for kind, a, b, c in plan.ops:
            if kind == K_PRFM:
                # Inlined CacheHierarchy.software_prefetch: the probe is
                # counted in L1 PMU stats, misses pull the line through L2
                # into L1 with the same install/writeback chain as the
                # demand path — and no demand counters.  The plan records
                # the PRFM's address operand like any other memop, so its
                # line range is F_row/L_row like the rest.
                first = F_row[a]
                last = L_row[a]
                pf_probes += last - first + 1
                for line in range(first, last + 1):
                    ways = l1_sets[line % l1_num_sets]
                    if line in ways:
                        l1_tick += 1
                        ways[line] = l1_tick
                        pf_probe_hits += 1
                        continue
                    if watch is not None and line in watch:
                        watch_hits += 1
                    ways2 = l2_sets[line % l2_num_sets]
                    if line in ways2:
                        l2_tick += 1
                        ways2[line] = l2_tick
                    else:
                        mem_reads += 1
                        l2_tick += 1
                        ways2[line] = l2_tick
                        if len(ways2) > l2_assoc:
                            v2 = _lru_victim(ways2)
                            del ways2[v2]
                            if v2 in l2_dirty:
                                l2_dirty.discard(v2)
                                l2_stats.writebacks += 1
                                mem_writes += 1
                    l1_tick += 1
                    ways[line] = l1_tick
                    if c:
                        l1_dirty.add(line)
                    if len(ways) > l1_assoc:
                        victim = _lru_victim(ways)
                        del ways[victim]
                        if victim in l1_dirty:
                            if watch is not None and victim in watch:
                                watch_hits += 1
                            l1_dirty.discard(victim)
                            l1_stats.writebacks += 1
                            wv = l2_sets[victim % l2_num_sets]
                            if victim in wv:
                                l2_dirty.add(victim)
                            else:
                                l2_tick += 1
                                wv[victim] = l2_tick
                                l2_dirty.add(victim)
                                if len(wv) > l2_assoc:
                                    v2 = _lru_victim(wv)
                                    del wv[v2]
                                    if v2 in l2_dirty:
                                        l2_dirty.discard(v2)
                                        l2_stats.writebacks += 1
                                        mem_writes += 1
                    prefetch_fills += 1
                continue
            if b - a == 1:
                first = F_row[a]
                last = L_row[a]
                if first == last:
                    ways = l1_sets[first % l1_num_sets]
                    if first in ways:
                        l1_tick += 1
                        ways[first] = l1_tick
                        demand_accesses += 1
                        demand_hits += 1
                        if kind == K_STORE:
                            l1_dirty.add(first)
                        else:
                            append_level(1)
                        if pf_on:
                            if first in pf_streams:
                                pf_move(first)
                            else:
                                stream = pf_pop(first - 1, None)
                                if stream is not None:
                                    advance_stream(first, stream)
                        continue
                elif last == first + 1:
                    ways = l1_sets[first % l1_num_sets]
                    if first in ways:
                        waysb = l1_sets[last % l1_num_sets]
                        if last in waysb:
                            l1_tick += 1
                            ways[first] = l1_tick
                            l1_tick += 1
                            waysb[last] = l1_tick
                            demand_accesses += 2
                            demand_hits += 2
                            if kind == K_STORE:
                                l1_dirty.add(first)
                                l1_dirty.add(last)
                            else:
                                append_level(1)
                            if pf_on:
                                if first in pf_streams:
                                    pf_move(first)
                                else:
                                    stream = pf_pop(first - 1, None)
                                    if stream is not None:
                                        advance_stream(first, stream)
                                if last in pf_streams:
                                    pf_move(last)
                                else:
                                    stream = pf_pop(first, None)
                                    if stream is not None:
                                        advance_stream(last, stream)
                            continue
            is_store = kind == K_STORE
            worst = 1  # L1
            for m in range(a, b):
                first = F_row[m]
                last = L_row[m]
                level = 1
                # Demand pass: inlined CacheHierarchy._access_line, miss
                # continuation included — L2 probe-with-promotion, clean L2
                # fill, L1 install with the dirty-victim L1 -> L2 -> DRAM
                # writeback chain (mirrors _access_line_miss/_fill_l1/_fill_l2
                # plus CacheLevel.install; the lines installed here are never
                # resident, so install's already-present branch is dead).
                demand_accesses += last - first + 1
                for line in range(first, last + 1):
                    ways = l1_sets[line % l1_num_sets]
                    if line in ways:
                        l1_tick += 1
                        ways[line] = l1_tick
                        demand_hits += 1
                        if is_store:
                            l1_dirty.add(line)
                    else:
                        if watch is not None and line in watch:
                            watch_hits += 1
                        l2_demand_accesses += 1
                        ways2 = l2_sets[line % l2_num_sets]
                        if line in ways2:
                            l2_tick += 1
                            ways2[line] = l2_tick
                            l2_demand_hits += 1
                            lv = 2
                        else:
                            mem_reads += 1
                            l2_tick += 1
                            ways2[line] = l2_tick
                            if len(ways2) > l2_assoc:
                                v2 = _lru_victim(ways2)
                                del ways2[v2]
                                if v2 in l2_dirty:
                                    l2_dirty.discard(v2)
                                    l2_stats.writebacks += 1
                                    mem_writes += 1
                            lv = 3
                        l1_tick += 1
                        ways[line] = l1_tick
                        if is_store:
                            l1_dirty.add(line)
                        if len(ways) > l1_assoc:
                            victim = _lru_victim(ways)
                            del ways[victim]
                            if victim in l1_dirty:
                                if watch is not None and victim in watch:
                                    watch_hits += 1
                                l1_dirty.discard(victim)
                                l1_stats.writebacks += 1
                                wv = l2_sets[victim % l2_num_sets]
                                if victim in wv:
                                    l2_dirty.add(victim)
                                else:
                                    l2_tick += 1
                                    wv[victim] = l2_tick
                                    l2_dirty.add(victim)
                                    if len(wv) > l2_assoc:
                                        v2 = _lru_victim(wv)
                                        del wv[v2]
                                        if v2 in l2_dirty:
                                            l2_dirty.discard(v2)
                                            l2_stats.writebacks += 1
                                            mem_writes += 1
                        if lv > level:
                            level = lv
                if pf_on:
                    # Training pass: inlined StreamPrefetcher._observe_line.
                    # Membership tests replace ``.get`` calls — the dominant
                    # steady-state case (line neither a stream tail nor one
                    # past a tail) then costs two C-level containment checks.
                    hit = level == 1
                    for line in range(first, last + 1):
                        if line in pf_streams:
                            pf_move(line)
                            continue
                        stream = pf_pop(line - 1, None)
                        if stream is not None:
                            advance_stream(line, stream)
                        elif not hit:
                            pf_streams[line] = _Stream(tail_line=line)
                            pf.streams_allocated += 1
                            if len(pf_streams) > pf_max:
                                pf_streams.popitem(last=False)
                if level > worst:
                    worst = level
            if not is_store:
                append_level(worst)

        l1._tick = l1_tick
        l2._tick = l2_tick
        l1_stats.demand_accesses += demand_accesses
        l1_stats.demand_hits += demand_hits
        l1_stats.prefetch_fills += prefetch_fills
        l1_stats.prefetch_probes += pf_probes
        l1_stats.prefetch_probe_hits += pf_probe_hits
        l2_stats.demand_accesses += l2_demand_accesses
        l2_stats.demand_hits += l2_demand_hits
        hierarchy.mem_lines_read += mem_reads
        hierarchy.mem_lines_written += mem_writes
        pf.prefetches_issued += prefetches_issued
        if watch_hits:
            hierarchy.static_watch_hits += watch_hits
        return bytes(levels_out)

    # -- phase two: scoreboard -------------------------------------------------

    def _phase_scoreboard(
        self,
        program: TimingProgram,
        plan: _MemPlan,
        levels: bytes,
        pipe: PipelineModel,
        slots: List[int],
    ) -> None:
        """Advance the scoreboard through the program, memoized at two grains.

        The max-plus issue recurrence is translation-invariant: shifting
        every entry value (frontier, live slots, busy pipes, cycle) by a
        constant shifts every output by the same constant.  A context is
        keyed on its *complete* relative entry state — live-in slot offsets
        clamped at the frontier (values at or below it can never raise an
        issue cycle), pipe offsets with rank-order for stale pipes (rank
        decides the least-loaded choice), the cycle lag and issue count, and
        the slice of the level vector that sets the load penalties — so a
        hit is exact by construction and needs no verification.

        The *whole-block* table is tried first: in a band's steady state the
        entire entry context recurs block after block and one hit replaces
        the chunk loop outright.  Blocks whose global context is novel
        (boundary lines, set-conflict beats) fall back to the per-chunk
        tables, which still hit on the locally-steady stretches, and the
        chunk walk's outcome is recorded at block grain on the way out.
        """
        port_free = pipe._port_free
        pipes_by_id = [port_free[p] for p in program.ports]

        makespan = pipe.makespan
        cycle = pipe._cycle
        issued = pipe._issued_this_cycle
        frontier = pipe._frontier

        # -- whole-block fast path ----------------------------------------
        bf0 = frontier
        bsb = tuple([(v - bf0) if (v := slots[s]) > bf0 else 0 for s in plan.live_in])
        bsig = []
        for pipes in pipes_by_id:
            if len(pipes) == 1:
                p = pipes[0]
                bsig.append((p - bf0) if p > bf0 else -1)
            elif len(pipes) == 2:
                p0, p1 = pipes
                if p0 > bf0:
                    bsig.append((p0 - bf0, p1 - bf0) if p1 > bf0 else (p0 - bf0, -2))
                elif p1 > bf0:
                    bsig.append((-2, p1 - bf0))
                elif p0 == p1:
                    bsig.append((-2, -2))
                else:
                    bsig.append((-2, -1) if p0 < p1 else (-1, -2))
            else:
                bsig.append(_pipes_key(pipes, bf0))
        btable = self._bmemo.get(program)
        if btable is None:
            btable = self._bmemo[program] = {}
        bkey = (bsb, tuple(bsig), bf0 - cycle, issued, levels)
        bentry = btable.get(bkey)
        if bentry is not None:
            slots_out, pipes_out, frontier_rel, cycle_lag, issued, done_rel = bentry
            for s, rel in slots_out:
                slots[s] = bf0 + rel
            for pid, jj, rel in pipes_out:
                pipes_by_id[pid][jj] = bf0 + rel
            frontier = bf0 + frontier_rel
            cycle = frontier - cycle_lag
            done = bf0 + done_rel
            if done > makespan:
                makespan = done
            pipe._frontier = frontier
            pipe._cycle = cycle
            pipe._issued_this_cycle = issued
            pipe.makespan = makespan
            pipe.instructions_retired += program.count
            by_port = pipe.instructions_by_port
            for port, count in program.port_counts.items():
                by_port[port] += count
            pipe.flops += program.flops
            pipe.useful_flops += program.useful_flops
            pipe.sw_prefetches += program.n_prfm
            return

        # -- chunk loop (block miss) --------------------------------------
        tables = self._pmemo.get(program)
        if tables is None:
            tables = [{} for _ in plan.chunks]
            self._pmemo[program] = tables
        assigned_all: set = set()
        block_done = 0
        for ci, (chunk, table) in enumerate(zip(plan.chunks, tables)):
            steps, live_in, write_out, port_ids, lev_lo, lev_hi = chunk
            f0 = frontier
            sb = tuple([(v - f0) if (v := slots[s]) > f0 else 0 for s in live_in])
            # Inline the 1- and 2-pipe encodings of memo._pipes_key (fresh
            # pipes by offset, stale pipes by rank); the generic helper only
            # runs for wider port classes.
            sig = []
            for pid in port_ids:
                pipes = pipes_by_id[pid]
                if len(pipes) == 1:
                    p = pipes[0]
                    sig.append((p - f0) if p > f0 else -1)
                elif len(pipes) == 2:
                    p0, p1 = pipes
                    if p0 > f0:
                        sig.append((p0 - f0, p1 - f0) if p1 > f0 else (p0 - f0, -2))
                    elif p1 > f0:
                        sig.append((-2, p1 - f0))
                    elif p0 == p1:
                        sig.append((-2, -2))
                    else:
                        sig.append((-2, -1) if p0 < p1 else (-1, -2))
                else:
                    sig.append(_pipes_key(pipes, f0))
            key = (sb, tuple(sig), f0 - cycle, issued, levels[lev_lo:lev_hi])

            entry = table.get(key)
            if entry is None:
                entry = self._chunk_walk(
                    program, ci, chunk, levels, f0, cycle, issued,
                    slots, pipes_by_id, pipe,
                )
                table[key] = entry
            slots_out, pipes_out, frontier_rel, cycle_lag, issued, done_rel = entry
            for s, rel in slots_out:
                slots[s] = f0 + rel
            for pid, jj, rel in pipes_out:
                pipes_by_id[pid][jj] = f0 + rel
                assigned_all.add((pid, jj))
            frontier = f0 + frontier_rel
            cycle = frontier - cycle_lag
            done = f0 + done_rel
            if done > block_done:
                block_done = done
            if done > makespan:
                makespan = done

        # Record the block outcome for the fast path.  Only pipes some
        # chunk assigned are recorded — unassigned pipes keep their
        # (possibly sub-frontier) absolute values, exactly as the scalar
        # walk leaves them, and the key pins their entry encoding.
        btable[bkey] = (
            tuple((s, slots[s] - bf0) for s in plan.write_union),
            tuple(
                (pid, jj, pipes_by_id[pid][jj] - bf0)
                for pid, jj in sorted(assigned_all)
            ),
            frontier - bf0,
            frontier - cycle,
            issued,
            block_done - bf0,
        )

        pipe._frontier = frontier
        pipe._cycle = cycle
        pipe._issued_this_cycle = issued
        pipe.makespan = makespan
        pipe.instructions_retired += program.count
        by_port = pipe.instructions_by_port
        for port, count in program.port_counts.items():
            by_port[port] += count
        pipe.flops += program.flops
        pipe.useful_flops += program.useful_flops
        pipe.sw_prefetches += program.n_prfm

    def _chunk_walk(
        self,
        program: TimingProgram,
        ci: int,
        chunk: Tuple,
        levels: bytes,
        f0: int,
        cycle: int,
        issued: int,
        slots: List[int],
        pipes_by_id: List[List[int]],
        pipe: PipelineModel,
    ) -> Tuple:
        """Chunk walk on a memo miss, through a generated body if possible.

        With codegen enabled on the pipe, each chunk gets an exec-compiled
        straight-line walk (:func:`repro.machine.codegen.chunk_walk_fn`)
        whose first use is verified against the interpreted
        :meth:`_scoreboard_walk` — generated on copies, interpreted on the
        real structures, entries and mutated state compared exactly.  Any
        mismatch or generation failure demotes that chunk (only) to the
        interpreted walk.  Chunk sources are cheap to regenerate and their
        results live in the persisted memo tables, so they are not stored
        as artifacts.
        """
        steps, _live_in, write_out, _port_ids, lev_lo, _lev_hi = chunk
        if not pipe.codegen:
            return self._scoreboard_walk(
                steps, write_out, levels, lev_lo, f0, cycle, issued,
                slots, pipes_by_id, pipe.config.issue_width,
            )
        fns = self.share.chunk_fns.get(program)
        if fns is None:
            fns = self.share.chunk_fns[program] = {}
        fn = fns.get(ci)
        if fn is None:
            from repro.machine import codegen as _codegen

            fn = _codegen.chunk_walk_fn(chunk, program.ports, self.config)
            if fn is None:
                fns[ci] = False
                _codegen.CODEGEN_STATS["chunk_demoted"] += 1
                return self._scoreboard_walk(
                    steps, write_out, levels, lev_lo, f0, cycle, issued,
                    slots, pipes_by_id, pipe.config.issue_width,
                )
            slots_copy = list(slots)
            pipes_copy = [list(p) for p in pipes_by_id]
            try:
                got = fn(levels, lev_lo, f0, cycle, issued, slots_copy, pipes_copy)
            except Exception:
                got = None
            entry = self._scoreboard_walk(
                steps, write_out, levels, lev_lo, f0, cycle, issued,
                slots, pipes_by_id, pipe.config.issue_width,
            )
            if got == entry and slots_copy == slots and pipes_copy == pipes_by_id:
                fns[ci] = fn
            else:
                fns[ci] = False
                _codegen.CODEGEN_STATS["chunk_demoted"] += 1
            return entry
        if fn is False:
            return self._scoreboard_walk(
                steps, write_out, levels, lev_lo, f0, cycle, issued,
                slots, pipes_by_id, pipe.config.issue_width,
            )
        return fn(levels, lev_lo, f0, cycle, issued, slots, pipes_by_id)

    def _scoreboard_walk(
        self,
        steps: Tuple,
        write_out: Tuple[int, ...],
        levels: bytes,
        li: int,
        f0: int,
        cycle: int,
        issued: int,
        slots: List[int],
        pipes_by_id: List[List[int]],
        issue_width: int,
    ) -> Tuple:
        """Scoreboard-only chunk walk (memo miss); returns the memo entry.

        State is *not* written back here — the caller applies the returned
        entry, so hit and miss share one code path.
        """
        penalty = self._penalty
        frontier = f0
        max_done = 0
        pipes_assigned: set = set()

        for dep_slots, write_slots, port_id, base_latency, ii, kind, _memops in steps:
            t = frontier
            for s in dep_slots:
                r = slots[s]
                if r > t:
                    t = r

            pipes = pipes_by_id[port_id]
            if len(pipes) == 1:
                pipe_idx = 0
            elif len(pipes) == 2:
                pipe_idx = 0 if pipes[0] <= pipes[1] else 1
            else:
                pipe_idx = min(range(len(pipes)), key=pipes.__getitem__)
            if pipes[pipe_idx] > t:
                t = pipes[pipe_idx]

            if t > cycle:
                cycle = t
                issued = 0
            if issued >= issue_width:
                t = cycle + 1
                cycle = t
                issued = 0

            latency = base_latency
            if kind == K_LOAD:
                latency += penalty[levels[li]]
                li += 1

            pipes[pipe_idx] = t + ii
            pipes_assigned.add((port_id, pipe_idx))
            frontier = t
            issued += 1
            done = t + latency
            for s in write_slots:
                slots[s] = done
            if done > max_done:
                max_done = done

        return (
            tuple((s, slots[s] - f0) for s in write_out),
            # Only pipes the walk assigned are recorded: stale pipes keep
            # their (possibly sub-frontier) absolute values, which no
            # relative encoding could restore.
            tuple(
                (pid, jj, pipes_by_id[pid][jj] - f0)
                for pid, jj in sorted(pipes_assigned)
            ),
            frontier - f0,
            frontier - cycle,
            issued,
            max_done - f0,
        )
