"""Timing engine: drives kernels through the pipeline + cache models.

Small kernels are simulated in full (optionally with one unmeasured warm
pass so in-cache experiments see a warm cache, the way the paper's repeated
timed iterations do).  Out-of-cache grids are *band-sampled*: the engine
simulates a contiguous prefix of the kernel's outer-loop bands, discards a
warm-up region, measures a steady-state region large enough to cover the
requested number of grid points, and extrapolates cycles and cache counters
to the full grid.  Bands are contiguous in iteration order, so every reuse
distance shorter than the measured region (which is what L1 behaviour is
made of) is exercised faithfully.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.isa.instructions import Instruction
from repro.isa.program import Kernel, KernelBlock
from repro.machine.config import MachineConfig
from repro.machine.perf import PerfCounters
from repro.machine.pipeline import PipelineModel


@dataclass
class SamplePlan:
    """Controls band-sampled timing.

    ``warmup_bands`` outer-loop bands are simulated but excluded from the
    measurement (they warm the caches, the prefetcher stream table and the
    pipeline).  Measurement then continues until at least
    ``min_measure_points`` grid points have been covered (or the kernel runs
    out of bands).
    """

    warmup_bands: int = 2
    min_measure_points: int = 60_000
    max_measure_bands: Optional[int] = None


#: Grids below this many output points are simulated in full.
FULL_SIM_POINT_LIMIT = 300_000


#: Engines selectable on :class:`TimingEngine` / ``FunctionalEngine.run_kernel``.
ENGINES = ("compiled", "reference")

#: Band-sampled replay strategies for the compiled engine: ``columnar``
#: precomputes address streams and memoizes the scoreboard recurrence
#: (:mod:`repro.machine.columnar`); ``scalar`` walks block by block.
TIMING_MODES = ("columnar", "scalar")


def default_engine() -> str:
    """Engine used when none is requested (``REPRO_ENGINE`` overrides)."""
    return os.environ.get("REPRO_ENGINE", "compiled")


def default_timing() -> str:
    """Sampled-replay mode when none is requested (``REPRO_TIMING`` overrides)."""
    return os.environ.get("REPRO_TIMING", "columnar")


def _add_scaled(base: PerfCounters, delta: PerfCounters, n: int) -> PerfCounters:
    """``base + n * delta``, exact on every counter field.

    All counters are integers (cycles is an integer-valued float), so the
    integer multiply-add is bit-exact — this is what lets the pass-level
    fixed-point skip reproduce a fully simulated run to the last counter.
    """
    out = PerfCounters()
    out.cycles = base.cycles + delta.cycles * n
    out.instructions = base.instructions + delta.instructions * n
    out.instructions_by_port = {
        k: base.instructions_by_port.get(k, 0) + delta.instructions_by_port.get(k, 0) * n
        for k in set(base.instructions_by_port) | set(delta.instructions_by_port)
    }
    out.flops = base.flops + delta.flops * n
    out.useful_flops = base.useful_flops + delta.useful_flops * n
    out.l1_accesses = base.l1_accesses + delta.l1_accesses * n
    out.l1_hits = base.l1_hits + delta.l1_hits * n
    out.l1_demand_accesses = base.l1_demand_accesses + delta.l1_demand_accesses * n
    out.l1_demand_hits = base.l1_demand_hits + delta.l1_demand_hits * n
    out.l1_prefetch_fills = base.l1_prefetch_fills + delta.l1_prefetch_fills * n
    out.l2_accesses = base.l2_accesses + delta.l2_accesses * n
    out.l2_hits = base.l2_hits + delta.l2_hits * n
    out.dram_lines_read = base.dram_lines_read + delta.dram_lines_read * n
    out.dram_lines_written = base.dram_lines_written + delta.dram_lines_written * n
    out.sw_prefetches = base.sw_prefetches + delta.sw_prefetches * n
    out.hw_prefetches = base.hw_prefetches + delta.hw_prefetches * n
    out.line_bytes = base.line_bytes
    return out


class TimingEngine:
    """Produces :class:`PerfCounters` for kernels and raw traces.

    ``engine="compiled"`` (the default) drives kernel blocks through the
    trace-compilation layer (:mod:`repro.kernels.template`): one emit +
    schedule per shape class, then scoreboard replay over precompiled step
    arrays with rebased addresses.  ``engine="reference"`` re-emits and
    walks instruction objects per block.  The two are bit-identical on
    every counter; the compiled path silently falls back to the reference
    walk for any block whose class fails probe verification.
    """

    def __init__(
        self,
        config: MachineConfig,
        engine: Optional[str] = None,
        timing: Optional[str] = None,
        artifact_dir=None,
    ) -> None:
        self.config = config
        if artifact_dir is not None:
            # Installs the process-wide compiled-artifact store: template
            # bundles, lowered programs and columnar plans persist across
            # processes (see :mod:`repro.machine.artifacts`).
            from repro.machine.artifacts import install_artifact_store

            install_artifact_store(artifact_dir)
        self.artifact_dir = artifact_dir
        if engine is None:
            engine = default_engine()
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.engine = engine
        if timing is None:
            timing = default_timing()
        if timing not in TIMING_MODES:
            raise ValueError(
                f"unknown timing {timing!r}; expected one of {TIMING_MODES}"
            )
        self.timing = timing
        #: Engine-lifetime columnar state (lazily built): memory plans and
        #: scoreboard memo tables, shared by every columnar run this engine
        #: drives — successive runs, measured passes and multicore slice
        #: heights all warm the same tables (sound because everything is
        #: keyed on pooled program identity + relative context; see
        #: :class:`repro.machine.columnar.ColumnarShare`).
        self._share = None

    def _columnar_share(self):
        if self._share is None:
            from repro.machine.columnar import ColumnarShare

            self._share = ColumnarShare()
        return self._share

    # ------------------------------------------------------------------

    def _block_runner(
        self, kernel: Kernel, pipe: PipelineModel, nest=None
    ) -> Callable[[KernelBlock], None]:
        """Per-block processing function for the selected engine."""
        if self.engine != "compiled":
            return lambda block: pipe.process_trace(kernel.emit(block))

        from repro.kernels.template import TraceCompiler
        from repro.machine.memo import TimingMemo, memo_enabled

        config = self.config
        compiler = TraceCompiler(kernel, nest=nest, config=config)
        memo = TimingMemo(config) if memo_enabled() else None

        def run_block(block: KernelBlock) -> None:
            entry = compiler.lookup(block)
            if entry is not None:
                template, addrs = entry
                program = template.timing_program(config)
                if program is not None:
                    if memo is not None:
                        memo.replay(pipe, program, template, addrs)
                    else:
                        pipe.process_template(program, addrs)
                    return
            pipe.process_trace(kernel.emit(block))

        return run_block

    # ------------------------------------------------------------------

    def run_trace(self, trace: Iterable[Instruction], label: str = "") -> PerfCounters:
        """Time a straight-line instruction sequence (microbenchmarks)."""
        pipe = PipelineModel(self.config)
        pipe.process_trace(trace)
        counters = pipe.snapshot()
        counters.label = label
        return counters

    def run(
        self,
        kernel: Kernel,
        *,
        label: str = "",
        sample: Optional[bool] = None,
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
        iters: int = 1,
    ) -> PerfCounters:
        """Time a kernel; returns full-grid counters.

        ``sample=None`` picks automatically: grids with more than
        :data:`FULL_SIM_POINT_LIMIT` output points are band-sampled.
        ``warm`` only affects full simulations (one unmeasured pass first).
        ``iters`` repeats the measured pass, hardware-benchmark style: the
        returned counters sum all measured passes and ``points`` scales
        with ``iters``, so per-point metrics are the per-pass average.
        """
        if iters < 1:
            raise ValueError(f"iters must be >= 1, got {iters}")
        nest = kernel.loop_nest()
        total_points = nest.total_points()
        if sample is None:
            sample = total_points > FULL_SIM_POINT_LIMIT

        if not sample:
            counters = self._run_full(kernel, nest, warm=warm, iters=iters)
        else:
            if iters != 1:
                raise ValueError("iters is only supported for full (unsampled) runs")
            counters = self._run_sampled(kernel, nest, plan or SamplePlan())
        counters.label = label or kernel.name
        return counters

    # ------------------------------------------------------------------

    def _run_full(self, kernel: Kernel, nest, warm: bool, iters: int = 1) -> PerfCounters:
        pipe = PipelineModel(self.config)

        use_columnar = False
        if self.engine == "compiled" and self.timing == "columnar":
            from repro.machine.memo import memo_enabled

            # Columnar replay vectorizes the first pass the same way it
            # vectorizes sampled bands; the block-level REPRO_MEMO modes
            # keep the scalar memoized walk (their exact-key replay already
            # collapses warm passes, and the diagnostic value of running
            # them lies in exercising that layer).
            use_columnar = not memo_enabled()

        if use_columnar:
            from repro.machine.columnar import ColumnarReplayer

            replayer = ColumnarReplayer(
                kernel, self.config, pipe, nest=nest, share=self._columnar_share()
            )
            # bands() lists blocks grouped by outer index in iteration
            # order, so driving band-at-a-time preserves the exact block
            # sequence of the scalar loop below.
            bands = nest.bands()

            def one_pass() -> None:
                pipe.process_trace(kernel.preamble())
                for band in bands:
                    replayer.process_band(band)

        else:
            run_block = self._block_runner(kernel, pipe, nest=nest)

            def one_pass() -> None:
                pipe.process_trace(kernel.preamble())
                for block in nest:
                    run_block(block)

        if warm:
            one_pass()
            before = pipe.snapshot()
        else:
            before = None

        # Pass-level fixed-point memoization (compiled engine only): the
        # machine model is a deterministic function of its behavioural
        # state, and each measured pass replays the exact same trace, so
        # the moment the state signature at a pass boundary *recurs* the
        # remaining passes are provably identical — their counter deltas
        # are applied arithmetically instead of being re-simulated.  The
        # reference engine always walks every pass.
        use_skip = False
        if iters > 1 and self.engine == "compiled":
            from repro.machine.memo import pass_memo_enabled

            use_skip = pass_memo_enabled()

        prev_sig = pipe.state_signature() if use_skip else None
        prev_snap = before if before is not None else pipe.snapshot()
        counters: Optional[PerfCounters] = None
        strikes = 0
        for done_passes in range(1, iters + 1):
            one_pass()
            if not use_skip:
                continue
            sig = pipe.state_signature()
            if sig == prev_sig:
                # The pass just run mapped the state onto itself: every
                # remaining pass repeats its delta exactly.
                snap = pipe.snapshot()
                delta = PipelineModel.delta(snap, prev_snap)
                counters = _add_scaled(snap, delta, iters - done_passes)
                break
            # A fixed point, if one exists, appears after the first measured
            # pass (warm caches) or the second (cold entry).  Two consecutive
            # distinct signatures therefore mean the state is genuinely
            # drifting (e.g. capacity streaming) and the signature itself —
            # which walks every cache set — is pure overhead from here on.
            strikes += 1
            if strikes >= 2:
                use_skip = False
                continue
            prev_sig = sig
            prev_snap = pipe.snapshot()
        if counters is None:
            counters = pipe.snapshot()
        if before is not None:
            counters = PipelineModel.delta(counters, before)
        counters.points = nest.total_points() * iters
        return counters

    def _run_sampled(self, kernel: Kernel, nest, plan: SamplePlan) -> PerfCounters:
        pipe = PipelineModel(self.config)
        bands = nest.bands()
        total_points = nest.total_points()

        warmup = min(plan.warmup_bands, max(len(bands) - 1, 0))
        if self.engine == "compiled" and self.timing == "columnar":
            from repro.machine.columnar import ColumnarReplayer

            run_band = ColumnarReplayer(
                kernel, self.config, pipe, nest=nest, share=self._columnar_share()
            ).process_band
        else:
            run_block = self._block_runner(kernel, pipe, nest=nest)

            def run_band(band) -> None:
                for block in band:
                    run_block(block)

        pipe.process_trace(kernel.preamble())
        for band in bands[:warmup]:
            run_band(band)

        before = pipe.snapshot()
        measured_points = 0
        measured_bands = 0
        for band in bands[warmup:]:
            run_band(band)
            measured_points += sum(block.points for block in band)
            measured_bands += 1
            if measured_points >= plan.min_measure_points:
                break
            if plan.max_measure_bands is not None and measured_bands >= plan.max_measure_bands:
                break
        after = pipe.snapshot()

        if measured_points == 0:
            raise RuntimeError("sampled timing measured zero points; grid too small to sample")
        delta = PipelineModel.delta(after, before)
        delta.points = measured_points
        scaled = delta.scaled(total_points / measured_points)
        scaled.points = total_points
        return scaled
