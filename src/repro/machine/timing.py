"""Timing engine: drives kernels through the pipeline + cache models.

Small kernels are simulated in full (optionally with one unmeasured warm
pass so in-cache experiments see a warm cache, the way the paper's repeated
timed iterations do).  Out-of-cache grids are *band-sampled*: the engine
simulates a contiguous prefix of the kernel's outer-loop bands, discards a
warm-up region, measures a steady-state region large enough to cover the
requested number of grid points, and extrapolates cycles and cache counters
to the full grid.  Bands are contiguous in iteration order, so every reuse
distance shorter than the measured region (which is what L1 behaviour is
made of) is exercised faithfully.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.isa.instructions import Instruction
from repro.isa.program import Kernel, KernelBlock
from repro.machine.config import MachineConfig
from repro.machine.perf import PerfCounters
from repro.machine.pipeline import PipelineModel


@dataclass
class SamplePlan:
    """Controls band-sampled timing.

    ``warmup_bands`` outer-loop bands are simulated but excluded from the
    measurement (they warm the caches, the prefetcher stream table and the
    pipeline).  Measurement then continues until at least
    ``min_measure_points`` grid points have been covered (or the kernel runs
    out of bands).
    """

    warmup_bands: int = 2
    min_measure_points: int = 60_000
    max_measure_bands: Optional[int] = None


#: Grids below this many output points are simulated in full.
FULL_SIM_POINT_LIMIT = 300_000


#: Engines selectable on :class:`TimingEngine` / ``FunctionalEngine.run_kernel``.
ENGINES = ("compiled", "reference")

#: Band-sampled replay strategies for the compiled engine: ``columnar``
#: precomputes address streams and memoizes the scoreboard recurrence
#: (:mod:`repro.machine.columnar`); ``scalar`` walks block by block.
TIMING_MODES = ("columnar", "scalar")


def default_engine() -> str:
    """Engine used when none is requested (``REPRO_ENGINE`` overrides)."""
    return os.environ.get("REPRO_ENGINE", "compiled")


def default_timing() -> str:
    """Sampled-replay mode when none is requested (``REPRO_TIMING`` overrides)."""
    return os.environ.get("REPRO_TIMING", "columnar")


#: Band-periodic steady-state elision on *full* (unsampled) runs: ``on``
#: detects recurring machine state at band boundaries, verifies one extra
#: period live, and applies the remaining interior bands arithmetically —
#: bit-identical counters, any mismatch demotes to the plain band walk
#: (:mod:`repro.machine.steady`).  Compiled engine only.
STEADY_MODES = ("on", "off")


def default_steady() -> str:
    """Steady-elision mode when none is requested (``REPRO_STEADY`` overrides)."""
    return os.environ.get("REPRO_STEADY", "on")


#: Template-specialized code generation (:mod:`repro.machine.codegen`):
#: ``on`` replays each probe-verified shape class through an exec-compiled
#: straight-line kernel instead of the interpreted step loop — bit-identical
#: counters, any mismatch demotes to the interpreted program.  Compiled
#: engine only; ``REPRO_CODEGEN`` overrides the default.
from repro.machine.codegen import CODEGEN_MODES, default_codegen  # noqa: E402


def _add_scaled(base: PerfCounters, delta: PerfCounters, n: int) -> PerfCounters:
    """``base + n * delta``, exact on every counter field.

    All counters are integers (cycles is an integer-valued float), so the
    integer multiply-add is bit-exact — this is what lets the pass-level
    fixed-point skip reproduce a fully simulated run to the last counter.
    """
    out = PerfCounters()
    out.cycles = base.cycles + delta.cycles * n
    out.instructions = base.instructions + delta.instructions * n
    out.instructions_by_port = {
        k: base.instructions_by_port.get(k, 0) + delta.instructions_by_port.get(k, 0) * n
        for k in set(base.instructions_by_port) | set(delta.instructions_by_port)
    }
    out.flops = base.flops + delta.flops * n
    out.useful_flops = base.useful_flops + delta.useful_flops * n
    out.l1_accesses = base.l1_accesses + delta.l1_accesses * n
    out.l1_hits = base.l1_hits + delta.l1_hits * n
    out.l1_demand_accesses = base.l1_demand_accesses + delta.l1_demand_accesses * n
    out.l1_demand_hits = base.l1_demand_hits + delta.l1_demand_hits * n
    out.l1_prefetch_fills = base.l1_prefetch_fills + delta.l1_prefetch_fills * n
    out.l2_accesses = base.l2_accesses + delta.l2_accesses * n
    out.l2_hits = base.l2_hits + delta.l2_hits * n
    out.dram_lines_read = base.dram_lines_read + delta.dram_lines_read * n
    out.dram_lines_written = base.dram_lines_written + delta.dram_lines_written * n
    out.sw_prefetches = base.sw_prefetches + delta.sw_prefetches * n
    out.hw_prefetches = base.hw_prefetches + delta.hw_prefetches * n
    out.line_bytes = base.line_bytes
    return out


class TimingEngine:
    """Produces :class:`PerfCounters` for kernels and raw traces.

    ``engine="compiled"`` (the default) drives kernel blocks through the
    trace-compilation layer (:mod:`repro.kernels.template`): one emit +
    schedule per shape class, then scoreboard replay over precompiled step
    arrays with rebased addresses.  ``engine="reference"`` re-emits and
    walks instruction objects per block.  The two are bit-identical on
    every counter; the compiled path silently falls back to the reference
    walk for any block whose class fails probe verification.
    """

    def __init__(
        self,
        config: MachineConfig,
        engine: Optional[str] = None,
        timing: Optional[str] = None,
        steady: Optional[str] = None,
        codegen: Optional[str] = None,
        artifact_dir=None,
    ) -> None:
        self.config = config
        if artifact_dir is not None:
            # Installs the process-wide compiled-artifact store: template
            # bundles, lowered programs and columnar plans persist across
            # processes (see :mod:`repro.machine.artifacts`).
            from repro.machine.artifacts import install_artifact_store

            install_artifact_store(artifact_dir)
        self.artifact_dir = artifact_dir
        if engine is None:
            engine = default_engine()
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.engine = engine
        if timing is None:
            timing = default_timing()
        if timing not in TIMING_MODES:
            raise ValueError(
                f"unknown timing {timing!r}; expected one of {TIMING_MODES}"
            )
        self.timing = timing
        if steady is None:
            steady = default_steady()
        if steady not in STEADY_MODES:
            raise ValueError(
                f"unknown steady {steady!r}; expected one of {STEADY_MODES}"
            )
        self.steady = steady
        if codegen is None:
            codegen = default_codegen()
        if codegen not in CODEGEN_MODES:
            raise ValueError(
                f"unknown codegen {codegen!r}; expected one of {CODEGEN_MODES}"
            )
        self.codegen = codegen
        #: In-process steady records keyed by bundle digest: a verified
        #: ``(period, delta, signature)`` from any earlier run (or the
        #: artifact store) lets later runs skip detection entirely and go
        #: straight to the verification window.
        self._steady_records: dict = {}
        #: Per-run / per-lockstep-run controller accounting
        #: (:class:`repro.machine.steady.SteadyStats`), refreshed by each
        #: ``_run_full`` / ``run_lockstep`` call.
        self.steady_stats = None
        self.lockstep_steady_stats = None
        #: Engine-lifetime columnar state (lazily built): memory plans and
        #: scoreboard memo tables, shared by every columnar run this engine
        #: drives — successive runs, measured passes and multicore slice
        #: heights all warm the same tables (sound because everything is
        #: keyed on pooled program identity + relative context; see
        #: :class:`repro.machine.columnar.ColumnarShare`).
        self._share = None

    def _make_pipe(self) -> PipelineModel:
        """Fresh pipeline with the engine's codegen dispatch applied.

        Codegen rides the compiled replay path only: the reference engine
        never sees templates, and keeping its pipes interpreted preserves
        the trusted baseline every probe compares against.
        """
        pipe = PipelineModel(self.config)
        pipe.codegen = self.engine == "compiled" and self.codegen == "on"
        return pipe

    def _columnar_share(self):
        if self._share is None:
            from repro.machine.columnar import ColumnarShare

            self._share = ColumnarShare()
        return self._share

    # ------------------------------------------------------------------

    def _block_runner(
        self, kernel: Kernel, pipe: PipelineModel, nest=None, compiler=None
    ) -> Callable[[KernelBlock], None]:
        """Per-block processing function for the selected engine."""
        if self.engine != "compiled":
            return lambda block: pipe.process_trace(kernel.emit(block))

        from repro.kernels.template import TraceCompiler
        from repro.machine.memo import TimingMemo, memo_enabled

        config = self.config
        if compiler is None:
            compiler = TraceCompiler(kernel, nest=nest, config=config)
        memo = TimingMemo(config) if memo_enabled() else None

        def run_block(block: KernelBlock) -> None:
            entry = compiler.lookup(block)
            if entry is not None:
                template, addrs = entry
                program = template.timing_program(config)
                if program is not None:
                    if memo is not None:
                        memo.replay(pipe, program, template, addrs)
                    else:
                        pipe.process_template(program, addrs)
                    return
            pipe.process_trace(kernel.emit(block))

        return run_block

    # ------------------------------------------------------------------

    def run_trace(self, trace: Iterable[Instruction], label: str = "") -> PerfCounters:
        """Time a straight-line instruction sequence (microbenchmarks)."""
        pipe = self._make_pipe()
        pipe.process_trace(trace)
        counters = pipe.snapshot()
        counters.label = label
        return counters

    def run(
        self,
        kernel: Kernel,
        *,
        label: str = "",
        sample: Optional[bool] = None,
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
        iters: int = 1,
    ) -> PerfCounters:
        """Time a kernel; returns full-grid counters.

        ``sample=None`` picks automatically: grids with more than
        :data:`FULL_SIM_POINT_LIMIT` output points are band-sampled.
        ``warm`` only affects full simulations (one unmeasured pass first).
        ``iters`` repeats the measured pass, hardware-benchmark style: the
        returned counters sum all measured passes and ``points`` scales
        with ``iters``, so per-point metrics are the per-pass average.
        """
        if iters < 1:
            raise ValueError(f"iters must be >= 1, got {iters}")
        nest = kernel.loop_nest()
        total_points = nest.total_points()
        if sample is None:
            sample = total_points > FULL_SIM_POINT_LIMIT

        if not sample:
            counters = self._run_full(kernel, nest, warm=warm, iters=iters)
        else:
            if iters != 1:
                raise ValueError(
                    "iters is only supported for full (unsampled) runs; pass "
                    "sample=False (or --no-sample) to simulate every pass exactly"
                )
            counters = self._run_sampled(kernel, nest, plan or SamplePlan())
        counters.label = label or kernel.name
        return counters

    # ------------------------------------------------------------------

    def _band_machinery(self, kernel: Kernel, pipe: PipelineModel, nest):
        """``(run_band, compiler)`` for a banded full-grid replay.

        The compiler (compiled engine only) is built here and shared with
        the replayer / block runner so the steady-state controller sees the
        same template classes the replay resolves.
        """
        compiler = None
        use_columnar = False
        if self.engine == "compiled":
            from repro.kernels.template import TraceCompiler
            from repro.machine.memo import memo_enabled

            compiler = TraceCompiler(kernel, nest=nest, config=self.config)
            # Columnar replay vectorizes the first pass the same way it
            # vectorizes sampled bands; the block-level REPRO_MEMO modes
            # keep the scalar memoized walk (their exact-key replay already
            # collapses warm passes, and the diagnostic value of running
            # them lies in exercising that layer).
            use_columnar = self.timing == "columnar" and not memo_enabled()

        if use_columnar:
            from repro.machine.columnar import ColumnarReplayer

            run_band = ColumnarReplayer(
                kernel,
                self.config,
                pipe,
                nest=nest,
                compiler=compiler,
                share=self._columnar_share(),
            ).process_band
        else:
            run_block = self._block_runner(kernel, pipe, nest=nest, compiler=compiler)

            def run_band(band) -> None:
                for block in band:
                    run_block(block)

        return run_band, compiler

    def _steady_controller(self, pipe: PipelineModel, compiler, bands, stats):
        """Build one pass's steady controller, wired to the record caches."""
        from repro.machine import steady as steady_mod
        from repro.machine.artifacts import active_store

        key = steady_mod.steady_record_key(compiler)
        record = None
        if key is not None:
            record = self._steady_records.get(key)
            if record is None:
                store = active_store()
                if store is not None:
                    record = store.load("steady", key)
                    if record is not None:
                        self._steady_records[key] = record

        def on_record(rec) -> None:
            if key is None:
                return
            self._steady_records[key] = rec
            store = active_store()
            if store is not None:
                store.store("steady", key, rec)

        return steady_mod.SteadyController(
            pipe,
            compiler,
            bands,
            self.config,
            record=record,
            on_record=on_record,
            stats=stats,
        )

    def _run_full(self, kernel: Kernel, nest, warm: bool, iters: int = 1) -> PerfCounters:
        from repro.machine.steady import SteadyStats

        pipe = self._make_pipe()
        # bands() lists blocks grouped by outer index in iteration order, so
        # driving band-at-a-time preserves the exact block sequence of the
        # flat block loop.
        bands = nest.bands()
        run_band, compiler = self._band_machinery(kernel, pipe, nest)
        stats = SteadyStats()
        self.steady_stats = stats
        use_steady = self.steady == "on" and compiler is not None

        def one_pass() -> None:
            pipe.process_trace(kernel.preamble())
            controller = (
                self._steady_controller(pipe, compiler, bands, stats)
                if use_steady
                else None
            )
            k = 0
            nbands = len(bands)
            while k < nbands:
                run_band(bands[k])
                k += 1
                if controller is not None:
                    nk = controller.after_band(k)
                    if nk is not None:
                        k = nk

        if warm:
            one_pass()
            before = pipe.snapshot()
        else:
            before = None

        # Pass-level fixed-point memoization (compiled engine only): the
        # machine model is a deterministic function of its behavioural
        # state, and each measured pass replays the exact same trace, so
        # the moment the state signature at a pass boundary *recurs* the
        # remaining passes are provably identical — their counter deltas
        # are applied arithmetically instead of being re-simulated.  The
        # reference engine always walks every pass.
        use_skip = False
        if iters > 1 and self.engine == "compiled":
            from repro.machine.memo import pass_memo_enabled

            use_skip = pass_memo_enabled()

        prev_sig = pipe.state_digest() if use_skip else None
        prev_snap = before if before is not None else pipe.snapshot()
        counters: Optional[PerfCounters] = None
        strikes = 0
        for done_passes in range(1, iters + 1):
            one_pass()
            if not use_skip:
                continue
            sig = pipe.state_digest()
            if sig == prev_sig:
                # The pass just run mapped the state onto itself: every
                # remaining pass repeats its delta exactly.
                snap = pipe.snapshot()
                delta = PipelineModel.delta(snap, prev_snap)
                counters = _add_scaled(snap, delta, iters - done_passes)
                break
            # A fixed point, if one exists, appears after the first measured
            # pass (warm caches) or the second (cold entry).  Two consecutive
            # distinct signatures therefore mean the state is genuinely
            # drifting (e.g. capacity streaming) and the signature itself —
            # which walks every cache set — is pure overhead from here on.
            strikes += 1
            if strikes >= 2:
                use_skip = False
                continue
            prev_sig = sig
            prev_snap = pipe.snapshot()
        if counters is None:
            counters = pipe.snapshot()
        if before is not None:
            counters = PipelineModel.delta(counters, before)
        counters.points = nest.total_points() * iters
        return counters

    def run_lockstep(
        self, kernels, *, warm: bool = True
    ) -> "list[PerfCounters]":
        """Time several kernels band-locked (multicore slice contract).

        Every kernel gets its own pipeline; all cores advance one outer-loop
        band per step.  Steady-state elision only engages when *every*
        still-running core's controller is ready with the *same* period at
        the same boundary — the jump is then the largest common multiple of
        that period fitting every core's interior.  If any core demotes (or
        cannot certify) while others hold a claim, elision is abandoned on
        all cores, so the cores' counters stay bit-identical to running each
        kernel alone with ``run(sample=False)``.
        """
        from repro.machine.steady import SteadyStats

        cores = []
        for kernel in kernels:
            pipe = self._make_pipe()
            nest = kernel.loop_nest()
            run_band, compiler = self._band_machinery(kernel, pipe, nest)
            cores.append((kernel, pipe, nest, nest.bands(), run_band, compiler))

        stats_list = [SteadyStats() for _ in kernels]
        self.lockstep_steady_stats = stats_list
        use_steady = self.steady == "on" and self.engine == "compiled"

        def one_pass() -> None:
            controllers = []
            for (kernel, pipe, _nest, bands, _rb, compiler), stats in zip(
                cores, stats_list
            ):
                pipe.process_trace(kernel.preamble())
                ctrl = None
                if use_steady and compiler is not None:
                    ctrl = self._steady_controller(pipe, compiler, bands, stats)
                controllers.append(ctrl)
            lock_dead = not use_steady or any(c is None for c in controllers)
            if lock_dead:
                for c in controllers:
                    if c is not None:
                        c.force_disable("lockstep")
            k = 0
            max_bands = max((len(c[3]) for c in cores), default=0)
            while k < max_bands:
                active = [i for i, c in enumerate(cores) if k < len(c[3])]
                for i in active:
                    cores[i][4](cores[i][3][k])
                k += 1
                if lock_dead:
                    continue
                # Cores that already finished drop out of the lockstep
                # quorum; the remaining ones must agree unanimously.
                live = [i for i, c in enumerate(cores) if k < len(c[3])]
                states = [controllers[i].observe_band(k) for i in live]
                if not live:
                    continue
                if any(s == "disabled" for s in states):
                    if not all(s == "disabled" for s in states):
                        for i in live:
                            controllers[i].force_disable("lockstep")
                    lock_dead = True
                    continue
                if not all(s == "ready" for s in states):
                    continue
                periods = {controllers[i].period for i in live}
                if len(periods) != 1:
                    for i in live:
                        controllers[i].force_disable("lockstep")
                    lock_dead = True
                    continue
                p = periods.pop()
                m = min(controllers[i].max_engage_periods(k) for i in live)
                if m < 1:
                    continue  # ready persists; a core may finish and free room
                # The engage must be atomic across cores: re-check every
                # core's claim (late static-watch events, edge widening)
                # *before* any core's state jumps, so a failed claim demotes
                # the whole group without desynchronizing the shared index.
                claims_ok = all(
                    controllers[i].pipe.hierarchy.static_watch_hits == 0
                    and controllers[i].compiler.edge == controllers[i].cert.edge
                    for i in live
                )
                if not claims_ok:
                    for i in live:
                        controllers[i].force_disable("lockstep")
                    lock_dead = True
                    continue
                for i in live:
                    if controllers[i].engage(k, m) is None:
                        # Unreachable after the pre-checks (engage re-checks
                        # the same conditions); never desync the shared index.
                        raise RuntimeError("lockstep engage desynchronized")
                k += m * p

        if warm:
            one_pass()
            befores = [pipe.snapshot() for _k, pipe, *_ in cores]
        else:
            befores = [None] * len(cores)
        one_pass()
        out = []
        for (kernel, pipe, nest, *_), before in zip(cores, befores):
            counters = pipe.snapshot()
            if before is not None:
                counters = PipelineModel.delta(counters, before)
            counters.points = nest.total_points()
            counters.label = kernel.name
            out.append(counters)
        return out

    def _run_sampled(self, kernel: Kernel, nest, plan: SamplePlan) -> PerfCounters:
        pipe = self._make_pipe()
        bands = nest.bands()
        total_points = nest.total_points()

        warmup = min(plan.warmup_bands, max(len(bands) - 1, 0))
        if self.engine == "compiled" and self.timing == "columnar":
            from repro.machine.columnar import ColumnarReplayer

            run_band = ColumnarReplayer(
                kernel, self.config, pipe, nest=nest, share=self._columnar_share()
            ).process_band
        else:
            run_block = self._block_runner(kernel, pipe, nest=nest)

            def run_band(band) -> None:
                for block in band:
                    run_block(block)

        pipe.process_trace(kernel.preamble())
        for band in bands[:warmup]:
            run_band(band)

        before = pipe.snapshot()
        measured_points = 0
        measured_bands = 0
        for band in bands[warmup:]:
            run_band(band)
            measured_points += sum(block.points for block in band)
            measured_bands += 1
            if measured_points >= plan.min_measure_points:
                break
            if plan.max_measure_bands is not None and measured_bands >= plan.max_measure_bands:
                break
        after = pipe.snapshot()

        if measured_points == 0:
            raise RuntimeError("sampled timing measured zero points; grid too small to sample")
        delta = PipelineModel.delta(after, before)
        delta.points = measured_points
        scaled = delta.scaled(total_points / measured_points)
        scaled.points = total_points
        return scaled
